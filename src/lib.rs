//! `adatm` — model-driven sparse CP decomposition for higher-order
//! tensors.
//!
//! This is the facade crate: it re-exports the full public API of the
//! workspace so downstream users depend on a single crate.
//!
//! * Sparse tensors, I/O, generators: [`tensor`]
//! * Dense kernels: [`linalg`]
//! * Dimension trees and memoized TTMV: [`dtree`]
//! * The model-driven planner: [`planner`]
//! * CP-ALS drivers and backends: re-exported at the root
//!
//! See `examples/quickstart.rs` for a five-line decomposition.

#![forbid(unsafe_code)]

pub use adatm_core::backend::all_backends;
pub use adatm_core::{
    complete, cp_opt, decompose, decompose_with, factor_match_score, hooi, ncp, AdaptiveBackend,
    BreakdownEvent, BreakdownKind, CheckpointConfig, CheckpointError, CheckpointMedium,
    CheckpointStore, CompletionOptions, CompletionResult, CooBackend, CpAls, CpAlsError,
    CpAlsOptions, CpCheckpoint, CpModel, CpOptOptions, CpOptResult, CpResult, CsfBackend,
    DtreeBackend, InitStrategy, MttkrpBackend, NcpOptions, NcpResult, PhaseTimings, RecoveryAction,
    ResumeOutcome, RunDiagnostics, StopReason, TuckerModel, TuckerOptions, TuckerResult,
};
#[cfg(feature = "fault-inject")]
pub use adatm_core::{
    FaultInjectingBackend, FaultKind, FaultSchedule, FaultyMedium, IoFaultKind, IoFaultLog,
    IoFaultSchedule,
};
pub use adatm_dtree::TreeShape;
pub use adatm_linalg::Mat;
pub use adatm_model::{
    AdmissionError, EnvProfile, KernelProfile, MemoPlan, NnzEstimator, Objective, Planner,
    SearchStrategy,
};
pub use adatm_tensor::SparseTensor;

/// Dense linear-algebra kernels (`Mat`, Jacobi eigensolver, pinv).
pub mod linalg {
    pub use adatm_linalg::*;
}

/// Sparse tensor substrate (COO, CSF, I/O, generators, statistics).
pub mod tensor {
    pub use adatm_tensor::*;
}

/// Dimension trees: shapes, symbolic analysis, numeric TTMV engine.
pub mod dtree {
    pub use adatm_dtree::*;
}

/// The model-driven memoization planner.
pub mod planner {
    pub use adatm_model::*;
}

/// Structured NDJSON tracing: sinks, events, spans, and the
/// zero-cost-when-disabled `event!`/`span_guard!` macros (which live at
/// the `adatm_trace` crate root).
pub mod trace {
    pub use adatm_trace::*;
}

/// Invariant audits (`--features audit`): the [`audit::Validate`] trait,
/// structural validators for every kernel data structure, and — via
/// [`tensor::audit`](adatm_tensor::audit) — the parallel-MTTKRP
/// write-overlap detector.
#[cfg(feature = "audit")]
pub mod audit {
    pub use adatm_audit::*;
}
