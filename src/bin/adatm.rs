//! `adatm` — command-line interface to the library.
//!
//! ```text
//! adatm info <tensor>                      dataset characteristics
//! adatm convert <in> <out>                 .tns <-> .adtm by extension
//! adatm generate [opts] -o <out>           synthesize a tensor
//! adatm plan <tensor> [opts]               print the planner's candidates
//! adatm decompose <tensor> [opts]          run CP-ALS / NCP / CP-OPT
//! ```
//!
//! Run any subcommand with `--help` for its options.

use adatm::planner::estimate::NnzEstimator;
use adatm::tensor::gen::{uniform_tensor, zipf_tensor};
use adatm::tensor::io::{
    read_binary_file, read_tns_file, write_binary_file, write_tns_file, IoError,
};
use adatm::tensor::stats::TensorStats;
use adatm::{
    complete, cp_opt, decompose_with, hooi, ncp, AdaptiveBackend, AdmissionError, CheckpointConfig,
    CheckpointStore, CompletionOptions, CooBackend, CpAls, CpAlsError, CpAlsOptions, CpOptOptions,
    CsfBackend, DtreeBackend, EnvProfile, KernelProfile, MttkrpBackend, NcpOptions, Planner,
    SparseTensor, TreeShape, TuckerOptions,
};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// A CLI failure: a one-line message plus the process exit code that
/// classifies it (see `print_usage` for the code table).
struct CliError {
    code: u8,
    msg: String,
}

/// Usage errors: bad flags, missing arguments, unknown subcommands.
const EXIT_USAGE: u8 = 2;
/// The tensor file could not be read or written (filesystem level).
const EXIT_IO: u8 = 3;
/// The tensor file is malformed (bad syntax, implausible header).
const EXIT_PARSE: u8 = 4;
/// The tensor file parsed but carries NaN or infinite values.
const EXIT_NONFINITE: u8 = 5;
/// The solver rejected its input (rank/shape/finiteness validation).
const EXIT_SOLVER_INPUT: u8 = 6;
/// The solver hit an unrecoverable numerical failure.
const EXIT_NUMERICAL: u8 = 7;
/// The checkpoint store could not be opened, or `--resume` found no
/// usable checkpoint (or one inconsistent with the requested run).
const EXIT_CHECKPOINT: u8 = 8;
/// Admission control rejected the run: no strategy fits `--mem-budget`.
const EXIT_ADMISSION: u8 = 9;

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError { code: EXIT_USAGE, msg }
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError { code: EXIT_USAGE, msg: msg.to_string() }
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        let code = match &e {
            IoError::Io(_) => EXIT_IO,
            IoError::Parse(_) => EXIT_PARSE,
            IoError::NonFinite(_) => EXIT_NONFINITE,
        };
        CliError { code, msg: e.to_string() }
    }
}

impl From<CpAlsError> for CliError {
    fn from(e: CpAlsError) -> Self {
        let code = match &e {
            CpAlsError::Linalg(_) => EXIT_NUMERICAL,
            CpAlsError::Checkpoint(_) => EXIT_CHECKPOINT,
            _ => EXIT_SOLVER_INPUT,
        };
        CliError { code, msg: e.to_string() }
    }
}

impl From<AdmissionError> for CliError {
    fn from(e: AdmissionError) -> Self {
        CliError { code: EXIT_ADMISSION, msg: e.to_string() }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("info") => cmd_info(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::from(format!("unknown subcommand '{other}' (try --help)"))),
    };
    // Flush and tear down any --trace sink before exiting (events are
    // written eagerly, so even an error path leaves a valid NDJSON file).
    adatm::trace::shutdown();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

/// Installs the NDJSON file sink when `--trace <path>` was given.
fn install_trace(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let Some(path) = opts.get("trace") else { return Ok(()) };
    if path.is_empty() {
        return Err("--trace requires a file path".into());
    }
    adatm::trace::install_file(Path::new(path))
        .map_err(|e| CliError { code: EXIT_IO, msg: format!("cannot open trace file {path}: {e}") })
}

/// Resolves `ADATM_PROFILE` for planning paths, turning a set-but-broken
/// profile into a typed CLI error instead of a silent analytic fallback.
fn checked_profile() -> Result<Option<KernelProfile>, CliError> {
    match KernelProfile::load_env_checked() {
        EnvProfile::Unset => Ok(None),
        EnvProfile::Loaded { profile, path, age } => {
            adatm::trace::event!(
                "profile.loaded",
                path: path.as_str(),
                age_s: age.map_or(-1i64, |a| a.as_secs() as i64),
                threads: profile.threads
            );
            println!("calibration: {path} (threads {})", profile.threads);
            Ok(Some(profile))
        }
        EnvProfile::Broken { path, error } => {
            adatm::trace::event!("profile.error", path: path.as_str(), error: error.as_str());
            Err(CliError {
                code: EXIT_USAGE,
                msg: format!(
                    "ADATM_PROFILE points at '{path}' but the profile is unusable: {error}"
                ),
            })
        }
    }
}

fn print_usage() {
    println!(
        "adatm - model-driven sparse CP decomposition\n\n\
         USAGE:\n  adatm info <tensor>\n  adatm convert <in> <out>\n  \
         adatm generate --dims AxBxC [--nnz N] [--skew s|s1,s2,..] [--seed S] -o <out>\n  \
         adatm plan <tensor> [--rank R] [--estimator exact|sampled|analytic] [--budget-mib M]\n      \
         [--trace FILE]\n  \
         adatm decompose <tensor> [--rank R] [--iters N] [--tol T] [--seed S]\n      \
         [--backend adaptive|coo|csf|tree2|tree3|bdt] [--shape '(0 (1 2))']\n      \
         [--algo als|ncp|cpopt|complete|tucker] [--reg R (complete)]\n      \
         [--ranks AxBxC (tucker)] [--out DIR] [--trace FILE] [--drift-factor F]\n      \
         [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--mem-budget MIB]\n\n\
         Tensor files: FROSTT text (.tns) or adatm binary (.adtm), chosen by extension.\n\n\
         --trace FILE writes a structured NDJSON event log (planner decisions,\n\
         per-stage timings, recoveries); validate it with `cargo xtask trace-check`.\n\n\
         DURABILITY (--algo als only):\n  \
         --checkpoint-dir DIR    write rotated, checksummed checkpoints under DIR\n  \
         --checkpoint-every N    write every N completed iterations (default 1)\n  \
         --resume                restart from the newest readable checkpoint in DIR,\n                          \
         continuing bitwise-identically to the uninterrupted run\n  \
         --mem-budget MIB        admission control: reject or degrade any plan whose\n                          \
         predicted resident memory exceeds the budget\n\n\
         EXIT CODES:\n  \
         0  success\n  \
         2  usage error (bad flag, missing argument, unknown subcommand)\n  \
         3  file i/o error\n  \
         4  malformed tensor file\n  \
         5  tensor file contains non-finite values\n  \
         6  solver rejected its input (rank/shape/finiteness validation)\n  \
         7  unrecoverable numerical failure during the solve\n  \
         8  checkpoint failure (store unusable, or --resume found nothing readable)\n  \
         9  admission control rejected the run (nothing fits --mem-budget)"
    );
}

/// Splits `args` into positionals and `--flag value` options (flags with
/// no following value or followed by another flag get an empty value).
fn parse_args(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut pos = Vec::new();
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let val = if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                i += 1;
                args[i].clone()
            } else {
                String::new()
            };
            opts.insert(name.to_string(), val);
        } else if a == "-o" {
            if i + 1 >= args.len() {
                return Err("-o requires a path".into());
            }
            i += 1;
            opts.insert("out".to_string(), args[i].clone());
        } else {
            pos.push(a.clone());
        }
        i += 1;
    }
    Ok((pos, opts))
}

fn opt_parse<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value '{v}' for --{key}")),
    }
}

/// Wraps a filesystem-level failure as [`EXIT_IO`].
fn fs_err(e: std::io::Error) -> CliError {
    CliError { code: EXIT_IO, msg: e.to_string() }
}

fn load(path: &str) -> Result<SparseTensor, CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let mut t = match ext {
        "adtm" => read_binary_file(p)?,
        _ => read_tns_file(p)?,
    };
    t.dedup_sum();
    Ok(t)
}

fn store(t: &SparseTensor, path: &str) -> Result<(), CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    match ext {
        "adtm" => write_binary_file(t, p)?,
        _ => write_tns_file(t, p)?,
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let (pos, _) = parse_args(args)?;
    let path = pos.first().ok_or("info requires a tensor file")?;
    let t = load(path)?;
    let s = TensorStats::compute(&t);
    println!("file      : {path}");
    println!("order     : {}", s.order);
    println!(
        "dims      : {}",
        s.dims.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" x ")
    );
    println!("nnz       : {}", s.nnz);
    println!("density   : {:.3e}", s.density);
    println!("per-mode distinct: {:?}", s.distinct_per_mode);
    println!(
        "half-split collapse: {:.2} | {:.2}",
        s.half_split_collapse.0, s.half_split_collapse.1
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let (pos, _) = parse_args(args)?;
    if pos.len() != 2 {
        return Err("convert requires <in> and <out>".into());
    }
    let t = load(&pos[0])?;
    store(&t, &pos[1])?;
    println!("wrote {} ({} nnz)", pos[1], t.nnz());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let (_, opts) = parse_args(args)?;
    let dims_s = opts.get("dims").ok_or("generate requires --dims AxBxC")?;
    let dims: Vec<usize> = dims_s
        .split(['x', 'X'])
        .map(|d| d.parse().map_err(|_| format!("bad dims '{dims_s}'")))
        .collect::<Result<_, _>>()?;
    let nnz = opt_parse(&opts, "nnz", 100_000usize)?;
    let seed = opt_parse(&opts, "seed", 0u64)?;
    let skews: Vec<f64> = match opts.get("skew") {
        None => vec![0.0; dims.len()],
        Some(s) if s.contains(',') => s
            .split(',')
            .map(|x| x.parse().map_err(|_| format!("bad skew '{s}'")))
            .collect::<Result<_, _>>()?,
        Some(s) => {
            let v: f64 = s.parse().map_err(|_| format!("bad skew '{s}'"))?;
            vec![v; dims.len()]
        }
    };
    if skews.len() != dims.len() {
        return Err("--skew needs one value or one per mode".into());
    }
    let out = opts.get("out").ok_or("generate requires -o <out>")?;
    let t = if skews.iter().all(|&s| s == 0.0) {
        uniform_tensor(&dims, nnz, seed)
    } else {
        zipf_tensor(&dims, nnz, &skews, seed)
    };
    store(&t, out)?;
    println!("generated {} nnz into {out}", t.nnz());
    Ok(())
}

fn parse_estimator(opts: &HashMap<String, String>) -> Result<NnzEstimator, String> {
    match opts.get("estimator").map(String::as_str) {
        None | Some("sampled") => Ok(NnzEstimator::default()),
        Some("exact") => Ok(NnzEstimator::Exact),
        Some("analytic") => Ok(NnzEstimator::Analytic),
        Some(other) => Err(format!("unknown estimator '{other}'")),
    }
}

fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let (pos, opts) = parse_args(args)?;
    install_trace(&opts)?;
    let path = pos.first().ok_or("plan requires a tensor file")?;
    let t = load(path)?;
    let rank = opt_parse(&opts, "rank", 16usize)?;
    let mut planner = Planner::new(&t, rank).estimator(parse_estimator(&opts)?);
    if let Some(profile) = checked_profile()? {
        planner = planner.calibration(profile);
    }
    if let Some(m) = opts.get("budget-mib") {
        let mib: f64 = m.parse().map_err(|_| format!("bad --budget-mib '{m}'"))?;
        planner = planner.memory_budget((mib * 1024.0 * 1024.0) as usize);
    }
    let plan = planner.plan();
    println!(
        "{} candidates ({} estimator evaluations); chosen: {}",
        plan.candidates.len(),
        plan.estimator_evals,
        plan.shape
    );
    println!(
        "{:<20} {:>14} {:>14} {:>12} {:>7}  shape",
        "label", "flops/iter", "traffic-MiB/it", "resident-MiB", "fits"
    );
    for c in &plan.candidates {
        println!(
            "{:<20} {:>14.3e} {:>14.1} {:>12.1} {:>7}  {}{}",
            c.label,
            c.cost.flops_per_iter,
            c.cost.traffic_bytes_per_iter / (1024.0 * 1024.0),
            c.cost.resident_bytes() / (1024.0 * 1024.0),
            c.fits_budget,
            c.shape,
            if c.shape == plan.shape { "  <== chosen" } else { "" }
        );
    }
    if let Some(ns) = plan.predicted_ns {
        let dispatch = if plan.use_coo {
            "coo"
        } else if plan.use_csf {
            "csf"
        } else {
            "tree"
        };
        println!(
            "calibrated: predicted {ns:.0} ns/iter, dispatch {dispatch} (csf {:.0} ns, coo {:.0} ns)",
            plan.csf_predicted_ns.unwrap_or(f64::NAN),
            plan.coo_predicted_ns.unwrap_or(f64::NAN)
        );
    }
    if opts.contains_key("budget-mib") {
        // The table above is informational; admission is the hard gate a
        // decompose run with the same budget would face.
        let admitted = planner.plan_admitted()?;
        if admitted.use_coo && !plan.use_coo {
            println!("admission: degraded to the fused COO baseline");
        } else {
            println!("admission: admitted within budget");
        }
    }
    Ok(())
}

/// Parses `--mem-budget MIB` into bytes (`None` when absent).
fn parse_mem_budget(opts: &HashMap<String, String>) -> Result<Option<usize>, CliError> {
    let Some(m) = opts.get("mem-budget") else { return Ok(None) };
    let mib: f64 = m.parse().map_err(|_| format!("bad --mem-budget '{m}'"))?;
    if !mib.is_finite() || mib <= 0.0 {
        return Err(format!("--mem-budget must be a positive MiB count, got '{m}'").into());
    }
    Ok(Some((mib * 1024.0 * 1024.0) as usize))
}

fn make_backend(
    t: &SparseTensor,
    rank: usize,
    opts: &HashMap<String, String>,
    profile: Option<KernelProfile>,
    mem_budget: Option<usize>,
) -> Result<Box<dyn MttkrpBackend>, CliError> {
    if let Some(s) = opts.get("shape") {
        let shape: TreeShape = s.parse().map_err(|e| format!("{e}"))?;
        shape.validate();
        return Ok(Box::new(DtreeBackend::new(t, &shape, rank)));
    }
    Ok(match opts.get("backend").map(String::as_str) {
        None | Some("adaptive") => {
            let mut planner = Planner::new(t, rank);
            if let Some(p) = profile {
                planner = planner.calibration(p);
            }
            if let Some(b) = mem_budget {
                planner = planner.memory_budget(b);
            }
            // Admission control is a hard gate: a rejected budget exits
            // with EXIT_ADMISSION before any engine structures exist.
            let plan = planner.plan_admitted()?;
            Box::new(AdaptiveBackend::from_plan(t, rank, plan))
        }
        Some("coo") => Box::new(CooBackend::new(t)),
        Some("csf") => Box::new(CsfBackend::new(t)),
        Some("tree2") => Box::new(DtreeBackend::two_level(t, rank)),
        Some("tree3") => Box::new(DtreeBackend::three_level(t, rank)),
        Some("bdt") => Box::new(DtreeBackend::balanced_binary(t, rank)),
        Some(other) => return Err(format!("unknown backend '{other}'").into()),
    })
}

fn write_factors(dir: &str, model: &adatm::CpModel) -> Result<(), CliError> {
    std::fs::create_dir_all(dir).map_err(fs_err)?;
    use std::io::Write;
    let lpath = format!("{dir}/lambda.txt");
    let mut lf = std::fs::File::create(&lpath).map_err(fs_err)?;
    for l in &model.lambda {
        writeln!(lf, "{l}").map_err(fs_err)?;
    }
    for (d, f) in model.factors.iter().enumerate() {
        let path = format!("{dir}/factor_{d}.txt");
        let mut file = std::fs::File::create(&path).map_err(fs_err)?;
        for i in 0..f.nrows() {
            let row: Vec<String> = f.row(i).iter().map(|x| format!("{x}")).collect();
            writeln!(file, "{}", row.join(" ")).map_err(fs_err)?;
        }
    }
    println!("wrote lambda + {} factors under {dir}/", model.factors.len());
    Ok(())
}

fn cmd_decompose(args: &[String]) -> Result<(), CliError> {
    let (pos, opts) = parse_args(args)?;
    install_trace(&opts)?;
    let path = pos.first().ok_or("decompose requires a tensor file")?;
    let t = load(path)?;
    let rank = opt_parse(&opts, "rank", 16usize)?;
    let iters = opt_parse(&opts, "iters", 50usize)?;
    let tol = opt_parse(&opts, "tol", 1e-5f64)?;
    let seed = opt_parse(&opts, "seed", 0u64)?;
    if opts.get("algo").map(String::as_str) == Some("tucker") {
        // Tucker runs on TTM chains directly, not an MTTKRP backend.
        let ranks: Vec<usize> = match opts.get("ranks") {
            Some(s) => s
                .split(['x', 'X'])
                .map(|r| r.parse().map_err(|_| format!("bad --ranks '{s}'")))
                .collect::<Result<_, _>>()?,
            None => vec![rank.min(8); t.ndim()],
        };
        if ranks.len() != t.ndim() {
            return Err("--ranks needs one value per mode".into());
        }
        let res = hooi(&t, &TuckerOptions::new(ranks).max_iters(iters).tol(tol).seed(seed));
        println!(
            "tucker: {} iters, fit {:.5}, converged {}, core norm {:.4}",
            res.iters,
            res.final_fit(),
            res.converged,
            res.model.core_norm()
        );
        return Ok(());
    }
    // The planner only consults ADATM_PROFILE on the adaptive path; a
    // set-but-broken profile there is a typed usage error, not a silent
    // fallback to analytic costs.
    let uses_planner = !opts.contains_key("shape")
        && matches!(opts.get("backend").map(String::as_str), None | Some("adaptive"));
    let profile = if uses_planner { checked_profile()? } else { None };
    let mem_budget = parse_mem_budget(&opts)?;
    if mem_budget.is_some() && !uses_planner {
        return Err("--mem-budget only applies to the adaptive (planner) backend".into());
    }
    let mut backend = make_backend(&t, rank, &opts, profile, mem_budget)?;
    println!("backend: {}", backend.name());
    match opts.get("algo").map(String::as_str) {
        None | Some("als") => {
            let drift = opt_parse(&opts, "drift-factor", 2.0f64)?;
            let mut o =
                CpAlsOptions::new(rank).max_iters(iters).tol(tol).seed(seed).drift_factor(drift);
            let ckpt_dir = opts.get("checkpoint-dir");
            let resume = opts.contains_key("resume");
            if (resume || opts.contains_key("checkpoint-every")) && ckpt_dir.is_none() {
                return Err("--resume/--checkpoint-every need --checkpoint-dir".into());
            }
            if let Some(dir) = ckpt_dir {
                if dir.is_empty() {
                    return Err("--checkpoint-dir requires a path".into());
                }
                let every = opt_parse(&opts, "checkpoint-every", 1usize)?;
                o = o.checkpoint(CheckpointConfig::new(dir).every_iters(every));
            }
            let res = if resume {
                let dir = ckpt_dir.expect("checked above");
                let outcome = CheckpointStore::load_latest(Path::new(dir))
                    .map_err(|e| CliError { code: EXIT_CHECKPOINT, msg: e.to_string() })?;
                // The run continues the checkpoint's trajectory, so its
                // seed wins over --seed (a mismatch would be a typed
                // resume error, not a silently different model).
                if outcome.checkpoint.seed != seed && opts.contains_key("seed") {
                    println!(
                        "note: --seed {seed} ignored; resuming with checkpoint seed {}",
                        outcome.checkpoint.seed
                    );
                }
                println!(
                    "resume: {} (generation {}, iteration {}, {} corrupt generation(s) skipped)",
                    outcome.path.display(),
                    outcome.generation,
                    outcome.checkpoint.next_iter,
                    outcome.fallbacks.len()
                );
                o = o.seed(outcome.checkpoint.seed);
                CpAls::new(o).resume_from(&t, backend.as_mut(), outcome.checkpoint)?
            } else {
                decompose_with(&t, &o, &mut backend)?
            };
            println!(
                "als: {} iters, fit {:.5}, converged {}, mttkrp {:.3}s dense {:.3}s fit {:.3}s",
                res.iters,
                res.final_fit(),
                res.converged,
                res.timings.mttkrp.as_secs_f64(),
                res.timings.dense.as_secs_f64(),
                res.timings.fit.as_secs_f64()
            );
            if res.diagnostics.recoveries > 0 || res.diagnostics.degraded {
                println!(
                    "resilience: {} breakdown event(s), {} recover(ies), stop: {:?}",
                    res.diagnostics.events.len(),
                    res.diagnostics.recoveries,
                    res.diagnostics.stop
                );
            }
            if opts.contains_key("trace") {
                println!("trace: {}", res.trace_summary());
            }
            if let Some(dir) = opts.get("out") {
                write_factors(dir, &res.model)?;
            }
        }
        Some("ncp") => {
            let o = NcpOptions::new(rank).max_iters(iters).tol(tol).seed(seed);
            let res = ncp(&t, &mut backend, &o);
            println!(
                "ncp: {} iters, fit {:.5}, converged {}",
                res.iters,
                res.final_fit(),
                res.converged
            );
            if let Some(dir) = opts.get("out") {
                write_factors(dir, &res.model)?;
            }
        }
        Some("complete") => {
            let reg = opt_parse(&opts, "reg", 0.1f64)?;
            let o = CompletionOptions::new(rank).max_iters(iters).tol(tol).reg(reg).seed(seed);
            let res = complete(&t, &o);
            println!(
                "complete: {} iters, train RMSE {:.5}, converged {}",
                res.iters,
                res.final_rmse(),
                res.converged
            );
            if let Some(dir) = opts.get("out") {
                write_factors(dir, &res.model)?;
            }
        }
        Some("cpopt") => {
            let o = CpOptOptions::new(rank).max_iters(iters).tol(tol).seed(seed);
            let res = cp_opt(&t, &mut backend, &o);
            println!(
                "cpopt: {} iters, objective {:.5e}, converged {}",
                res.iters,
                res.objective_history.last().copied().unwrap_or(f64::NAN),
                res.converged
            );
            if let Some(dir) = opts.get("out") {
                write_factors(dir, &res.model)?;
            }
        }
        Some(other) => return Err(format!("unknown algorithm '{other}'").into()),
    }
    Ok(())
}
