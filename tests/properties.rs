//! Property-based tests (proptest) on the core invariants of the
//! workspace: MTTKRP correctness of every backend against the dense
//! oracle, symbolic-tree structure, estimator bounds, and planner
//! validity — on randomly generated tensors and shapes.

use adatm::dtree::{DimTree, SymbolicTree, TreeShape};
use adatm::linalg::Mat;
use adatm::planner::estimate::{estimate, NnzEstimator};
use adatm::tensor::dense::DenseTensor;
use adatm::tensor::stats::distinct_projections;
use adatm::{all_backends, Planner, SparseTensor};
use proptest::prelude::*;

/// Strategy: a random sparse tensor with 2-5 modes, small dims, and a
/// handful of (possibly duplicate-free) entries.
fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (2usize..=5)
        .prop_flat_map(|ndim| {
            let dims = proptest::collection::vec(2usize..7, ndim);
            dims.prop_flat_map(move |dims| {
                let cells: usize = dims.iter().product();
                let max_nnz = cells.min(40);
                let entry = {
                    let dims = dims.clone();
                    (0..cells).prop_map(move |flat| {
                        let mut c = Vec::with_capacity(dims.len());
                        let mut rest = flat;
                        for &d in dims.iter().rev() {
                            c.push(rest % d);
                            rest /= d;
                        }
                        c.reverse();
                        c
                    })
                };
                (Just(dims.clone()), proptest::collection::vec((entry, -5.0f64..5.0), 1..=max_nnz))
            })
        })
        .prop_map(|(dims, entries)| {
            let entries: Vec<(Vec<usize>, f64)> = entries;
            let mut t = SparseTensor::from_entries(dims, &entries);
            t.dedup_sum();
            t
        })
}

/// Strategy: a random valid tree shape over `n` modes (random recursive
/// partition with fanout 2-3).
fn arb_shape(n: usize) -> impl Strategy<Value = TreeShape> {
    // Random split seed drives a deterministic recursive partitioner.
    (0u64..u64::MAX).prop_map(move |seed| random_shape(&(0..n).collect::<Vec<_>>(), seed))
}

fn random_shape(modes: &[usize], seed: u64) -> TreeShape {
    if modes.len() == 1 {
        return TreeShape::Leaf(modes[0]);
    }
    // Simple xorshift for deterministic pseudo-random splits.
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let cut = 1 + (next() as usize) % (modes.len() - 1);
    TreeShape::internal(vec![
        random_shape(&modes[..cut], next()),
        random_shape(&modes[cut..], next()),
    ])
}

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_backends_match_dense_oracle(t in arb_tensor(), seed in 0u64..1000) {
        let rank = 3;
        let factors = factors_for(&t, rank, seed);
        let dense = DenseTensor::from_sparse(&t);
        for mut b in all_backends(&t, rank) {
            for mode in 0..t.ndim() {
                b.begin_mode(mode);
                let mut out = Mat::zeros(t.dims()[mode], rank);
                b.mttkrp_into(&t, &factors, mode, &mut out);
                let want = dense.mttkrp_ref(&factors, mode);
                prop_assert!(
                    out.max_abs_diff(&want) < 1e-9,
                    "backend {} mode {mode} diff {}",
                    b.name(), out.max_abs_diff(&want)
                );
            }
        }
    }

    #[test]
    fn random_tree_shapes_compute_correct_mttkrp(
        t in arb_tensor(),
        seed in 0u64..1000,
    ) {
        let rank = 2;
        let shape = random_shape(&(0..t.ndim()).collect::<Vec<_>>(), seed);
        shape.validate();
        let factors = factors_for(&t, rank, seed);
        let dense = DenseTensor::from_sparse(&t);
        let mut eng = adatm::dtree::DtreeEngine::new(&t, &shape, rank);
        for mode in 0..t.ndim() {
            eng.invalidate_mode(mode);
            let m = eng.mttkrp(&t, &factors, mode);
            let want = dense.mttkrp_ref(&factors, mode);
            prop_assert!(m.max_abs_diff(&want) < 1e-9, "shape {shape} mode {mode}");
        }
    }

    #[test]
    fn arb_shapes_are_valid_partitions(shape in arb_shape(4)) {
        shape.validate();
        let tree = DimTree::from_shape(&shape);
        // The root covers every mode exactly once (sorted by construction),
        // and each node's delta partitions its parent's mode set.
        prop_assert_eq!(tree.node(0).modes.clone(), (0..4).collect::<Vec<_>>());
        for id in 1..tree.len() {
            let parent = tree.node(id).parent.unwrap();
            let mut rebuilt = tree.node(id).modes.clone();
            rebuilt.extend_from_slice(&tree.node(id).delta);
            rebuilt.sort_unstable();
            prop_assert_eq!(rebuilt, tree.node(parent).modes.clone());
        }
    }

    #[test]
    fn symbolic_counts_match_projections(t in arb_tensor(), seed in 0u64..1000) {
        let shape = random_shape(&(0..t.ndim()).collect::<Vec<_>>(), seed);
        let tree = DimTree::from_shape(&shape);
        let sym = SymbolicTree::build(&t, &tree);
        for id in 1..tree.len() {
            let want = distinct_projections(&t, &tree.node(id).modes);
            prop_assert_eq!(sym.node(id).len, want);
            // Reduction sets partition the parent's elements.
            let parent = tree.node(id).parent.unwrap();
            prop_assert_eq!(*sym.node(id).rptr.last().unwrap(), sym.node(parent).len);
        }
    }

    #[test]
    fn estimators_respect_bounds(t in arb_tensor()) {
        for how in [NnzEstimator::Exact, NnzEstimator::Analytic,
                    NnzEstimator::Sampled { sample: 8 }] {
            for m in 0..t.ndim() {
                let e = estimate(&t, &[m], how);
                let space = t.dims()[m] as f64;
                if t.nnz() == 0 {
                    prop_assert_eq!(e, 0.0);
                } else {
                    prop_assert!(e >= 1.0);
                    prop_assert!(e <= (t.nnz() as f64).min(space) + 1e-9);
                }
            }
        }
    }

    #[test]
    fn planner_always_returns_valid_plan(t in arb_tensor()) {
        prop_assume!(t.nnz() > 0);
        let plan = Planner::new(&t, 2).estimator(NnzEstimator::Exact).plan();
        plan.shape.validate();
        prop_assert!(plan.predicted.flops_per_iter >= 0.0);
        prop_assert!(plan.predicted.traffic_bytes_per_iter >= 0.0);
        prop_assert!(!plan.candidates.is_empty());
        // The chosen plan minimizes the default (traffic-aware) objective.
        let beta = adatm::Objective::default().beta();
        let min = plan.candidates.iter()
            .map(|c| c.cost.cost_units(beta))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((plan.predicted.cost_units(beta) - min).abs() < 1e-9);
    }

    #[test]
    fn dedup_then_dense_round_trip(t in arb_tensor()) {
        // Densify -> re-sparsify (implicitly via get) agrees entry-wise.
        let dense = DenseTensor::from_sparse(&t);
        for k in 0..t.nnz() {
            let coords: Vec<usize> =
                (0..t.ndim()).map(|d| t.mode_idx(d)[k] as usize).collect();
            prop_assert!((dense.get(&coords) - t.vals()[k]).abs() < 1e-12);
        }
    }
}
