//! End-to-end integration tests: data generation -> (optional I/O round
//! trip) -> planning -> CP-ALS -> model quality, across all backends.

use adatm::tensor::gen::{dense_low_rank, zipf_tensor};
use adatm::tensor::io::{read_binary, read_tns, write_binary, write_tns};
use adatm::{
    all_backends, decompose, decompose_with, CooBackend, CpAlsOptions, CsfBackend, DtreeBackend,
};

#[test]
fn adaptive_decompose_recovers_dense_low_rank() {
    let truth = dense_low_rank(&[10, 12, 8, 9], 3, 0.0, 31);
    let res =
        decompose(&truth.tensor, &CpAlsOptions::new(3).max_iters(80).tol(1e-9).seed(4)).unwrap();
    assert!(res.final_fit() > 0.99, "fit {}", res.final_fit());
}

#[test]
fn all_backends_agree_on_final_model_4d() {
    let t = zipf_tensor(&[40, 60, 50, 30], 4_000, &[0.7; 4], 55);
    let opts = CpAlsOptions::new(5).max_iters(8).tol(0.0).seed(19);
    let natural: Vec<usize> = (0..4).collect();
    let mut reference: Option<Vec<f64>> = None;
    for mut b in all_backends(&t, 5) {
        let res = decompose_with(&t, &opts, &mut b).unwrap();
        if b.mode_order(4) != natural {
            // A permuted sweep order (the adaptive planner may reorder)
            // follows a different but valid ALS trajectory.
            assert!(res.final_fit().is_finite());
            continue;
        }
        let hist = res.fit_history.clone();
        match &reference {
            None => reference = Some(hist),
            Some(r) => {
                for (a, b2) in r.iter().zip(hist.iter()) {
                    assert!((a - b2).abs() < 1e-7, "backend {} diverged", b.name());
                }
            }
        }
    }
}

#[test]
fn five_and_six_mode_end_to_end() {
    for n in [5usize, 6] {
        let dims: Vec<usize> = (0..n).map(|d| 15 + 5 * d).collect();
        let t = zipf_tensor(&dims, 3_000, &vec![0.6; n], 77 + n as u64);
        let res = decompose(&t, &CpAlsOptions::new(4).max_iters(6).tol(0.0).seed(2)).unwrap();
        assert_eq!(res.iters, 6);
        assert!(res.final_fit().is_finite());
        // Factors keep their shapes and normalized columns.
        for (d, f) in res.model.factors.iter().enumerate() {
            assert_eq!(f.nrows(), dims[d]);
            assert_eq!(f.ncols(), 4);
        }
    }
}

#[test]
fn io_round_trip_preserves_decomposition() {
    let t = zipf_tensor(&[30, 40, 25], 1_500, &[0.5; 3], 13);
    // Through text format.
    let mut buf = Vec::new();
    write_tns(&t, &mut buf).unwrap();
    let mut t2 = read_tns(&buf[..]).unwrap();
    t2.dedup_sum();
    // Through binary format.
    let mut bbuf = Vec::new();
    write_binary(&t, &mut bbuf).unwrap();
    let t3 = read_binary(&bbuf[..]).unwrap();

    let opts = CpAlsOptions::new(3).max_iters(5).tol(0.0).seed(1);
    let f1 = {
        let mut b = CooBackend::new(&t);
        decompose_with(&t, &opts, &mut b).unwrap().final_fit()
    };
    let f3 = {
        let mut b = CooBackend::new(&t3);
        decompose_with(&t3, &opts, &mut b).unwrap().final_fit()
    };
    assert!((f1 - f3).abs() < 1e-12, "binary round trip changed the data");
    // Text re-read may reorder entries (dims inferred identically since no
    // empty trailing slices in generated data); fit must match closely.
    if t2.dims() == t.dims() {
        let f2 = {
            let mut b = CooBackend::new(&t2);
            decompose_with(&t2, &opts, &mut b).unwrap().final_fit()
        };
        assert!((f1 - f2).abs() < 1e-7, "text round trip changed the result");
    }
}

#[test]
fn rank_one_decomposition_works() {
    let truth = dense_low_rank(&[8, 10, 6], 1, 0.0, 3);
    let mut b = CsfBackend::new(&truth.tensor);
    let res =
        decompose_with(&truth.tensor, &CpAlsOptions::new(1).max_iters(30).seed(6), &mut b).unwrap();
    assert!(res.final_fit() > 0.999, "rank-1 exact fit, got {}", res.final_fit());
}

#[test]
fn overcomplete_rank_still_converges() {
    // Rank higher than the data's true rank: ALS must stay stable (the
    // pseudoinverse handles the singular normal equations).
    let truth = dense_low_rank(&[8, 9, 7], 2, 0.0, 8);
    let mut b = DtreeBackend::balanced_binary(&truth.tensor, 6);
    let res =
        decompose_with(&truth.tensor, &CpAlsOptions::new(6).max_iters(40).tol(0.0).seed(9), &mut b)
            .unwrap();
    assert!(res.final_fit() > 0.99, "fit {}", res.final_fit());
    assert!(res.fit_history.iter().all(|f| f.is_finite()));
}

#[test]
fn mode_permutation_invariance() {
    // Decomposing a mode-permuted tensor must give the same fit.
    let t = zipf_tensor(&[20, 35, 25, 15], 2_000, &[0.8; 4], 21);
    let perm = [2usize, 0, 3, 1];
    let tp = t.permute_modes(&perm);
    let opts = CpAlsOptions::new(4).max_iters(10).tol(0.0).seed(33);
    let fit_a = {
        let mut b = DtreeBackend::balanced_binary(&t, 4);
        decompose_with(&t, &opts, &mut b).unwrap().final_fit()
    };
    let fit_b = {
        let mut b = DtreeBackend::balanced_binary(&tp, 4);
        decompose_with(&tp, &opts, &mut b).unwrap().final_fit()
    };
    // Different random inits see different mode sizes, so allow loose
    // agreement (the optimum is permutation-invariant; trajectories are
    // close at 10 iterations on this well-conditioned problem).
    assert!((fit_a - fit_b).abs() < 0.05, "permuted fit {fit_b} far from original {fit_a}");
}

#[test]
fn empty_slices_do_not_break_anything() {
    // Mode 0 has size 50 but only 3 distinct indices in use.
    let t = adatm::SparseTensor::from_entries(
        vec![50, 6, 7],
        &[
            (vec![3, 0, 0], 1.0),
            (vec![3, 5, 6], 2.0),
            (vec![20, 2, 3], 3.0),
            (vec![49, 1, 2], 4.0),
            (vec![20, 4, 5], 5.0),
        ],
    );
    let res = decompose(&t, &CpAlsOptions::new(2).max_iters(5).tol(0.0).seed(1)).unwrap();
    assert!(res.final_fit().is_finite());
}
