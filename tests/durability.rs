//! Durability tests: checkpoint/resume correctness of the CP-ALS driver
//! against the real filesystem (no fault injection required).
//!
//! The headline property is **bitwise identity**: a run that is
//! checkpointed, killed, and resumed must produce exactly the model an
//! uninterrupted run produces — same lambda bits, same factor bits, same
//! fit history. Everything in the driver's state that influences the
//! trajectory (fit history for the detectors, recovery counters for the
//! reseed RNG streams) must therefore round-trip through the checkpoint.

use adatm::tensor::gen::dense_low_rank;
use adatm::{
    CheckpointConfig, CheckpointError, CheckpointStore, CooBackend, CpAls, CpAlsError,
    CpAlsOptions, CpResult, StopReason,
};
use std::path::PathBuf;
use std::time::Duration;

/// A small noiseless low-rank tensor with a deterministic trajectory.
fn ground_truth() -> adatm::SparseTensor {
    dense_low_rank(&[12, 10, 11], 3, 0.0, 13).tensor
}

/// A fresh per-test temp directory (removed at the end of each test).
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adatm-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sequential COO: floating-point reduction order is fixed, so equal
/// inputs give bitwise-equal outputs.
fn backend(t: &adatm::SparseTensor) -> CooBackend {
    CooBackend::with_parallel(t, false)
}

fn opts(max_iters: usize) -> CpAlsOptions {
    CpAlsOptions::new(3).max_iters(max_iters).tol(0.0).seed(42)
}

/// Asserts two results carry bitwise-identical models and fit histories.
fn assert_bitwise_identical(a: &CpResult, b: &CpResult) {
    assert_eq!(a.model.lambda.len(), b.model.lambda.len());
    for (i, (x, y)) in a.model.lambda.iter().zip(&b.model.lambda).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "lambda[{i}]: {x} vs {y}");
    }
    assert_eq!(a.model.factors.len(), b.model.factors.len());
    for (d, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
        assert_eq!(fa.nrows(), fb.nrows(), "factor {d} rows");
        assert_eq!(fa.ncols(), fb.ncols(), "factor {d} cols");
        for (i, (x, y)) in fa.as_slice().iter().zip(fb.as_slice()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "factor {d} elem {i}: {x} vs {y}");
        }
    }
    assert_eq!(a.fit_history.len(), b.fit_history.len(), "fit history length");
    for (i, (x, y)) in a.fit_history.iter().zip(&b.fit_history).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "fit_history[{i}]: {x} vs {y}");
    }
    assert_eq!(a.iters, b.iters);
}

#[test]
fn kill_and_resume_is_bitwise_identical_to_uninterrupted_run() {
    let t = ground_truth();
    let dir = tmp_dir("kill-resume");

    // Reference: one uninterrupted 20-iteration run, no checkpointing.
    let reference = CpAls::new(opts(20)).run(&t, &mut backend(&t)).unwrap();

    // "Killed" run: checkpoint every iteration, stop after 7 — the state
    // on disk is exactly what a kill after iteration 7's write leaves.
    let cfg = CheckpointConfig::new(&dir).every_iters(1);
    let killed = CpAls::new(opts(7).checkpoint(cfg.clone())).run(&t, &mut backend(&t)).unwrap();
    assert_eq!(killed.iters, 7);

    // Resume from the newest generation and finish the remaining 13.
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert_eq!(outcome.checkpoint.next_iter, 7);
    assert!(outcome.fallbacks.is_empty());
    let resumed = CpAls::new(opts(20).checkpoint(cfg))
        .resume_from(&t, &mut backend(&t), outcome.checkpoint)
        .unwrap();

    assert_bitwise_identical(&reference, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpointing_does_not_perturb_the_trajectory() {
    let t = ground_truth();
    let dir = tmp_dir("no-perturb");
    let plain = CpAls::new(opts(12)).run(&t, &mut backend(&t)).unwrap();
    let checkpointed = CpAls::new(opts(12).checkpoint(CheckpointConfig::new(&dir).every_iters(2)))
        .run(&t, &mut backend(&t))
        .unwrap();
    assert_bitwise_identical(&plain, &checkpointed);
    assert!(checkpointed.timings.checkpoint > Duration::ZERO, "checkpoint phase was timed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_generation_falls_back_and_resume_still_matches() {
    let t = ground_truth();
    let dir = tmp_dir("corrupt-newest");
    let cfg = CheckpointConfig::new(&dir).every_iters(1).keep(5);
    let reference = CpAls::new(opts(20)).run(&t, &mut backend(&t)).unwrap();
    CpAls::new(opts(7).checkpoint(cfg.clone())).run(&t, &mut backend(&t)).unwrap();

    // Flip one payload byte of the newest generation (iteration 7).
    let newest = dir.join("ckpt-000000000006.adtmc");
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).unwrap();

    // The loader must fall back to generation 5 (iteration 6) with a
    // typed warning naming the corrupt file.
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert_eq!(outcome.checkpoint.next_iter, 6, "fell back to the previous generation");
    assert_eq!(outcome.fallbacks.len(), 1);
    assert_eq!(outcome.fallbacks[0].path, newest);
    assert!(
        matches!(outcome.fallbacks[0].error, CheckpointError::ChecksumMismatch { .. }),
        "corruption surfaces as a typed checksum error, got {:?}",
        outcome.fallbacks[0].error
    );

    // Resuming from the older generation still reproduces the reference.
    let resumed =
        CpAls::new(opts(20)).resume_from(&t, &mut backend(&t), outcome.checkpoint).unwrap();
    assert_bitwise_identical(&reference, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rotation_keeps_only_the_last_k_generations() {
    let t = ground_truth();
    let dir = tmp_dir("rotation");
    CpAls::new(opts(10).checkpoint(CheckpointConfig::new(&dir).every_iters(1).keep(2)))
        .run(&t, &mut backend(&t))
        .unwrap();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["ckpt-000000000008.adtmc", "ckpt-000000000009.adtmc"],
        "only the newest 2 of 10 generations survive rotation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn time_budget_expiry_persists_a_final_checkpoint() {
    let t = ground_truth();
    let dir = tmp_dir("watchdog");
    // A budget that expires before the first iteration-boundary write:
    // without the final best-so-far write, the run would leave nothing.
    let res = CpAls::new(
        opts(1000)
            .time_budget(Duration::from_nanos(1))
            .checkpoint(CheckpointConfig::new(&dir).every_iters(100)),
    )
    .run(&t, &mut backend(&t))
    .unwrap();
    assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
    let outcome = CheckpointStore::load_latest(&dir)
        .expect("watchdog expiry must leave a resumable checkpoint");
    assert_eq!(outcome.checkpoint.next_iter, res.iters);
    // And the checkpoint is actually resumable.
    CpAls::new(opts(3)).resume_from(&t, &mut backend(&t), outcome.checkpoint).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_validation_mismatches_are_typed() {
    let t = ground_truth();
    let dir = tmp_dir("mismatch");
    CpAls::new(opts(5).checkpoint(CheckpointConfig::new(&dir).every_iters(1)))
        .run(&t, &mut backend(&t))
        .unwrap();
    let ckpt = CheckpointStore::load_latest(&dir).unwrap().checkpoint;

    // Wrong rank.
    let err = CpAls::new(CpAlsOptions::new(4).max_iters(5).seed(42))
        .resume_from(&t, &mut backend(&t), ckpt.clone())
        .unwrap_err();
    assert!(
        matches!(&err, CpAlsError::Checkpoint(CheckpointError::Mismatch { what }) if what.contains("rank")),
        "got {err:?}"
    );

    // Wrong seed.
    let err =
        CpAls::new(opts(5).seed(7)).resume_from(&t, &mut backend(&t), ckpt.clone()).unwrap_err();
    assert!(
        matches!(&err, CpAlsError::Checkpoint(CheckpointError::Mismatch { what }) if what.contains("seed")),
        "got {err:?}"
    );

    // Wrong tensor shape.
    let other = dense_low_rank(&[9, 8, 7], 3, 0.0, 1).tensor;
    let err = CpAls::new(opts(5)).resume_from(&other, &mut backend(&other), ckpt).unwrap_err();
    assert!(
        matches!(&err, CpAlsError::Checkpoint(CheckpointError::Mismatch { .. })),
        "got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_missing_or_empty_dir_is_a_typed_no_checkpoints_error() {
    let missing = tmp_dir("never-created");
    let err = CheckpointStore::load_latest(&missing).unwrap_err();
    assert!(matches!(err, CheckpointError::NoCheckpoints { .. }), "got {err:?}");

    let empty = tmp_dir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let err = CheckpointStore::load_latest(&empty).unwrap_err();
    assert!(matches!(err, CheckpointError::NoCheckpoints { .. }), "got {err:?}");
    let _ = std::fs::remove_dir_all(&empty);
}

#[test]
fn resumed_store_continues_the_generation_sequence() {
    let t = ground_truth();
    let dir = tmp_dir("continuation");
    let cfg = CheckpointConfig::new(&dir).every_iters(1).keep(3);
    CpAls::new(opts(4).checkpoint(cfg.clone())).run(&t, &mut backend(&t)).unwrap();
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    let first_gen = outcome.generation;
    CpAls::new(opts(8).checkpoint(cfg))
        .resume_from(&t, &mut backend(&t), outcome.checkpoint)
        .unwrap();
    let after = CheckpointStore::load_latest(&dir).unwrap();
    assert!(
        after.generation > first_gen,
        "resumed run must continue generations past {first_gen}, got {}",
        after.generation
    );
    assert_eq!(after.checkpoint.next_iter, 8);
    let _ = std::fs::remove_dir_all(&dir);
}
