//! End-to-end CP-ALS under the `audit` feature: every stage boundary is
//! validated, the dimension-tree symbolic/numeric audits run, and the
//! parallel-MTTKRP write-overlap detector must report zero overlaps.
//!
//! Run with `cargo test --features audit`.

#![cfg(feature = "audit")]

use adatm::audit::{validate_canonical, validate_factors, Validate};
use adatm::tensor::audit::{overlap_checks, overlap_count, reset_overlap_stats};
use adatm::tensor::gen::low_rank_tensor;
use adatm::{all_backends, CpAls, CpAlsOptions};

#[test]
fn cpals_runs_fully_audited_on_every_backend() {
    let truth = low_rank_tensor(&[18, 22, 16, 14], 3, 1_500, 0.01, 8);
    let t = &truth.tensor;
    t.validate().expect("generator must produce a structurally valid tensor");
    let mut canonical = t.clone();
    canonical.dedup_sum();
    validate_canonical(&canonical).expect("dedup_sum must canonicalize");

    reset_overlap_stats();
    let opts = CpAlsOptions::new(3).max_iters(8).tol(0.0).seed(42);
    for mut backend in all_backends(t, 3) {
        let res = CpAls::new(opts.clone()).run(t, &mut backend).unwrap();
        assert_eq!(res.iters, 8, "{}", backend.name());
        assert!(
            res.final_fit().is_finite() && res.final_fit() > 0.0,
            "{}: fit {}",
            backend.name(),
            res.final_fit()
        );
        validate_factors(&res.model.factors, t.dims(), 3)
            .unwrap_or_else(|e| panic!("{}: {e}", backend.name()));
    }

    // The COO and CSF parallel backends must have exercised the runtime
    // write-overlap detector, and it must have found row-disjoint tasks
    // every single time — the race-freedom claim the parallelism rests on.
    assert!(overlap_checks() > 0, "no parallel MTTKRP was audited");
    assert_eq!(overlap_count(), 0, "parallel MTTKRP tasks claimed overlapping rows");
}

#[test]
fn audited_structures_validate_end_to_end() {
    use adatm::tensor::csf::CsfTensor;
    use adatm::tensor::semisparse::ttm;
    use adatm::Mat;

    let truth = low_rank_tensor(&[12, 15, 10], 2, 600, 0.05, 3);
    let t = &truth.tensor;
    t.validate().expect("coo");
    for m in 0..t.ndim() {
        CsfTensor::for_mode(t, m).validate().expect("csf");
    }
    ttm(t, 0, &Mat::random(12, 2, 1)).validate().expect("semisparse");

    let tree = adatm::dtree::DimTree::from_shape(&adatm::TreeShape::balanced_binary(t.ndim()));
    tree.validate().expect("tree");
    let sym = adatm::dtree::SymbolicTree::build(t, &tree);
    adatm::audit::validate_symbolic(&sym, &tree).expect("symbolic");
}
