//! Integration tests for the structured NDJSON tracing subsystem: a
//! traced CP-ALS run must emit planner decisions, per-stage timings, and
//! well-nested spans; dense-stage attribution must match `timings.dense`
//! exactly (no double counting, even across recovery paths); and the
//! drift detector must flag a calibration profile whose prediction the
//! measured run blows past.

use adatm::planner::ClassRate;
use adatm::tensor::gen::dense_low_rank;
use adatm::trace::{field_f64, field_str, field_u64};
use adatm::{
    AdaptiveBackend, BreakdownKind, CooBackend, CpAls, CpAlsOptions, KernelProfile, Planner,
};
use std::collections::HashSet;
use std::sync::{Mutex, MutexGuard};

/// The trace sink is process-global; every test that installs one holds
/// this lock so concurrent tests cannot interleave events.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// A small noiseless low-rank tensor every test decomposes.
fn small_tensor() -> adatm::SparseTensor {
    dense_low_rank(&[10, 9, 8], 3, 0.0, 42).tensor
}

/// A calibration profile that predicts essentially free kernels — any
/// real run is orders of magnitude slower, which must trip the drift
/// detector.
fn underpredicting_profile() -> KernelProfile {
    let cheap = ClassRate { ns_per_unit_1t: 1e-6, ns_per_unit_nt: 1e-6 };
    KernelProfile {
        threads: 1,
        coo_mttkrp: cheap,
        csf_root: cheap,
        tree_pull: cheap,
        tree_scatter: cheap,
    }
}

#[test]
fn traced_run_emits_planner_decisions_stages_and_nested_spans() {
    let _g = lock();
    let sink = adatm::trace::install_memory();
    let t = small_tensor();
    let mut b = AdaptiveBackend::plan(&t, 3);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(3).tol(0.0).seed(1)).run(&t, &mut b).unwrap();
    adatm::trace::shutdown();
    let lines = sink.lines();
    let kinds: Vec<&str> = lines.iter().filter_map(|l| field_str(l, "ev")).collect();
    assert_eq!(kinds.len(), lines.len(), "every line must carry an \"ev\" kind");
    for required in ["planner.candidate", "planner.decision", "backend.dispatch", "stage"] {
        assert!(kinds.contains(&required), "missing '{required}' event in {kinds:?}");
    }
    // Every ALS stage boundary is attributed.
    let stages: HashSet<&str> = lines
        .iter()
        .filter(|l| field_str(l, "ev") == Some("stage"))
        .filter_map(|l| field_str(l, "stage"))
        .collect();
    for s in ["mttkrp", "gram", "solve", "normalize", "dense", "fit"] {
        assert!(stages.contains(s), "missing stage '{s}' in {stages:?}");
    }
    // Sequence numbers strictly increase (the NDJSON file is replayable
    // in order).
    let seqs: Vec<u64> = lines.iter().filter_map(|l| field_u64(l, "seq")).collect();
    assert_eq!(seqs.len(), lines.len(), "every line must carry a seq");
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seq must be strictly increasing");
    // Spans pair up, and one cpals.iter span closes per iteration.
    let opens = kinds.iter().filter(|k| **k == "span_open").count();
    let closes = kinds.iter().filter(|k| **k == "span_close").count();
    assert_eq!(opens, closes, "every span must close");
    let iter_spans = lines
        .iter()
        .filter(|l| {
            field_str(l, "ev") == Some("span_close") && field_str(l, "span") == Some("cpals.iter")
        })
        .count();
    assert_eq!(iter_spans, res.iters, "one cpals.iter span per iteration");
}

#[test]
fn dense_stage_attribution_matches_timings_exactly() {
    let _g = lock();
    let sink = adatm::trace::install_memory();
    let t = small_tensor();
    let mut b = CooBackend::new(&t);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(4).tol(0.0).seed(2)).run(&t, &mut b).unwrap();
    adatm::trace::shutdown();
    let traced: u128 = sink
        .lines()
        .iter()
        .filter(|l| field_str(l, "ev") == Some("stage") && field_str(l, "stage") == Some("dense"))
        .filter_map(|l| field_u64(l, "elapsed_ns"))
        .map(u128::from)
        .sum();
    // Every += into timings.dense traces the same Duration it added, so
    // the sum is exact — any double-counted (or untraced) dense block
    // breaks this equality.
    assert_eq!(traced, res.timings.dense.as_nanos(), "dense attribution must be exact");
}

#[test]
fn shutdown_disables_tracing_and_emits_nothing() {
    let _g = lock();
    let sink = adatm::trace::install_memory();
    adatm::trace::shutdown();
    assert!(!adatm::trace::enabled());
    let t = small_tensor();
    let mut b = AdaptiveBackend::plan(&t, 3);
    CpAls::new(CpAlsOptions::new(3).max_iters(2).tol(0.0).seed(3)).run(&t, &mut b).unwrap();
    assert!(sink.lines().is_empty(), "a torn-down sink must see no events");
}

#[test]
fn underpredicting_calibration_trips_the_drift_detector() {
    let _g = lock();
    let sink = adatm::trace::install_memory();
    let t = small_tensor();
    let mut b = AdaptiveBackend::from_planner(
        &t,
        3,
        Planner::new(&t, 3).calibration(underpredicting_profile()),
    );
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(3).tol(0.0).seed(4)).run(&t, &mut b).unwrap();
    adatm::trace::shutdown();
    let predicted = res.diagnostics.predicted_iter_ns.expect("calibrated plan must predict");
    let measured = res.diagnostics.measured_iter_ns.expect("run must measure");
    assert!(measured > predicted, "the profile must underpredict ({predicted} vs {measured})");
    assert_eq!(res.diagnostics.count_of(BreakdownKind::PredictionDrift), 1);
    let lines = sink.lines();
    let warning = lines
        .iter()
        .find(|l| field_str(l, "ev") == Some("drift.warning"))
        .expect("a drift.warning event must be emitted");
    let ratio = field_f64(warning, "ratio").expect("drift.warning carries the ratio");
    assert!(ratio > 2.0, "ratio {ratio} must exceed the default factor");
    assert!(
        lines.iter().any(|l| field_str(l, "ev") == Some("drift.check")),
        "the drift.check record must be present even when warning"
    );
    let summary = res.trace_summary();
    assert!(summary.contains("predicted_iter="), "{summary}");
    assert!(summary.contains("ratio="), "{summary}");
}

#[test]
fn drift_factor_zero_disables_the_detector() {
    let _g = lock();
    let t = small_tensor();
    let mut b = AdaptiveBackend::from_planner(
        &t,
        3,
        Planner::new(&t, 3).calibration(underpredicting_profile()),
    );
    let res = CpAls::new(CpAlsOptions::new(3).max_iters(3).tol(0.0).seed(5).drift_factor(0.0))
        .run(&t, &mut b)
        .unwrap();
    assert_eq!(res.diagnostics.count_of(BreakdownKind::PredictionDrift), 0);
    // The measurement itself is still recorded for trace_summary.
    assert!(res.diagnostics.measured_iter_ns.is_some());
}

/// Recovery paths restore snapshots and re-run dense work; the exact
/// attribution equality must survive them (this is the double-counting
/// regression the trace events exist to catch).
#[cfg(feature = "fault-inject")]
#[test]
fn dense_attribution_stays_exact_across_recovery_paths() {
    use adatm::{FaultInjectingBackend, FaultKind, FaultSchedule};
    let _g = lock();
    let sink = adatm::trace::install_memory();
    let t = small_tensor();
    let sched = FaultSchedule::new().at_call(2, FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(20).tol(0.0).seed(6)).run(&t, &mut b).unwrap();
    adatm::trace::shutdown();
    assert!(res.diagnostics.recoveries >= 1, "the injected fault must recover");
    let lines = sink.lines();
    let traced: u128 = lines
        .iter()
        .filter(|l| field_str(l, "ev") == Some("stage") && field_str(l, "stage") == Some("dense"))
        .filter_map(|l| field_u64(l, "elapsed_ns"))
        .map(u128::from)
        .sum();
    assert_eq!(traced, res.timings.dense.as_nanos(), "recovery must not double-count dense time");
    assert!(
        lines.iter().any(|l| field_str(l, "ev") == Some("recovery")),
        "the rollback must be traced"
    );
}
