//! Integration tests for the `adatm` CLI binary, driven through
//! `std::process` against a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn adatm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adatm"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adatm_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = adatm().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("decompose"));
    assert!(text.contains("generate"));
    assert!(text.contains("EXIT CODES"), "--help must document the exit-code table");
}

#[test]
fn unknown_subcommand_exits_with_usage_code() {
    let out = adatm().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn missing_file_exits_with_io_code() {
    let out = adatm().args(["info", "/nonexistent/adatm_no_such_file.tns"]).output().unwrap();
    assert_eq!(out.status.code(), Some(3), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn malformed_tensor_exits_with_parse_code() {
    let dir = tmpdir("parse_err");
    let tns = dir.join("bad.tns");
    std::fs::write(&tns, "1 1 2.0\nnot a data line\n").unwrap();
    let out = adatm().arg("info").arg(&tns).output().unwrap();
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_finite_tensor_exits_with_nonfinite_code() {
    let dir = tmpdir("nonfinite");
    let tns = dir.join("nan.tns");
    std::fs::write(&tns, "1 1 2.0\n2 2 nan\n").unwrap();
    let out = adatm().arg("info").arg(&tns).output().unwrap();
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("line 2"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_rank_decompose_exits_with_solver_input_code() {
    let dir = tmpdir("zerorank");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "10x10x10", "--nnz", "100", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let out = adatm()
        .arg("decompose")
        .arg(&tns)
        .args(["--rank", "0", "--iters", "2", "--backend", "coo"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(6), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn generate_info_convert_round_trip() {
    let dir = tmpdir("roundtrip");
    let tns = dir.join("t.tns");
    let bin = dir.join("t.adtm");

    let out = adatm()
        .args([
            "generate", "--dims", "40x50x30", "--nnz", "2000", "--skew", "0.7", "--seed", "3", "-o",
        ])
        .arg(&tns)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = adatm().arg("info").arg(&tns).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("order     : 3"), "{text}");
    assert!(text.contains("nnz       : 2000"), "{text}");

    let out = adatm().arg("convert").arg(&tns).arg(&bin).output().unwrap();
    assert!(out.status.success());
    let out = adatm().arg("info").arg(&bin).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("nnz       : 2000"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn plan_prints_candidates() {
    let dir = tmpdir("plan");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "20x30x25x15", "--nnz", "1500", "--skew", "0.8", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let out = adatm()
        .args(["plan"])
        .arg(&tns)
        .args(["--rank", "8", "--estimator", "exact"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("chosen"), "{text}");
    assert!(text.contains("bdt"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decompose_als_writes_factors() {
    let dir = tmpdir("als");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "25x20x15", "--nnz", "1000", "--seed", "5", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let factors = dir.join("factors");
    let out = adatm()
        .arg("decompose")
        .arg(&tns)
        .args(["--rank", "4", "--iters", "5", "--backend", "bdt", "--out"])
        .arg(&factors)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(factors.join("lambda.txt").exists());
    for d in 0..3 {
        let f = factors.join(format!("factor_{d}.txt"));
        assert!(f.exists());
        let lines = std::fs::read_to_string(&f).unwrap().lines().count();
        assert_eq!(lines, [25, 20, 15][d]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decompose_with_explicit_shape() {
    let dir = tmpdir("shape");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "15x20x10x12", "--nnz", "800", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let out = adatm()
        .arg("decompose")
        .arg(&tns)
        .args(["--rank", "3", "--iters", "3", "--shape", "((0 2) (1 3))"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("fit"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decompose_ncp_and_cpopt_run() {
    let dir = tmpdir("algos");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "12x15x10", "--nnz", "500", "--skew", "0.5", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    for algo in ["ncp", "cpopt", "complete"] {
        let out = adatm()
            .arg("decompose")
            .arg(&tns)
            .args(["--rank", "3", "--iters", "5", "--algo", algo, "--backend", "coo"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains(algo));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decompose_tucker_runs() {
    let dir = tmpdir("tucker");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "20x15x12", "--nnz", "600", "--skew", "0.6", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let out = adatm()
        .arg("decompose")
        .arg(&tns)
        .args(["--algo", "tucker", "--ranks", "3x3x3", "--iters", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("tucker"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_shape_is_rejected() {
    let dir = tmpdir("badshape");
    let tns = dir.join("t.tns");
    adatm()
        .args(["generate", "--dims", "10x10x10", "--nnz", "100", "-o"])
        .arg(&tns)
        .status()
        .unwrap();
    let out = adatm()
        .arg("decompose")
        .arg(&tns)
        .args(["--rank", "2", "--shape", "(0 1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
