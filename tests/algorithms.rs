//! Cross-crate tests of the alternative MTTKRP clients: nonnegative CP
//! and CP-OPT, over every backend kind.

use adatm::tensor::gen::zipf_tensor;
use adatm::{
    all_backends, cp_opt, ncp, CpAlsOptions, CpOptOptions, CsfBackend, DtreeBackend, InitStrategy,
    NcpOptions,
};

#[test]
fn ncp_runs_on_every_backend_with_identical_trajectories() {
    let t = zipf_tensor(&[20, 25, 15, 18], 1_200, &[0.7; 4], 42);
    let opts = NcpOptions::new(4).max_iters(6).tol(0.0).seed(8);
    let natural: Vec<usize> = (0..4).collect();
    let mut reference: Option<Vec<f64>> = None;
    for mut b in all_backends(&t, 4) {
        let res = ncp(&t, &mut b, &opts);
        if b.mode_order(4) != natural {
            assert!(res.final_fit().is_finite());
            continue;
        }
        match &reference {
            None => reference = Some(res.fit_history),
            Some(r) => {
                for (a, x) in r.iter().zip(res.fit_history.iter()) {
                    assert!((a - x).abs() < 1e-7, "backend {} diverged", b.name());
                }
            }
        }
    }
}

#[test]
fn ncp_improves_over_its_first_iteration() {
    let t = zipf_tensor(&[30, 25, 20], 2_000, &[0.8; 3], 4);
    let mut b = CsfBackend::new(&t);
    let res = ncp(&t, &mut b, &NcpOptions::new(6).max_iters(30).tol(0.0).seed(5));
    assert!(res.final_fit() > res.fit_history[0], "no progress");
}

#[test]
fn cpopt_objective_consistent_across_backends() {
    let t = zipf_tensor(&[15, 20, 12, 10], 600, &[0.5; 4], 6);
    let opts = CpOptOptions::new(3).max_iters(15).tol(0.0).seed(2);
    let mut coo = adatm::CooBackend::new(&t);
    let mut bdt = DtreeBackend::balanced_binary(&t, 3);
    let a = cp_opt(&t, &mut coo, &opts);
    let b = cp_opt(&t, &mut bdt, &opts);
    assert_eq!(a.iters, b.iters);
    for (x, y) in a.objective_history.iter().zip(b.objective_history.iter()) {
        let denom = x.abs().max(1e-12);
        assert!((x - y).abs() / denom < 1e-6, "{x} vs {y}");
    }
}

#[test]
fn als_with_range_init_runs_on_adaptive_backend() {
    let t = zipf_tensor(&[40, 30, 25], 2_500, &[0.6; 3], 11);
    let mut b = adatm::AdaptiveBackend::plan(&t, 5);
    let opts =
        CpAlsOptions::new(5).max_iters(8).tol(0.0).seed(3).init(InitStrategy::RandomizedRange);
    let res = adatm::decompose_with(&t, &opts, &mut b).unwrap();
    assert_eq!(res.iters, 8);
    assert!(res.final_fit().is_finite());
    assert!(res.fit_history.windows(2).all(|w| w[1] >= w[0] - 1e-6));
}

#[test]
fn three_algorithms_reduce_residual_on_same_data() {
    // All three optimizers must make real progress on the same tensor.
    let t = zipf_tensor(&[20, 18, 16], 1_500, &[0.7; 3], 9);
    let xnorm = t.fro_norm();

    let mut b1 = adatm::CooBackend::new(&t);
    let als =
        adatm::decompose_with(&t, &CpAlsOptions::new(4).max_iters(20).tol(0.0).seed(1), &mut b1)
            .unwrap();
    assert!(als.final_fit() > 0.1, "als fit {}", als.final_fit());

    let mut b2 = adatm::CooBackend::new(&t);
    let n = ncp(&t, &mut b2, &NcpOptions::new(4).max_iters(40).tol(0.0).seed(1));
    assert!(n.final_fit() > 0.05, "ncp fit {}", n.final_fit());

    let mut b3 = adatm::CooBackend::new(&t);
    let g = cp_opt(&t, &mut b3, &CpOptOptions::new(4).max_iters(60).tol(0.0).seed(1));
    let resid = (2.0 * g.objective_history.last().unwrap()).sqrt();
    assert!(resid < xnorm, "cpopt made no progress: {resid} vs {xnorm}");
}
