//! Parity of the rank-blocked kernels through every backend.
//!
//! The blocked microkernels (`adatm_linalg::kernels`) are a pure
//! traversal-order rewrite of the scalar loops, so every MTTKRP backend
//! must stay correct against the dense oracle at ranks that exercise
//! each dispatch tier — pure remainder (1, 3, 5, 7), one 16-block plus a
//! tail (17), and two 16-blocks plus a tail (33) — and must be bitwise
//! deterministic run-to-run: the schedules fix the reduction order, and
//! the remainder path is a pure tail, so two invocations on identical
//! inputs may not differ in a single bit.

use adatm::linalg::Mat;
use adatm::tensor::dense::DenseTensor;
use adatm::{all_backends, SparseTensor};
use proptest::prelude::*;

/// Ranks covering every blocked-dispatch tier and remainder shape.
const PARITY_RANKS: [usize; 6] = [1, 3, 5, 7, 17, 33];

/// Strategy: a random sparse tensor with 3-4 modes and small dims.
fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (3usize..=4)
        .prop_flat_map(|ndim| {
            let dims = proptest::collection::vec(2usize..6, ndim);
            dims.prop_flat_map(move |dims| {
                let cells: usize = dims.iter().product();
                let max_nnz = cells.min(30);
                let entry = {
                    let dims = dims.clone();
                    (0..cells).prop_map(move |flat| {
                        let mut c = Vec::with_capacity(dims.len());
                        let mut rest = flat;
                        for &d in dims.iter().rev() {
                            c.push(rest % d);
                            rest /= d;
                        }
                        c.reverse();
                        c
                    })
                };
                (Just(dims.clone()), proptest::collection::vec((entry, -5.0f64..5.0), 1..=max_nnz))
            })
        })
        .prop_map(|(dims, entries)| {
            let entries: Vec<(Vec<usize>, f64)> = entries;
            let mut t = SparseTensor::from_entries(dims, &entries);
            t.dedup_sum();
            t
        })
}

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
}

fn bits_equal(a: &Mat, b: &Mat) -> Option<usize> {
    (0..a.nrows() * a.ncols()).find(|&i| a.as_slice()[i].to_bits() != b.as_slice()[i].to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every backend, every mode, every parity rank: output matches the
    /// dense oracle, and a second run on identical inputs is bitwise
    /// identical to the first (determinism through block + remainder
    /// dispatch).
    #[test]
    fn backends_are_correct_and_bitwise_deterministic_at_parity_ranks(
        t in arb_tensor(),
        seed in 0u64..1000,
        rank_idx in 0usize..PARITY_RANKS.len(),
    ) {
        let rank = PARITY_RANKS[rank_idx];
        let factors = factors_for(&t, rank, seed);
        let dense = DenseTensor::from_sparse(&t);
        for mut b in all_backends(&t, rank) {
            for mode in 0..t.ndim() {
                b.begin_mode(mode);
                let mut out1 = Mat::zeros(t.dims()[mode], rank);
                b.mttkrp_into(&t, &factors, mode, &mut out1);
                b.begin_mode(mode);
                let mut out2 = Mat::zeros(t.dims()[mode], rank);
                b.mttkrp_into(&t, &factors, mode, &mut out2);
                prop_assert!(
                    bits_equal(&out1, &out2).is_none(),
                    "backend {} mode {mode} rank {rank}: nondeterministic at flat index {:?}",
                    b.name(), bits_equal(&out1, &out2)
                );
                let want = dense.mttkrp_ref(&factors, mode);
                let scale = 1.0 + want.fro_norm();
                prop_assert!(
                    out1.max_abs_diff(&want) < 1e-9 * scale,
                    "backend {} mode {mode} rank {rank} diff {}",
                    b.name(), out1.max_abs_diff(&want)
                );
            }
        }
    }
}
