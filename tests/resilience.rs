//! Resilience tests (`--features fault-inject`): every fault class the
//! deterministic injection harness can produce, asserted against the
//! diagnostics record CP-ALS returns — plus a property test that *any*
//! seeded fault schedule yields a finite model or a typed error, never a
//! panic or NaN poison.
#![cfg(feature = "fault-inject")]

use adatm::tensor::gen::{dense_low_rank, zipf_tensor};
use adatm::{
    BreakdownKind, CooBackend, CpAls, CpAlsOptions, DtreeBackend, FaultInjectingBackend, FaultKind,
    FaultSchedule, RecoveryAction, StopReason,
};
use proptest::prelude::*;
use std::time::Duration;

/// A small noiseless low-rank tensor every test can re-converge on.
fn ground_truth() -> adatm::SparseTensor {
    dense_low_rank(&[12, 10, 11], 3, 0.0, 13).tensor
}

fn assert_model_finite(res: &adatm::CpResult) {
    assert!(res.model.lambda.iter().all(|l| l.is_finite()), "lambda poisoned");
    for (d, f) in res.model.factors.iter().enumerate() {
        assert!(f.is_finite(), "factor {d} poisoned");
    }
    assert!(res.fit_history.iter().all(|f| f.is_finite()), "fit history poisoned");
}

#[test]
fn nan_poison_triggers_rollback_and_run_recovers() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(4, FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(60).tol(0.0).seed(5)).run(&t, &mut b).unwrap();
    assert_eq!(b.injected().len(), 1, "the scheduled fault must fire");
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert!(res.diagnostics.recoveries >= 1);
    assert!(!res.diagnostics.degraded, "one transient fault must not exhaust the budget");
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "run must re-converge after the fault, fit {}", res.final_fit());
}

#[test]
fn inf_poison_is_detected_like_nan() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(2, FaultKind::PoisonInf);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(40).tol(0.0).seed(2)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert_model_finite(&res);
}

#[test]
fn nan_poison_in_memoizing_backend_flushes_cached_intermediates() {
    // The dimension-tree backend memoizes partial MTTKRPs; a NaN that
    // reaches a cached node would poison every later mode unless the
    // rollback invalidates the tree. This is the regression this PR's
    // recovery path exists for.
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(1, FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(DtreeBackend::balanced_binary(&t, 3), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(60).tol(0.0).seed(7)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert!(!res.diagnostics.degraded);
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "fit {}", res.final_fit());
}

#[test]
fn zero_output_forces_column_reseed() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(3, FaultKind::ZeroOutput);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(40).tol(0.0).seed(3)).run(&t, &mut b).unwrap();
    // A zeroed MTTKRP collapses every factor column; the zero-column
    // guard reseeds them and records the event.
    assert!(res.diagnostics.count_of(BreakdownKind::ZeroColumns) >= 1);
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "fit {}", res.final_fit());
}

#[test]
fn collinear_faults_force_singular_gram_and_ridge_resolve() {
    // Two collinear factors make the third mode's Hadamard-of-Grams
    // system exactly rank-1: the condition detector must fire and repair
    // with a Tikhonov ridge (no rollback needed, the solve is saved).
    let t = ground_truth();
    let sched = FaultSchedule::new()
        .at_call(0, FaultKind::CollinearColumns)
        .at_call(1, FaultKind::CollinearColumns);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(6).tol(0.0).seed(1)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::SingularGram) >= 1);
    assert!(
        res.diagnostics
            .events
            .iter()
            .any(|e| matches!(e.recovery, RecoveryAction::RidgeResolve { ridge } if ridge > 0.0)),
        "a ridge re-solve must have been taken: {:?}",
        res.diagnostics.events
    );
    assert_model_finite(&res);
}

#[test]
fn injected_stall_trips_the_time_budget_watchdog() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(0, FaultKind::StallMs(50));
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(
        CpAlsOptions::new(3).max_iters(1000).tol(0.0).time_budget(Duration::from_millis(10)),
    )
    .run(&t, &mut b)
    .unwrap();
    assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::TimeBudgetExpired), 1);
    assert!(!res.converged);
    assert_model_finite(&res);
}

#[test]
fn watchdog_overrun_is_bounded_by_one_stage_not_one_mode() {
    // The stall hits the MTTKRP of mode 1; the post-MTTKRP re-check must
    // catch the expiry *at mode 1*. A watchdog that only polls at the
    // top of each mode loop would run mode 1's full dense phase and
    // report the expiry from mode 2 — a whole mode of overrun.
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(1, FaultKind::StallMs(100));
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(
        CpAlsOptions::new(3).max_iters(1000).tol(0.0).time_budget(Duration::from_millis(20)),
    )
    .run(&t, &mut b)
    .unwrap();
    assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::TimeBudgetExpired), 1);
    let event = res
        .diagnostics
        .events
        .iter()
        .find(|e| e.kind == BreakdownKind::TimeBudgetExpired)
        .expect("expiry recorded");
    assert_eq!(event.iter, 0);
    assert_eq!(
        event.mode,
        Some(1),
        "expiry must be detected at the stalled mode itself, not a mode later"
    );
    assert_model_finite(&res);
}

#[test]
fn persistent_fault_exhausts_budget_and_degrades_gracefully() {
    let t = ground_truth();
    let sched = FaultSchedule::new().always(FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(CpAlsOptions::new(3).max_iters(50).tol(0.0).recovery_budget(2))
        .run(&t, &mut b)
        .unwrap();
    assert!(res.diagnostics.degraded);
    assert_eq!(res.diagnostics.stop, StopReason::Degraded);
    // Two rollback attempts, then the degradation event — all on the
    // same detector since the fault never clears.
    assert_eq!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp), 3);
    assert!(!res.converged);
    assert_model_finite(&res);
}

#[test]
fn empty_schedule_is_transparent() {
    let t = zipf_tensor(&[15, 18, 12], 500, &[0.5; 3], 6);
    let opts = CpAlsOptions::new(3).max_iters(5).tol(0.0).seed(77);
    let mut bare = CooBackend::new(&t);
    let reference = CpAls::new(opts.clone()).run(&t, &mut bare).unwrap();
    let mut wrapped = FaultInjectingBackend::new(CooBackend::new(&t), FaultSchedule::new());
    let res = CpAls::new(opts).run(&t, &mut wrapped).unwrap();
    assert_eq!(res.fit_history, reference.fit_history, "wrapper must not perturb a clean run");
    assert!(res.diagnostics.clean());
}

#[test]
fn same_seed_same_schedule_same_diagnostics() {
    let t = ground_truth();
    let run = |seed: u64| {
        let mut b =
            FaultInjectingBackend::new(CooBackend::new(&t), FaultSchedule::seeded(seed, 96));
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(30).tol(0.0).seed(9))
            .run(&t, &mut b)
            .unwrap();
        (res.fit_history.clone(), res.diagnostics.events.len(), res.diagnostics.recoveries)
    };
    assert_eq!(run(1234), run(1234), "identical schedules must replay identically");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline robustness property: for ANY seeded fault schedule,
    /// the solver returns a finite model (possibly degraded) or a typed
    /// error — never a panic, never NaN in the result.
    #[test]
    fn any_seeded_fault_schedule_yields_finite_model_or_typed_error(seed in 0u64..u64::MAX) {
        let t = ground_truth();
        let sched = FaultSchedule::seeded(seed, 128);
        let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
        let res = CpAls::new(
            CpAlsOptions::new(3).max_iters(20).tol(0.0).seed(seed ^ 0xabcd).recovery_budget(4),
        )
        .run(&t, &mut b);
        match res {
            Ok(r) => {
                prop_assert!(r.model.lambda.iter().all(|l| l.is_finite()));
                for f in &r.model.factors {
                    prop_assert!(f.is_finite());
                }
                prop_assert!(r.fit_history.iter().all(|f| f.is_finite()));
                if r.diagnostics.degraded {
                    prop_assert!(matches!(
                        r.diagnostics.stop,
                        StopReason::Degraded | StopReason::Diverged
                    ));
                }
            }
            Err(e) => {
                // Typed rejection is an acceptable outcome; stringify to
                // prove the error surface is well-formed.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
