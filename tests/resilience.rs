//! Resilience tests (`--features fault-inject`): every fault class the
//! deterministic injection harness can produce, asserted against the
//! diagnostics record CP-ALS returns — plus a property test that *any*
//! seeded fault schedule yields a finite model or a typed error, never a
//! panic or NaN poison.
#![cfg(feature = "fault-inject")]

use adatm::tensor::gen::{dense_low_rank, zipf_tensor};
use adatm::{
    BreakdownKind, CheckpointConfig, CheckpointError, CheckpointStore, CooBackend, CpAls,
    CpAlsOptions, DtreeBackend, FaultInjectingBackend, FaultKind, FaultSchedule, FaultyMedium,
    IoFaultKind, IoFaultLog, IoFaultSchedule, RecoveryAction, StopReason,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A small noiseless low-rank tensor every test can re-converge on.
fn ground_truth() -> adatm::SparseTensor {
    dense_low_rank(&[12, 10, 11], 3, 0.0, 13).tensor
}

fn assert_model_finite(res: &adatm::CpResult) {
    assert!(res.model.lambda.iter().all(|l| l.is_finite()), "lambda poisoned");
    for (d, f) in res.model.factors.iter().enumerate() {
        assert!(f.is_finite(), "factor {d} poisoned");
    }
    assert!(res.fit_history.iter().all(|f| f.is_finite()), "fit history poisoned");
}

#[test]
fn nan_poison_triggers_rollback_and_run_recovers() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(4, FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(60).tol(0.0).seed(5)).run(&t, &mut b).unwrap();
    assert_eq!(b.injected().len(), 1, "the scheduled fault must fire");
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert!(res.diagnostics.recoveries >= 1);
    assert!(!res.diagnostics.degraded, "one transient fault must not exhaust the budget");
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "run must re-converge after the fault, fit {}", res.final_fit());
}

#[test]
fn inf_poison_is_detected_like_nan() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(2, FaultKind::PoisonInf);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(40).tol(0.0).seed(2)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert_model_finite(&res);
}

#[test]
fn nan_poison_in_memoizing_backend_flushes_cached_intermediates() {
    // The dimension-tree backend memoizes partial MTTKRPs; a NaN that
    // reaches a cached node would poison every later mode unless the
    // rollback invalidates the tree. This is the regression this PR's
    // recovery path exists for.
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(1, FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(DtreeBackend::balanced_binary(&t, 3), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(60).tol(0.0).seed(7)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp) >= 1);
    assert!(!res.diagnostics.degraded);
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "fit {}", res.final_fit());
}

#[test]
fn zero_output_forces_column_reseed() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(3, FaultKind::ZeroOutput);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(40).tol(0.0).seed(3)).run(&t, &mut b).unwrap();
    // A zeroed MTTKRP collapses every factor column; the zero-column
    // guard reseeds them and records the event.
    assert!(res.diagnostics.count_of(BreakdownKind::ZeroColumns) >= 1);
    assert_model_finite(&res);
    assert!(res.final_fit() > 0.9, "fit {}", res.final_fit());
}

#[test]
fn collinear_faults_force_singular_gram_and_ridge_resolve() {
    // Two collinear factors make the third mode's Hadamard-of-Grams
    // system exactly rank-1: the condition detector must fire and repair
    // with a Tikhonov ridge (no rollback needed, the solve is saved).
    let t = ground_truth();
    let sched = FaultSchedule::new()
        .at_call(0, FaultKind::CollinearColumns)
        .at_call(1, FaultKind::CollinearColumns);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res =
        CpAls::new(CpAlsOptions::new(3).max_iters(6).tol(0.0).seed(1)).run(&t, &mut b).unwrap();
    assert!(res.diagnostics.count_of(BreakdownKind::SingularGram) >= 1);
    assert!(
        res.diagnostics
            .events
            .iter()
            .any(|e| matches!(e.recovery, RecoveryAction::RidgeResolve { ridge } if ridge > 0.0)),
        "a ridge re-solve must have been taken: {:?}",
        res.diagnostics.events
    );
    assert_model_finite(&res);
}

#[test]
fn injected_stall_trips_the_time_budget_watchdog() {
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(0, FaultKind::StallMs(50));
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(
        CpAlsOptions::new(3).max_iters(1000).tol(0.0).time_budget(Duration::from_millis(10)),
    )
    .run(&t, &mut b)
    .unwrap();
    assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::TimeBudgetExpired), 1);
    assert!(!res.converged);
    assert_model_finite(&res);
}

#[test]
fn watchdog_overrun_is_bounded_by_one_stage_not_one_mode() {
    // The stall hits the MTTKRP of mode 1; the post-MTTKRP re-check must
    // catch the expiry *at mode 1*. A watchdog that only polls at the
    // top of each mode loop would run mode 1's full dense phase and
    // report the expiry from mode 2 — a whole mode of overrun.
    let t = ground_truth();
    let sched = FaultSchedule::new().at_call(1, FaultKind::StallMs(100));
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(
        CpAlsOptions::new(3).max_iters(1000).tol(0.0).time_budget(Duration::from_millis(20)),
    )
    .run(&t, &mut b)
    .unwrap();
    assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::TimeBudgetExpired), 1);
    let event = res
        .diagnostics
        .events
        .iter()
        .find(|e| e.kind == BreakdownKind::TimeBudgetExpired)
        .expect("expiry recorded");
    assert_eq!(event.iter, 0);
    assert_eq!(
        event.mode,
        Some(1),
        "expiry must be detected at the stalled mode itself, not a mode later"
    );
    assert_model_finite(&res);
}

#[test]
fn persistent_fault_exhausts_budget_and_degrades_gracefully() {
    let t = ground_truth();
    let sched = FaultSchedule::new().always(FaultKind::PoisonNan);
    let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
    let res = CpAls::new(CpAlsOptions::new(3).max_iters(50).tol(0.0).recovery_budget(2))
        .run(&t, &mut b)
        .unwrap();
    assert!(res.diagnostics.degraded);
    assert_eq!(res.diagnostics.stop, StopReason::Degraded);
    // Two rollback attempts, then the degradation event — all on the
    // same detector since the fault never clears.
    assert_eq!(res.diagnostics.count_of(BreakdownKind::NonFiniteMttkrp), 3);
    assert!(!res.converged);
    assert_model_finite(&res);
}

#[test]
fn empty_schedule_is_transparent() {
    let t = zipf_tensor(&[15, 18, 12], 500, &[0.5; 3], 6);
    let opts = CpAlsOptions::new(3).max_iters(5).tol(0.0).seed(77);
    let mut bare = CooBackend::new(&t);
    let reference = CpAls::new(opts.clone()).run(&t, &mut bare).unwrap();
    let mut wrapped = FaultInjectingBackend::new(CooBackend::new(&t), FaultSchedule::new());
    let res = CpAls::new(opts).run(&t, &mut wrapped).unwrap();
    assert_eq!(res.fit_history, reference.fit_history, "wrapper must not perturb a clean run");
    assert!(res.diagnostics.clean());
}

#[test]
fn same_seed_same_schedule_same_diagnostics() {
    let t = ground_truth();
    let run = |seed: u64| {
        let mut b =
            FaultInjectingBackend::new(CooBackend::new(&t), FaultSchedule::seeded(seed, 96));
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(30).tol(0.0).seed(9))
            .run(&t, &mut b)
            .unwrap();
        (res.fit_history.clone(), res.diagnostics.events.len(), res.diagnostics.recoveries)
    };
    assert_eq!(run(1234), run(1234), "identical schedules must replay identically");
}

/// A fresh per-test temp directory (removed at the end of each test).
fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adatm-resilience-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_models_bitwise_equal(a: &adatm::CpResult, b: &adatm::CpResult) {
    for (x, y) in a.model.lambda.iter().zip(&b.model.lambda) {
        assert_eq!(x.to_bits(), y.to_bits(), "lambda diverged: {x} vs {y}");
    }
    for (d, (fa, fb)) in a.model.factors.iter().zip(&b.model.factors).enumerate() {
        for (x, y) in fa.as_slice().iter().zip(fb.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "factor {d} diverged: {x} vs {y}");
        }
    }
    assert_eq!(a.fit_history.len(), b.fit_history.len());
    for (x, y) in a.fit_history.iter().zip(&b.fit_history) {
        assert_eq!(x.to_bits(), y.to_bits(), "fit history diverged: {x} vs {y}");
    }
}

#[test]
fn rollback_across_a_checkpoint_boundary_resumes_bitwise_identically() {
    // Combined fault: a NaN poison forces a rollback (reseeding from the
    // recovery RNG stream), THEN the run is killed and resumed from a
    // checkpoint written after the recovery. The resumed trajectory must
    // match the uninterrupted one bitwise — which requires the checkpoint
    // to have persisted the recovery counters (the rollback `attempt`
    // feeds the reseed stream) and the restored fit history to keep the
    // divergence/stall detectors aligned. Any divergence between the
    // in-memory recovery state and the checkpointed state shows up here
    // as a bit mismatch.
    let t = ground_truth();
    let sched = || FaultSchedule::new().at_call(4, FaultKind::PoisonNan);
    let mk_opts = |iters: usize| CpAlsOptions::new(3).max_iters(iters).tol(0.0).seed(42);

    // Reference: uninterrupted faulted run, no checkpointing.
    let mut ref_b = FaultInjectingBackend::new(CooBackend::with_parallel(&t, false), sched());
    let reference = CpAls::new(mk_opts(20)).run(&t, &mut ref_b).unwrap();
    assert!(reference.diagnostics.recoveries >= 1, "the fault must have forced a recovery");

    // Same fault, checkpoint every iteration, killed after iteration 7
    // (well past the rollback).
    let dir = tmp_dir("combined");
    let cfg = CheckpointConfig::new(&dir).every_iters(1);
    let mut kill_b = FaultInjectingBackend::new(CooBackend::with_parallel(&t, false), sched());
    let killed = CpAls::new(mk_opts(7).checkpoint(cfg)).run(&t, &mut kill_b).unwrap();
    assert!(killed.diagnostics.recoveries >= 1, "kill point is after the recovery");

    // Resume to 20. The fault at absolute call 4 is long past, so the
    // resumed backend needs no schedule — exactly like the reference,
    // which also sees no faults after that call.
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert_eq!(outcome.checkpoint.recoveries, killed.diagnostics.recoveries);
    let resumed = CpAls::new(mk_opts(20))
        .resume_from(&t, &mut CooBackend::with_parallel(&t, false), outcome.checkpoint)
        .unwrap();

    assert_models_bitwise_equal(&reference, &resumed);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs checkpointed CP-ALS with an injected I/O fault schedule,
/// returning the result and the injection log.
fn run_with_io_faults(
    name: &str,
    sched: IoFaultSchedule,
    iters: usize,
) -> (adatm::CpResult, IoFaultLog, PathBuf) {
    let t = ground_truth();
    let dir = tmp_dir(name);
    let log = IoFaultLog::default();
    let log_for_factory = Arc::clone(&log);
    let cfg =
        CheckpointConfig::new(&dir).every_iters(1).keep(10).medium_factory(Arc::new(move || {
            Box::new(FaultyMedium::with_log(sched.clone(), Arc::clone(&log_for_factory)))
                as Box<dyn adatm::CheckpointMedium>
        }));
    let res = CpAls::new(CpAlsOptions::new(3).max_iters(iters).tol(0.0).seed(42).checkpoint(cfg))
        .run(&t, &mut CooBackend::with_parallel(&t, false))
        .expect("mid-run I/O faults degrade durability, never the run itself");
    (res, log, dir)
}

#[test]
fn enospc_surfaces_as_diagnostic_and_run_completes() {
    let (res, log, dir) =
        run_with_io_faults("enospc", IoFaultSchedule::new().at_write(1, IoFaultKind::Enospc), 6);
    assert_eq!(log.lock().unwrap().as_slice(), &[(1, IoFaultKind::Enospc)]);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::CheckpointWriteFailed), 1);
    assert_eq!(res.iters, 6, "the run keeps iterating through the write failure");
    assert_model_finite(&res);
    // The failed generation is simply missing; its neighbours are intact.
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert!(outcome.fallbacks.is_empty());
    assert_eq!(outcome.checkpoint.next_iter, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rename_failure_surfaces_as_diagnostic_and_strands_no_generation() {
    let (res, log, dir) = run_with_io_faults(
        "rename",
        IoFaultSchedule::new().at_write(2, IoFaultKind::RenameFail),
        6,
    );
    assert_eq!(log.lock().unwrap().as_slice(), &[(2, IoFaultKind::RenameFail)]);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::CheckpointWriteFailed), 1);
    // The torn temp file must not be visible as a generation.
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert!(outcome.fallbacks.is_empty(), "no half-promoted generation: {:?}", outcome.fallbacks);
    assert_eq!(outcome.checkpoint.next_iter, 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_is_detected_at_load_and_falls_back() {
    // The medium LIES: it writes half the bytes and reports success, so
    // the run records no diagnostic. The framing check catches it at
    // load time and the loader falls back to the previous generation.
    let (res, log, dir) =
        run_with_io_faults("torn", IoFaultSchedule::new().at_write(5, IoFaultKind::TornWrite), 6);
    assert_eq!(log.lock().unwrap().as_slice(), &[(5, IoFaultKind::TornWrite)]);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::CheckpointWriteFailed), 0);
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert_eq!(outcome.fallbacks.len(), 1);
    assert!(
        matches!(outcome.fallbacks[0].error, CheckpointError::Truncated { .. }),
        "torn write surfaces as a typed truncation error, got {:?}",
        outcome.fallbacks[0].error
    );
    assert_eq!(outcome.checkpoint.next_iter, 5, "fell back to the generation before the tear");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_is_detected_by_checksum_and_falls_back() {
    let (res, log, dir) =
        run_with_io_faults("bitflip", IoFaultSchedule::new().at_write(5, IoFaultKind::BitFlip), 6);
    assert_eq!(log.lock().unwrap().as_slice(), &[(5, IoFaultKind::BitFlip)]);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::CheckpointWriteFailed), 0);
    let outcome = CheckpointStore::load_latest(&dir).unwrap();
    assert_eq!(outcome.fallbacks.len(), 1);
    assert!(
        matches!(outcome.fallbacks[0].error, CheckpointError::ChecksumMismatch { .. }),
        "bit flip surfaces as a typed checksum error, got {:?}",
        outcome.fallbacks[0].error
    );
    assert_eq!(outcome.checkpoint.next_iter, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_level_io_faults_are_typed_checkpoint_errors() {
    // Below the driver: a direct `CheckpointStore::write` against a
    // failing medium must return `CheckpointError::Io` carrying the
    // underlying `io::ErrorKind`, never panic.
    let t = ground_truth();
    let src = tmp_dir("store-src");
    CpAls::new(
        CpAlsOptions::new(3)
            .max_iters(3)
            .tol(0.0)
            .seed(42)
            .checkpoint(CheckpointConfig::new(&src).every_iters(1)),
    )
    .run(&t, &mut CooBackend::with_parallel(&t, false))
    .unwrap();
    let ck = CheckpointStore::load_latest(&src).unwrap().checkpoint;

    let dir = tmp_dir("store-enospc");
    let medium = FaultyMedium::new(IoFaultSchedule::new().always(IoFaultKind::Enospc));
    let mut store = CheckpointStore::with_medium(&dir, Box::new(medium)).unwrap();
    let err = store.write(&ck.as_view()).unwrap_err();
    match &err {
        CheckpointError::Io { kind, op, .. } => {
            assert_eq!(*kind, std::io::ErrorKind::StorageFull, "op {op}: {err}");
        }
        other => panic!("expected a typed Io error, got {other:?}"),
    }

    let dir2 = tmp_dir("store-rename");
    let medium = FaultyMedium::new(IoFaultSchedule::new().always(IoFaultKind::RenameFail));
    let mut store = CheckpointStore::with_medium(&dir2, Box::new(medium)).unwrap();
    let err = store.write(&ck.as_view()).unwrap_err();
    assert!(
        matches!(&err, CheckpointError::Io { kind, .. } if *kind == std::io::ErrorKind::PermissionDenied),
        "expected a typed rename error, got {err:?}"
    );

    for d in [src, dir, dir2] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

#[test]
fn persistent_disk_failure_never_panics_and_leaves_typed_errors() {
    // Every write fails with ENOSPC: the run completes (durability fully
    // degraded), every failure is a diagnostic, and the empty store is a
    // typed NoCheckpoints at load time.
    let (res, log, dir) =
        run_with_io_faults("always-enospc", IoFaultSchedule::new().always(IoFaultKind::Enospc), 5);
    assert_eq!(log.lock().unwrap().len(), 5);
    assert_eq!(res.diagnostics.count_of(BreakdownKind::CheckpointWriteFailed), 5);
    assert_eq!(res.iters, 5);
    assert_model_finite(&res);
    let err = CheckpointStore::load_latest(&dir).unwrap_err();
    assert!(matches!(err, CheckpointError::NoCheckpoints { .. }), "got {err:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn io_faults_do_not_perturb_the_model() {
    // Durability faults are observation-only: the faulted-checkpoint run
    // must produce the same bits as a run with no checkpointing at all.
    let t = ground_truth();
    let plain = CpAls::new(CpAlsOptions::new(3).max_iters(6).tol(0.0).seed(42))
        .run(&t, &mut CooBackend::with_parallel(&t, false))
        .unwrap();
    let (faulted, _, dir) = run_with_io_faults(
        "no-perturb",
        IoFaultSchedule::new()
            .at_write(1, IoFaultKind::Enospc)
            .at_write(3, IoFaultKind::BitFlip)
            .at_write(4, IoFaultKind::RenameFail),
        6,
    );
    assert_models_bitwise_equal(&plain, &faulted);
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline robustness property: for ANY seeded fault schedule,
    /// the solver returns a finite model (possibly degraded) or a typed
    /// error — never a panic, never NaN in the result.
    #[test]
    fn any_seeded_fault_schedule_yields_finite_model_or_typed_error(seed in 0u64..u64::MAX) {
        let t = ground_truth();
        let sched = FaultSchedule::seeded(seed, 128);
        let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
        let res = CpAls::new(
            CpAlsOptions::new(3).max_iters(20).tol(0.0).seed(seed ^ 0xabcd).recovery_budget(4),
        )
        .run(&t, &mut b);
        match res {
            Ok(r) => {
                prop_assert!(r.model.lambda.iter().all(|l| l.is_finite()));
                for f in &r.model.factors {
                    prop_assert!(f.is_finite());
                }
                prop_assert!(r.fit_history.iter().all(|f| f.is_finite()));
                if r.diagnostics.degraded {
                    prop_assert!(matches!(
                        r.diagnostics.stop,
                        StopReason::Degraded | StopReason::Diverged
                    ));
                }
            }
            Err(e) => {
                // Typed rejection is an acceptable outcome; stringify to
                // prove the error surface is well-formed.
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}
