//! Planner quality tests using deterministic operation counters.
//!
//! Timing is noisy in CI; the engine's exact flop counters are not. These
//! tests execute every candidate strategy and verify that (a) the exact
//! cost model agrees with the counted work, and (b) the model-driven
//! choice is flop-optimal among the candidates (with the exact estimator)
//! or near-optimal (with the sampled estimator).

use adatm::dtree::{DtreeEngine, EngineOptions};
use adatm::planner::estimate::NnzEstimator;
use adatm::tensor::gen::{uniform_tensor, zipf_tensor};
use adatm::{Objective, Planner, SparseTensor};

/// Counted flops of one full CP-ALS iteration's MTTKRPs under the
/// dimension-tree protocol for a given shape.
fn iteration_flops(t: &SparseTensor, shape: &adatm::TreeShape, rank: usize) -> u64 {
    let factors: Vec<adatm::Mat> =
        t.dims().iter().enumerate().map(|(d, &n)| adatm::Mat::random(n, rank, d as u64)).collect();
    let mut eng =
        DtreeEngine::with_options(t, shape, rank, EngineOptions { parallel: false, thick: true });
    // Subiterations must follow the tree's leaf order (what the CP-ALS
    // driver does via MttkrpBackend::mode_order) so that every node is
    // computed exactly once per iteration.
    let order = shape.modes();
    // Warm-up iteration (the steady-state count is what the model
    // predicts; the first iteration does the same work for these shapes).
    for &mode in &order {
        eng.invalidate_mode(mode);
        let _ = eng.mttkrp(t, &factors, mode);
    }
    let before = eng.ops().flops;
    for &mode in &order {
        eng.invalidate_mode(mode);
        let _ = eng.mttkrp(t, &factors, mode);
    }
    eng.ops().flops - before
}

fn test_tensors() -> Vec<(&'static str, SparseTensor)> {
    vec![
        ("skew4", zipf_tensor(&[60, 25, 70, 35], 5_000, &[1.0, 0.4, 0.9, 0.7], 3)),
        ("uniform4", uniform_tensor(&[50; 4], 4_000, 5)),
        ("skew5", zipf_tensor(&[40, 15, 55, 20, 45], 4_000, &[0.9; 5], 7)),
        ("uniform6", uniform_tensor(&[25; 6], 3_000, 9)),
    ]
}

#[test]
fn exact_model_matches_counted_flops_for_every_candidate() {
    let rank = 8;
    for (name, t) in test_tensors() {
        let plan = Planner::new(&t, rank).estimator(NnzEstimator::Exact).plan();
        for c in &plan.candidates {
            let counted = iteration_flops(&t, &c.shape, rank);
            let predicted = c.cost.flops_per_iter;
            let rel = (predicted - counted as f64).abs() / counted as f64;
            assert!(rel < 1e-9, "{name}/{}: predicted {predicted} vs counted {counted}", c.label);
        }
    }
}

#[test]
fn exact_planner_choice_is_flop_optimal_among_candidates() {
    let rank = 8;
    for (name, t) in test_tensors() {
        let plan = Planner::new(&t, rank)
            .estimator(NnzEstimator::Exact)
            .objective(Objective::Flops)
            .plan();
        let chosen = iteration_flops(&t, &plan.shape, rank);
        for c in &plan.candidates {
            let other = iteration_flops(&t, &c.shape, rank);
            assert!(
                chosen <= other,
                "{name}: chosen {} has {chosen} flops but {} has {other}",
                plan.shape,
                c.label
            );
        }
    }
}

#[test]
fn sampled_planner_choice_is_near_optimal() {
    let rank = 8;
    for (name, t) in test_tensors() {
        let plan = Planner::new(&t, rank)
            .estimator(NnzEstimator::Sampled { sample: 1 << 11 })
            .objective(Objective::Flops)
            .plan();
        let chosen = iteration_flops(&t, &plan.shape, rank) as f64;
        let oracle = plan
            .candidates
            .iter()
            .map(|c| iteration_flops(&t, &c.shape, rank) as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(chosen <= oracle * 1.5, "{name}: sampled choice {chosen} vs oracle {oracle}");
    }
}

#[test]
fn memoizing_plans_beat_flat_on_higher_orders() {
    let rank = 8;
    let t = uniform_tensor(&[25; 8], 4_000, 2);
    let plan =
        Planner::new(&t, rank).estimator(NnzEstimator::Exact).objective(Objective::Flops).plan();
    let chosen = iteration_flops(&t, &plan.shape, rank);
    let flat = iteration_flops(&t, &adatm::TreeShape::two_level(8), rank);
    assert!(
        (chosen as f64) < 0.7 * flat as f64,
        "8-mode memoization should cut flops well below flat: {chosen} vs {flat}"
    );
}
