//! Cross-crate integration tests for the sparse Tucker (HOOI) extension,
//! including its interplay with CP on the same data.

use adatm::tensor::gen::{clustered_tensor, zipf_tensor};
use adatm::{decompose, hooi, CpAlsOptions, TuckerOptions};

#[test]
fn tucker_fits_clustered_data_better_than_matched_size_cp() {
    // Block-structured data has genuine multilinear (subspace) structure;
    // at a comparable parameter budget Tucker should capture at least as
    // much energy as CP. (Not a theorem — a sanity check that our HOOI
    // finds the subspaces.)
    let t = clustered_tensor(&[60, 60, 60], 6_000, 3, 0.12, 0.05, 17);
    let tucker = hooi(&t, &TuckerOptions::new(vec![6, 6, 6]).max_iters(12).tol(0.0).seed(1));
    // CP with a similar parameter count: 3 * 60 * 6 ~ Tucker's factor
    // params; use the same rank 6.
    let cp = decompose(&t, &CpAlsOptions::new(6).max_iters(12).tol(0.0).seed(1)).unwrap();
    assert!(
        tucker.final_fit() > cp.final_fit() - 0.05,
        "tucker fit {} vs cp fit {}",
        tucker.final_fit(),
        cp.final_fit()
    );
    assert!(tucker.final_fit() > 0.2, "tucker fit {}", tucker.final_fit());
}

#[test]
fn tucker_handles_asymmetric_ranks_on_4_modes() {
    let t = zipf_tensor(&[40, 12, 50, 8], 2_500, &[0.8; 4], 23);
    let res = hooi(&t, &TuckerOptions::new(vec![4, 2, 5, 2]).max_iters(6).tol(0.0).seed(3));
    assert_eq!(res.iters, 6);
    for (d, f) in res.model.factors.iter().enumerate() {
        assert_eq!(f.nrows(), t.dims()[d]);
        assert_eq!(f.ncols(), [4, 2, 5, 2][d]);
    }
    // The fit identity must stay within [0, 1] and finite.
    assert!(res.final_fit().is_finite());
    assert!(res.final_fit() <= 1.0 + 1e-9);
}

#[test]
fn tucker_rank_monotonicity() {
    // Larger multilinear ranks can only capture more energy.
    let t = zipf_tensor(&[30, 25, 20], 1_500, &[0.7; 3], 29);
    let small = hooi(&t, &TuckerOptions::new(vec![2, 2, 2]).max_iters(10).tol(0.0).seed(5));
    let large = hooi(&t, &TuckerOptions::new(vec![6, 6, 6]).max_iters(10).tol(0.0).seed(5));
    assert!(
        large.final_fit() >= small.final_fit() - 1e-6,
        "rank-6 fit {} below rank-2 fit {}",
        large.final_fit(),
        small.final_fit()
    );
}

#[test]
fn full_ranks_give_near_exact_fit_on_tiny_tensor() {
    // With ranks equal to the mode sizes, Tucker is exact.
    let t = zipf_tensor(&[6, 5, 4], 40, &[0.4; 3], 31);
    let res = hooi(&t, &TuckerOptions::new(vec![6, 5, 4]).max_iters(10).tol(0.0).seed(7));
    assert!(res.final_fit() > 0.999, "fit {}", res.final_fit());
}
