// lint: hot-path
//! Numeric TTMV: the per-iteration kernels of dimension-tree CP-ALS.
//!
//! A [`DtreeEngine`] binds a tree's symbolic structure to a rank `R` and
//! caches, per node, the node's *value matrix* — the `|elements| x R`
//! matrix holding all `R` partial-TTV tensors at once (they share one
//! nonzero pattern, so the index structure is stored once and the values
//! are updated "thick", all `R` columns per element). The engine
//! implements the dimension-tree CP-ALS protocol:
//!
//! 1. at the start of subiteration `n`, [`DtreeEngine::invalidate_mode`]
//!    destroys every node whose tensors were multiplied by `U^(n)`
//!    (all nodes with `n ∉ µ(t)`);
//! 2. [`DtreeEngine::mttkrp`] computes the leaf of mode `n`, reusing any
//!    still-valid ancestors and computing missing ones from the closest
//!    valid ancestor downward;
//! 3. the caller updates `U^(n)` and moves on.
//!
//! Every node is therefore computed exactly once per iteration, and at
//! most one root-to-leaf path of value matrices is live at any instant —
//! the `O(log N)` memory bound of the balanced binary tree.

use crate::error::DtreeError;
use crate::sched::ScatterSchedule;
use crate::shape::TreeShape;
use crate::stats::{MemoryStats, OpStats};
use crate::symbolic::SymbolicTree;
use crate::tree::DimTree;
use adatm_linalg::kernels;
use adatm_linalg::Mat;
use adatm_tensor::coo::Idx;
use adatm_tensor::schedule::{ModeSchedule, Task, Workspace};
use adatm_tensor::SparseTensor;
use rayon::prelude::*;
use std::sync::Arc;

/// Elements per parallel task in the (unscheduled) column-wise kernel.
const PAR_CHUNK: usize = 512;
/// Minimum node size before the kernels go parallel.
const PAR_THRESHOLD: usize = 4096;

/// Persistent per-node schedules for the parallel kernels, built lazily
/// on first parallel computation of the node and kept until the thread
/// count changes or the engine's caches are reset.
#[derive(Clone, Debug, Default)]
struct NodeSched {
    /// Nnz-balanced schedule over the node's reduction sets (pull/thick
    /// kernel).
    pull: Option<ModeSchedule>,
    /// Parent-chunk schedule with touched-row compaction (scatter
    /// kernel).
    scatter: Option<ScatterSchedule>,
}

/// Tuning knobs for the numeric engine.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Use rayon over node elements (subiteration-level parallelism).
    pub parallel: bool,
    /// Vectorized "thick" updates (all `R` columns per element). `false`
    /// selects the column-at-a-time schedule — one pass over the
    /// reduction sets per rank column, as a non-vectorized implementation
    /// of `R` separate TTVs would do. Exists for the E12 ablation.
    pub thick: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions { parallel: true, thick: true }
    }
}

/// The numeric dimension-tree engine (symbolic structure + cached value
/// matrices + counters).
///
/// ```
/// use adatm_dtree::{DtreeEngine, TreeShape};
/// use adatm_linalg::Mat;
/// use adatm_tensor::gen::zipf_tensor;
///
/// let t = zipf_tensor(&[20, 30, 25, 15], 1_000, &[0.6; 4], 7);
/// let rank = 4;
/// let factors: Vec<Mat> = t.dims().iter().enumerate()
///     .map(|(d, &n)| Mat::random(n, rank, d as u64)).collect();
/// let mut engine = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), rank);
/// // One CP-ALS-style sweep: invalidate, compute, (update factor).
/// for mode in 0..4 {
///     engine.invalidate_mode(mode);
///     let m = engine.mttkrp(&t, &factors, mode);
///     assert_eq!(m.nrows(), t.dims()[mode]);
/// }
/// // Every non-root node was computed exactly once: 2N - 2 TTMVs.
/// assert_eq!(engine.ops().ttmv_calls, 6);
/// ```
#[derive(Debug)]
pub struct DtreeEngine {
    tree: DimTree,
    /// Shared: the symbolic analysis is rank-independent, so engines for
    /// different ranks / restarts over the same tensor and shape reuse
    /// one structure (the amortization the papers rely on when sweeping
    /// ranks or initializations).
    sym: Arc<SymbolicTree>,
    rank: usize,
    vals: Vec<Option<Mat>>,
    /// Retired value matrices, kept per node for reuse: a node's shape
    /// (`len x R`) never changes, so `invalidate → recompute` cycles in
    /// steady-state CP-ALS stop allocating entirely. Excluded from the
    /// live-memory model in [`DtreeEngine::mem`]; see
    /// [`DtreeEngine::pooled_bytes`].
    pool: Vec<Option<Mat>>,
    /// Lazily built per-node schedules (valid for `sched_threads`).
    scheds: Vec<NodeSched>,
    /// Thread count the cached schedules were balanced for (0 = none).
    sched_threads: usize,
    /// Reusable kernel scratch (per-task Hadamard rows + slot rows).
    ws: Workspace,
    opts: EngineOptions,
    ops: OpStats,
    mem: MemoryStats,
}

/// Where a node's parent values come from: the tensor itself (children of
/// the root — every one of the `R` root tensors is the input tensor, so
/// the "row" is the scalar value broadcast) or the parent's value matrix.
enum ParentVals<'a> {
    Scalars(&'a [f64]),
    Rows(&'a Mat),
}

/// Which numeric kernel computes a given non-root node — mirrors the
/// dispatch in the engine's per-node compute: nodes with an inverse
/// reduction map run the streaming *scatter* ("push") kernel, everything
/// else the *pull* ("thick" gather) kernel. Exposed so benches and the
/// calibration probe can attribute per-node TTMV timings to the kernel
/// class the cost model prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKernelClass {
    /// Gather kernel: per node element, reduce its parent-element set.
    Pull,
    /// Push kernel: stream the parent, accumulate into the small child.
    Scatter,
}

impl std::fmt::Display for NodeKernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeKernelClass::Pull => write!(f, "pull"),
            NodeKernelClass::Scatter => write!(f, "scatter"),
        }
    }
}

impl DtreeEngine {
    /// Builds the engine: lowers the shape, runs the symbolic pass, and
    /// prepares (empty) value-matrix slots.
    pub fn new(tensor: &SparseTensor, shape: &TreeShape, rank: usize) -> Self {
        Self::with_options(tensor, shape, rank, EngineOptions::default())
    }

    /// [`DtreeEngine::new`] with explicit options.
    pub fn with_options(
        tensor: &SparseTensor,
        shape: &TreeShape,
        rank: usize,
        opts: EngineOptions,
    ) -> Self {
        let tree = DimTree::from_shape(shape);
        assert_eq!(tree.ndim(), tensor.ndim(), "shape covers a different order");
        let sym = Arc::new(SymbolicTree::build(tensor, &tree));
        Self::from_parts(tree, sym, rank, opts)
    }

    /// Builds an engine from an existing symbolic structure.
    ///
    /// The one-time symbolic pass is rank-independent; use this to share
    /// it across rank sweeps and multi-start runs (clone the `Arc`).
    ///
    /// # Panics
    /// Panics if `sym` was built for a different tree size or `rank == 0`.
    pub fn from_parts(
        tree: DimTree,
        sym: Arc<SymbolicTree>,
        rank: usize,
        opts: EngineOptions,
    ) -> Self {
        assert!(rank > 0, "rank must be positive");
        assert_eq!(sym.len(), tree.len(), "symbolic structure is for a different tree");
        let n_nodes = tree.len();
        DtreeEngine {
            tree,
            sym,
            rank,
            vals: (0..n_nodes).map(|_| None).collect(),
            pool: (0..n_nodes).map(|_| None).collect(),
            scheds: vec![NodeSched::default(); n_nodes],
            sched_threads: 0,
            ws: Workspace::new(),
            opts,
            ops: OpStats::default(),
            mem: MemoryStats::default(),
        }
    }

    /// Clones the shared symbolic structure handle (cheap).
    pub fn shared_symbolic(&self) -> Arc<SymbolicTree> {
        Arc::clone(&self.sym)
    }

    /// The decomposition rank the engine was built for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The lowered tree.
    pub fn tree(&self) -> &DimTree {
        &self.tree
    }

    /// The symbolic structure.
    pub fn symbolic(&self) -> &SymbolicTree {
        &self.sym
    }

    /// Operation counters (cumulative since the last reset).
    pub fn ops(&self) -> OpStats {
        self.ops
    }

    /// Memory counters.
    pub fn mem(&self) -> MemoryStats {
        self.mem
    }

    /// Resets operation counters and memory high-water marks (current
    /// memory is preserved — it reflects live allocations).
    pub fn reset_stats(&mut self) {
        self.ops.reset();
        let cur = (self.mem.current_value_bytes, self.mem.live_nodes);
        self.mem.reset();
        self.mem.current_value_bytes = cur.0;
        self.mem.peak_value_bytes = cur.0;
        self.mem.live_nodes = cur.1;
        self.mem.peak_live_nodes = cur.1;
    }

    /// Number of nodes with live value matrices.
    pub fn live_nodes(&self) -> usize {
        self.vals.iter().filter(|v| v.is_some()).count()
    }

    /// Destroys every node whose tensors involve a multiplication by
    /// `U^(mode)` — step 1 of the dimension-tree CP-ALS protocol. Call
    /// at the start of the subiteration that will update `U^(mode)`.
    pub fn invalidate_mode(&mut self, mode: usize) {
        for id in 1..self.tree.len() {
            if self.tree.multiplied_by(id, mode) {
                self.drop_node(id);
            }
        }
    }

    /// Destroys all cached value matrices. Required whenever factors
    /// change outside the CP-ALS protocol (e.g. a fresh initialization).
    pub fn invalidate_all(&mut self) {
        for id in 1..self.tree.len() {
            self.drop_node(id);
        }
    }

    fn drop_node(&mut self, id: usize) {
        if let Some(m) = self.vals[id].take() {
            self.mem.free(value_bytes(&m));
            // Retire to the per-node pool: the next compute of this node
            // reuses the buffer instead of reallocating.
            self.pool[id] = Some(m);
        }
    }

    /// Drops all reusable caches: pooled value matrices, persistent
    /// kernel schedules, and workspace memory. Part of the backend
    /// `reset()` protocol — call when the tensor identity, thread pool,
    /// or measurement context changes.
    pub fn reset_caches(&mut self) {
        for p in &mut self.pool {
            *p = None;
        }
        for s in &mut self.scheds {
            *s = NodeSched::default();
        }
        self.sched_threads = 0;
        self.ws.clear();
    }

    /// Bytes held by retired-but-reusable value matrices. These are real
    /// allocations excluded from the live-memory model of
    /// [`DtreeEngine::mem`] (which tracks the paper's `O(log N)` bound on
    /// *valid* nodes); memory experiments should call
    /// [`DtreeEngine::reset_caches`] first if they want the pool gone.
    pub fn pooled_bytes(&self) -> usize {
        self.pool.iter().flatten().map(value_bytes).sum()
    }

    /// Approximate bytes held by the persistent kernel schedules and the
    /// workspace (diagnostics).
    pub fn schedule_bytes(&self) -> usize {
        let sched: usize = self
            .scheds
            .iter()
            .map(|s| {
                s.pull.as_ref().map_or(0, ModeSchedule::structure_bytes)
                    + s.scatter.as_ref().map_or(0, ScatterSchedule::structure_bytes)
            })
            .sum();
        sched + self.ws.structure_bytes()
    }

    /// Computes the mode-`mode` MTTKRP into a fresh `I_mode x R` matrix.
    ///
    /// Reuses every still-valid ancestor on the leaf's root path; the
    /// caller is responsible for having called
    /// [`DtreeEngine::invalidate_mode`] per the protocol (or
    /// [`DtreeEngine::invalidate_all`] after arbitrary factor changes).
    pub fn mttkrp(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
        let mut out = Mat::zeros(tensor.dims()[mode], self.rank);
        self.mttkrp_into(tensor, factors, mode, &mut out);
        out
    }

    /// [`DtreeEngine::mttkrp`] into a caller-provided buffer (zeroed
    /// first).
    #[adatm::hot]
    pub fn mttkrp_into(
        &mut self,
        tensor: &SparseTensor,
        factors: &[Mat],
        mode: usize,
        out: &mut Mat,
    ) {
        self.sym.check_tensor(tensor);
        self.check_factors(tensor, factors);
        assert_eq!(out.nrows(), tensor.dims()[mode], "output rows mismatch");
        assert_eq!(out.ncols(), self.rank, "output rank mismatch");
        let leaf = self.tree.leaf_of(mode);
        self.ensure(leaf, tensor, factors)
            .unwrap_or_else(|e| panic!("dimension-tree invariant violated: {e}"));
        out.fill_zero();
        let node = self.sym.node(leaf);
        let Some(vals) = self.vals[leaf].as_ref() else {
            unreachable!("leaf {leaf} is valid right after ensure")
        };
        for (e, &i) in node.idx[0].iter().enumerate() {
            out.row_mut(i as usize).copy_from_slice(vals.row(e));
        }
    }

    /// The kernel class the engine will use for non-root node `id`, or
    /// `None` for the root (which is never computed). See
    /// [`NodeKernelClass`].
    pub fn node_kernel_class(&self, id: usize) -> Option<NodeKernelClass> {
        if id == 0 || id >= self.tree.len() {
            return None;
        }
        if self.opts.thick && self.sym.node(id).pmap.is_some() {
            Some(NodeKernelClass::Scatter)
        } else {
            Some(NodeKernelClass::Pull)
        }
    }

    /// Work units of one TTMV recompute of node `id` — the quantity the
    /// calibrated cost model prices per kernel class:
    /// `parent_elems * (|delta| + 1) * R` (each parent element is read,
    /// multiplied by `|delta|` factor rows, and added once). `None` for
    /// the root.
    pub fn node_work_units(&self, id: usize) -> Option<u64> {
        if id == 0 || id >= self.tree.len() {
            return None;
        }
        let parent = self.tree.node(id).parent?;
        let parent_len = self.sym.node(parent).len as u64;
        let delta = self.tree.node(id).delta.len() as u64;
        Some(parent_len * (delta + 1) * self.rank as u64)
    }

    /// Drops node `id` and recomputes it from its parent (ancestors are
    /// ensured first). Bench/calibration hook: timing this call in
    /// steady state measures exactly one TTMV of the node's kernel class,
    /// with schedules and pooled buffers warm.
    ///
    /// # Panics
    /// Panics if `id` is the root or out of range, or on a broken tree
    /// invariant.
    pub fn recompute_node(&mut self, tensor: &SparseTensor, factors: &[Mat], id: usize) {
        assert!(id > 0 && id < self.tree.len(), "recompute_node: invalid node {id}");
        self.drop_node(id);
        self.ensure(id, tensor, factors)
            .unwrap_or_else(|e| panic!("dimension-tree invariant violated: {e}"));
    }

    /// Borrows the computed leaf values for `mode` as `(indices, values)`
    /// without scattering into a dense row space. `None` if the leaf is
    /// not currently valid.
    pub fn leaf_values(&self, mode: usize) -> Option<(&[Idx], &Mat)> {
        let leaf = self.tree.leaf_of(mode);
        let vals = self.vals[leaf].as_ref()?;
        Some((&self.sym.node(leaf).idx[0], vals))
    }

    /// Makes node `id` and all its ancestors valid.
    ///
    /// Recursive (tree height is `O(log N)`): ascends to the closest
    /// valid ancestor, then computes downward — no path vector.
    fn ensure(
        &mut self,
        id: usize,
        tensor: &SparseTensor,
        factors: &[Mat],
    ) -> Result<(), DtreeError> {
        if id == 0 || self.vals[id].is_some() {
            return Ok(());
        }
        if let Some(parent) = self.tree.node(id).parent {
            self.ensure(parent, tensor, factors)?;
        }
        self.compute_node(id, tensor, factors)
    }

    /// Computes one node's value matrix from its (already valid) parent.
    fn compute_node(
        &mut self,
        id: usize,
        tensor: &SparseTensor,
        factors: &[Mat],
    ) -> Result<(), DtreeError> {
        let parent = self.tree.node(id).parent.ok_or(DtreeError::MissingParent { node: id })?;
        debug_assert!(parent == 0 || self.vals[parent].is_some(), "parent must be valid");
        // Cached schedules are balanced for one thread count; rebuild
        // lazily if the pool changed since they were built.
        let threads = if self.opts.parallel { rayon::current_num_threads() } else { 1 };
        if self.sched_threads != threads {
            for s in &mut self.scheds {
                *s = NodeSched::default();
            }
            self.sched_threads = threads;
        }
        // Work through a local handle so `node` does not pin `self`.
        let sym = Arc::clone(&self.sym);
        let node = sym.node(id);
        let delta = &self.tree.node(id).delta;
        // Resolve each delta mode's index column on the parent's elements.
        let delta_cols: Vec<&[Idx]> = delta
            .iter()
            .map(|&d| {
                if parent == 0 {
                    Ok(tensor.mode_idx(d))
                } else {
                    let pos = self
                        .tree
                        .node(parent)
                        .modes
                        .iter()
                        .position(|&m| m == d)
                        .ok_or(DtreeError::ModeNotInParent { node: id, mode: d })?;
                    Ok(sym.node(parent).idx[pos].as_slice())
                }
            })
            .collect::<Result<_, _>>()?;
        let delta_facs: Vec<&Mat> = delta.iter().map(|&d| &factors[d]).collect();
        let parent_vals = if parent == 0 {
            ParentVals::Scalars(tensor.vals())
        } else {
            match self.vals[parent].as_ref() {
                Some(m) => ParentVals::Rows(m),
                None => return Err(DtreeError::NodeNotComputed { node: parent }),
            }
        };
        // Reuse the node's retired value matrix if one is pooled (its
        // shape is invariant), else allocate once.
        let mut out = match self.pool[id].take() {
            Some(mut m) => {
                m.fill_zero();
                m
            }
            None => Mat::zeros(node.len, self.rank),
        };
        let pmap = if self.opts.thick { node.pmap.as_deref() } else { None };
        if let Some(pmap) = pmap {
            // Push schedule: stream the (much larger) parent and
            // accumulate into the cache-resident child.
            let want_par =
                self.opts.parallel && threads > 1 && sym.node(parent).len >= PAR_THRESHOLD;
            let mut ran_par = false;
            if want_par {
                let sched = self.scheds[id]
                    .scatter
                    .get_or_insert_with(|| ScatterSchedule::build(pmap, node.len, threads));
                if !sched.is_sequential() {
                    kernel_scatter_par(
                        &mut out,
                        self.rank,
                        &delta_cols,
                        &delta_facs,
                        &parent_vals,
                        sched,
                        &mut self.ws,
                    );
                    ran_par = true;
                }
            }
            if !ran_par {
                let (scratch, _) = self.ws.ensure(self.rank, 0);
                kernel_scatter_seq(
                    &mut out,
                    self.rank,
                    pmap,
                    &delta_cols,
                    &delta_facs,
                    &parent_vals,
                    scratch,
                );
            }
        } else if self.opts.thick {
            let rperm = if node.sequential { None } else { Some(node.rperm.as_slice()) };
            let want_par = self.opts.parallel && threads > 1 && node.len >= PAR_THRESHOLD;
            let mut ran_par = false;
            if want_par {
                let sched = self.scheds[id].pull.get_or_insert_with(|| {
                    let weights: Vec<usize> = node.rptr.windows(2).map(|w| w[1] - w[0]).collect();
                    ModeSchedule::build(&weights, threads)
                });
                if !sched.is_sequential() {
                    kernel_thick_par(
                        &mut out,
                        self.rank,
                        &node.rptr,
                        rperm,
                        &delta_cols,
                        &delta_facs,
                        &parent_vals,
                        sched,
                        &mut self.ws,
                    );
                    ran_par = true;
                }
            }
            if !ran_par {
                let (scratch, _) = self.ws.ensure(self.rank, 0);
                kernel_thick_seq(
                    &mut out,
                    self.rank,
                    &node.rptr,
                    rperm,
                    &delta_cols,
                    &delta_facs,
                    &parent_vals,
                    scratch,
                );
            }
        } else {
            kernel_colwise(
                &mut out,
                self.rank,
                &node.rptr,
                &node.rperm,
                &delta_cols,
                &delta_facs,
                &parent_vals,
                self.opts.parallel && node.len >= PAR_THRESHOLD,
            );
        }
        // Stage-boundary audit: a TTMV output contaminated by NaN/Inf
        // would silently poison every descendant's memoized values.
        #[cfg(feature = "audit")]
        audit_finite(&out, id);
        // Exact operation accounting: every parent element is visited
        // once, multiplied by |delta| factor rows, and added once.
        let parent_len = self.sym.node(parent).len as u64;
        self.ops.ttmv_calls += 1;
        self.ops.hadamard_row_mults += parent_len * delta.len() as u64;
        self.ops.row_adds += parent_len;
        self.ops.flops += parent_len * (delta.len() as u64 + 1) * self.rank as u64;
        self.mem.alloc(value_bytes(&out));
        self.vals[id] = Some(out);
        Ok(())
    }

    fn check_factors(&self, tensor: &SparseTensor, factors: &[Mat]) {
        assert_eq!(factors.len(), tensor.ndim(), "one factor per mode required");
        for (d, f) in factors.iter().enumerate() {
            assert_eq!(f.nrows(), tensor.dims()[d], "factor {d} rows mismatch");
            assert_eq!(f.ncols(), self.rank, "factor {d} rank mismatch");
        }
    }
}

fn value_bytes(m: &Mat) -> usize {
    m.nrows() * m.ncols() * std::mem::size_of::<f64>()
}

/// Audit hook: every entry of a freshly computed value matrix is finite.
#[cfg(feature = "audit")]
fn audit_finite(m: &Mat, node: usize) {
    for (i, &v) in m.as_slice().iter().enumerate() {
        assert!(
            v.is_finite(),
            "audit: node {node}: non-finite value {v} at flat offset {i} of its value matrix"
        );
    }
}

/// Computes one parent element's contribution (`parent row ⊙ delta
/// factor rows`) into `row`. Shared by every thick/scatter variant so
/// their arithmetic order is identical.
///
/// The common small-delta cases (up to three factor rows over a scalar
/// parent, up to two over a row parent) take fused single-pass kernels
/// that never touch `scratch`; the general case falls back to the
/// scratch-row form. Every path multiplies parent-first then delta rows
/// in slice order, left-to-right, so all are bitwise identical.
#[inline]
fn contrib(
    parent: &ParentVals<'_>,
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    j: usize,
    scratch: &mut [f64],
    row: &mut [f64],
) {
    let frow = |d: usize| delta_facs[d].row(delta_cols[d][j] as usize);
    match (parent, delta_cols.len()) {
        (ParentVals::Scalars(v), 1) => kernels::axpy(row, v[j], frow(0)),
        (ParentVals::Scalars(v), 2) => kernels::axpy2(row, v[j], frow(0), frow(1)),
        (ParentVals::Scalars(v), 3) => kernels::axpy3(row, v[j], frow(0), frow(1), frow(2)),
        (ParentVals::Rows(m), 1) => kernels::muladd_assign(row, m.row(j), frow(0)),
        (ParentVals::Rows(m), 2) => kernels::muladd3(row, m.row(j), frow(0), frow(1)),
        _ => {
            match parent {
                ParentVals::Scalars(v) => scratch.iter_mut().for_each(|s| *s = v[j]),
                ParentVals::Rows(m) => scratch.copy_from_slice(m.row(j)),
            }
            for (col, fac) in delta_cols.iter().zip(delta_facs.iter()) {
                kernels::mul_assign(scratch, fac.row(col[j] as usize));
            }
            kernels::add_assign(row, scratch);
        }
    }
}

/// Accumulates the reduction set of element `i` into `row`.
// A flat argument list keeps the hot per-element call free of a
// context-struct indirection; the parameters are the already-borrowed
// pieces of the node being reduced.
#[allow(clippy::too_many_arguments)]
#[inline]
fn reduce_element(
    i: usize,
    rptr: &[usize],
    rperm: Option<&[u32]>,
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    scratch: &mut [f64],
    row: &mut [f64],
) {
    match rperm {
        Some(perm) => {
            for &j in &perm[rptr[i]..rptr[i + 1]] {
                contrib(parent, delta_cols, delta_facs, j as usize, scratch, row);
            }
        }
        None => {
            for j in rptr[i]..rptr[i + 1] {
                contrib(parent, delta_cols, delta_facs, j, scratch, row);
            }
        }
    }
}

/// The sequential vectorized ("thick") TTMV kernel: per node element,
/// accumulate all `R` columns at once from each parent element in the
/// reduction set. `rperm: None` selects the streaming fast path (the
/// reduction sets are the identity partition of the parent — the
/// first-child layout). `scratch` is one caller-owned rank row:
/// allocation-free.
#[adatm::hot]
#[allow(clippy::too_many_arguments)]
fn kernel_thick_seq(
    out: &mut Mat,
    rank: usize,
    rptr: &[usize],
    rperm: Option<&[u32]>,
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    scratch: &mut [f64],
) {
    for (i, row) in out.as_mut_slice().chunks_mut(rank).enumerate() {
        reduce_element(i, rptr, rperm, delta_cols, delta_facs, parent, scratch, row);
    }
}

/// The scheduled parallel thick kernel. Owned tasks write contiguous
/// `out` row spans directly (elements *are* output rows here, so spans
/// come straight from consecutive `split_at_mut`); oversized reduction
/// sets are split across privatized slot rows and merged per-row after
/// the parallel phase. All scratch comes from `ws`: steady-state
/// allocations are O(tasks), independent of the node or parent size.
#[adatm::hot]
#[allow(clippy::too_many_arguments)]
fn kernel_thick_par(
    out: &mut Mat,
    rank: usize,
    rptr: &[usize],
    rperm: Option<&[u32]>,
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    sched: &ModeSchedule,
    ws: &mut Workspace,
) {
    struct Ctx<'a> {
        task: &'a Task,
        buf: &'a mut [f64],
        row0: usize,
        srow: &'a mut [f64],
    }
    let (scratch, slots) = ws.ensure(sched.num_tasks() * rank, sched.num_slots() * rank);
    let mut ctxs: Vec<Ctx<'_>> = Vec::with_capacity(sched.num_tasks());
    let mut out_rest = out.as_mut_slice();
    let mut consumed_rows = 0usize;
    let mut slots_rest = &mut slots[..];
    let mut scratch_rest = &mut scratch[..];
    for task in sched.tasks() {
        let (srow, rest) = std::mem::take(&mut scratch_rest).split_at_mut(rank);
        scratch_rest = rest;
        match task {
            Task::Owned { groups } => {
                let tail = std::mem::take(&mut out_rest);
                let (_, tail) = tail.split_at_mut((groups.start - consumed_rows) * rank);
                let (span, rest) = tail.split_at_mut(groups.len() * rank);
                out_rest = rest;
                consumed_rows = groups.end;
                ctxs.push(Ctx { task, buf: span, row0: groups.start, srow });
            }
            Task::Split { .. } => {
                let (row, rest) = std::mem::take(&mut slots_rest).split_at_mut(rank);
                slots_rest = rest;
                ctxs.push(Ctx { task, buf: row, row0: 0, srow });
            }
        }
    }
    ctxs.into_par_iter().for_each(|ctx| {
        let Ctx { task, buf, row0, srow } = ctx;
        match task {
            Task::Owned { groups } => {
                for i in groups.clone() {
                    let off = (i - row0) * rank;
                    let row = &mut buf[off..off + rank];
                    reduce_element(i, rptr, rperm, delta_cols, delta_facs, parent, srow, row);
                }
            }
            Task::Split { group, elems, .. } => {
                let base = rptr[*group];
                match rperm {
                    Some(perm) => {
                        for &j in &perm[base + elems.start..base + elems.end] {
                            contrib(parent, delta_cols, delta_facs, j as usize, srow, buf);
                        }
                    }
                    None => {
                        for j in base + elems.start..base + elems.end {
                            contrib(parent, delta_cols, delta_facs, j, srow, buf);
                        }
                    }
                }
            }
        }
    });
    for sp in sched.splits() {
        let orow = out.row_mut(sp.group);
        for s in 0..sp.nslots {
            let srow = &slots[(sp.slot0 + s) * rank..(sp.slot0 + s + 1) * rank];
            kernels::add_assign(orow, srow);
        }
    }
}

/// The sequential push ("scatter") TTMV kernel: one pass over the
/// parent, accumulating each contribution into the child row given by
/// the inverse reduction map. Used when the child is far smaller than
/// the parent, so the child accumulator stays cache-resident while the
/// parent streams. `scratch` is one caller-owned rank row:
/// allocation-free.
#[adatm::hot]
fn kernel_scatter_seq(
    out: &mut Mat,
    rank: usize,
    pmap: &[u32],
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    scratch: &mut [f64],
) {
    // `out` is already zeroed by the caller.
    let acc = out.as_mut_slice();
    for (j, &e) in pmap.iter().enumerate() {
        let row = &mut acc[e as usize * rank..(e as usize + 1) * rank];
        contrib(parent, delta_cols, delta_facs, j, scratch, row);
    }
}

/// The scheduled parallel scatter kernel: parent chunks accumulate into
/// compact per-chunk buffers covering only the child rows they actually
/// touch (per the persistent [`ScatterSchedule`]), merged per-row
/// afterwards. Replaces the old dense `child_len x R`-per-chunk
/// tree-reduction.
#[adatm::hot]
fn kernel_scatter_par(
    out: &mut Mat,
    rank: usize,
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    sched: &ScatterSchedule,
    ws: &mut Workspace,
) {
    struct Ctx<'a> {
        c: usize,
        acc: &'a mut [f64],
        srow: &'a mut [f64],
    }
    let nchunks = sched.num_chunks();
    let (scratch, slots) = ws.ensure(nchunks * rank, sched.total_rows() * rank);
    let mut ctxs: Vec<Ctx<'_>> = Vec::with_capacity(nchunks);
    let mut slots_rest = &mut slots[..];
    let mut scratch_rest = &mut scratch[..];
    for c in 0..nchunks {
        let (srow, rest) = std::mem::take(&mut scratch_rest).split_at_mut(rank);
        scratch_rest = rest;
        let (acc, rest) =
            std::mem::take(&mut slots_rest).split_at_mut(sched.chunk_rows(c).len() * rank);
        slots_rest = rest;
        ctxs.push(Ctx { c, acc, srow });
    }
    let cmap = sched.cmap();
    ctxs.into_par_iter().for_each(|ctx| {
        let Ctx { c, acc, srow } = ctx;
        for j in sched.chunk(c) {
            let e = cmap[j] as usize;
            let row = &mut acc[e * rank..(e + 1) * rank];
            contrib(parent, delta_cols, delta_facs, j, srow, row);
        }
    });
    // Merge: each chunk's compact rows into the child rows it touched.
    let mut off = 0usize;
    for c in 0..nchunks {
        for &e in sched.chunk_rows(c) {
            let srow = &slots[off..off + rank];
            off += rank;
            let orow = out.row_mut(e as usize);
            kernels::add_assign(orow, srow);
        }
    }
}

/// The column-at-a-time kernel: one full pass over the reduction sets per
/// rank column (E12 ablation baseline; same arithmetic, `R`x the index
/// traffic).
#[adatm::hot]
#[allow(clippy::too_many_arguments)]
fn kernel_colwise(
    out: &mut Mat,
    rank: usize,
    rptr: &[usize],
    rperm: &[u32],
    delta_cols: &[&[Idx]],
    delta_facs: &[&Mat],
    parent: &ParentVals<'_>,
    parallel: bool,
) {
    let body = |base: usize, block: &mut [f64]| {
        for r in 0..rank {
            for (e, row) in block.chunks_mut(rank).enumerate() {
                let i = base + e;
                let mut acc = 0.0f64;
                for &j in &rperm[rptr[i]..rptr[i + 1]] {
                    let j = j as usize;
                    let mut p = match parent {
                        ParentVals::Scalars(v) => v[j],
                        ParentVals::Rows(m) => m.get(j, r),
                    };
                    for (col, fac) in delta_cols.iter().zip(delta_facs.iter()) {
                        p *= fac.get(col[j] as usize, r);
                    }
                    acc += p;
                }
                row[r] = acc;
            }
        }
    };
    if parallel {
        out.as_mut_slice()
            .par_chunks_mut(rank * PAR_CHUNK)
            .enumerate()
            .for_each(|(ci, block)| body(ci * PAR_CHUNK, block));
    } else {
        body(0, out.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::gen::zipf_tensor;
    use adatm_tensor::mttkrp::mttkrp_seq;

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    fn all_shapes(n: usize) -> Vec<TreeShape> {
        vec![
            TreeShape::two_level(n),
            TreeShape::three_level(n),
            TreeShape::balanced_binary(n),
            TreeShape::left_deep(n),
        ]
    }

    #[test]
    fn mttkrp_matches_coo_for_every_shape_and_mode() {
        let t = zipf_tensor(&[15, 20, 12, 18], 600, &[0.6; 4], 21);
        let factors = factors_for(&t, 5, 100);
        for shape in all_shapes(4) {
            let mut eng = DtreeEngine::new(&t, &shape, 5);
            for mode in 0..4 {
                eng.invalidate_mode(mode);
                let m = eng.mttkrp(&t, &factors, mode);
                let m_ref = mttkrp_seq(&t, &factors, mode);
                assert!(
                    m.max_abs_diff(&m_ref) < 1e-10,
                    "shape {shape} mode {mode} diff {}",
                    m.max_abs_diff(&m_ref)
                );
            }
        }
    }

    #[test]
    fn mttkrp_5_and_6_modes_bdt() {
        for n in [5usize, 6] {
            let dims: Vec<usize> = (0..n).map(|d| 8 + 3 * d).collect();
            let t = zipf_tensor(&dims, 400, &vec![0.5; n], 31 + n as u64);
            let factors = factors_for(&t, 3, 7);
            let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(n), 3);
            for mode in 0..n {
                eng.invalidate_mode(mode);
                let m = eng.mttkrp(&t, &factors, mode);
                let m_ref = mttkrp_seq(&t, &factors, mode);
                assert!(m.max_abs_diff(&m_ref) < 1e-10, "n {n} mode {mode}");
            }
        }
    }

    #[test]
    fn protocol_reuses_and_stays_correct_across_updates() {
        // Full CP-ALS-like loop: invalidate mode, compute, update factor.
        let t = zipf_tensor(&[10, 12, 14, 16], 300, &[0.4; 4], 5);
        let mut factors = factors_for(&t, 4, 50);
        let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), 4);
        for iter in 0..3 {
            for mode in 0..4 {
                eng.invalidate_mode(mode);
                let m = eng.mttkrp(&t, &factors, mode);
                let m_ref = mttkrp_seq(&t, &factors, mode);
                assert!(m.max_abs_diff(&m_ref) < 1e-10, "iter {iter} mode {mode}");
                // Simulated factor update.
                factors[mode] = Mat::random(t.dims()[mode], 4, 1000 + iter * 10 + mode as u64);
            }
        }
    }

    #[test]
    fn node_computed_once_per_iteration_bdt() {
        // Theorem 2 consequence: 2N - 2 TTMV calls per iteration for a BDT
        // (every non-root node exactly once).
        let t = zipf_tensor(&[10, 10, 10, 10], 200, &[0.3; 4], 9);
        let factors = factors_for(&t, 3, 60);
        let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), 3);
        // Warm-up iteration (first iteration computes the same count).
        for mode in 0..4 {
            eng.invalidate_mode(mode);
            let _ = eng.mttkrp(&t, &factors, mode);
        }
        let calls_before = eng.ops().ttmv_calls;
        for mode in 0..4 {
            eng.invalidate_mode(mode);
            let _ = eng.mttkrp(&t, &factors, mode);
        }
        assert_eq!(eng.ops().ttmv_calls - calls_before, 6, "2N-2 = 6 for N = 4");
    }

    #[test]
    fn two_level_does_n_minus_1_ttvs_per_mode_worth() {
        // Flat tree: each leaf is computed straight from the root with
        // |delta| = N-1, and nothing is shared.
        let t = zipf_tensor(&[10, 10, 10], 150, &[0.3; 3], 2);
        let factors = factors_for(&t, 2, 3);
        let mut eng = DtreeEngine::new(&t, &TreeShape::two_level(3), 2);
        for mode in 0..3 {
            eng.invalidate_mode(mode);
            let _ = eng.mttkrp(&t, &factors, mode);
        }
        let ops = eng.ops();
        assert_eq!(ops.ttmv_calls, 3);
        assert_eq!(ops.hadamard_row_mults, 3 * t.nnz() as u64 * 2);
    }

    #[test]
    fn live_nodes_bounded_by_tree_height() {
        let n = 8;
        let dims = vec![12usize; n];
        let t = zipf_tensor(&dims, 500, &vec![0.4; n], 77);
        let shape = TreeShape::balanced_binary(n);
        let height = shape.height();
        let factors = factors_for(&t, 3, 8);
        let mut eng = DtreeEngine::new(&t, &shape, 3);
        for _iter in 0..2 {
            for mode in 0..n {
                eng.invalidate_mode(mode);
                let _ = eng.mttkrp(&t, &factors, mode);
                assert!(
                    eng.live_nodes() <= height,
                    "live {} exceeds height {height} after mode {mode}",
                    eng.live_nodes()
                );
            }
        }
        assert!(eng.mem().peak_live_nodes <= height);
    }

    #[test]
    fn colwise_matches_thick() {
        let t = zipf_tensor(&[14, 11, 13, 9], 350, &[0.5; 4], 13);
        let factors = factors_for(&t, 6, 70);
        let opts = EngineOptions { parallel: false, thick: false };
        let mut thin = DtreeEngine::with_options(&t, &TreeShape::balanced_binary(4), 6, opts);
        let mut thick = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), 6);
        for mode in 0..4 {
            thin.invalidate_mode(mode);
            thick.invalidate_mode(mode);
            let a = thin.mttkrp(&t, &factors, mode);
            let b = thick.mttkrp(&t, &factors, mode);
            assert!(a.max_abs_diff(&b) < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn parallel_matches_sequential_on_large_node() {
        // Enough elements to cross PAR_THRESHOLD.
        let t = zipf_tensor(&[300, 300, 300], 20_000, &[0.2; 3], 14);
        let factors = factors_for(&t, 4, 90);
        let seq_opts = EngineOptions { parallel: false, thick: true };
        let mut seq = DtreeEngine::with_options(&t, &TreeShape::balanced_binary(3), 4, seq_opts);
        let mut par = DtreeEngine::new(&t, &TreeShape::balanced_binary(3), 4);
        for mode in 0..3 {
            seq.invalidate_mode(mode);
            par.invalidate_mode(mode);
            let a = seq.mttkrp(&t, &factors, mode);
            let b = par.mttkrp(&t, &factors, mode);
            assert!(a.max_abs_diff(&b) < 1e-9, "mode {mode}");
        }
    }

    #[test]
    fn scheduled_parallel_kernels_match_sequential_in_pool() {
        // Skewed mode 0 creates hot reduction sets (split sub-tasks);
        // the small-mode leaves exercise the scatter schedule. A real
        // multi-thread pool makes the scheduled parallel paths run.
        let t = zipf_tensor(&[40, 300, 300], 30_000, &[0.95, 0.2, 0.2], 23);
        let factors = factors_for(&t, 4, 91);
        let seq_opts = EngineOptions { parallel: false, thick: true };
        let mut seq = DtreeEngine::with_options(&t, &TreeShape::balanced_binary(3), 4, seq_opts);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("thread pool");
        pool.install(|| {
            let mut par = DtreeEngine::new(&t, &TreeShape::balanced_binary(3), 4);
            for _iter in 0..2 {
                for mode in 0..3 {
                    seq.invalidate_mode(mode);
                    par.invalidate_mode(mode);
                    let a = seq.mttkrp(&t, &factors, mode);
                    let b = par.mttkrp(&t, &factors, mode);
                    assert!(a.max_abs_diff(&b) < 1e-9, "mode {mode}");
                }
            }
        });
    }

    #[test]
    fn scheduled_parallel_runs_are_deterministic() {
        let t = zipf_tensor(&[50, 200, 200], 20_000, &[0.9, 0.3, 0.3], 29);
        let factors = factors_for(&t, 4, 17);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("thread pool");
        pool.install(|| {
            let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(3), 4);
            eng.invalidate_mode(1);
            let a = eng.mttkrp(&t, &factors, 1);
            eng.invalidate_all();
            eng.invalidate_mode(1);
            let b = eng.mttkrp(&t, &factors, 1);
            // Static schedules: two runs agree bitwise, not just within
            // floating-point tolerance.
            assert_eq!(a.as_slice(), b.as_slice());
        });
    }

    #[test]
    fn pool_reuses_value_matrices_and_reset_clears() {
        let t = zipf_tensor(&[12, 12, 12, 12], 300, &[0.4; 4], 8);
        let factors = factors_for(&t, 3, 12);
        let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), 3);
        for mode in 0..4 {
            eng.invalidate_mode(mode);
            let _ = eng.mttkrp(&t, &factors, mode);
        }
        assert!(eng.pooled_bytes() > 0, "invalidated nodes should be pooled");
        eng.reset_caches();
        assert_eq!(eng.pooled_bytes(), 0);
        // Still correct after dropping every cache.
        eng.invalidate_all();
        for mode in 0..4 {
            eng.invalidate_mode(mode);
            let m = eng.mttkrp(&t, &factors, mode);
            let want = mttkrp_seq(&t, &factors, mode);
            assert!(m.max_abs_diff(&want) < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn leaf_values_expose_compact_result() {
        let t = SparseTensor::from_entries(vec![6, 3], &[(vec![1, 0], 2.0), (vec![4, 2], 3.0)]);
        let factors = factors_for(&t, 2, 6);
        let mut eng = DtreeEngine::new(&t, &TreeShape::two_level(2), 2);
        assert!(eng.leaf_values(0).is_none());
        let m = eng.mttkrp(&t, &factors, 0);
        let (idx, vals) = eng.leaf_values(0).expect("leaf valid after mttkrp");
        assert_eq!(idx, &[1, 4]);
        for (e, &i) in idx.iter().enumerate() {
            assert_eq!(vals.row(e), m.row(i as usize));
        }
    }

    #[test]
    fn symbolic_structure_shared_across_ranks() {
        // The rank-independent symbolic pass is built once and shared by
        // engines at different ranks; both must stay correct.
        let t = zipf_tensor(&[14, 12, 16, 10], 400, &[0.5; 4], 19);
        let shape = TreeShape::balanced_binary(4);
        let base = DtreeEngine::new(&t, &shape, 2);
        let sym = base.shared_symbolic();
        let tree = crate::tree::DimTree::from_shape(&shape);
        let mut eng8 = DtreeEngine::from_parts(tree, sym.clone(), 8, EngineOptions::default());
        assert!(std::sync::Arc::strong_count(&sym) >= 3);
        let factors = factors_for(&t, 8, 44);
        for mode in 0..4 {
            eng8.invalidate_mode(mode);
            let m = eng8.mttkrp(&t, &factors, mode);
            let want = mttkrp_seq(&t, &factors, mode);
            assert!(m.max_abs_diff(&want) < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn invalidate_all_clears_everything() {
        let t = zipf_tensor(&[8, 8, 8, 8], 100, &[0.3; 4], 4);
        let factors = factors_for(&t, 2, 2);
        let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(4), 2);
        let _ = eng.mttkrp(&t, &factors, 0);
        assert!(eng.live_nodes() > 0);
        eng.invalidate_all();
        assert_eq!(eng.live_nodes(), 0);
        assert_eq!(eng.mem().current_value_bytes, 0);
    }

    #[test]
    fn empty_tensor_mttkrp_is_zero() {
        let t = SparseTensor::empty(vec![5, 6, 7]);
        let factors = factors_for(&t, 3, 1);
        let mut eng = DtreeEngine::new(&t, &TreeShape::balanced_binary(3), 3);
        let m = eng.mttkrp(&t, &factors, 1);
        assert_eq!(m.fro_norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different tensor")]
    fn engine_rejects_foreign_tensor() {
        let a = zipf_tensor(&[8, 8, 8], 50, &[0.0; 3], 1);
        let b = zipf_tensor(&[8, 8, 8], 60, &[0.0; 3], 2);
        let factors = factors_for(&b, 2, 1);
        let mut eng = DtreeEngine::new(&a, &TreeShape::balanced_binary(3), 2);
        let _ = eng.mttkrp(&b, &factors, 0);
    }
}
