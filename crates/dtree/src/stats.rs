//! Operation counts and live-memory accounting for the numeric engine.
//!
//! These counters serve two purposes: they are the measured side of the
//! model-accuracy experiment (the planner *predicts* Hadamard work and
//! value-matrix bytes; the engine *counts* them), and they back the
//! memory-usage table of the evaluation.

/// Cumulative operation counts of a [`DtreeEngine`](crate::DtreeEngine).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of node tensors computed (vectorized TTMV calls).
    pub ttmv_calls: u64,
    /// Row Hadamard multiplications performed, in units of length-`R` row
    /// products (each is `R` scalar multiplies).
    pub hadamard_row_mults: u64,
    /// Row additions into accumulators, in units of length-`R` rows.
    pub row_adds: u64,
    /// Scalar fused multiply-adds, the `flops` unit of the cost model:
    /// `R * (hadamard_row_mults + row_adds)` accumulated exactly.
    pub flops: u64,
}

impl OpStats {
    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = OpStats::default();
    }
}

/// Live value-matrix memory accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes of currently allocated value matrices.
    pub current_value_bytes: usize,
    /// High-water mark of `current_value_bytes`.
    pub peak_value_bytes: usize,
    /// Number of currently allocated (valid) node value matrices.
    pub live_nodes: usize,
    /// High-water mark of `live_nodes`.
    pub peak_live_nodes: usize,
}

impl MemoryStats {
    /// Records an allocation of `bytes` for one node.
    pub fn alloc(&mut self, bytes: usize) {
        self.current_value_bytes += bytes;
        self.live_nodes += 1;
        self.peak_value_bytes = self.peak_value_bytes.max(self.current_value_bytes);
        self.peak_live_nodes = self.peak_live_nodes.max(self.live_nodes);
    }

    /// Records the release of `bytes` for one node.
    pub fn free(&mut self, bytes: usize) {
        debug_assert!(self.current_value_bytes >= bytes);
        debug_assert!(self.live_nodes > 0);
        self.current_value_bytes = self.current_value_bytes.saturating_sub(bytes);
        self.live_nodes -= 1;
    }

    /// Resets current values and high-water marks.
    pub fn reset(&mut self) {
        *self = MemoryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_peak_tracks_high_water() {
        let mut m = MemoryStats::default();
        m.alloc(100);
        m.alloc(50);
        assert_eq!(m.current_value_bytes, 150);
        assert_eq!(m.peak_value_bytes, 150);
        assert_eq!(m.peak_live_nodes, 2);
        m.free(100);
        assert_eq!(m.current_value_bytes, 50);
        assert_eq!(m.peak_value_bytes, 150);
        m.alloc(30);
        assert_eq!(m.peak_value_bytes, 150);
        assert_eq!(m.live_nodes, 2);
    }

    #[test]
    fn op_stats_reset() {
        let mut s = OpStats { ttmv_calls: 3, hadamard_row_mults: 10, row_adds: 4, flops: 99 };
        s.reset();
        assert_eq!(s, OpStats::default());
    }
}
