//! Dimension trees: memoized MTTKRP for sparse CP decomposition.
//!
//! A *dimension tree* over an `N`-mode tensor is a rooted tree whose
//! leaves are the single modes `{1}, ..., {N}` and whose internal nodes
//! carry mode sets partitioned by their children. Associating with each
//! node `t` the partial tensor-times-vector products
//! `X ×_{d ∉ µ(t)} u_r^(d)` turns the `N` MTTKRPs of one CP-ALS iteration
//! into a traversal that computes every node **once** per iteration —
//! `O(N log N)` tensor-times-multiple-vector products for a balanced
//! binary tree instead of the `O(N²)` of the non-memoized schedule.
//!
//! The crate splits the work the way high-performance implementations do:
//!
//! * [`shape`] — declarative tree shapes (flat, 3-level, balanced binary,
//!   left-deep, arbitrary) — the *strategy space* the model-driven planner
//!   searches;
//! * [`tree`] — the flattened, validated tree with per-node mode sets and
//!   `delta` (modes multiplied away between parent and child);
//! * [`symbolic`] — the one-time structural analysis: each node's distinct
//!   index tuples and the reduction sets mapping them to parent elements;
//! * [`numeric`] — the per-iteration vectorized TTMV kernels (all `R`
//!   columns at once, rayon-parallel over node elements) plus the
//!   invalidation protocol of dimension-tree CP-ALS;
//! * [`stats`] — operation counts and live-memory accounting used by the
//!   memory/ops experiments and to validate the planner's cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod numeric;
pub mod sched;
pub mod shape;
pub mod stats;
pub mod symbolic;
pub mod tree;

pub use error::DtreeError;
pub use numeric::{DtreeEngine, EngineOptions, NodeKernelClass};
pub use shape::TreeShape;
pub use stats::{MemoryStats, OpStats};
pub use symbolic::{scatter_eligible, SymbolicTree};
pub use tree::DimTree;
