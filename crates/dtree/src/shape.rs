//! Declarative dimension-tree shapes — the memoization strategy space.
//!
//! A [`TreeShape`] describes *what to memoize* without reference to any
//! particular tensor. The named constructors cover the strategies the
//! literature compares:
//!
//! * [`TreeShape::two_level`] — no memoization: every mode hangs directly
//!   off the root (`ht-tree2` / index-compressed SPLATT-equivalent work,
//!   `N-1` TTVs per mode);
//! * [`TreeShape::three_level`] — one layer of memoized intermediates
//!   (Phan et al.'s two-group scheme, a 2x work reduction);
//! * [`TreeShape::balanced_binary`] — the full BDT with the
//!   `O(N/log N)` asymptotic reduction;
//! * [`TreeShape::left_deep`] — the degenerate caterpillar tree, maximal
//!   memory for minimal recompute of one hot path;
//! * arbitrary shapes via [`TreeShape::internal`], which is what the
//!   model-driven planner emits.

use std::fmt;

/// A dimension-tree shape: a recursive partition of a set of modes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TreeShape {
    /// A leaf holding exactly one mode.
    Leaf(usize),
    /// An internal node whose children partition its mode set.
    Internal(Vec<TreeShape>),
}

impl TreeShape {
    /// A leaf for `mode`.
    pub fn leaf(mode: usize) -> Self {
        TreeShape::Leaf(mode)
    }

    /// An internal node over the given children.
    ///
    /// # Panics
    /// Panics if fewer than two children are supplied (a chain node would
    /// memoize nothing and only add a copy).
    pub fn internal(children: Vec<TreeShape>) -> Self {
        assert!(children.len() >= 2, "internal nodes need at least two children");
        TreeShape::Internal(children)
    }

    /// The flat tree: all `n` modes directly under the root.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn two_level(n: usize) -> Self {
        assert!(n >= 2, "CP decomposition needs at least 2 modes");
        TreeShape::Internal((0..n).map(TreeShape::Leaf).collect())
    }

    /// The 3-level tree: root splits modes into halves `[0, n/2)` and
    /// `[n/2, n)`, each half's modes hang flat below. For `n <= 3` this
    /// coincides with shapes that have no room for a distinct middle
    /// level (a half with a single mode stays a leaf).
    pub fn three_level(n: usize) -> Self {
        assert!(n >= 2, "CP decomposition needs at least 2 modes");
        let split = n / 2;
        let group = |lo: usize, hi: usize| -> TreeShape {
            if hi - lo == 1 {
                TreeShape::Leaf(lo)
            } else {
                TreeShape::Internal((lo..hi).map(TreeShape::Leaf).collect())
            }
        };
        TreeShape::Internal(vec![group(0, split.max(1)), group(split.max(1), n)])
    }

    /// The balanced binary dimension tree (BDT) over modes `0..n`.
    pub fn balanced_binary(n: usize) -> Self {
        assert!(n >= 2, "CP decomposition needs at least 2 modes");
        Self::bdt_range(0, n)
    }

    fn bdt_range(lo: usize, hi: usize) -> TreeShape {
        debug_assert!(hi > lo);
        if hi - lo == 1 {
            TreeShape::Leaf(lo)
        } else {
            let mid = lo + (hi - lo) / 2;
            TreeShape::Internal(vec![Self::bdt_range(lo, mid), Self::bdt_range(mid, hi)])
        }
    }

    /// The left-deep (caterpillar) tree: `((((0, 1), 2), 3), ...)` — the
    /// maximal-memoization extreme for mode-ascending traversals.
    pub fn left_deep(n: usize) -> Self {
        assert!(n >= 2, "CP decomposition needs at least 2 modes");
        let mut t = TreeShape::Internal(vec![TreeShape::Leaf(0), TreeShape::Leaf(1)]);
        for m in 2..n {
            t = TreeShape::Internal(vec![t, TreeShape::Leaf(m)]);
        }
        t
    }

    /// Builds a binary tree over the contiguous interval `lo..hi` of
    /// `perm` using per-interval split points: `split(lo, hi)` must return
    /// `s` with `lo < s < hi`. This is the constructor the planner's
    /// interval DP uses to materialize its chosen strategy.
    pub fn from_splits(
        perm: &[usize],
        lo: usize,
        hi: usize,
        split: &dyn Fn(usize, usize) -> usize,
    ) -> TreeShape {
        assert!(hi > lo, "empty interval");
        if hi - lo == 1 {
            return TreeShape::Leaf(perm[lo]);
        }
        let s = split(lo, hi);
        assert!(lo < s && s < hi, "split {s} outside ({lo}, {hi})");
        TreeShape::Internal(vec![
            Self::from_splits(perm, lo, s, split),
            Self::from_splits(perm, s, hi, split),
        ])
    }

    /// The modes covered by this shape, in left-to-right leaf order.
    pub fn modes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_modes(&mut out);
        out
    }

    fn collect_modes(&self, out: &mut Vec<usize>) {
        match self {
            TreeShape::Leaf(m) => out.push(*m),
            TreeShape::Internal(ch) => ch.iter().for_each(|c| c.collect_modes(out)),
        }
    }

    /// Total node count (internal + leaves), excluding nothing.
    pub fn node_count(&self) -> usize {
        match self {
            TreeShape::Leaf(_) => 1,
            TreeShape::Internal(ch) => 1 + ch.iter().map(TreeShape::node_count).sum::<usize>(),
        }
    }

    /// Number of internal (memoized) nodes excluding the root.
    ///
    /// This is the count of intermediate tensors a strategy stores — the
    /// "number of memoized partial products" parameter of the paper's
    /// strategy space.
    pub fn memo_count(&self) -> usize {
        fn inner(s: &TreeShape) -> usize {
            match s {
                TreeShape::Leaf(_) => 0,
                TreeShape::Internal(ch) => 1 + ch.iter().map(inner).sum::<usize>(),
            }
        }
        match self {
            TreeShape::Leaf(_) => 0,
            TreeShape::Internal(ch) => ch.iter().map(inner).sum(),
        }
    }

    /// Tree height (root = level 0; a leaf child of the root is at 1).
    pub fn height(&self) -> usize {
        match self {
            TreeShape::Leaf(_) => 0,
            TreeShape::Internal(ch) => 1 + ch.iter().map(TreeShape::height).max().unwrap_or(0),
        }
    }

    /// Validates that the shape's leaves are exactly the modes `0..n`,
    /// each once. Returns `n`.
    ///
    /// # Panics
    /// Panics (with a description) if not.
    pub fn validate(&self) -> usize {
        let mut modes = self.modes();
        let n = modes.len();
        modes.sort_unstable();
        for (want, got) in modes.iter().enumerate() {
            assert_eq!(*got, want, "shape must cover modes 0..{n} exactly once");
        }
        assert!(
            matches!(self, TreeShape::Internal(_)) || n == 1,
            "root of a multi-mode shape must be internal"
        );
        n
    }
}

/// Error from parsing a [`TreeShape`] out of its textual form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShapeParseError(String);

impl fmt::Display for ShapeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tree shape: {}", self.0)
    }
}

impl std::error::Error for ShapeParseError {}

impl std::str::FromStr for TreeShape {
    type Err = ShapeParseError;

    /// Parses the [`Display`](fmt::Display) notation, e.g. `((0 1) (2 3))`.
    ///
    /// The result is syntactically a tree; call [`TreeShape::validate`] to
    /// additionally check that the leaves cover `0..N` exactly once.
    fn from_str(s: &str) -> Result<Self, ShapeParseError> {
        let mut tokens = Vec::new();
        let mut chars = s.char_indices().peekable();
        while let Some((i, c)) = chars.next() {
            match c {
                '(' | ')' => tokens.push((i, c.to_string())),
                c if c.is_ascii_digit() => {
                    let mut num = c.to_string();
                    while let Some(&(_, d)) = chars.peek() {
                        if d.is_ascii_digit() {
                            num.push(d);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push((i, num));
                }
                c if c.is_whitespace() => {}
                c => return Err(ShapeParseError(format!("unexpected character '{c}' at {i}"))),
            }
        }
        let mut pos = 0usize;
        let shape = parse_node(&tokens, &mut pos)?;
        if pos != tokens.len() {
            return Err(ShapeParseError("trailing tokens after shape".into()));
        }
        Ok(shape)
    }
}

fn parse_node(tokens: &[(usize, String)], pos: &mut usize) -> Result<TreeShape, ShapeParseError> {
    let (at, tok) =
        tokens.get(*pos).ok_or_else(|| ShapeParseError("unexpected end of input".into()))?;
    *pos += 1;
    if tok == "(" {
        let mut children = Vec::new();
        loop {
            let (at2, next) =
                tokens.get(*pos).ok_or_else(|| ShapeParseError(format!("unclosed '(' at {at}")))?;
            if next == ")" {
                *pos += 1;
                break;
            }
            if next == "(" || next.chars().all(|c| c.is_ascii_digit()) {
                children.push(parse_node(tokens, pos)?);
            } else {
                return Err(ShapeParseError(format!("unexpected token '{next}' at {at2}")));
            }
        }
        if children.len() < 2 {
            return Err(ShapeParseError(format!(
                "internal node at {at} needs at least two children"
            )));
        }
        Ok(TreeShape::Internal(children))
    } else if tok == ")" {
        Err(ShapeParseError(format!("unexpected ')' at {at}")))
    } else {
        let mode: usize =
            tok.parse().map_err(|_| ShapeParseError(format!("bad mode '{tok}' at {at}")))?;
        Ok(TreeShape::Leaf(mode))
    }
}

impl fmt::Display for TreeShape {
    /// Renders e.g. `((0 1)(2 3))` — the notation experiment tables use.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeShape::Leaf(m) => write!(f, "{m}"),
            TreeShape::Internal(ch) => {
                write!(f, "(")?;
                for (i, c) in ch.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_shape() {
        let s = TreeShape::two_level(4);
        assert_eq!(s.modes(), vec![0, 1, 2, 3]);
        assert_eq!(s.height(), 1);
        assert_eq!(s.memo_count(), 0);
        assert_eq!(s.node_count(), 5);
        s.validate();
    }

    #[test]
    fn three_level_shape_4_modes() {
        let s = TreeShape::three_level(4);
        assert_eq!(s.to_string(), "((0 1) (2 3))");
        assert_eq!(s.memo_count(), 2);
        assert_eq!(s.height(), 2);
        s.validate();
    }

    #[test]
    fn three_level_odd_and_small() {
        let s5 = TreeShape::three_level(5);
        assert_eq!(s5.modes(), vec![0, 1, 2, 3, 4]);
        s5.validate();
        let s2 = TreeShape::three_level(2);
        assert_eq!(s2.to_string(), "(0 1)");
        s2.validate();
        let s3 = TreeShape::three_level(3);
        assert_eq!(s3.to_string(), "(0 (1 2))");
        s3.validate();
    }

    #[test]
    fn bdt_8_modes_is_complete() {
        let s = TreeShape::balanced_binary(8);
        assert_eq!(s.height(), 3);
        assert_eq!(s.node_count(), 15);
        assert_eq!(s.memo_count(), 6);
        s.validate();
    }

    #[test]
    fn bdt_height_is_ceil_log2() {
        for n in 2..40 {
            let s = TreeShape::balanced_binary(n);
            let expect = (n as f64).log2().ceil() as usize;
            assert_eq!(s.height(), expect, "n = {n}");
            s.validate();
        }
    }

    #[test]
    fn left_deep_height_is_n_minus_1() {
        let s = TreeShape::left_deep(5);
        assert_eq!(s.height(), 4);
        assert_eq!(s.to_string(), "((((0 1) 2) 3) 4)");
        s.validate();
    }

    #[test]
    fn from_splits_midpoint_equals_bdt() {
        let perm: Vec<usize> = (0..8).collect();
        let s = TreeShape::from_splits(&perm, 0, 8, &|lo, hi| lo + (hi - lo) / 2);
        assert_eq!(s, TreeShape::balanced_binary(8));
    }

    #[test]
    fn from_splits_respects_permutation() {
        let perm = vec![3, 1, 0, 2];
        let s = TreeShape::from_splits(&perm, 0, 4, &|lo, hi| lo + (hi - lo) / 2);
        assert_eq!(s.modes(), vec![3, 1, 0, 2]);
        s.validate();
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn validate_rejects_duplicate_modes() {
        TreeShape::internal(vec![TreeShape::Leaf(0), TreeShape::Leaf(0)]).validate();
    }

    #[test]
    #[should_panic(expected = "at least two children")]
    fn internal_rejects_single_child() {
        TreeShape::internal(vec![TreeShape::Leaf(0)]);
    }

    #[test]
    fn display_round_trips_structure() {
        let s = TreeShape::internal(vec![
            TreeShape::Leaf(2),
            TreeShape::internal(vec![TreeShape::Leaf(0), TreeShape::Leaf(1)]),
        ]);
        assert_eq!(s.to_string(), "(2 (0 1))");
    }

    #[test]
    fn parse_round_trips_all_named_shapes() {
        for n in [2usize, 3, 4, 7, 8] {
            for s in [
                TreeShape::two_level(n),
                TreeShape::three_level(n),
                TreeShape::balanced_binary(n),
                TreeShape::left_deep(n),
            ] {
                let parsed: TreeShape = s.to_string().parse().expect("parse back");
                assert_eq!(parsed, s, "n = {n}");
            }
        }
    }

    #[test]
    fn parse_accepts_multi_digit_modes_and_whitespace() {
        let s: TreeShape = " ( 10   (11 12) ) ".parse().unwrap();
        assert_eq!(s.to_string(), "(10 (11 12))");
    }

    #[test]
    fn parse_rejects_malformed_inputs() {
        for bad in ["", "(0", "0)", "(0 1) x", "(0 1) (2 3)", "()", "(0)", "(0 1"] {
            assert!(bad.parse::<TreeShape>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_then_validate_catches_bad_mode_sets() {
        let s: TreeShape = "(0 2)".parse().unwrap();
        assert!(std::panic::catch_unwind(|| s.validate()).is_err());
    }
}
