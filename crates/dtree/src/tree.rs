//! Flattened, validated dimension trees.
//!
//! [`DimTree`] lowers a recursive [`shape::TreeShape`](crate::shape::TreeShape)
//! into index-addressed arrays: node `0` is the root and parents precede
//! children, which lets the symbolic and numeric passes run simple loops
//! in topological order. Each node carries its mode set `µ(t)` and its
//! `delta` — the modes multiplied away when computing the node from its
//! parent (`δ(t) = µ(parent) \ µ(t)`), exactly the per-node TTV work of
//! the dimension-tree formulation.

use crate::shape::TreeShape;

/// One node of a flattened dimension tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// The mode set `µ(t)`, ascending.
    pub modes: Vec<usize>,
    /// Parent node id (`None` for the root).
    pub parent: Option<usize>,
    /// Child node ids (empty for leaves).
    pub children: Vec<usize>,
    /// `µ(parent) \ µ(t)`: the modes whose factor rows are multiplied in
    /// when this node's tensors are computed from the parent's. Empty for
    /// the root.
    pub delta: Vec<usize>,
}

impl Node {
    /// Whether this node is a leaf (single mode, no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A flattened dimension tree over modes `0..ndim`.
#[derive(Clone, Debug)]
pub struct DimTree {
    nodes: Vec<Node>,
    /// `leaf_of[m]` is the node id of the leaf carrying mode `m`.
    leaf_of: Vec<usize>,
    shape: TreeShape,
}

impl DimTree {
    /// Lowers and validates a shape.
    ///
    /// # Panics
    /// Panics if the shape does not cover modes `0..n` exactly once.
    pub fn from_shape(shape: &TreeShape) -> Self {
        let ndim = shape.validate();
        let mut nodes: Vec<Node> = Vec::with_capacity(shape.node_count());
        Self::lower(shape, None, &mut nodes);
        let mut leaf_of = vec![usize::MAX; ndim];
        for (id, node) in nodes.iter().enumerate() {
            if node.is_leaf() {
                leaf_of[node.modes[0]] = id;
            }
        }
        debug_assert!(leaf_of.iter().all(|&l| l != usize::MAX));
        DimTree { nodes, leaf_of, shape: shape.clone() }
    }

    fn lower(shape: &TreeShape, parent: Option<usize>, nodes: &mut Vec<Node>) -> usize {
        let id = nodes.len();
        let mut modes = shape.modes();
        modes.sort_unstable();
        nodes.push(Node { modes, parent, children: Vec::new(), delta: Vec::new() });
        if let TreeShape::Internal(children) = shape {
            for child in children {
                let cid = Self::lower(child, Some(id), nodes);
                nodes[id].children.push(cid);
            }
        }
        // delta = parent's modes minus ours (parent already fully lowered
        // *before* us in terms of its mode set, which is set at push time).
        if let Some(p) = parent {
            let pmodes = nodes[p].modes.clone();
            let own = &nodes[id].modes;
            nodes[id].delta = pmodes.into_iter().filter(|m| !own.contains(m)).collect();
        }
        id
    }

    /// Number of tensor modes covered.
    pub fn ndim(&self) -> usize {
        self.leaf_of.len()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for a validated tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows node `id`.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// All nodes, root first, parents before children.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The leaf node id carrying `mode`.
    pub fn leaf_of(&self, mode: usize) -> usize {
        self.leaf_of[mode]
    }

    /// Node ids on the path from `id` up to (and including) the root.
    pub fn path_to_root(&self, id: usize) -> Vec<usize> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The shape this tree was lowered from.
    pub fn shape(&self) -> &TreeShape {
        &self.shape
    }

    /// Whether mode `n` is in `µ'(t)` for node `id` — i.e. whether the
    /// node's tensors involve a multiplication by `U^(n)` and must be
    /// destroyed when `U^(n)` changes.
    pub fn multiplied_by(&self, id: usize, n: usize) -> bool {
        !self.nodes[id].modes.contains(&n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdt4_structure() {
        let t = DimTree::from_shape(&TreeShape::balanced_binary(4));
        assert_eq!(t.len(), 7);
        assert_eq!(t.node(0).modes, vec![0, 1, 2, 3]);
        assert!(t.node(0).parent.is_none());
        assert!(t.node(0).delta.is_empty());
        // Children of root: {0,1} and {2,3} with deltas the sibling sets.
        let (c1, c2) = (t.node(0).children[0], t.node(0).children[1]);
        assert_eq!(t.node(c1).modes, vec![0, 1]);
        assert_eq!(t.node(c1).delta, vec![2, 3]);
        assert_eq!(t.node(c2).modes, vec![2, 3]);
        assert_eq!(t.node(c2).delta, vec![0, 1]);
    }

    #[test]
    fn parents_precede_children() {
        let t = DimTree::from_shape(&TreeShape::balanced_binary(8));
        for (id, node) in t.nodes().iter().enumerate() {
            if let Some(p) = node.parent {
                assert!(p < id);
            }
            for &c in &node.children {
                assert!(c > id);
            }
        }
    }

    #[test]
    fn leaf_of_maps_every_mode() {
        for shape in [
            TreeShape::two_level(5),
            TreeShape::three_level(5),
            TreeShape::balanced_binary(5),
            TreeShape::left_deep(5),
        ] {
            let t = DimTree::from_shape(&shape);
            for m in 0..5 {
                let leaf = t.node(t.leaf_of(m));
                assert!(leaf.is_leaf());
                assert_eq!(leaf.modes, vec![m]);
            }
        }
    }

    #[test]
    fn delta_partitions_parent_modes() {
        let t = DimTree::from_shape(&TreeShape::balanced_binary(6));
        for node in t.nodes().iter().skip(1) {
            let p = node.parent.unwrap();
            let mut merged: Vec<usize> =
                node.modes.iter().chain(node.delta.iter()).copied().collect();
            merged.sort_unstable();
            assert_eq!(merged, t.node(p).modes);
        }
    }

    #[test]
    fn path_to_root_for_two_level() {
        let t = DimTree::from_shape(&TreeShape::two_level(3));
        let p = t.path_to_root(t.leaf_of(2));
        assert_eq!(p.len(), 2);
        assert_eq!(*p.last().unwrap(), 0);
    }

    #[test]
    fn path_length_bounded_by_height_plus_one() {
        let shape = TreeShape::balanced_binary(16);
        let t = DimTree::from_shape(&shape);
        for m in 0..16 {
            assert!(t.path_to_root(t.leaf_of(m)).len() <= shape.height() + 1);
        }
    }

    #[test]
    fn multiplied_by_is_mode_complement() {
        let t = DimTree::from_shape(&TreeShape::balanced_binary(4));
        // Node {0,1} is multiplied by modes 2 and 3 but not 0, 1.
        let c1 = t.node(0).children[0];
        assert!(!t.multiplied_by(c1, 0));
        assert!(!t.multiplied_by(c1, 1));
        assert!(t.multiplied_by(c1, 2));
        assert!(t.multiplied_by(c1, 3));
    }
}
