//! Symbolic TTV: the one-time structural analysis of a dimension tree.
//!
//! Because every one of a node's `R` tensors shares the nonzero pattern of
//! the input tensor's projection onto the node's mode set, the sparsity
//! structure of the whole tree can be computed **once** and reused across
//! all CP-ALS iterations, ranks-`R` restarts, and initializations. For
//! each non-root node this pass produces:
//!
//! * `idx` — the node's distinct index tuples (one array per mode in
//!   `µ(t)`), obtained by projecting the parent's tuples and deduplicating;
//! * `rptr`/`rperm` — the *reduction set* of each tuple: the parent
//!   elements that sum into it (CSR layout).
//!
//! The numeric pass then updates each node element independently — the
//! reduction sets are disjoint by construction, which is what makes the
//! per-element parallelism race-free.

use crate::error::DtreeError;
use crate::tree::DimTree;
use adatm_tensor::coo::Idx;
use adatm_tensor::SparseTensor;
use rayon::prelude::*;

/// Parent-element count above which the symbolic sort runs in parallel.
const PAR_SORT_THRESHOLD: usize = 1 << 15;

/// Symbolic structure of one tree node.
#[derive(Clone, Debug, Default)]
pub struct SymbolicNode {
    /// Distinct index tuples: `idx[k][e]` is the mode-`µ(t)[k]` index of
    /// element `e`. Empty (no arrays) for the root, whose elements are the
    /// tensor entries themselves.
    pub idx: Vec<Vec<Idx>>,
    /// Reduction-set boundaries: element `e` reduces parent elements
    /// `rperm[rptr[e]..rptr[e+1]]`. Empty for the root.
    pub rptr: Vec<usize>,
    /// Parent element ids, grouped by reducing element and ascending
    /// within each group (best-possible access locality on the parent's
    /// value matrix).
    pub rperm: Vec<u32>,
    /// Number of elements (distinct tuples).
    pub len: usize,
    /// Whether `rperm` is the identity permutation — true for the first
    /// child of every non-root node under the sort-key layout, letting
    /// the numeric kernel stream the parent without indirection.
    pub sequential: bool,
    /// Inverse reduction map (`pmap[j]` = the element parent-element `j`
    /// reduces into), built only for nodes much smaller than their parent
    /// where the scatter ("push") schedule pays: the parent streams
    /// sequentially while the child accumulator stays cache-resident.
    pub pmap: Option<Vec<u32>>,
}

/// Build `pmap` when the child is at most this many elements ...
const SCATTER_MAX_CHILD: usize = 1 << 16;
/// ... and the parent is at least this factor larger.
const SCATTER_MIN_RATIO: usize = 4;

/// Whether a node of `child_elems` elements computed from a parent of
/// `parent_elems` is eligible for the scatter ("push") schedule rather
/// than the pull schedule. Exposed so the calibrated cost model can
/// classify predicted nodes with the same thresholds the symbolic pass
/// applies to real ones (modulo the first-child sequential case, which
/// the model cannot see from element counts alone).
pub fn scatter_eligible(child_elems: usize, parent_elems: usize) -> bool {
    child_elems <= SCATTER_MAX_CHILD && parent_elems >= SCATTER_MIN_RATIO * child_elems.max(1)
}

/// Symbolic structure for every node of a dimension tree over one tensor.
#[derive(Clone, Debug)]
pub struct SymbolicTree {
    nodes: Vec<SymbolicNode>,
    /// (dims, nnz) of the tensor this structure was computed for; numeric
    /// passes assert against it.
    fingerprint: (Vec<usize>, usize),
}

impl SymbolicTree {
    /// Runs the symbolic TTV pass for `tree` over `tensor`.
    ///
    /// Cost: one indirect sort of the parent's elements per non-root node
    /// (`O(E_p log E_p)` with `|µ(t)|`-way comparisons), parallelized for
    /// large nodes. Duplicate coordinates in `tensor` are tolerated (they
    /// simply form a reduction set of size > 1 at the first level).
    pub fn build(tensor: &SparseTensor, tree: &DimTree) -> Self {
        Self::try_build(tensor, tree).unwrap_or_else(|e| panic!("symbolic pass failed: {e}"))
    }

    /// [`SymbolicTree::build`] reporting broken tree invariants as typed
    /// errors instead of panicking. A [`DimTree`] produced by
    /// [`DimTree::from_shape`] never triggers them; this is the defensive
    /// boundary for trees assembled by other means.
    pub fn try_build(tensor: &SparseTensor, tree: &DimTree) -> Result<Self, DtreeError> {
        assert_eq!(tree.ndim(), tensor.ndim(), "tree and tensor order mismatch");
        let mut nodes: Vec<SymbolicNode> = vec![SymbolicNode::default(); tree.len()];
        nodes[0].len = tensor.nnz();
        // Parents precede children in a DimTree, so a single forward pass
        // sees every parent's structure before its children need it.
        //
        // Sort-key layout: each node's elements are ordered by its *first
        // child's* modes first, then the rest of its mode set. A child's
        // symbolic pass sorts the parent's elements by the child's modes;
        // with this layout the first (typically heaviest) child finds the
        // parent already sorted, so its reduction sets walk the parent's
        // value matrix sequentially — the dominant memory stream of the
        // numeric kernels.
        for id in 1..tree.len() {
            let parent = tree.node(id).parent.ok_or(DtreeError::MissingParent { node: id })?;
            let key_modes = sort_key_modes(tree, id);
            // Resolve the parent's index array for each key mode: the
            // tensor's arrays if the parent is the root, else the parent's
            // own symbolic arrays.
            let col_of = |m: usize| -> Result<&[Idx], DtreeError> {
                if parent == 0 {
                    Ok(tensor.mode_idx(m))
                } else {
                    let pos = tree
                        .node(parent)
                        .modes
                        .iter()
                        .position(|&pm| pm == m)
                        .ok_or(DtreeError::ModeNotInParent { node: id, mode: m })?;
                    Ok(nodes[parent].idx[pos].as_slice())
                }
            };
            let key_cols: Vec<&[Idx]> =
                key_modes.iter().map(|&m| col_of(m)).collect::<Result<_, _>>()?;
            // idx arrays are stored in ascending mode order regardless of
            // the sort-key order.
            let own_modes = &tree.node(id).modes;
            let own_positions: Vec<usize> = own_modes
                .iter()
                .map(|&m| {
                    key_modes
                        .iter()
                        .position(|&k| k == m)
                        .ok_or(DtreeError::ModeNotInKey { node: id, mode: m })
                })
                .collect::<Result<_, _>>()?;
            let built = build_node(&key_cols, &own_positions, nodes[parent].len);
            nodes[id] = built;
        }
        let out = SymbolicTree { nodes, fingerprint: (tensor.dims().to_vec(), tensor.nnz()) };
        #[cfg(feature = "audit")]
        out.audit_invariants(tree);
        Ok(out)
    }

    /// Borrows the symbolic structure of node `id`.
    pub fn node(&self, id: usize) -> &SymbolicNode {
        &self.nodes[id]
    }

    /// Number of nodes (equals the tree's).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether there are no nodes (never for a built tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Asserts the structure belongs to `tensor` (cheap fingerprint).
    pub fn check_tensor(&self, tensor: &SparseTensor) {
        assert_eq!(
            self.fingerprint,
            (tensor.dims().to_vec(), tensor.nnz()),
            "symbolic structure was built for a different tensor"
        );
    }

    /// Total bytes of index arrays and reduction sets across all nodes —
    /// the symbolic storage reported in the memory experiment.
    pub fn index_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.idx.iter().map(|c| c.len() * std::mem::size_of::<Idx>()).sum::<usize>()
                    + n.rptr.len() * std::mem::size_of::<usize>()
                    + n.rperm.len() * std::mem::size_of::<u32>()
            })
            .sum()
    }

    /// Element counts per node (node 0 = nnz).
    pub fn element_counts(&self) -> Vec<usize> {
        self.nodes.iter().map(|n| n.len).collect()
    }

    /// Audits the symbolic invariants every numeric kernel relies on:
    /// per non-root node, the reduction sets partition the parent's
    /// elements (CSR shape, strictly increasing boundaries, `rperm` a
    /// permutation of `0..parent_len`) and the index arrays match the
    /// element count. Runs automatically at the end of the symbolic phase
    /// when the `audit` feature is enabled.
    ///
    /// # Panics
    /// Panics with a description of the first broken invariant.
    #[cfg(feature = "audit")]
    pub fn audit_invariants(&self, tree: &DimTree) {
        for id in 1..self.nodes.len() {
            let node = &self.nodes[id];
            let parent = tree.node(id).parent.unwrap_or(0);
            let parent_len = self.nodes[parent].len;
            let expected_rptr = if node.len == 0 { 1 } else { node.len + 1 };
            assert_eq!(
                node.rptr.len(),
                expected_rptr,
                "audit: node {id}: rptr length {} for {} elements",
                node.rptr.len(),
                node.len
            );
            assert_eq!(
                node.rptr.last().copied(),
                Some(if node.len == 0 { 0 } else { parent_len }),
                "audit: node {id}: reduction sets do not cover the parent"
            );
            assert!(
                node.rptr.windows(2).all(|w| w[0] < w[1]),
                "audit: node {id}: empty reduction set"
            );
            assert_eq!(node.rperm.len(), parent_len, "audit: node {id}: rperm length mismatch");
            let mut seen = vec![false; parent_len];
            for &j in &node.rperm {
                assert!(
                    (j as usize) < parent_len && !seen[j as usize],
                    "audit: node {id}: rperm is not a permutation of the parent's elements"
                );
                seen[j as usize] = true;
            }
            for (k, col) in node.idx.iter().enumerate() {
                assert_eq!(col.len(), node.len, "audit: node {id}: idx array {k} length mismatch");
            }
            if let Some(pmap) = &node.pmap {
                assert_eq!(pmap.len(), parent_len, "audit: node {id}: pmap length mismatch");
                assert!(
                    pmap.iter().all(|&e| (e as usize) < node.len),
                    "audit: node {id}: pmap targets out of range"
                );
            }
        }
    }
}

/// The mode order a node's elements are sorted by: first child's key
/// order first (recursively), then the remaining children's. Leaves sort
/// by their single mode.
fn sort_key_modes(tree: &DimTree, id: usize) -> Vec<usize> {
    let node = tree.node(id);
    if node.is_leaf() {
        return node.modes.clone();
    }
    let mut key = Vec::with_capacity(node.modes.len());
    for &c in &node.children {
        key.extend(sort_key_modes(tree, c));
    }
    key
}

/// Builds one node's symbolic structure from the parent's index columns.
///
/// `key_cols` are the parent's index arrays for the node's modes in the
/// node's *sort-key* order; `own_positions[k]` locates the node's `k`-th
/// ascending mode within `key_cols` (for extracting the stored `idx`
/// arrays).
fn build_node(key_cols: &[&[Idx]], own_positions: &[usize], parent_len: usize) -> SymbolicNode {
    let mut perm: Vec<u32> = (0..parent_len as u32).collect();
    let key_cmp = |a: &u32, b: &u32| {
        for col in key_cols {
            match col[*a as usize].cmp(&col[*b as usize]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    };
    if parent_len >= PAR_SORT_THRESHOLD {
        perm.par_sort_unstable_by(key_cmp);
    } else {
        perm.sort_unstable_by(key_cmp);
    }
    let mut idx: Vec<Vec<Idx>> = vec![Vec::new(); own_positions.len()];
    let mut rptr: Vec<usize> = vec![0];
    for (pos, &p) in perm.iter().enumerate() {
        let is_new = pos == 0 || {
            let prev = perm[pos - 1] as usize;
            key_cols.iter().any(|col| col[p as usize] != col[prev])
        };
        if is_new {
            if pos > 0 {
                rptr.push(pos);
            }
            for (col, &kpos) in idx.iter_mut().zip(own_positions.iter()) {
                col.push(key_cols[kpos][p as usize]);
            }
        }
    }
    rptr.push(parent_len);
    if parent_len == 0 {
        rptr = vec![0];
    }
    let len = idx.first().map_or(0, Vec::len);
    // Ascending order within each reduction set maximizes locality on the
    // parent's value matrix; it also makes "identity permutation" (the
    // first-child case) detectable.
    for e in 0..len {
        perm[rptr[e]..rptr[e + 1]].sort_unstable();
    }
    let sequential = perm.iter().enumerate().all(|(i, &p)| p as usize == i);
    let pmap = if !sequential && scatter_eligible(len, parent_len) {
        let mut map = vec![0u32; parent_len];
        for e in 0..len {
            for &j in &perm[rptr[e]..rptr[e + 1]] {
                map[j as usize] = e as u32;
            }
        }
        Some(map)
    } else {
        None
    };
    SymbolicNode { idx, rptr, rperm: perm, len, sequential, pmap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::TreeShape;
    use adatm_tensor::gen::zipf_tensor;
    use adatm_tensor::stats::distinct_projections;

    /// The 4x4x4x4, 7-nonzero example tensor from the dimension-tree
    /// literature's worked figure.
    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 4, 4, 4],
            &[
                (vec![0, 1, 2, 3], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 3, 0, 1], 3.0),
                (vec![3, 0, 1, 2], 4.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![0, 1, 2, 0], 6.0),
                (vec![2, 3, 2, 3], 7.0),
            ],
        )
    }

    fn bdt4(t: &SparseTensor) -> (DimTree, SymbolicTree) {
        let tree = DimTree::from_shape(&TreeShape::balanced_binary(t.ndim()));
        let sym = SymbolicTree::build(t, &tree);
        (tree, sym)
    }

    #[test]
    fn node_element_counts_match_projection_counts() {
        let t = toy();
        let (tree, sym) = bdt4(&t);
        for id in 1..tree.len() {
            let want = distinct_projections(&t, &tree.node(id).modes);
            assert_eq!(sym.node(id).len, want, "node {id} {:?}", tree.node(id).modes);
        }
    }

    #[test]
    fn reduction_sets_partition_parent_elements() {
        let t = zipf_tensor(&[20, 30, 25, 15], 400, &[0.7; 4], 3);
        let (tree, sym) = bdt4(&t);
        for id in 1..tree.len() {
            let parent = tree.node(id).parent.unwrap();
            let node = sym.node(id);
            assert_eq!(*node.rptr.last().unwrap(), sym.node(parent).len, "node {id}");
            assert_eq!(node.rptr.len(), node.len + 1, "node {id}");
            let mut seen: Vec<u32> = node.rperm.clone();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..sym.node(parent).len as u32).collect();
            assert_eq!(seen, expect, "node {id}");
            assert!(node.rptr.windows(2).all(|w| w[0] < w[1]), "empty reduction set");
        }
    }

    #[test]
    fn reduction_members_project_to_their_tuple() {
        let t = toy();
        let (tree, sym) = bdt4(&t);
        // Check the {0,1} child of the root directly against the tensor.
        let c = tree.node(0).children[0];
        assert_eq!(tree.node(c).modes, vec![0, 1]);
        let node = sym.node(c);
        for e in 0..node.len {
            for &j in &node.rperm[node.rptr[e]..node.rptr[e + 1]] {
                assert_eq!(t.mode_idx(0)[j as usize], node.idx[0][e]);
                assert_eq!(t.mode_idx(1)[j as usize], node.idx[1][e]);
            }
        }
    }

    #[test]
    fn toy_tensor_known_projections() {
        // Mode-{0,1} projections of the toy tensor: (0,1),(1,2),(2,3),(3,0)
        // — entries 1, 5, 6 share (0,1).
        let t = toy();
        let (tree, sym) = bdt4(&t);
        let c = tree.node(0).children[0];
        assert_eq!(sym.node(c).len, 4);
        // The (0,1) tuple must have a reduction set of size 3.
        let node = sym.node(c);
        let e = (0..node.len)
            .find(|&e| node.idx[0][e] == 0 && node.idx[1][e] == 1)
            .expect("(0,1) tuple present");
        assert_eq!(node.rptr[e + 1] - node.rptr[e], 3);
    }

    #[test]
    fn deep_tree_grandchildren_consistent() {
        let t = zipf_tensor(&[12, 18, 9, 14, 11, 16], 600, &[0.8; 6], 8);
        let tree = DimTree::from_shape(&TreeShape::balanced_binary(6));
        let sym = SymbolicTree::build(&t, &tree);
        for id in 1..tree.len() {
            let want = distinct_projections(&t, &tree.node(id).modes);
            assert_eq!(sym.node(id).len, want, "node {id}");
        }
    }

    #[test]
    fn two_level_leaves_have_slice_counts() {
        let t = toy();
        let tree = DimTree::from_shape(&TreeShape::two_level(4));
        let sym = SymbolicTree::build(&t, &tree);
        for m in 0..4 {
            assert_eq!(sym.node(tree.leaf_of(m)).len, t.distinct_in_mode(m));
        }
    }

    #[test]
    fn empty_tensor_symbolic_is_empty() {
        let t = SparseTensor::empty(vec![4, 4, 4, 4]);
        let (tree, sym) = bdt4(&t);
        for id in 1..tree.len() {
            assert_eq!(sym.node(id).len, 0);
            assert_eq!(sym.node(id).rptr, vec![0]);
        }
    }

    #[test]
    fn fingerprint_rejects_other_tensor() {
        let t = toy();
        let (_, sym) = bdt4(&t);
        sym.check_tensor(&t); // same tensor: fine
        let other = zipf_tensor(&[4, 4, 4, 4], 5, &[0.0; 4], 1);
        let res = std::panic::catch_unwind(|| sym.check_tensor(&other));
        assert!(res.is_err());
    }

    #[test]
    fn first_child_reduction_sets_are_contiguous_parent_ranges() {
        // The sort-key layout orders each node's elements by its first
        // child's modes first, so the first child's reduction sets must
        // cover contiguous ranges of the parent — the property that makes
        // the dominant value-matrix stream sequential.
        let t = zipf_tensor(&[12, 18, 9, 14, 11, 16, 8, 13], 900, &[0.7; 8], 5);
        let tree = DimTree::from_shape(&TreeShape::balanced_binary(8));
        let sym = SymbolicTree::build(&t, &tree);
        for id in 1..tree.len() {
            let node = tree.node(id);
            if node.is_leaf() {
                continue;
            }
            let first = node.children[0];
            let s = sym.node(first);
            for e in 0..s.len {
                let mut grp: Vec<u32> = s.rperm[s.rptr[e]..s.rptr[e + 1]].to_vec();
                grp.sort_unstable();
                let expect: Vec<u32> = (s.rptr[e] as u32..s.rptr[e + 1] as u32).collect();
                assert_eq!(grp, expect, "node {first} element {e} not contiguous");
            }
        }
    }

    #[test]
    fn index_bytes_positive_and_bounded() {
        let t = zipf_tensor(&[30, 30, 30, 30], 1000, &[0.5; 4], 2);
        let (tree, sym) = bdt4(&t);
        let bytes = sym.index_bytes();
        assert!(bytes > 0);
        // Theorem-level bound: at most N(ceil(log N)+1) index arrays of
        // nnz entries, plus reduction structures <= 2 arrays per node.
        let n = 4usize;
        let bound = t.nnz()
            * (n * 2 * std::mem::size_of::<Idx>()
                + (tree.len() - 1) * (std::mem::size_of::<usize>() + 4));
        assert!(bytes <= bound);
    }
}
