//! Typed errors for dimension-tree structural invariants.
//!
//! The symbolic and numeric passes maintain invariants established by
//! [`crate::tree::DimTree`]'s construction-time validation (parents
//! precede children, deltas partition parent mode sets, every mode has a
//! leaf). Internal helpers report violations as [`DtreeError`] values;
//! the public panicking entry points convert them into panics at the API
//! boundary, so a corrupted tree fails with a description of *which*
//! invariant broke instead of a bare `unwrap` backtrace.

use std::fmt;

/// A violated dimension-tree invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DtreeError {
    /// A non-root node has no parent link.
    MissingParent {
        /// The orphaned node id.
        node: usize,
    },
    /// A node's mode does not appear in its parent's mode set.
    ModeNotInParent {
        /// The child node id.
        node: usize,
        /// The mode missing from the parent.
        mode: usize,
    },
    /// A node's sort key does not cover one of its own modes.
    ModeNotInKey {
        /// The node id.
        node: usize,
        /// The uncovered mode.
        mode: usize,
    },
    /// A node's value matrix was needed but is not currently computed.
    NodeNotComputed {
        /// The invalid node id.
        node: usize,
    },
}

impl fmt::Display for DtreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtreeError::MissingParent { node } => {
                write!(f, "non-root node {node} has no parent")
            }
            DtreeError::ModeNotInParent { node, mode } => {
                write!(f, "mode {mode} of node {node} does not appear in its parent's mode set")
            }
            DtreeError::ModeNotInKey { node, mode } => {
                write!(f, "mode {mode} of node {node} is not covered by its sort key")
            }
            DtreeError::NodeNotComputed { node } => {
                write!(f, "node {node} has no computed value matrix")
            }
        }
    }
}

impl std::error::Error for DtreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_broken_invariant() {
        assert!(DtreeError::MissingParent { node: 3 }.to_string().contains("node 3"));
        let e = DtreeError::ModeNotInParent { node: 2, mode: 1 };
        assert!(e.to_string().contains("parent's mode set"));
        assert!(DtreeError::ModeNotInKey { node: 1, mode: 0 }.to_string().contains("sort key"));
        let e = DtreeError::NodeNotComputed { node: 4 };
        assert!(e.to_string().contains("no computed value matrix"));
    }
}
