// lint: hot-path
//! Persistent schedule for the parallel scatter ("push") TTMV kernel.
//!
//! The scatter kernel streams the parent's elements and accumulates each
//! contribution into the child row given by the inverse reduction map
//! `pmap`. Its parallel form privatizes accumulators per parent chunk;
//! the old implementation privatized a *dense* `child_len x R` matrix per
//! chunk and tree-reduced them — quadratic-ish waste when the child is
//! small but wide. A [`ScatterSchedule`] is computed once per (node,
//! thread count) and records, for each parent chunk, exactly the child
//! rows the chunk touches plus a compact per-element index into them, so
//! the parallel phase accumulates into `touched x R` buffers and the
//! merge is a cheap per-row reduction.

use std::ops::Range;

/// Parent chunks created per worker thread (same slack rule as the
/// mode schedules in `adatm-tensor`).
const CHUNKS_PER_THREAD: usize = 4;

/// Minimum parent elements per chunk; below this, per-chunk overhead
/// (touched-row lists, merge) dominates.
const MIN_CHUNK: usize = 1024;

/// A persistent schedule for one node's parallel scatter kernel.
#[derive(Clone, Debug)]
pub struct ScatterSchedule {
    /// Chunk boundaries over the parent's elements (`nchunks + 1`).
    chunk_ptr: Vec<usize>,
    /// Flat touched-row lists: chunk `c` touches child rows
    /// `rows[row_ptr[c]..row_ptr[c + 1]]`, in first-touch order.
    row_ptr: Vec<usize>,
    rows: Vec<u32>,
    /// `cmap[j]`: index of `pmap[j]` within its chunk's touched-row list.
    cmap: Vec<u32>,
}

impl ScatterSchedule {
    /// Builds the schedule for a node with inverse reduction map `pmap`
    /// (`pmap[j] < child_len`), balanced for `threads` workers.
    pub fn build(pmap: &[u32], child_len: usize, threads: usize) -> Self {
        let parent_len = pmap.len();
        let max_chunks = parent_len.div_ceil(MIN_CHUNK).max(1);
        let nchunks = (threads.max(1) * CHUNKS_PER_THREAD).min(max_chunks);
        let per = parent_len.div_ceil(nchunks).max(1);
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut lo = 0usize;
        chunk_ptr.push(0);
        while lo < parent_len {
            lo = (lo + per).min(parent_len);
            chunk_ptr.push(lo);
        }
        if chunk_ptr.len() == 1 {
            chunk_ptr.push(0); // empty parent: one empty chunk
        }
        let nchunks = chunk_ptr.len() - 1;
        let mut row_ptr = Vec::with_capacity(nchunks + 1);
        let mut rows = Vec::new();
        let mut cmap = vec![0u32; parent_len];
        // First-touch compaction per chunk, with a reusable child-indexed
        // scratch map (`u32::MAX` = untouched this chunk).
        let mut local = vec![u32::MAX; child_len];
        row_ptr.push(0);
        for c in 0..nchunks {
            let base = rows.len();
            for j in chunk_ptr[c]..chunk_ptr[c + 1] {
                let e = pmap[j] as usize;
                if local[e] == u32::MAX {
                    local[e] = (rows.len() - base) as u32;
                    rows.push(e as u32);
                }
                cmap[j] = local[e];
            }
            for &e in &rows[base..] {
                local[e as usize] = u32::MAX;
            }
            row_ptr.push(rows.len());
        }
        ScatterSchedule { chunk_ptr, row_ptr, rows, cmap }
    }

    /// Number of parent chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunk_ptr.len() - 1
    }

    /// Parent-element range of chunk `c`.
    pub fn chunk(&self, c: usize) -> Range<usize> {
        self.chunk_ptr[c]..self.chunk_ptr[c + 1]
    }

    /// Child rows chunk `c` touches, in first-touch order.
    pub fn chunk_rows(&self, c: usize) -> &[u32] {
        &self.rows[self.row_ptr[c]..self.row_ptr[c + 1]]
    }

    /// Compact per-parent-element index into its chunk's touched rows.
    pub fn cmap(&self) -> &[u32] {
        &self.cmap
    }

    /// Total accumulator rows across all chunks (workspace sizing).
    pub fn total_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the schedule degenerates to one chunk (sequential path).
    pub fn is_sequential(&self) -> bool {
        self.num_chunks() <= 1
    }

    /// Approximate bytes held by the schedule (diagnostics).
    pub fn structure_bytes(&self) -> usize {
        (self.chunk_ptr.len() + self.row_ptr.len()) * std::mem::size_of::<usize>()
            + (self.rows.len() + self.cmap.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_parent_exactly() {
        let pmap: Vec<u32> = (0..10_000).map(|j| (j % 37) as u32).collect();
        let s = ScatterSchedule::build(&pmap, 37, 4);
        assert!(s.num_chunks() > 1);
        let mut seen = 0usize;
        for c in 0..s.num_chunks() {
            let r = s.chunk(c);
            assert_eq!(r.start, seen);
            seen = r.end;
        }
        assert_eq!(seen, pmap.len());
    }

    #[test]
    fn cmap_points_at_the_right_row() {
        let pmap: Vec<u32> = (0..8_192).map(|j| ((j * 7) % 5) as u32).collect();
        let s = ScatterSchedule::build(&pmap, 5, 2);
        for c in 0..s.num_chunks() {
            let rows = s.chunk_rows(c);
            for j in s.chunk(c) {
                assert_eq!(rows[s.cmap()[j] as usize], pmap[j], "element {j}");
            }
        }
    }

    #[test]
    fn touched_rows_are_distinct_within_a_chunk() {
        let pmap: Vec<u32> = (0..6_000).map(|j| (j % 11) as u32).collect();
        let s = ScatterSchedule::build(&pmap, 11, 3);
        for c in 0..s.num_chunks() {
            let mut rows = s.chunk_rows(c).to_vec();
            rows.sort_unstable();
            rows.dedup();
            assert_eq!(rows.len(), s.chunk_rows(c).len(), "chunk {c}");
        }
    }

    #[test]
    fn narrow_child_has_small_accumulators() {
        // The point of the schedule: a 4-row child touched by a huge
        // parent must not privatize more than 4 rows per chunk.
        let pmap: Vec<u32> = (0..100_000).map(|j| (j % 4) as u32).collect();
        let s = ScatterSchedule::build(&pmap, 4, 8);
        for c in 0..s.num_chunks() {
            assert!(s.chunk_rows(c).len() <= 4);
        }
        assert!(s.total_rows() <= 4 * s.num_chunks());
    }

    #[test]
    fn single_thread_is_sequential() {
        let pmap: Vec<u32> = (0..5_000).map(|j| (j % 9) as u32).collect();
        let s = ScatterSchedule::build(&pmap, 9, 1);
        // 5000 elements < 4 * MIN_CHUNK, so few chunks; with 1 thread the
        // chunk count is bounded by CHUNKS_PER_THREAD anyway.
        assert!(s.num_chunks() <= 4);
    }

    #[test]
    fn empty_parent_is_harmless() {
        let s = ScatterSchedule::build(&[], 3, 4);
        assert_eq!(s.num_chunks(), 1);
        assert!(s.is_sequential());
        assert_eq!(s.total_rows(), 0);
    }
}
