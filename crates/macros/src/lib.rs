//! Marker attributes for the `adatm-analyze` static-analysis engine.
//!
//! Kernel crates import this crate renamed to `adatm` (the workspace
//! dependency table maps `adatm` to package `adatm-macros`; members
//! write `adatm.workspace = true`), so hot functions read as:
//!
//! ```ignore
//! #[adatm::hot]
//! pub fn mttkrp_par_into(...) { ... }
//! ```
//!
//! The attribute expands to the item unchanged — it exists so the tag
//! is a real, compiler-checked attribute (a typo'd `#[adatm::hott]`
//! fails to resolve) rather than a comment convention. The analysis
//! engine (`cargo xtask analyze`) reads the tag from source and enforces
//! the hot-path allocation lint on the function and, transitively, on
//! every private same-crate callee.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Tags a function as hot-path: the `adatm-analyze` allocation lint
/// denies allocating constructs (`Vec::new`, `collect`, `clone`,
/// `format!`, ...) in its body and in same-crate callees. Expands to
/// the item unchanged.
#[proc_macro_attribute]
pub fn hot(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
