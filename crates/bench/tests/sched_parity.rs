//! Parity and determinism for the scheduled parallel MTTKRP kernels.
//!
//! The load-balanced schedules reorder work (Owned row spans, privatized
//! split sub-tasks merged per row) but must compute the same MTTKRP as
//! the sequential reference on every mode, including the two adversarial
//! shapes the scheduler exists for: Zipf-skewed tensors and a tensor
//! whose nonzeros pile into a single hot row (forcing `Task::Split`).
//! Determinism is also part of the contract — the merge order is fixed
//! by the schedule, so repeated calls are bitwise identical.

use adatm_bench::with_threads;
use adatm_core::all_backends;
use adatm_linalg::Mat;
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::gen::zipf_tensor;
use adatm_tensor::mttkrp::{mttkrp_par_into, mttkrp_seq, schedule_for_view};
use adatm_tensor::schedule::{Task, Workspace};
use adatm_tensor::{SortedModeView, SparseTensor};
use proptest::prelude::*;

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
}

/// A tensor whose mode-1 fiber index collapses onto row 0 for almost
/// every nonzero: one group holds ~95% of the work, so any balanced
/// schedule with `threads >= 2` must split it.
fn single_hot_row_tensor(seed: u64) -> SparseTensor {
    let dims = vec![40usize, 6, 30];
    let nnz = 3200usize;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut inds: Vec<Vec<u32>> = vec![Vec::new(); 3];
    let mut vals = Vec::new();
    for k in 0..nnz {
        inds[0].push((next() % 40) as u32);
        inds[1].push(if k % 20 == 0 { (1 + next() % 5) as u32 } else { 0 });
        inds[2].push((next() % 30) as u32);
        vals.push((next() % 1000) as f64 / 500.0 - 1.0);
    }
    SparseTensor::new(dims, inds, vals)
}

/// Scheduled-parallel COO and CSF kernels vs the sequential reference,
/// every mode.
fn assert_parity(t: &SparseTensor, threads: usize, seed: u64) -> Result<(), TestCaseError> {
    let rank = 5;
    let factors = factors_for(t, rank, seed);
    for mode in 0..t.ndim() {
        let want = mttkrp_seq(t, &factors, mode);

        let view = SortedModeView::build(t, mode);
        let sched = schedule_for_view(&view, threads);
        let mut ws = Workspace::new();
        let mut out = Mat::zeros(t.dims()[mode], rank);
        mttkrp_par_into(t, &factors, mode, &view, &sched, &mut ws, &mut out);
        prop_assert!(
            out.max_abs_diff(&want) < 1e-9,
            "coo mode {mode} threads {threads} diff {}",
            out.max_abs_diff(&want)
        );

        let csf = CsfTensor::for_mode(t, mode);
        let csf_sched = csf.root_schedule(threads);
        let mut csf_out = Mat::zeros(t.dims()[mode], rank);
        csf.mttkrp_root_into(&factors, &csf_sched, &mut ws, &mut csf_out);
        prop_assert!(
            csf_out.max_abs_diff(&want) < 1e-9,
            "csf mode {mode} threads {threads} diff {}",
            csf_out.max_abs_diff(&want)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scheduled_kernels_match_sequential_on_zipf(seed in 0u64..500, threads in 2usize..9) {
        let t = zipf_tensor(&[50, 40, 30], 2500, &[0.9, 0.4, 0.7], seed);
        assert_parity(&t, threads, seed.wrapping_add(99))?;
    }

    #[test]
    fn scheduled_kernels_match_sequential_on_single_hot_row(seed in 0u64..500, threads in 2usize..9) {
        let t = single_hot_row_tensor(seed);
        assert_parity(&t, threads, seed.wrapping_add(7))?;
    }

    #[test]
    fn backends_are_deterministic_across_repeated_iterations(seed in 0u64..200) {
        let t = zipf_tensor(&[30, 25, 20, 15], 1500, &[0.8, 0.3, 0.9, 0.5], seed);
        let rank = 4;
        let factors = factors_for(&t, rank, seed.wrapping_add(3));
        with_threads(4, || -> Result<(), TestCaseError> {
            for mut b in all_backends(&t, rank) {
                for mode in 0..t.ndim() {
                    b.begin_mode(mode);
                    let mut a = Mat::zeros(t.dims()[mode], rank);
                    b.mttkrp_into(&t, &factors, mode, &mut a);
                    let mut c = Mat::zeros(t.dims()[mode], rank);
                    b.mttkrp_into(&t, &factors, mode, &mut c);
                    prop_assert!(
                        a.as_slice() == c.as_slice(),
                        "backend {} mode {mode} not bitwise deterministic",
                        b.name()
                    );
                }
            }
            Ok(())
        })?;
    }
}

#[test]
fn hot_row_schedule_actually_splits() {
    let t = single_hot_row_tensor(11);
    let view = SortedModeView::build(&t, 1);
    let sched = schedule_for_view(&view, 8);
    let splits = sched.tasks().iter().filter(|task| matches!(task, Task::Split { .. })).count();
    assert!(splits >= 2, "hot-row tensor produced only {splits} split sub-task(s)");
}
