//! Zero-allocation gates for the scheduled MTTKRP kernels.
//!
//! The perf contract of the scheduling work: once a backend has built its
//! sorted views / CSF trees, its per-(tensor, mode) `ModeSchedule`, and
//! warmed its `Workspace`, a steady-state kernel call performs **zero**
//! heap allocations on the sequential path, and the dimension-tree
//! engine's scatter stays within its pooled buffers. Asserted with a
//! counting global allocator, which is why this lives in its own test
//! binary.

// A `GlobalAlloc` impl is unavoidably `unsafe impl`; this file is one of
// the two sanctioned exceptions to the workspace-wide `deny(unsafe_code)`
// (the other is the bench driver's identical shim).
#![allow(unsafe_code)]

use adatm_dtree::{DtreeEngine, TreeShape};
use adatm_linalg::Mat;
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::gen::zipf_tensor;
use adatm_tensor::mttkrp::{mttkrp_par_into, schedule_for_view};
use adatm_tensor::schedule::Workspace;
use adatm_tensor::{SortedModeView, SparseTensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events during one call of `f`, after the caller has warmed
/// every cache the call touches.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_EVENTS.load(Ordering::Relaxed);
    f();
    ALLOC_EVENTS.load(Ordering::Relaxed) - before
}

fn test_tensor() -> SparseTensor {
    zipf_tensor(&[60, 80, 50], 4000, &[0.3, 0.9, 0.6], 7)
}

fn factors_for(t: &SparseTensor, rank: usize) -> Vec<Mat> {
    t.dims()
        .iter()
        .enumerate()
        .map(|(d, &n)| {
            let mut m = Mat::zeros(n, rank);
            for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
                *v = ((i * 31 + d * 17) % 23) as f64 * 0.1 - 1.0;
            }
            m
        })
        .collect()
}

#[test]
fn coo_scheduled_kernel_is_alloc_free_after_warmup() {
    let t = test_tensor();
    let factors = factors_for(&t, 8);
    for mode in 0..t.ndim() {
        let view = SortedModeView::build(&t, mode);
        // threads=1 => single Owned task => the inline sequential path.
        let sched = schedule_for_view(&view, 1);
        let mut ws = Workspace::new();
        let mut out = Mat::zeros(t.dims()[mode], 8);
        mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
        let n = allocs_during(|| {
            mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
        });
        assert_eq!(n, 0, "mode {mode}: {n} steady-state allocation(s)");
    }
}

#[test]
fn csf_scheduled_kernel_is_alloc_free_after_warmup() {
    let t = test_tensor();
    let factors = factors_for(&t, 8);
    for mode in 0..t.ndim() {
        let csf = CsfTensor::for_mode(&t, mode);
        let sched = csf.root_schedule(1);
        let mut ws = Workspace::new();
        let mut out = Mat::zeros(t.dims()[mode], 8);
        csf.mttkrp_root_into(&factors, &sched, &mut ws, &mut out);
        let n = allocs_during(|| {
            csf.mttkrp_root_into(&factors, &sched, &mut ws, &mut out);
        });
        assert_eq!(n, 0, "mode {mode}: {n} steady-state allocation(s)");
    }
}

#[test]
fn parallel_path_allocations_stay_bounded() {
    // The parallel path allocates O(tasks) bookkeeping (the task-context
    // vector plus the thread shim's dispatch) but must never regress to
    // the legacy kernel's O(groups) per-row collections.
    let t = test_tensor();
    let factors = factors_for(&t, 8);
    let mode = 1;
    let view = SortedModeView::build(&t, mode);
    let sched = schedule_for_view(&view, 8);
    let mut ws = Workspace::new();
    let mut out = Mat::zeros(t.dims()[mode], 8);
    mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
    let n = allocs_during(|| {
        mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
    });
    assert!(n <= 16 * sched.num_tasks() as u64 + 64, "parallel path made {n} allocations");
}

#[test]
fn dtree_scatter_reuses_pooled_buffers() {
    // The dimension-tree engine recycles node buffers through its pool;
    // a steady-state recompute+scatter must stay within a small constant
    // of bookkeeping allocations rather than reallocating intermediates.
    let t = test_tensor();
    let rank = 8;
    let factors = factors_for(&t, rank);
    let shape = TreeShape::balanced_binary(t.ndim());
    let mut engine = DtreeEngine::new(&t, &shape, rank);
    let mut out = Mat::zeros(t.dims()[1], rank);
    for _ in 0..2 {
        engine.invalidate_all();
        engine.mttkrp_into(&t, &factors, 1, &mut out);
    }
    engine.invalidate_all();
    let n = allocs_during(|| {
        engine.mttkrp_into(&t, &factors, 1, &mut out);
    });
    assert!(n <= 256, "dtree steady-state recompute made {n} allocations");
}
