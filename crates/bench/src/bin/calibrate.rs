//! Kernel calibration probe (`cargo xtask calibrate`).
//!
//! Measures the effective throughput of each kernel class the planner
//! prices — COO entry kernel, CSF root traversal, dimension-tree pull
//! and scatter TTMVs — as ns per normalized work unit, at one thread and
//! at the configured pool size, and writes the resulting
//! [`KernelProfile`] as `PROFILE.txt` (or the path in argv[1]). Point
//! `ADATM_PROFILE` at that file and every `AdaptiveBackend` planning
//! constructor ranks candidate strategies by calibrated wall time.
//!
//! Knobs (mirroring `bench_kernels`):
//!
//! * `ADATM_BENCH_SMOKE=1` — tiny tensor / few reps (CI smoke job);
//! * `ADATM_BENCH_THREADS` — parallel pool size (default 8);
//! * `ADATM_RANK` — decomposition rank (default 16);
//! * `ADATM_BENCH_REPS` — timing repetitions (default 9 / 2 smoke);
//! * `ADATM_CALIBRATE_CHECK=1` — after writing the profile, verify the
//!   calibrated planner end-to-end: the adaptive backend's measured
//!   per-iteration time must not exceed the best fixed tree's by more
//!   than 10% (exit 1 otherwise);
//! * argv[1] — output profile path (default `PROFILE.txt`).

use adatm_bench::{env_flag, env_usize, time_best, with_threads, Table};
use adatm_core::{AdaptiveBackend, CpAls, CpAlsOptions, DtreeBackend, MttkrpBackend};
use adatm_dtree::{DtreeEngine, EngineOptions, NodeKernelClass, TreeShape};
use adatm_linalg::Mat;
use adatm_model::{ClassRate, KernelClass, KernelProfile, NnzEstimator, Planner};
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::gen::proxy_datasets;
use adatm_tensor::mttkrp::{mttkrp_par_into, schedule_for_view};
use adatm_tensor::schedule::Workspace;
use adatm_tensor::{SortedModeView, SparseTensor};

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
}

/// Same gate tensor as `bench_kernels`: the profile should be measured
/// on the workload class the planner will be judged on.
fn gate_tensor(smoke: bool) -> SparseTensor {
    let scale = if smoke { 0.01 } else { 0.1 };
    let spec = &proxy_datasets(scale)[0];
    assert_eq!(spec.name, "deli4d", "suite order changed; update the probe");
    spec.build()
}

/// ns per work unit of every class, measured inside a pool of `threads`.
/// `None` for a class with no instances on the probe tensor (scatter on
/// very uniform data); the caller substitutes the pull rate.
struct MeasuredRates {
    coo: f64,
    csf: f64,
    pull: Option<f64>,
    scatter: Option<f64>,
}

fn measure_rates(t: &SparseTensor, rank: usize, threads: usize, reps: usize) -> MeasuredRates {
    let n = t.ndim();
    let r = rank as f64;
    with_threads(threads, || {
        // COO: scheduled kernel, all modes; nnz * (N-1) * R units each.
        let factors = factors_for(t, rank, 11);
        let mut ws = Workspace::new();
        let mut coo_ns = 0u64;
        for mode in 0..n {
            let view = SortedModeView::build(t, mode);
            let sched = schedule_for_view(&view, threads);
            let mut out = Mat::zeros(t.dims()[mode], rank);
            let mut run = || {
                mttkrp_par_into(t, &factors, mode, &view, &sched, &mut ws, &mut out);
                std::hint::black_box(&out);
            };
            run();
            coo_ns += time_best(reps, &mut run).as_nanos() as u64;
        }
        let coo_units = n as f64 * t.nnz() as f64 * (n as f64 - 1.0) * r;
        // CSF: root traversal per mode; (non-root nodes) * R units each.
        let (mut csf_ns, mut csf_units) = (0u64, 0.0f64);
        for mode in 0..n {
            let csf = CsfTensor::for_mode(t, mode);
            let sched = csf.root_schedule(threads);
            let mut out = Mat::zeros(t.dims()[mode], rank);
            let mut run = || {
                csf.mttkrp_root_into(&factors, &sched, &mut ws, &mut out);
                std::hint::black_box(&out);
            };
            run();
            csf_ns += time_best(reps, &mut run).as_nanos() as u64;
            csf_units += csf.node_counts().iter().skip(1).sum::<usize>() as f64 * r;
        }
        // Tree pull/scatter: per-node recomputes attributed to the class
        // the engine actually runs. Two tree populations, so the pull
        // rate averages over both node kinds the planner will price: the
        // balanced binary tree contributes internal (R-wide-parent)
        // pulls, the flat tree contributes root-children, whose
        // tensor-streaming leaves are markedly slower per unit — a
        // bdt-only sample would underprice exactly the shallow trees the
        // traffic term favors.
        let mut class_ns = [0u64; 2];
        let mut class_units = [0.0f64; 2];
        for shape in [TreeShape::balanced_binary(n), TreeShape::two_level(n)] {
            let mut eng = DtreeEngine::with_options(t, &shape, rank, EngineOptions::default());
            for id in 1..eng.tree().len() {
                let Some(class) = eng.node_kernel_class(id) else { continue };
                let Some(units) = eng.node_work_units(id) else { continue };
                let mut run = || eng.recompute_node(t, &factors, id);
                run();
                let ns = time_best(reps, &mut run).as_nanos() as u64;
                let slot = match class {
                    NodeKernelClass::Pull => 0,
                    NodeKernelClass::Scatter => 1,
                };
                class_ns[slot] += ns;
                class_units[slot] += units as f64;
            }
        }
        let per_unit = |ns: u64, units: f64| {
            if units > 0.0 {
                Some(ns as f64 / units)
            } else {
                None
            }
        };
        MeasuredRates {
            coo: coo_ns as f64 / coo_units,
            csf: csf_ns as f64 / csf_units.max(1.0),
            pull: per_unit(class_ns[0], class_units[0]),
            scatter: per_unit(class_ns[1], class_units[1]),
        }
    })
}

/// Measured CP-ALS per-iteration ns, interleaved across backends so
/// machine noise drifts over all of them equally, with the visit order
/// rotated every round (a fixed order hands whichever backend runs last
/// any monotone drift within the round); minimum of `reps`.
fn cpals_per_iter(
    t: &SparseTensor,
    rank: usize,
    backends: &mut [Box<dyn MttkrpBackend>],
    iters: usize,
    reps: usize,
) -> Vec<u64> {
    let len = backends.len();
    let mut best = vec![u64::MAX; len];
    for rep in 0..reps {
        for k in 0..len {
            let i = (k + rep) % len;
            let opts = CpAlsOptions::new(rank).max_iters(iters).tol(0.0).seed(0);
            let res = CpAls::new(opts)
                .run(t, &mut backends[i])
                .unwrap_or_else(|e| panic!("calibrate CP-ALS rejected input: {e}"));
            let per_iter = if res.iters == 0 {
                0
            } else {
                (res.timings.total().as_nanos() / res.iters as u128) as u64
            };
            best[i] = best[i].min(per_iter);
        }
    }
    best
}

/// The `--check` gate: plan with the freshly measured profile and verify
/// the adaptive backend's measured per-iteration time is within 10% of
/// the best fixed tree's. Returns false on violation.
fn check_calibrated_plan(
    t: &SparseTensor,
    rank: usize,
    threads: usize,
    profile: &KernelProfile,
) -> bool {
    with_threads(threads, || {
        let planner = Planner::new(t, rank)
            .estimator(NnzEstimator::Exact)
            .threads(threads)
            .calibration(*profile);
        let adaptive = AdaptiveBackend::from_planner(t, rank, planner);
        let plan = adaptive.memo_plan();
        let chose = if plan.use_coo {
            "coo".to_string()
        } else if plan.use_csf {
            "csf".to_string()
        } else {
            format!("tree {}", plan.shape)
        };
        println!(
            "   check: calibrated plan chose {chose} (predicted {:.2} ms/iter)",
            plan.predicted_ns.unwrap_or(f64::NAN) / 1e6,
        );
        let mut backends: Vec<Box<dyn MttkrpBackend>> = vec![
            Box::new(DtreeBackend::two_level(t, rank)),
            Box::new(DtreeBackend::three_level(t, rank)),
            Box::new(DtreeBackend::balanced_binary(t, rank)),
            Box::new(adaptive),
        ];
        let times = cpals_per_iter(t, rank, &mut backends, 2, 5);
        let (fixed, adaptive_ns) = (&times[..3], times[3]);
        for (b, ns) in backends.iter().zip(&times) {
            println!("   check: {:<10} {:>12} ns/iter", b.name(), ns);
        }
        let best_fixed = *fixed.iter().min().unwrap_or(&u64::MAX);
        let limit = best_fixed + best_fixed / 10;
        if adaptive_ns > limit {
            eprintln!(
                "calibrate: CHECK FAILED: adaptive {adaptive_ns} ns/iter exceeds best fixed tree {best_fixed} ns/iter by more than 10%"
            );
            false
        } else {
            println!(
                "   check ok: adaptive {adaptive_ns} ns/iter vs best fixed tree {best_fixed} ns/iter (limit {limit})"
            );
            true
        }
    })
}

fn main() {
    let smoke = env_flag("ADATM_BENCH_SMOKE");
    let check = env_flag("ADATM_CALIBRATE_CHECK");
    let threads = env_usize("ADATM_BENCH_THREADS", 8);
    let rank = env_usize("ADATM_RANK", 16);
    let reps = env_usize("ADATM_BENCH_REPS", if smoke { 2 } else { 9 });
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "PROFILE.txt".to_string());

    println!("== calibrate: threads={threads} rank={rank} smoke={smoke}");
    let t = gate_tensor(smoke);
    println!("   probe tensor: dims={:?} nnz={}", t.dims(), t.nnz());

    let seq = measure_rates(&t, rank, 1, reps);
    let par = measure_rates(&t, rank, threads, reps);

    // A probe tensor without scatter nodes cannot measure the scatter
    // rate; fall back to the pull rate so the profile stays complete.
    let pull_1t = seq.pull.unwrap_or(seq.coo);
    let pull_nt = par.pull.unwrap_or(par.coo);
    let scatter_1t = seq.scatter.unwrap_or_else(|| {
        println!("   note: no scatter nodes on probe tensor; reusing pull rate");
        pull_1t
    });
    let scatter_nt = par.scatter.unwrap_or(pull_nt);

    let profile = KernelProfile {
        threads,
        coo_mttkrp: ClassRate { ns_per_unit_1t: seq.coo, ns_per_unit_nt: par.coo },
        csf_root: ClassRate { ns_per_unit_1t: seq.csf, ns_per_unit_nt: par.csf },
        tree_pull: ClassRate { ns_per_unit_1t: pull_1t, ns_per_unit_nt: pull_nt },
        tree_scatter: ClassRate { ns_per_unit_1t: scatter_1t, ns_per_unit_nt: scatter_nt },
    };

    let par_hdr = format!("ns/unit ({threads}t)");
    let mut table = Table::new(&["class", "ns/unit (1t)", par_hdr.as_str(), "speedup"]);
    for class in KernelClass::ALL {
        let r = profile.rate(class);
        table.row(&[
            class.key().to_string(),
            format!("{:.4}", r.ns_per_unit_1t),
            format!("{:.4}", r.ns_per_unit_nt),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table.print();

    if let Err(e) = std::fs::write(&out_path, profile.to_text()) {
        eprintln!("calibrate: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("   wrote {out_path}");

    if check && !check_calibrated_plan(&t, rank, threads, &profile) {
        std::process::exit(1);
    }
}
