//! E3 — shared-memory parallel CP-ALS time per iteration (paper analogue:
//! the multicore comparison table, all cores).
//!
//! Same layout as E2 but using the full rayon pool.

use adatm_bench::{banner, iters, per_iter, rank, run_cpals, scale, secs, standard_suite, Table};
use adatm_core::all_backends;

fn main() {
    banner("E3", "parallel per-iteration CP-ALS time (all threads)");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters());
    let mut table = Table::new(&[
        "tensor",
        "coo",
        "splatt-csf",
        "tree2",
        "tree3",
        "bdt",
        "adaptive",
        "best/splatt",
    ]);
    for d in &suite {
        let mut cells = vec![d.name.clone()];
        let mut times = Vec::new();
        for mut b in all_backends(&d.tensor, r) {
            let res = run_cpals(&d.tensor, &mut b, r, it);
            let t = per_iter(&res);
            times.push((b.name(), t));
            cells.push(secs(t));
        }
        let splatt = times
            .iter()
            .find(|(n, _)| *n == "splatt-csf")
            .map(|(_, t)| t.as_secs_f64())
            .unwrap_or(f64::NAN);
        let best_memo = times
            .iter()
            .filter(|(n, _)| matches!(*n, "tree3" | "bdt" | "adaptive"))
            .map(|(_, t)| t.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        cells.push(format!("{:.2}x", splatt / best_memo));
        table.row(&cells);
    }
    table.print();
    table.print_tsv();
}
