//! E11 — index-overlap (skew) sweep (ablation; paper analogue: the
//! discussion of the two sparsity extremes bounding memoization gains).
//!
//! Fixed dims/nnz 4-mode tensors with Zipf exponent swept from 0
//! (uniform — worst case for memoization) upward; reports the projection
//! collapse factor and the memoized/non-memoized speedup, which should
//! rise together.

use adatm_bench::{banner, iters, per_iter, rank, run_cpals, scale, Table};
use adatm_core::DtreeBackend;
use adatm_tensor::gen::zipf_tensor;
use adatm_tensor::stats::collapse_factor;

fn main() {
    banner("E11", "memoization gain vs index overlap (Zipf skew sweep)");
    let (r, it) = (rank(), iters());
    let nnz = ((800_000.0 * scale()) as usize).max(20_000);
    let dims = vec![50_000usize; 4];
    let mut table =
        Table::new(&["skew", "nnz", "collapse(0,1)", "tree2-s/iter", "bdt-s/iter", "bdt-speedup"]);
    for skew in [0.0f64, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5] {
        let t = zipf_tensor(&dims, nnz, &[skew; 4], 101);
        let cf = collapse_factor(&t, &[0, 1]);
        let mut flat = DtreeBackend::two_level(&t, r);
        let mut bdt = DtreeBackend::balanced_binary(&t, r);
        let flat_t = per_iter(&run_cpals(&t, &mut flat, r, it)).as_secs_f64();
        let bdt_t = per_iter(&run_cpals(&t, &mut bdt, r, it)).as_secs_f64();
        table.row(&[
            format!("{skew:.2}"),
            t.nnz().to_string(),
            format!("{cf:.2}"),
            format!("{flat_t:.4}"),
            format!("{bdt_t:.4}"),
            format!("{:.2}x", flat_t / bdt_t),
        ]);
    }
    table.print();
    table.print_tsv();
}
