//! E5 — memory usage (paper analogue: the memory table — index storage
//! per method and value-matrix storage for memoizing methods).
//!
//! Reports, in MiB: the COO tensor itself, factor matrices, each
//! backend's index structures, and (for dimension trees) the measured
//! peak of live intermediate value matrices over one CP-ALS iteration —
//! the `O(log N)` path bound in action.

use adatm_bench::{banner, iters, mib, rank, run_cpals, scale, standard_suite, Table};
use adatm_core::{AdaptiveBackend, CooBackend, CsfBackend, DtreeBackend, MttkrpBackend};

fn main() {
    banner("E5", "memory usage (MiB)");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters().max(1));
    let mut table = Table::new(&[
        "tensor",
        "coo-data",
        "factors",
        "csf-index",
        "tree2-idx",
        "tree3-idx",
        "bdt-idx",
        "tree3-val(peak)",
        "bdt-val(peak)",
        "adaptive-val(peak)",
        "bdt-live-nodes(peak)",
    ]);
    for d in &suite {
        let t = &d.tensor;
        let factor_bytes: usize = t.dims().iter().map(|&n| n * r * 8).sum();
        let coo = CooBackend::new(t);
        let _ = &coo;
        let csf = CsfBackend::new(t);
        let tree2 = DtreeBackend::two_level(t, r);
        let mut tree3 = DtreeBackend::three_level(t, r);
        let mut bdt = DtreeBackend::balanced_binary(t, r);
        let mut adaptive = AdaptiveBackend::plan(t, r);
        // One measured iteration populates the peak value-memory counters.
        let _ = run_cpals(t, &mut tree3, r, it);
        let _ = run_cpals(t, &mut bdt, r, it);
        let _ = run_cpals(t, &mut adaptive, r, it);
        table.row(&[
            d.name.clone(),
            mib(t.storage_bytes()),
            mib(factor_bytes),
            mib(csf.structure_bytes()),
            mib(tree2.structure_bytes()),
            mib(tree3.structure_bytes()),
            mib(bdt.structure_bytes()),
            mib(tree3.engine().mem().peak_value_bytes),
            mib(bdt.engine().mem().peak_value_bytes),
            mib(adaptive.engine().mem().peak_value_bytes),
            bdt.engine().mem().peak_live_nodes.to_string(),
        ]);
    }
    table.print();
    table.print_tsv();
}
