//! E4 — preprocessing (symbolic / structure-construction) cost (paper
//! analogue: the preprocessing-time table).
//!
//! Times the one-time structure builds: COO sorted views, CSF forests
//! (all modes), and dimension-tree symbolic analysis for each shape. The
//! evaluation point is that symbolic cost is amortized over many CP-ALS
//! iterations and restarts.

use adatm_bench::{banner, rank, scale, secs, standard_suite, time_once, Table};
use adatm_core::{AdaptiveBackend, CooBackend, CsfBackend, DtreeBackend};

fn main() {
    banner("E4", "one-time preprocessing cost (seconds, single build)");
    let suite = standard_suite(scale());
    let r = rank();
    let mut table = Table::new(&[
        "tensor",
        "coo-views",
        "splatt-csf",
        "tree2",
        "tree3",
        "bdt",
        "adaptive(+plan)",
    ]);
    for d in &suite {
        let t = &d.tensor;
        let coo = time_once(|| {
            std::hint::black_box(CooBackend::new(t));
        });
        let csf = time_once(|| {
            std::hint::black_box(CsfBackend::new(t));
        });
        let tree2 = time_once(|| {
            std::hint::black_box(DtreeBackend::two_level(t, r));
        });
        let tree3 = time_once(|| {
            std::hint::black_box(DtreeBackend::three_level(t, r));
        });
        let bdt = time_once(|| {
            std::hint::black_box(DtreeBackend::balanced_binary(t, r));
        });
        let adaptive = time_once(|| {
            std::hint::black_box(AdaptiveBackend::plan(t, r));
        });
        table.row(&[
            d.name.clone(),
            secs(coo),
            secs(csf),
            secs(tree2),
            secs(tree3),
            secs(bdt),
            secs(adaptive),
        ]);
    }
    table.print();
    table.print_tsv();
}
