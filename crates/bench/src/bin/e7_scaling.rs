//! E7 — thread strong-scaling (paper analogue: the multicore scalability
//! figure).
//!
//! Per-iteration time for 1, 2, 4, ... threads on two representative
//! tensors (a skewed 4-mode proxy and a uniform 8-mode tensor), for the
//! SPLATT-style baseline and the balanced-binary dimension tree; reports
//! each method's self-relative speedup.

use adatm_bench::{
    banner, iters, materialize, per_iter, rank, run_cpals, scale, secs, with_threads, Table,
};
use adatm_core::{CsfBackend, DtreeBackend};
use adatm_tensor::gen::{proxy_datasets, random_nd};

fn main() {
    banner("E7", "strong scaling over threads");
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= max_threads {
        threads.push(threads.last().unwrap() * 2);
    }
    let (r, it) = (rank(), iters());
    let datasets = vec![
        materialize(&proxy_datasets(scale())[0]), // deli4d
        materialize(&random_nd(8, scale())),
    ];
    let mut table =
        Table::new(&["tensor", "threads", "splatt-csf", "bdt", "splatt-speedup", "bdt-speedup"]);
    for d in &datasets {
        let mut base: Option<(f64, f64)> = None;
        for &p in &threads {
            let (csf_t, bdt_t) = with_threads(p, || {
                let mut csf = CsfBackend::new(&d.tensor);
                let mut bdt = DtreeBackend::balanced_binary(&d.tensor, r);
                let a = per_iter(&run_cpals(&d.tensor, &mut csf, r, it)).as_secs_f64();
                let b = per_iter(&run_cpals(&d.tensor, &mut bdt, r, it)).as_secs_f64();
                (a, b)
            });
            let (b0, b1) = *base.get_or_insert((csf_t, bdt_t));
            table.row(&[
                d.name.clone(),
                p.to_string(),
                format!("{csf_t:.4}"),
                format!("{bdt_t:.4}"),
                format!("{:.2}x", b0 / csf_t),
                format!("{:.2}x", b1 / bdt_t),
            ]);
        }
    }
    table.print();
    table.print_tsv();
    let _ = secs(std::time::Duration::ZERO);
}
