//! E2 — sequential CP-ALS time per iteration (paper analogue: the
//! sequential comparison table — state-of-the-art baseline vs memoized
//! variants, single thread).
//!
//! Columns report seconds per iteration for the non-memoized baselines
//! (`coo`, `splatt-csf`, `tree2`) and the memoized strategies (`tree3`,
//! `bdt`, `adaptive`), plus the speedup of the best memoized strategy
//! over `splatt-csf`.

use adatm_bench::{
    banner, iters, per_iter, rank, run_cpals, scale, secs, standard_suite, with_threads, Table,
};
use adatm_core::all_backends;

fn main() {
    banner("E2", "sequential per-iteration CP-ALS time (1 thread)");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters());
    let mut table = Table::new(&[
        "tensor",
        "coo",
        "splatt-csf",
        "tree2",
        "tree3",
        "bdt",
        "adaptive",
        "best/splatt",
    ]);
    with_threads(1, || {
        for d in &suite {
            let mut cells = vec![d.name.clone()];
            let mut times = Vec::new();
            for mut b in all_backends(&d.tensor, r) {
                let res = run_cpals(&d.tensor, &mut b, r, it);
                let t = per_iter(&res);
                times.push((b.name(), t));
                cells.push(secs(t));
            }
            let splatt = times
                .iter()
                .find(|(n, _)| *n == "splatt-csf")
                .map(|(_, t)| t.as_secs_f64())
                .unwrap_or(f64::NAN);
            let best_memo = times
                .iter()
                .filter(|(n, _)| matches!(*n, "tree3" | "bdt" | "adaptive"))
                .map(|(_, t)| t.as_secs_f64())
                .fold(f64::INFINITY, f64::min);
            cells.push(format!("{:.2}x", splatt / best_memo));
            table.row(&cells);
        }
    });
    table.print();
    table.print_tsv();
}
