//! E10 — per-iteration time dissection (paper analogue: the stacked-bar
//! phase-breakdown figure: TTMV vs dense matrix work vs fit).
//!
//! Reports the fraction of iteration time spent in MTTKRP, dense linear
//! algebra (Grams, Hadamards, pseudoinverse solves, normalization), and
//! fit computation, per backend.

use adatm_bench::{banner, iters, rank, run_cpals, scale, standard_suite, Table};
use adatm_core::all_backends;

fn main() {
    banner("E10", "iteration time dissection (fractions)");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters());
    let mut table = Table::new(&["tensor", "backend", "total-s/iter", "mttkrp%", "dense%", "fit%"]);
    for d in suite.iter().take(3) {
        for mut b in all_backends(&d.tensor, r) {
            let res = run_cpals(&d.tensor, &mut b, r, it);
            let total = res.timings.total().as_secs_f64().max(1e-12);
            table.row(&[
                d.name.clone(),
                b.name().to_string(),
                format!("{:.4}", total / it as f64),
                format!("{:.1}", 100.0 * res.timings.mttkrp.as_secs_f64() / total),
                format!("{:.1}", 100.0 * res.timings.dense.as_secs_f64() / total),
                format!("{:.1}", 100.0 * res.timings.fit.as_secs_f64() / total),
            ]);
        }
    }
    table.print();
    table.print_tsv();
}
