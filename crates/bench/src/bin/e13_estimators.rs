//! E13 — intermediate-size estimator accuracy and cost (supplementary;
//! part of the paper's model-accuracy story: the planner is only as good
//! as its distinct-count estimates, and they must be much cheaper than
//! the symbolic work they predict).
//!
//! For every contiguous half-split and every mode pair of each dataset,
//! compares the sampled and analytic estimators against the exact count;
//! reports max/mean relative error and the wall time per evaluation.

use adatm_bench::{banner, scale, standard_suite, time_once, Table};
use adatm_model::estimate::{estimate, NnzEstimator};
use adatm_tensor::SparseTensor;

fn subsets(ndim: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    // All mode pairs plus the two half-splits.
    for a in 0..ndim {
        for b in (a + 1)..ndim {
            out.push(vec![a, b]);
        }
    }
    out.push((0..ndim / 2).collect());
    out.push((ndim / 2..ndim).collect());
    out
}

fn eval(t: &SparseTensor, how: NnzEstimator) -> (f64, f64, f64) {
    let mut max_err = 0.0f64;
    let mut sum_err = 0.0f64;
    let mut total_time = 0.0f64;
    let sets = subsets(t.ndim());
    for modes in &sets {
        let exact = estimate(t, modes, NnzEstimator::Exact);
        let mut est = 0.0;
        total_time += time_once(|| {
            est = estimate(t, modes, how);
        })
        .as_secs_f64();
        let rel = (est - exact).abs() / exact.max(1.0);
        max_err = max_err.max(rel);
        sum_err += rel;
    }
    (max_err, sum_err / sets.len() as f64, total_time / sets.len() as f64)
}

fn main() {
    banner("E13", "distinct-count estimator accuracy vs exact");
    let suite = standard_suite(scale());
    let mut table = Table::new(&[
        "tensor",
        "sampled max-err",
        "sampled mean-err",
        "sampled s/eval",
        "analytic max-err",
        "analytic mean-err",
        "exact s/eval",
    ]);
    for d in suite.iter().filter(|d| d.tensor.ndim() <= 8) {
        let t = &d.tensor;
        let (smax, smean, stime) = eval(t, NnzEstimator::default());
        let (amax, amean, _) = eval(t, NnzEstimator::Analytic);
        // Exact cost for reference.
        let etime = time_once(|| {
            let _ = estimate(t, &[0, 1], NnzEstimator::Exact);
        })
        .as_secs_f64();
        table.row(&[
            d.name.clone(),
            format!("{:.1}%", smax * 100.0),
            format!("{:.1}%", smean * 100.0),
            format!("{stime:.4}"),
            format!("{:.1}%", amax * 100.0),
            format!("{:.1}%", amean * 100.0),
            format!("{etime:.4}"),
        ]);
    }
    table.print();
    table.print_tsv();
}
