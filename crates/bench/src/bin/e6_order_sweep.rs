//! E6 — speedup vs tensor order (paper analogue: the higher-order scaling
//! figure — the memoization advantage growing with `N`).
//!
//! Uniform random tensors with fixed nnz and increasing order; reports
//! per-iteration time for each backend and the memoized/non-memoized
//! speedup, whose theoretical envelope is `(N-1)/log2(N)` to `N/2`.

use adatm_bench::{
    banner, iters, order_sweep_suite, per_iter, rank, run_cpals, scale, secs, Table,
};
use adatm_core::all_backends;

fn main() {
    banner("E6", "per-iteration time vs tensor order (uniform random)");
    let orders = [3usize, 4, 6, 8, 12, 16];
    let suite = order_sweep_suite(scale(), &orders);
    let (r, it) = (rank(), iters());
    let mut table = Table::new(&[
        "order",
        "nnz",
        "coo",
        "splatt-csf",
        "tree2",
        "tree3",
        "bdt",
        "adaptive",
        "bdt/splatt",
        "theory-min",
    ]);
    for (d, &order) in suite.iter().zip(orders.iter()) {
        let mut cells = vec![order.to_string(), d.tensor.nnz().to_string()];
        let mut times = Vec::new();
        for mut b in all_backends(&d.tensor, r) {
            let res = run_cpals(&d.tensor, &mut b, r, it);
            let t = per_iter(&res);
            times.push((b.name(), t.as_secs_f64()));
            cells.push(secs(t));
        }
        let get = |name: &str| times.iter().find(|(n, _)| *n == name).map(|(_, t)| *t).unwrap();
        cells.push(format!("{:.2}x", get("splatt-csf") / get("bdt")));
        cells.push(format!("{:.2}x", (order as f64 - 1.0) / (order as f64).log2()));
        table.row(&cells);
    }
    table.print();
    table.print_tsv();
}
