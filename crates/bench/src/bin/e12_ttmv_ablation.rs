//! E12 — vectorized (thick) vs column-at-a-time TTMV (ablation; paper
//! analogue: the claim that operating on all `R` columns at once is a
//! large constant-factor win from index-traffic amortization).

use adatm_bench::{banner, iters, rank, run_cpals, scale, standard_suite, Table};
use adatm_core::DtreeBackend;
use adatm_dtree::{EngineOptions, TreeShape};

fn main() {
    banner("E12", "thick (vectorized) vs column-at-a-time TTMV");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters());
    let mut table =
        Table::new(&["tensor", "shape", "thick-s/iter", "colwise-s/iter", "thick-speedup"]);
    for d in suite.iter().take(4) {
        let t = &d.tensor;
        let shape = TreeShape::balanced_binary(t.ndim());
        let mut thick = DtreeBackend::with_options(
            t,
            &shape,
            r,
            EngineOptions { parallel: true, thick: true },
            "thick",
        );
        let mut thin = DtreeBackend::with_options(
            t,
            &shape,
            r,
            EngineOptions { parallel: true, thick: false },
            "colwise",
        );
        let thick_t = run_cpals(t, &mut thick, r, it).timings.mttkrp.as_secs_f64() / it as f64;
        let thin_t = run_cpals(t, &mut thin, r, it).timings.mttkrp.as_secs_f64() / it as f64;
        table.row(&[
            d.name.clone(),
            "bdt".to_string(),
            format!("{thick_t:.4}"),
            format!("{thin_t:.4}"),
            format!("{:.2}x", thin_t / thick_t),
        ]);
    }
    table.print();
    table.print_tsv();
}
