//! E9 — rank sweep (paper analogue: time-vs-rank figure).
//!
//! Per-iteration time as the decomposition rank grows, on one skewed
//! 4-mode proxy. Memoized methods amortize index traffic across all `R`
//! columns (thick TTMV), so their advantage persists across ranks.

use adatm_bench::{banner, iters, materialize, per_iter, run_cpals, scale, secs, Table};
use adatm_core::all_backends;
use adatm_tensor::gen::proxy_datasets;

fn main() {
    banner("E9", "per-iteration time vs rank");
    let d = materialize(&proxy_datasets(scale())[0]); // deli4d
    let it = iters();
    let mut table = Table::new(&[
        "rank",
        "coo",
        "splatt-csf",
        "tree2",
        "tree3",
        "bdt",
        "adaptive",
        "bdt/splatt",
    ]);
    for r in [4usize, 8, 16, 32, 64] {
        let mut cells = vec![r.to_string()];
        let mut times = Vec::new();
        for mut b in all_backends(&d.tensor, r) {
            let res = run_cpals(&d.tensor, &mut b, r, it);
            let t = per_iter(&res);
            times.push((b.name(), t.as_secs_f64()));
            cells.push(secs(t));
        }
        let get = |name: &str| times.iter().find(|(n, _)| *n == name).map(|(_, t)| *t).unwrap();
        cells.push(format!("{:.2}x", get("splatt-csf") / get("bdt")));
        table.row(&cells);
    }
    table.print();
    table.print_tsv();
}
