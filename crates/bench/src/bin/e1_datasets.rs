//! E1 — dataset characteristics table (paper analogue: "Table 1",
//! real-world tensors used in the experiments).
//!
//! Prints order, dims, nnz, density, and the half-split projection
//! collapse factors that drive memoization payoff.

use adatm_bench::{banner, scale, standard_suite, Table};
use adatm_tensor::stats::TensorStats;

fn main() {
    banner("E1", "dataset characteristics (proxy suite)");
    let suite = standard_suite(scale());
    let mut table =
        Table::new(&["tensor", "order", "dims", "nnz", "density", "collapse(lo|hi)", "proxy for"]);
    for d in &suite {
        let s = TensorStats::compute(&d.tensor);
        let dims = s.dims.iter().map(|x| x.to_string()).collect::<Vec<_>>().join("x");
        table.row(&[
            d.name.clone(),
            s.order.to_string(),
            dims,
            s.nnz.to_string(),
            format!("{:.2e}", s.density),
            format!("{:.2}|{:.2}", s.half_split_collapse.0, s.half_split_collapse.1),
            d.proxy_for.clone(),
        ]);
    }
    table.print();
    table.print_tsv();
}
