//! E8 — model accuracy and strategy-selection quality (the paper's
//! headline figure: predicted cost vs measured time across the strategy
//! space, and how close the model-chosen strategy lands to the oracle).
//!
//! For each dataset: every candidate the planner evaluates is *executed*
//! (one timed CP-ALS run per candidate shape); we report
//!
//! * the Spearman rank correlation between predicted flops and measured
//!   MTTKRP time,
//! * the chosen strategy's slowdown relative to the measured-best
//!   (oracle) candidate,
//! * the exactness of the flop model itself against the engine's
//!   counters (with the exact estimator the two must agree to rounding).

use adatm_bench::{banner, iters, rank, run_cpals, scale, spearman, standard_suite, Table};
use adatm_core::DtreeBackend;
use adatm_dtree::EngineOptions;
use adatm_model::{NnzEstimator, Planner};

fn main() {
    banner("E8", "model accuracy: predicted cost vs measured time");
    let suite = standard_suite(scale());
    let (r, it) = (rank(), iters());
    let mut table = Table::new(&[
        "tensor",
        "candidates",
        "spearman(pred,time)",
        "chosen-vs-oracle",
        "flop-model-err(exact est)",
        "chosen",
    ]);
    for d in suite.iter().filter(|d| d.tensor.ndim() <= 8) {
        let t = &d.tensor;
        // Plan with the default (sampled) estimator: what production uses.
        let plan = Planner::new(t, r).plan();
        // A second plan with the exact estimator gives the reference
        // predictions for the flop-model exactness check.
        let exact_plan = Planner::new(t, r).estimator(NnzEstimator::Exact).plan();
        let mut preds = Vec::new();
        let mut times = Vec::new();
        let mut flop_errs: Vec<f64> = Vec::new();
        let mut chosen_time = f64::NAN;
        for c in &plan.candidates {
            let mut backend =
                DtreeBackend::with_options(t, &c.shape, r, EngineOptions::default(), "cand");
            let res = run_cpals(t, &mut backend, r, it);
            let measured = res.timings.mttkrp.as_secs_f64() / it as f64;
            // The predictor is the planner's actual objective: flops plus
            // traffic-weighted bytes.
            preds.push(c.cost.cost_units(1.0));
            times.push(measured);
            if c.shape == plan.shape {
                chosen_time = measured;
            }
            if let Some(exact_c) = exact_plan.candidates.iter().find(|e| e.shape == c.shape) {
                let counted = backend.engine().ops().flops as f64 / it as f64;
                if counted > 0.0 {
                    flop_errs.push((exact_c.cost.flops_per_iter - counted).abs() / counted);
                }
            }
        }
        let oracle = times.iter().copied().fold(f64::INFINITY, f64::min);
        let rho = spearman(&preds, &times);
        let max_err = flop_errs.iter().copied().fold(0.0, f64::max);
        table.row(&[
            d.name.clone(),
            plan.candidates.len().to_string(),
            format!("{rho:.3}"),
            format!("{:.2}x", chosen_time / oracle),
            format!("{:.1}%", max_err * 100.0),
            plan.shape.to_string(),
        ]);
    }
    table.print();
    table.print_tsv();
}
