//! Bench-regression kernel driver (`cargo xtask bench`).
//!
//! Measures the hot MTTKRP kernels and an end-to-end CP-ALS iteration in
//! a pinned thread pool, counts steady-state heap allocations with a
//! counting global allocator, and writes a `BENCH_<date>.json` snapshot
//! that `cargo xtask bench` diffs against the previous snapshot.
//!
//! Knobs:
//!
//! * `ADATM_BENCH_SMOKE=1` — tiny tensors / few reps (CI smoke job);
//! * `ADATM_BENCH_THREADS` — pinned pool size (default 8);
//! * `ADATM_RANK` — decomposition rank (default 16);
//! * argv[1] — output JSON path (default `BENCH_<date>.json`).
//!
//! The headline record is the scheduled COO kernel vs the legacy
//! group-per-task kernel (`mttkrp_par_grouped`) on the 8-thread
//! Zipf-0.9 E3-class tensor: the `summary.coo_sched_speedup` field is
//! the regression gate for the scheduling work.

// The counting allocator is the one permitted unsafe block in the
// workspace: a GlobalAlloc shim must be `unsafe impl` by definition.
#![allow(unsafe_code)]

use adatm_bench::{env_flag, env_usize, time_best, with_threads, Table};
use adatm_core::{all_backends, CheckpointConfig, CooBackend, CpAls, CpAlsOptions};
use adatm_dtree::{DtreeEngine, EngineOptions, NodeKernelClass, TreeShape};
use adatm_linalg::Mat;
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::gen::proxy_datasets;
use adatm_tensor::mttkrp::{mttkrp_par_grouped, mttkrp_par_into, schedule_for_view};
use adatm_tensor::schedule::Workspace;
use adatm_tensor::{SortedModeView, SparseTensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Global allocator that counts allocation events (not bytes): the
/// steady-state kernels claim *zero* allocations per call, so an event
/// count is the sharpest possible check.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// One benchmark measurement.
struct Record {
    kernel: &'static str,
    backend: String,
    tensor: &'static str,
    threads: usize,
    ns_per_call: u64,
    /// Allocation events during one steady-state call (u64::MAX = not
    /// measured for this record).
    allocs_per_call: u64,
}

/// Times one steady-state call of `f` (best of `reps`) and counts the
/// allocation events of a single post-warmup call.
fn measure<F: FnMut()>(reps: usize, mut f: F) -> (u64, u64) {
    f(); // warmup: builds schedules, grows workspaces
    let a0 = alloc_events();
    f();
    let allocs = alloc_events() - a0;
    let best = time_best(reps, &mut f);
    (best.as_nanos() as u64, allocs)
}

/// Gregorian civil date from days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_utc() -> String {
    let secs =
        SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or(Duration::ZERO).as_secs() as i64;
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
    t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
}

/// The Zipf-0.9 E3-class gate tensor: `deli4d`, the first proxy dataset
/// of the standard experiment suite (Delicious-like, user-mode skew
/// 0.9), at the default E3 harness scale. Smoke mode shrinks it 10x.
fn gate_tensor(smoke: bool) -> SparseTensor {
    let scale = if smoke { 0.01 } else { 0.1 };
    let spec = &proxy_datasets(scale)[0];
    assert_eq!(spec.name, "deli4d", "suite order changed; update the gate");
    spec.build()
}

/// COO kernel sweep: scheduled vs legacy grouped, all modes, summed.
/// Returns (records, scheduled_total_ns, grouped_total_ns).
fn bench_coo(
    t: &SparseTensor,
    rank: usize,
    threads: usize,
    reps: usize,
) -> (Vec<Record>, u64, u64) {
    let factors = factors_for(t, rank, 11);
    let views: Vec<SortedModeView> = (0..t.ndim()).map(|m| SortedModeView::build(t, m)).collect();
    let mut records = Vec::new();
    let (mut sched_total, mut grouped_total) = (0u64, 0u64);
    with_threads(threads, || {
        let mut ws = Workspace::new();
        for (mode, view) in views.iter().enumerate() {
            let sched = schedule_for_view(view, threads);
            let mut out = Mat::zeros(t.dims()[mode], rank);
            let mut run_sched = || {
                mttkrp_par_into(t, &factors, mode, view, &sched, &mut ws, &mut out);
            };
            let mut legacy_out = Mat::zeros(t.dims()[mode], rank);
            // The legacy per-iteration path: grouped kernel into a fresh
            // matrix, then the backend's copy into the driver's buffer.
            let mut run_grouped = || {
                let m = mttkrp_par_grouped(t, &factors, mode, view);
                legacy_out.as_mut_slice().copy_from_slice(m.as_slice());
                std::hint::black_box(&legacy_out);
            };
            // Warmup both, then count steady-state allocation events.
            run_sched();
            let a0 = alloc_events();
            run_sched();
            let sched_allocs = alloc_events() - a0;
            run_grouped();
            let a0 = alloc_events();
            run_grouped();
            let grouped_allocs = alloc_events() - a0;
            // Interleave timing rounds so machine noise drifts across
            // both kernels equally; keep the per-kernel minimum.
            let (mut sched_ns, mut grouped_ns) = (u64::MAX, u64::MAX);
            for _ in 0..reps {
                sched_ns = sched_ns.min(time_best(1, &mut run_sched).as_nanos() as u64);
                grouped_ns = grouped_ns.min(time_best(1, &mut run_grouped).as_nanos() as u64);
            }
            std::hint::black_box(&out);
            sched_total += sched_ns;
            grouped_total += grouped_ns;
            records.push(Record {
                kernel: "mttkrp",
                backend: format!("coo-sched-m{mode}"),
                tensor: "deli4d",
                threads,
                ns_per_call: sched_ns,
                allocs_per_call: sched_allocs,
            });
            records.push(Record {
                kernel: "mttkrp",
                backend: format!("coo-grouped-m{mode}"),
                tensor: "deli4d",
                threads,
                ns_per_call: grouped_ns,
                allocs_per_call: grouped_allocs,
            });
        }
    });
    (records, sched_total, grouped_total)
}

/// CSF root-mode kernel, every mode's forest.
fn bench_csf(t: &SparseTensor, rank: usize, threads: usize, reps: usize) -> Vec<Record> {
    let factors = factors_for(t, rank, 13);
    let mut records = Vec::new();
    with_threads(threads, || {
        let mut ws = Workspace::new();
        for mode in 0..t.ndim() {
            let csf = CsfTensor::for_mode(t, mode);
            let sched = csf.root_schedule(threads);
            let mut out = Mat::zeros(t.dims()[mode], rank);
            let (ns, allocs) = measure(reps, || {
                csf.mttkrp_root_into(&factors, &sched, &mut ws, &mut out);
                std::hint::black_box(&out);
            });
            records.push(Record {
                kernel: "mttkrp",
                backend: format!("csf-sched-m{mode}"),
                tensor: "deli4d",
                threads,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });
        }
    });
    records
}

/// Dimension-tree TTMV node kernels on the balanced binary tree, one
/// record per kernel class: a steady-state recompute of every node the
/// engine runs with that class (pull = owner-computes over reduction
/// sets, scatter = parent-streaming push). These are the rates the
/// calibration probe prices tree plans with, recorded here so the
/// regression gate covers them.
fn bench_dtree_ttmv(t: &SparseTensor, rank: usize, threads: usize, reps: usize) -> Vec<Record> {
    let factors = factors_for(t, rank, 19);
    let mut records = Vec::new();
    with_threads(threads, || {
        let shape = TreeShape::balanced_binary(t.ndim());
        let mut eng = DtreeEngine::with_options(t, &shape, rank, EngineOptions::default());
        for class in [NodeKernelClass::Pull, NodeKernelClass::Scatter] {
            let nodes: Vec<usize> = (1..eng.tree().len())
                .filter(|&id| eng.node_kernel_class(id) == Some(class))
                .collect();
            if nodes.is_empty() {
                continue;
            }
            let (ns, allocs) = measure(reps, || {
                for &id in &nodes {
                    eng.recompute_node(t, &factors, id);
                }
            });
            records.push(Record {
                kernel: "ttmv",
                backend: format!("tree-{class}"),
                tensor: "deli4d",
                threads,
                ns_per_call: ns,
                allocs_per_call: allocs,
            });
        }
    });
    records
}

/// Zero-allocation gate: the scheduled kernels in a 1-thread pool
/// (sequential schedule) must not allocate at all in steady state.
fn bench_alloc_gate(t: &SparseTensor, rank: usize) -> Vec<Record> {
    let factors = factors_for(t, rank, 17);
    let view = SortedModeView::build(t, 1);
    let csf = CsfTensor::for_mode(t, 1);
    let mut records = Vec::new();
    with_threads(1, || {
        let mut ws = Workspace::new();
        let sched = schedule_for_view(&view, 1);
        let mut out = Mat::zeros(t.dims()[1], rank);
        let (ns, allocs) = measure(2, || {
            mttkrp_par_into(t, &factors, 1, &view, &sched, &mut ws, &mut out);
        });
        records.push(Record {
            kernel: "alloc-gate",
            backend: "coo-sched-seq".to_string(),
            tensor: "deli4d",
            threads: 1,
            ns_per_call: ns,
            allocs_per_call: allocs,
        });
        let rsched = csf.root_schedule(1);
        let (ns, allocs) = measure(2, || {
            csf.mttkrp_root_into(&factors, &rsched, &mut ws, &mut out);
        });
        records.push(Record {
            kernel: "alloc-gate",
            backend: "csf-sched-seq".to_string(),
            tensor: "deli4d",
            threads: 1,
            ns_per_call: ns,
            allocs_per_call: allocs,
        });
    });
    records
}

/// End-to-end CP-ALS per-iteration time for every backend.
fn bench_cpals(
    t: &SparseTensor,
    rank: usize,
    threads: usize,
    iters: usize,
    reps: usize,
) -> Vec<Record> {
    let mut records = Vec::new();
    with_threads(threads, || {
        // Interleave repetitions across backends, rotating the visit
        // order each round: a fixed order hands whichever backend runs
        // last any monotone machine drift within the round.
        let mut backends = all_backends(t, rank);
        let len = backends.len();
        let mut best = vec![u64::MAX; len];
        for rep in 0..reps {
            for k in 0..len {
                let i = (k + rep) % len;
                let opts = CpAlsOptions::new(rank).max_iters(iters).tol(0.0).seed(0);
                let res = CpAls::new(opts)
                    .run(t, &mut backends[i])
                    .unwrap_or_else(|e| panic!("bench CP-ALS rejected input: {e}"));
                let per_iter = if res.iters == 0 {
                    0
                } else {
                    (res.timings.total().as_nanos() / res.iters as u128) as u64
                };
                best[i] = best[i].min(per_iter);
            }
        }
        for (b, &per_iter) in backends.iter().zip(&best) {
            records.push(Record {
                kernel: "cpals-iter",
                backend: b.name().to_string(),
                tensor: "deli4d",
                threads,
                ns_per_call: per_iter,
                allocs_per_call: u64::MAX,
            });
        }
    });
    records
}

/// Durability guard: checkpointing every 5 iterations must stay cheap
/// relative to the iterations themselves. Returns the record plus the
/// measured overhead in percent (checkpoint time over everything else,
/// from the driver's own phase timings — the same accounting the
/// `checkpointing_does_not_perturb_the_trajectory` test exercises).
fn bench_ckpt_overhead(
    t: &SparseTensor,
    rank: usize,
    threads: usize,
    reps: usize,
) -> (Record, f64) {
    let dir = std::env::temp_dir().join(format!("adatm-bench-ckpt-{}", std::process::id()));
    let iters = 10; // two writes at the every-5 cadence
    let mut best_overhead = f64::INFINITY;
    let mut best_ckpt_ns = u64::MAX;
    with_threads(threads, || {
        for _ in 0..reps.max(2) {
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = CheckpointConfig::new(&dir).every_iters(5);
            let opts = CpAlsOptions::new(rank).max_iters(iters).tol(0.0).seed(0).checkpoint(cfg);
            let mut b = CooBackend::new(t);
            let res = CpAls::new(opts)
                .run(t, &mut b)
                .unwrap_or_else(|e| panic!("bench CP-ALS rejected input: {e}"));
            let ckpt = res.timings.checkpoint.as_nanos() as f64;
            let rest = res.timings.total().as_nanos() as f64 - ckpt;
            if rest > 0.0 {
                best_overhead = best_overhead.min(100.0 * ckpt / rest);
            }
            best_ckpt_ns =
                best_ckpt_ns.min((res.timings.checkpoint.as_nanos() / (iters as u128 / 5)) as u64);
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
    let record = Record {
        kernel: "ckpt-overhead",
        backend: "coo".to_string(),
        tensor: "deli4d",
        threads,
        ns_per_call: best_ckpt_ns,
        allocs_per_call: u64::MAX,
    };
    (record, best_overhead)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    date: &str,
    smoke: bool,
    threads: usize,
    rank: usize,
    records: &[Record],
    speedup: f64,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": 1,\n  \"date\": \"{date}\",\n"));
    out.push_str(&format!("  \"smoke\": {smoke},\n  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"rank\": {rank},\n"));
    out.push_str(&format!(
        "  \"summary\": {{ \"coo_sched_speedup\": {speedup:.3} }},\n  \"records\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        let allocs = if r.allocs_per_call == u64::MAX {
            "null".to_string()
        } else {
            r.allocs_per_call.to_string()
        };
        out.push_str(&format!(
            "    {{ \"kernel\": \"{}\", \"backend\": \"{}\", \"tensor\": \"{}\", \
             \"threads\": {}, \"ns_per_call\": {}, \"allocs_per_call\": {} }}{}\n",
            json_escape(r.kernel),
            json_escape(&r.backend),
            json_escape(r.tensor),
            r.threads,
            r.ns_per_call,
            allocs,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn main() {
    let smoke = env_flag("ADATM_BENCH_SMOKE");
    let threads = env_usize("ADATM_BENCH_THREADS", 8);
    let rank = env_usize("ADATM_RANK", 16);
    let reps = env_usize("ADATM_BENCH_REPS", if smoke { 2 } else { 25 });
    let e2e_iters = if smoke { 1 } else { 3 };
    let date = today_utc();
    let out_path = std::env::args().nth(1).unwrap_or_else(|| format!("BENCH_{date}.json"));

    println!("== bench_kernels: threads={threads} rank={rank} smoke={smoke}");
    let t = gate_tensor(smoke);
    println!("   gate tensor: dims={:?} nnz={}", t.dims(), t.nnz());

    let (mut records, sched_ns, grouped_ns) = bench_coo(&t, rank, threads, reps);
    records.extend(bench_csf(&t, rank, threads, reps));
    records.extend(bench_dtree_ttmv(&t, rank, threads, reps));
    records.extend(bench_alloc_gate(&t, rank));
    let e2e_reps = if smoke { 2 } else { 9 };
    records.extend(bench_cpals(&t, rank, threads, e2e_iters, e2e_reps));
    let (ckpt_record, ckpt_overhead_pct) = bench_ckpt_overhead(&t, rank, threads, e2e_reps);
    records.push(ckpt_record);

    let speedup = if sched_ns > 0 { grouped_ns as f64 / sched_ns as f64 } else { 0.0 };

    let mut table = Table::new(&["kernel", "backend", "threads", "ns/call", "allocs/call"]);
    for r in &records {
        table.row(&[
            r.kernel.to_string(),
            r.backend.clone(),
            r.threads.to_string(),
            r.ns_per_call.to_string(),
            if r.allocs_per_call == u64::MAX { "-".into() } else { r.allocs_per_call.to_string() },
        ]);
    }
    table.print();
    println!(
        "   COO full-sweep: scheduled {sched_ns} ns vs grouped {grouped_ns} ns -> {speedup:.2}x"
    );

    // Hard gates mirrored from the test-suite so a bench run can't
    // silently record a broken configuration.
    let mut gate_failures: Vec<String> = records
        .iter()
        .filter(|r| r.kernel == "alloc-gate" && r.allocs_per_call != 0)
        .map(|r| format!("{} allocated {} time(s) in steady state", r.backend, r.allocs_per_call))
        .collect();

    // Checkpoint-overhead gate: every-5-iterations checkpointing must
    // cost < 2% of the iteration work at full scale. Smoke iterations on
    // the 100x-smaller tensor are microseconds while an fsync is not, so
    // the smoke default is far looser — override either with
    // `ADATM_CKPT_TOLERANCE_PCT`.
    let default_tolerance = if smoke { 500.0 } else { 2.0 };
    let tolerance = std::env::var("ADATM_CKPT_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default_tolerance);
    println!(
        "   checkpoint overhead: {ckpt_overhead_pct:.3}% of iteration work (gate < {tolerance}%)"
    );
    if ckpt_overhead_pct > tolerance {
        gate_failures.push(format!(
            "checkpointing every 5 iters costs {ckpt_overhead_pct:.2}% (> {tolerance}%) of \
             cpals-iter work"
        ));
        eprintln!("bench_kernels: CKPT OVERHEAD GATE FAILED: {}", gate_failures.last().unwrap());
    }
    for f in &gate_failures {
        eprintln!("bench_kernels: ALLOC GATE FAILED: {f}");
    }

    if let Err(e) = write_json(&out_path, &date, smoke, threads, rank, &records, speedup) {
        eprintln!("bench_kernels: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("   wrote {out_path}");
    if !gate_failures.is_empty() {
        std::process::exit(1);
    }
}
