//! E14 — memory-budgeted planning (supplementary; the flops/memory
//! trade-off curve of the strategy space).
//!
//! Sweeps the resident-memory budget and reports, for each budget, the
//! planner's chosen strategy, its predicted flops, and its predicted
//! resident bytes: tightening the budget should trade monotonically more
//! flops for less memory until only the flat tree fits.

use adatm_bench::{banner, mib_f, rank, scale, standard_suite, Table};
use adatm_model::{NnzEstimator, Objective, Planner};

fn main() {
    banner("E14", "memory-budgeted strategy selection");
    let suite = standard_suite(scale());
    let r = rank();
    let mut table = Table::new(&[
        "tensor",
        "budget-MiB",
        "chosen",
        "pred-flops/iter",
        "pred-resident-MiB",
        "fits",
    ]);
    for d in suite.iter().filter(|d| d.tensor.ndim() >= 4 && d.tensor.ndim() <= 8) {
        let t = &d.tensor;
        // Use the pure flop objective so the unbudgeted plan is the most
        // memoization-hungry strategy — the trade-off curve is then
        // visible as the budget tightens. (The traffic-aware default
        // already prefers near-minimal-memory trees on 4-mode proxies,
        // which would make this sweep flat.)
        let free = Planner::new(t, r)
            .estimator(NnzEstimator::default())
            .objective(Objective::Flops)
            .plan();
        let anchor = free.predicted.resident_bytes();
        for frac in [2.0, 1.0, 0.75, 0.5, 0.25] {
            let budget = (anchor * frac) as usize;
            let plan = Planner::new(t, r)
                .estimator(NnzEstimator::default())
                .objective(Objective::Flops)
                .memory_budget(budget)
                .plan();
            let fits = plan.predicted.resident_bytes() <= budget as f64;
            table.row(&[
                d.name.clone(),
                mib_f(budget as f64),
                plan.shape.to_string(),
                format!("{:.3e}", plan.predicted.flops_per_iter),
                mib_f(plan.predicted.resident_bytes()),
                fits.to_string(),
            ]);
        }
    }
    table.print();
    table.print_tsv();
}
