//! Experiment harness utilities shared by the `e1_*` ... `e12_*` binaries.
//!
//! Every binary in `src/bin/` regenerates one (reconstructed) table or
//! figure of the paper's evaluation and prints it as an aligned text
//! table plus machine-readable TSV. Common knobs:
//!
//! * `ADATM_SCALE` — scales dataset nnz (default `0.1`); `1.0` is the
//!   full-size run used for `EXPERIMENTS.md`;
//! * `ADATM_ITERS` — CP-ALS iterations per timing run (default 3);
//! * `ADATM_RANK` — decomposition rank (default 16);
//! * `RAYON_NUM_THREADS` — thread count (rayon's own knob).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use adatm_tensor::gen::{proxy_datasets, random_nd, DatasetSpec};
use adatm_tensor::SparseTensor;
use std::time::{Duration, Instant};

// The env-knob readers moved to `adatm_core::env` (they were duplicated
// with workspace automation); re-exported here so harness code and the
// `e*_` binaries keep their old paths. Loud-fallback behavior on
// malformed values is unchanged.
pub use adatm_core::env::{env_f64, env_flag, env_usize, flag_value, parse_env};

/// The dataset-size scale for this run.
pub fn scale() -> f64 {
    env_f64("ADATM_SCALE", 0.1)
}

/// CP-ALS iterations per timed run.
pub fn iters() -> usize {
    env_usize("ADATM_ITERS", 3)
}

/// Decomposition rank.
pub fn rank() -> usize {
    env_usize("ADATM_RANK", 16)
}

/// A materialized benchmark dataset.
pub struct Dataset {
    /// Table label.
    pub name: String,
    /// What it stands in for.
    pub proxy_for: String,
    /// The tensor.
    pub tensor: SparseTensor,
}

/// Materializes a spec.
pub fn materialize(spec: &DatasetSpec) -> Dataset {
    Dataset {
        name: spec.name.to_string(),
        proxy_for: spec.proxy_for.to_string(),
        tensor: spec.build(),
    }
}

/// The standard dataset suite: five real-data proxies plus uniform
/// random tensors of increasing order.
pub fn standard_suite(scale: f64) -> Vec<Dataset> {
    let mut specs = proxy_datasets(scale);
    for order in [4usize, 8, 16] {
        specs.push(random_nd(order, scale));
    }
    specs.iter().map(materialize).collect()
}

/// A smaller suite for the order sweep (E6).
pub fn order_sweep_suite(scale: f64, orders: &[usize]) -> Vec<Dataset> {
    orders.iter().map(|&o| materialize(&random_nd(o, scale))).collect()
}

/// Times `f` once, returning elapsed wall time.
pub fn time_once<F: FnOnce()>(f: F) -> Duration {
    let t0 = Instant::now();
    f();
    t0.elapsed()
}

/// Runs `f` `reps` times and returns the minimum elapsed time — the
/// standard noise-rejection choice for deterministic workloads.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        best = best.min(time_once(&mut f));
    }
    best
}

/// Formats a duration in seconds with 4 significant decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats bytes in MiB.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats bytes (as f64, for model predictions) in MiB.
pub fn mib_f(bytes: f64) -> String {
    format!("{:.1}", bytes / (1024.0 * 1024.0))
}

/// A minimal aligned-column table writer that also emits TSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> =
                cells.iter().zip(widths.iter()).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
    }

    /// Prints the same content as TSV (for downstream plotting).
    pub fn print_tsv(&self) {
        println!("#TSV {}", self.headers.join("\t"));
        for row in &self.rows {
            println!("#TSV {}", row.join("\t"));
        }
    }
}

/// Runs `iters` CP-ALS iterations (no early stop) and returns the result
/// with phase timings populated.
pub fn run_cpals<B: adatm_core::MttkrpBackend + ?Sized>(
    tensor: &SparseTensor,
    backend: &mut B,
    rank: usize,
    iterations: usize,
) -> adatm_core::CpResult {
    let opts = adatm_core::CpAlsOptions::new(rank).max_iters(iterations).tol(0.0).seed(0);
    adatm_core::CpAls::new(opts)
        .run(tensor, backend)
        .unwrap_or_else(|e| panic!("benchmark CP-ALS run rejected its input: {e}"))
}

/// Average per-iteration wall time of a run (sum of measured phases).
pub fn per_iter(res: &adatm_core::CpResult) -> Duration {
    if res.iters == 0 {
        Duration::ZERO
    } else {
        res.timings.total() / res.iters as u32
    }
}

/// Runs `f` inside a rayon pool with exactly `threads` workers.
pub fn with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool").install(f)
}

/// Spearman rank correlation between two equal-length samples.
///
/// Used by the model-accuracy experiment: the planner only needs its
/// predictions to *rank* strategies correctly.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "samples must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ranks = |xs: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&i, &j| xs[i].total_cmp(&xs[j]));
        let mut r = vec![0.0; xs.len()];
        let mut i = 0;
        while i < order.len() {
            let mut j = i;
            while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &order[i..=j] {
                r[k] = avg;
            }
            i = j + 1;
        }
        r
    };
    let (ra, rb) = (ranks(a), ranks(b));
    let mean = (n as f64 - 1.0) / 2.0;
    let (mut num, mut da, mut db) = (0.0, 0.0, 0.0);
    for (x, y) in ra.iter().zip(rb.iter()) {
        let (dx, dy) = (x - mean, y - mean);
        num += dx * dy;
        da += dx * dx;
        db += dy * dy;
    }
    if da == 0.0 || db == 0.0 {
        return 1.0;
    }
    num / (da * db).sqrt()
}

/// Prints a standard experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("== {id}: {what}");
    println!(
        "   scale={} rank={} iters={} threads={}",
        scale(),
        rank(),
        iters(),
        rayon::current_num_threads()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_helpers_are_reexported_from_core() {
        // The implementations (and their unit tests) live in
        // `adatm_core::env`; this pins the bench-facing re-export.
        assert_eq!(env_f64("ADATM_NO_SUCH_VAR_XYZ", 0.25), 0.25);
        assert_eq!(env_usize("ADATM_NO_SUCH_VAR_XYZ", 7), 7);
        assert!(flag_value("F", Some("yes")) && !flag_value("F", Some("maybe")));
        assert_eq!(parse_env("K", Some("fast"), 0.25), 0.25);
    }

    #[test]
    fn standard_suite_builds_at_tiny_scale() {
        let suite = standard_suite(0.005);
        assert_eq!(suite.len(), 8);
        for d in &suite {
            assert!(d.tensor.nnz() > 0, "{}", d.name);
        }
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
        t.print_tsv();
    }

    #[test]
    fn time_best_is_positive() {
        let d = time_best(3, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(d > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_threads_constrains_pool() {
        let n = with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
    }

    #[test]
    fn run_cpals_reports_iterations() {
        let suite = standard_suite(0.002);
        let t = &suite[0].tensor;
        let mut b = adatm_core::CooBackend::new(t);
        let res = run_cpals(t, &mut b, 4, 2);
        assert_eq!(res.iters, 2);
        assert!(per_iter(&res) > Duration::ZERO);
    }
}
