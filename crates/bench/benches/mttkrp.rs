//! Criterion microbenchmark: one MTTKRP sweep (all modes) per backend.
//!
//! Complements the E2/E3 harnesses with statistically supervised timings
//! on a fixed mid-size skewed 4-mode tensor.

use adatm_core::{all_backends, MttkrpBackend};
use adatm_linalg::Mat;
use adatm_tensor::gen::zipf_tensor;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_mttkrp(c: &mut Criterion) {
    let rank = 16;
    let t = zipf_tensor(&[2_000, 30_000, 60_000, 10_000], 200_000, &[0.4, 0.9, 0.7, 1.0], 7);
    let factors: Vec<Mat> =
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, 10 + d as u64)).collect();
    let mut group = c.benchmark_group("mttkrp_sweep");
    group.sample_size(10);
    for mut backend in all_backends(&t, rank) {
        let name = backend.name();
        group.bench_function(name, |b| {
            b.iter(|| {
                for mode in 0..t.ndim() {
                    backend.begin_mode(mode);
                    let mut out = Mat::zeros(t.dims()[mode], rank);
                    backend.mttkrp_into(&t, &factors, mode, &mut out);
                    std::hint::black_box(&out);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mttkrp);
criterion_main!(benches);
