//! Criterion microbenchmark: the dense kernels inside a CP-ALS
//! subiteration (Gram, Hadamard, pseudoinverse solve, normalization).

use adatm_linalg::{jacobi_eigh, pinv::solve_gram, Mat};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_linalg(c: &mut Criterion) {
    let rank = 32;
    let rows = 100_000;
    let u = Mat::random(rows, rank, 1);
    let g = u.gram();
    let m = Mat::random(rows, rank, 2);
    let mut group = c.benchmark_group("dense_kernels");
    group.sample_size(20);
    group.bench_function("gram_100k_x_32", |b| b.iter(|| std::hint::black_box(u.gram())));
    group.bench_function("jacobi_eigh_32", |b| b.iter(|| std::hint::black_box(jacobi_eigh(&g))));
    group.bench_function("solve_gram_100k_x_32", |b| {
        b.iter(|| std::hint::black_box(solve_gram(&m, &g)))
    });
    group.bench_function("normalize_cols_100k_x_32", |b| {
        b.iter(|| {
            let mut x = m.clone();
            std::hint::black_box(x.normalize_cols());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
