//! Criterion microbenchmark: one full CP-ALS iteration per backend
//! (MTTKRP + normal equations + normalization + fit).

use adatm_core::{all_backends, CpAls, CpAlsOptions};
use adatm_tensor::gen::zipf_tensor;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_cpals_iter(c: &mut Criterion) {
    let rank = 16;
    let t = zipf_tensor(&[20_000, 500, 8_000], 150_000, &[0.8, 0.5, 0.9], 3);
    let mut group = c.benchmark_group("cpals_iteration");
    group.sample_size(10);
    for mut backend in all_backends(&t, rank) {
        let name = backend.name();
        let solver = CpAls::new(CpAlsOptions::new(rank).max_iters(1).tol(0.0).seed(1));
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(solver.run(&t, &mut backend).map(|r| r.iters)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpals_iter);
criterion_main!(benches);
