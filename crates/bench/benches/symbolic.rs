//! Criterion microbenchmark: one-time structure builds — dimension-tree
//! symbolic analysis per shape, CSF forest construction, and the
//! planner's full strategy search.

use adatm_dtree::{DimTree, SymbolicTree, TreeShape};
use adatm_model::Planner;
use adatm_tensor::csf::CsfSet;
use adatm_tensor::gen::zipf_tensor;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_symbolic(c: &mut Criterion) {
    let t = zipf_tensor(&[3_000, 20_000, 40_000, 8_000], 150_000, &[0.5, 0.8, 0.7, 1.0], 5);
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(10);
    for (name, shape) in [
        ("symbolic_tree2", TreeShape::two_level(4)),
        ("symbolic_tree3", TreeShape::three_level(4)),
        ("symbolic_bdt", TreeShape::balanced_binary(4)),
    ] {
        let tree = DimTree::from_shape(&shape);
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(SymbolicTree::build(&t, &tree)))
        });
    }
    group.bench_function("csf_all_modes", |b| {
        b.iter(|| std::hint::black_box(CsfSet::all_modes(&t)))
    });
    group.bench_function("planner_default", |b| {
        b.iter(|| std::hint::black_box(Planner::new(&t, 16).plan()))
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
