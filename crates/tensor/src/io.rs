//! Tensor I/O: FROSTT `.tns` text format and a compact binary format.
//!
//! The `.tns` format is the interchange format of the FROSTT collection
//! used throughout the sparse-tensor literature: one nonzero per line,
//! `N` whitespace-separated 1-based indices followed by the value; `#`
//! starts a comment. The binary format (`.adtm`) is a straightforward
//! little-endian dump used by the harness to cache generated datasets.

use crate::coo::{Idx, SparseTensor};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes opening the binary format.
const MAGIC: &[u8; 8] = b"ADTMTNS1";

/// Upper bound on the nonzero count a binary header may claim. Headers
/// are untrusted input; anything past this is a corrupt or hostile file,
/// not a dataset this library could process.
const MAX_NNZ: u64 = 1 << 40;

/// Cap on speculative `Vec::with_capacity` reservations while reading
/// length-prefixed sections. A lying header must not be able to trigger
/// a multi-GiB allocation before a single data byte is read; vectors
/// still grow to the true size as data actually arrives.
const MAX_PREALLOC: usize = 1 << 22;

/// Errors produced by tensor I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input could not be parsed; the message describes where.
    Parse(String),
    /// The input parsed but carries a NaN or infinite value; the message
    /// names the offending line or entry.
    NonFinite(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
            IoError::NonFinite(m) => write!(f, "non-finite data: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a FROSTT `.tns` tensor from a reader.
///
/// The tensor order is inferred from the first data line; mode sizes are
/// the per-mode maxima of the (1-based) indices. Duplicate coordinates are
/// preserved (call [`SparseTensor::dedup_sum`] to canonicalize).
pub fn read_tns<R: Read>(reader: R) -> Result<SparseTensor, IoError> {
    let buf = BufReader::new(reader);
    let mut inds: Vec<Vec<Idx>> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    let mut dims: Vec<usize> = Vec::new();
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(IoError::Parse(format!("line {}: too few fields", lineno + 1)));
        }
        let n = fields.len() - 1;
        if inds.is_empty() {
            inds = vec![Vec::new(); n];
            dims = vec![0; n];
        } else if n != inds.len() {
            return Err(IoError::Parse(format!(
                "line {}: expected {} indices, found {n}",
                lineno + 1,
                inds.len()
            )));
        }
        for (d, f) in fields[..n].iter().enumerate() {
            let one_based: u64 = f
                .parse()
                .map_err(|_| IoError::Parse(format!("line {}: bad index '{f}'", lineno + 1)))?;
            if one_based == 0 {
                return Err(IoError::Parse(format!(
                    "line {}: indices are 1-based, found 0",
                    lineno + 1
                )));
            }
            let zero_based = one_based - 1;
            if zero_based > Idx::MAX as u64 {
                return Err(IoError::Parse(format!("line {}: index overflow", lineno + 1)));
            }
            inds[d].push(zero_based as Idx);
            dims[d] = dims[d].max(one_based as usize);
        }
        let v: f64 = fields[n]
            .parse()
            .map_err(|_| IoError::Parse(format!("line {}: bad value", lineno + 1)))?;
        if !v.is_finite() {
            return Err(IoError::NonFinite(format!(
                "line {}: value '{}' is not finite",
                lineno + 1,
                fields[n]
            )));
        }
        vals.push(v);
    }
    if inds.is_empty() {
        return Err(IoError::Parse("no data lines found".into()));
    }
    Ok(SparseTensor::new(dims, inds, vals))
}

/// Reads a `.tns` file from disk.
pub fn read_tns_file<P: AsRef<Path>>(path: P) -> Result<SparseTensor, IoError> {
    read_tns(File::open(path)?)
}

/// Writes a tensor in FROSTT `.tns` format (1-based indices).
pub fn write_tns<W: Write>(t: &SparseTensor, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for k in 0..t.nnz() {
        for d in 0..t.ndim() {
            write!(w, "{} ", t.mode_idx(d)[k] as u64 + 1)?;
        }
        writeln!(w, "{}", t.vals()[k])?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a `.tns` file to disk.
pub fn write_tns_file<P: AsRef<Path>>(t: &SparseTensor, path: P) -> Result<(), IoError> {
    write_tns(t, File::create(path)?)
}

/// Writes the compact binary format.
pub fn write_binary<W: Write>(t: &SparseTensor, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(t.ndim() as u32).to_le_bytes())?;
    for &d in t.dims() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    w.write_all(&(t.nnz() as u64).to_le_bytes())?;
    for d in 0..t.ndim() {
        for &i in t.mode_idx(d) {
            w.write_all(&i.to_le_bytes())?;
        }
    }
    for &v in t.vals() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the binary format to a file.
pub fn write_binary_file<P: AsRef<Path>>(t: &SparseTensor, path: P) -> Result<(), IoError> {
    write_binary(t, File::create(path)?)
}

/// Reads the compact binary format.
pub fn read_binary<R: Read>(reader: R) -> Result<SparseTensor, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(IoError::Parse("bad magic: not an adatm binary tensor".into()));
    }
    let ndim = read_u32(&mut r)? as usize;
    if ndim == 0 || ndim > 1024 {
        return Err(IoError::Parse(format!("implausible order {ndim}")));
    }
    let mut dims = Vec::with_capacity(ndim);
    for d in 0..ndim {
        let dim = read_u64(&mut r)?;
        if dim == 0 || dim > Idx::MAX as u64 + 1 {
            return Err(IoError::Parse(format!("mode {d}: dimension {dim} out of range")));
        }
        dims.push(dim as usize);
    }
    let nnz64 = read_u64(&mut r)?;
    if nnz64 > MAX_NNZ {
        return Err(IoError::Parse(format!("implausible nonzero count {nnz64}")));
    }
    let nnz = nnz64 as usize;
    let mut inds = Vec::with_capacity(ndim);
    for (d, &dim) in dims.iter().enumerate() {
        let mut col = Vec::with_capacity(nnz.min(MAX_PREALLOC));
        for k in 0..nnz {
            let i = read_u32(&mut r)?;
            if i as u64 >= dim as u64 {
                return Err(IoError::Parse(format!(
                    "mode {d} entry {k}: index {i} exceeds dimension {dim}"
                )));
            }
            col.push(i);
        }
        inds.push(col);
    }
    let mut vals = Vec::with_capacity(nnz.min(MAX_PREALLOC));
    for k in 0..nnz {
        let v = f64::from_le_bytes(read_arr::<8, _>(&mut r)?);
        if !v.is_finite() {
            return Err(IoError::NonFinite(format!("entry {k}: value {v} is not finite")));
        }
        vals.push(v);
    }
    Ok(SparseTensor::new(dims, inds, vals))
}

/// Reads the binary format from a file.
pub fn read_binary_file<P: AsRef<Path>>(path: P) -> Result<SparseTensor, IoError> {
    read_binary(File::open(path)?)
}

fn read_arr<const K: usize, R: Read>(r: &mut R) -> Result<[u8; K], IoError> {
    let mut b = [0u8; K];
    r.read_exact(&mut b)?;
    Ok(b)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    Ok(u32::from_le_bytes(read_arr::<4, _>(r)?))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    Ok(u64::from_le_bytes(read_arr::<8, _>(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 2],
            &[(vec![0, 3, 1], 1.5), (vec![2, 0, 0], -2.0), (vec![1, 1, 1], 0.25)],
        )
    }

    #[test]
    fn tns_round_trip() {
        let t = toy();
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let back = read_tns(&buf[..]).unwrap();
        assert_eq!(back.ndim(), 3);
        assert_eq!(back.nnz(), 3);
        assert_eq!(back.get(&[0, 3, 1]), 1.5);
        assert_eq!(back.get(&[2, 0, 0]), -2.0);
    }

    #[test]
    fn tns_parses_comments_and_blank_lines() {
        let text = "# a comment\n\n1 1 2.5 # trailing comment\n2 3 -1\n";
        let t = read_tns(text.as_bytes()).unwrap();
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[0, 0]), 2.5);
        assert_eq!(t.get(&[1, 2]), -1.0);
    }

    #[test]
    fn tns_rejects_zero_index() {
        let err = read_tns("0 1 2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_)));
    }

    #[test]
    fn tns_rejects_inconsistent_arity() {
        let err = read_tns("1 1 1 2.0\n1 1 3.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse(_)));
    }

    #[test]
    fn tns_rejects_empty_input() {
        assert!(matches!(read_tns("# only comments\n".as_bytes()), Err(IoError::Parse(_))));
    }

    #[test]
    fn tns_parses_scientific_notation_and_negatives() {
        let t = read_tns("1 2 1.5e-3\n3 1 -2.25E+2\n2 2 .5\n".as_bytes()).unwrap();
        assert_eq!(t.nnz(), 3);
        assert!((t.get(&[0, 1]) - 1.5e-3).abs() < 1e-18);
        assert_eq!(t.get(&[2, 0]), -225.0);
        assert_eq!(t.get(&[1, 1]), 0.5);
    }

    #[test]
    fn tns_preserves_duplicates_for_caller_to_dedup() {
        let mut t = read_tns("1 1 2.0\n1 1 3.0\n".as_bytes()).unwrap();
        assert_eq!(t.nnz(), 2);
        t.dedup_sum();
        assert_eq!(t.nnz(), 1);
        assert_eq!(t.get(&[0, 0]), 5.0);
    }

    #[test]
    fn tns_rejects_non_finite_values_naming_the_line() {
        for bad in ["nan", "NaN", "inf", "-inf", "Infinity"] {
            let text = format!("1 1 2.0\n2 2 {bad}\n");
            let err = read_tns(text.as_bytes()).unwrap_err();
            match err {
                IoError::NonFinite(m) => assert!(m.contains("line 2"), "{bad}: {m}"),
                other => panic!("{bad}: expected NonFinite, got {other}"),
            }
        }
    }

    #[test]
    fn binary_rejects_non_finite_values_naming_the_entry() {
        let t =
            SparseTensor::from_entries(vec![2, 2], &[(vec![0, 0], 1.0), (vec![1, 1], f64::NAN)]);
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        match read_binary(&buf[..]).unwrap_err() {
            IoError::NonFinite(m) => assert!(m.contains("entry 1"), "{m}"),
            other => panic!("expected NonFinite, got {other}"),
        }
    }

    #[test]
    fn binary_rejects_giant_nnz_header_without_allocating() {
        // A header claiming u64::MAX nonzeros must fail fast on the
        // sanity cap, not attempt a multi-GiB reservation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&4u64.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::Parse(ref m) if m.contains("nonzero count")), "{err}");
    }

    #[test]
    fn binary_rejects_out_of_range_dimension() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::Parse(ref m) if m.contains("dimension")), "{err}");
    }

    #[test]
    fn binary_rejects_index_beyond_declared_dimension() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u64.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&7u32.to_le_bytes()); // index 7 in a dim-3 mode
        buf.extend_from_slice(&1.0f64.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::Parse(ref m) if m.contains("exceeds")), "{err}");
    }

    #[test]
    fn binary_lying_nnz_with_truncated_body_errors_cleanly() {
        // Plausible-but-wrong nnz (1000) with only one entry's worth of
        // data: the reader must surface a clean I/O error, not panic.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&10u64.to_le_bytes());
        buf.extend_from_slice(&1000u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        let err = read_binary(&buf[..]).unwrap_err();
        assert!(matches!(err, IoError::Io(_)), "{err}");
    }

    #[test]
    fn binary_round_trip_exact() {
        let t = toy();
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAGICristretto"[..]).unwrap_err();
        assert!(matches!(err, IoError::Parse(_)));
    }

    #[test]
    fn files_round_trip() {
        let dir = std::env::temp_dir();
        let t = toy();
        let tns = dir.join("adatm_io_test.tns");
        let bin = dir.join("adatm_io_test.adtm");
        write_tns_file(&t, &tns).unwrap();
        write_binary_file(&t, &bin).unwrap();
        let a = read_tns_file(&tns).unwrap();
        let b = read_binary_file(&bin).unwrap();
        assert_eq!(a.nnz(), t.nnz());
        assert_eq!(b, t);
        let _ = std::fs::remove_file(tns);
        let _ = std::fs::remove_file(bin);
    }
}
