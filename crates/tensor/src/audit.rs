//! Runtime write-overlap detection for the parallel MTTKRP kernels
//! (compiled only with the `audit` feature).
//!
//! The parallel kernels ([`crate::mttkrp::mttkrp_par`],
//! [`crate::csf::CsfTensor::mttkrp_root_par`]) are race-free because each
//! parallel task owns a *distinct* output row: COO groups entries by the
//! target mode's index, CSF assigns one task per root slice. That
//! disjointness is a structural claim about the sorted views and the CSF
//! build — this module checks it at runtime on every parallel MTTKRP,
//! and keeps global counters so an end-to-end run can prove the detector
//! actually executed and found zero overlaps.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of disjointness checks performed since process start (or the
/// last [`reset_overlap_stats`]).
static ROW_CHECKS: AtomicU64 = AtomicU64::new(0);
/// Number of overlapping or out-of-bounds row claims observed.
static ROW_OVERLAPS: AtomicU64 = AtomicU64::new(0);

/// Outcome of one disjointness check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// All claimed rows were in bounds and pairwise distinct.
    Disjoint,
    /// Two tasks claimed the same output row.
    Overlap {
        /// The doubly-claimed row.
        row: usize,
    },
    /// A task claimed a row outside the output matrix.
    OutOfBounds {
        /// The offending row index.
        row: usize,
        /// Number of rows in the output.
        nrows: usize,
    },
    /// A split group was declared with fewer than two slot rows — the
    /// scheduler should have demoted it to exclusive ownership.
    DegenerateSplit {
        /// The group's output row.
        row: usize,
        /// Its declared slot count.
        nslots: usize,
    },
}

/// Checks that `rows` are pairwise distinct and within `0..nrows`,
/// recording the outcome in the global counters. Returns the first
/// violation found, if any.
pub fn check_disjoint_rows<I>(rows: I, nrows: usize) -> ClaimOutcome
where
    I: IntoIterator<Item = usize>,
{
    ROW_CHECKS.fetch_add(1, Ordering::Relaxed);
    let mut claimed = vec![false; nrows];
    for row in rows {
        if row >= nrows {
            ROW_OVERLAPS.fetch_add(1, Ordering::Relaxed);
            return ClaimOutcome::OutOfBounds { row, nrows };
        }
        if claimed[row] {
            ROW_OVERLAPS.fetch_add(1, Ordering::Relaxed);
            return ClaimOutcome::Overlap { row };
        }
        claimed[row] = true;
    }
    ClaimOutcome::Disjoint
}

/// [`check_disjoint_rows`] that panics on violation, naming the kernel.
/// The parallel kernels call this after collecting their per-task rows:
/// an overlap would mean the "one task per output row" argument — and
/// therefore the absence of a data race — is wrong for this input.
pub fn assert_disjoint_rows<I>(rows: I, nrows: usize, kernel: &str)
where
    I: IntoIterator<Item = usize>,
{
    match check_disjoint_rows(rows, nrows) {
        ClaimOutcome::Disjoint => {}
        ClaimOutcome::Overlap { row } => {
            panic!("audit: {kernel}: two parallel tasks claimed output row {row}")
        }
        ClaimOutcome::OutOfBounds { row, nrows } => {
            panic!("audit: {kernel}: claimed row {row} outside output of {nrows} rows")
        }
        ClaimOutcome::DegenerateSplit { .. } => {
            unreachable!("check_disjoint_rows never reports splits")
        }
    }
}

/// Checks the row claims of a *scheduled* kernel: `owned` rows are
/// written directly by exactly one task; `split` rows `(row, nslots)` are
/// produced by merging `nslots` privatized slot rows. All rows (owned and
/// split together) must be in bounds and pairwise distinct, and every
/// split must use at least two slots (a one-slot split means the
/// scheduler failed to demote a degenerate split back to ownership).
pub fn check_schedule_claims<I, J>(owned: I, split: J, nrows: usize) -> ClaimOutcome
where
    I: IntoIterator<Item = usize>,
    J: IntoIterator<Item = (usize, usize)>,
{
    ROW_CHECKS.fetch_add(1, Ordering::Relaxed);
    let mut claimed = vec![false; nrows];
    let mut claim = |row: usize| -> Option<ClaimOutcome> {
        if row >= nrows {
            ROW_OVERLAPS.fetch_add(1, Ordering::Relaxed);
            return Some(ClaimOutcome::OutOfBounds { row, nrows });
        }
        if claimed[row] {
            ROW_OVERLAPS.fetch_add(1, Ordering::Relaxed);
            return Some(ClaimOutcome::Overlap { row });
        }
        claimed[row] = true;
        None
    };
    for row in owned {
        if let Some(bad) = claim(row) {
            return bad;
        }
    }
    for (row, nslots) in split {
        if let Some(bad) = claim(row) {
            return bad;
        }
        if nslots < 2 {
            ROW_OVERLAPS.fetch_add(1, Ordering::Relaxed);
            return ClaimOutcome::DegenerateSplit { row, nslots };
        }
    }
    ClaimOutcome::Disjoint
}

/// [`check_schedule_claims`] that panics on violation, naming the kernel.
pub fn assert_schedule_claims<I, J>(owned: I, split: J, nrows: usize, kernel: &str)
where
    I: IntoIterator<Item = usize>,
    J: IntoIterator<Item = (usize, usize)>,
{
    match check_schedule_claims(owned, split, nrows) {
        ClaimOutcome::Disjoint => {}
        ClaimOutcome::Overlap { row } => {
            panic!("audit: {kernel}: two scheduled tasks claimed output row {row}")
        }
        ClaimOutcome::OutOfBounds { row, nrows } => {
            panic!("audit: {kernel}: claimed row {row} outside output of {nrows} rows")
        }
        ClaimOutcome::DegenerateSplit { row, nslots } => {
            panic!("audit: {kernel}: split of row {row} uses {nslots} slot(s); expected >= 2")
        }
    }
}

/// Number of disjointness checks performed so far.
pub fn overlap_checks() -> u64 {
    ROW_CHECKS.load(Ordering::Relaxed)
}

/// Number of violations observed so far (0 in a correct build).
pub fn overlap_count() -> u64 {
    ROW_OVERLAPS.load(Ordering::Relaxed)
}

/// Resets both counters (test isolation helper).
pub fn reset_overlap_stats() {
    ROW_CHECKS.store(0, Ordering::Relaxed);
    ROW_OVERLAPS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_rows_pass() {
        let before = overlap_count();
        assert_eq!(check_disjoint_rows([0usize, 2, 1].into_iter(), 3), ClaimOutcome::Disjoint);
        assert_eq!(overlap_count(), before);
        assert!(overlap_checks() > 0);
    }

    #[test]
    fn duplicate_row_is_an_overlap() {
        let before = overlap_count();
        assert_eq!(
            check_disjoint_rows([0usize, 1, 1].into_iter(), 4),
            ClaimOutcome::Overlap { row: 1 }
        );
        assert_eq!(overlap_count(), before + 1);
    }

    #[test]
    fn out_of_bounds_row_is_flagged() {
        assert_eq!(
            check_disjoint_rows([5usize].into_iter(), 3),
            ClaimOutcome::OutOfBounds { row: 5, nrows: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "claimed output row")]
    fn assert_form_panics_on_overlap() {
        assert_disjoint_rows([2usize, 2].into_iter(), 3, "test-kernel");
    }
}
