// lint: hot-path
//! Compressed sparse fiber (CSF) storage and the SPLATT-style MTTKRP.
//!
//! CSF stores a sparse tensor as a forest: level 0 holds the distinct
//! indices of the root mode, level `l` the distinct mode-prefix extensions
//! at depth `l`, and the leaf level one node per nonzero. The SPLATT
//! MTTKRP walks this forest bottom-up, multiplying each *node's*
//! accumulated sum by its factor row once — so partial Hadamard products
//! are shared across every nonzero of a fiber instead of being recomputed
//! per nonzero as in COO. This is the state-of-the-art non-memoized
//! baseline: it still sweeps the whole tensor once per mode, `N` sweeps
//! per CP-ALS iteration, each doing `N-1` levels of row products.

use crate::coo::{Idx, SparseTensor};
use crate::schedule::{ModeSchedule, Task, Workspace};
use adatm_linalg::kernels;
use adatm_linalg::Mat;
use rayon::prelude::*;
use std::ops::Range;

/// A sparse tensor in compressed-sparse-fiber form for one mode ordering.
///
/// `order[0]` is the root mode: MTTKRP with [`CsfTensor::mttkrp_root`]
/// produces the matricized product for that mode.
#[derive(Clone, Debug)]
pub struct CsfTensor {
    dims: Vec<usize>,
    order: Vec<usize>,
    /// `fids[l][j]`: mode-`order[l]` index of node `j` at level `l`.
    fids: Vec<Vec<Idx>>,
    /// `fptr[l][j]..fptr[l][j+1]`: children (at level `l+1`) of node `j`
    /// at level `l`. Present for levels `0..N-1`.
    fptr: Vec<Vec<usize>>,
    /// Values aligned with leaf-level nodes (one per nonzero).
    vals: Vec<f64>,
}

impl CsfTensor {
    /// Builds a CSF representation with the given mode ordering.
    ///
    /// The ordering chooses which mode becomes the root (and therefore
    /// which mode [`CsfTensor::mttkrp_root`] computes). SPLATT's heuristic
    /// of sorting non-root modes by increasing size is available via
    /// [`CsfTensor::for_mode`].
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..ndim` or `ndim < 2`.
    pub fn build(t: &SparseTensor, order: &[usize]) -> Self {
        let n = t.ndim();
        assert!(n >= 2, "CSF requires at least 2 modes");
        assert_eq!(order.len(), n, "mode order arity mismatch");
        let mut seen = vec![false; n];
        for &m in order {
            assert!(m < n && !seen[m], "invalid mode order");
            seen[m] = true;
        }
        let perm = t.sort_permutation(order);

        let mut fids: Vec<Vec<Idx>> = vec![Vec::new(); n];
        let mut fptr: Vec<Vec<usize>> = vec![Vec::new(); n.saturating_sub(1)];
        // Walk entries in sorted order; a node at level l starts whenever
        // the prefix (order[0..=l]) changes.
        let mut prev: Option<&u32> = None;
        for p in &perm {
            let k = *p as usize;
            // Find the first level where this entry's prefix differs.
            let first_new = match prev {
                None => 0,
                Some(q) => {
                    let q = *q as usize;
                    (0..n)
                        .find(|&l| t.mode_idx(order[l])[k] != t.mode_idx(order[l])[q])
                        .unwrap_or(n) // complete duplicate coordinate
                }
            };
            for l in first_new..n {
                if l + 1 < n {
                    // The new node at level l opens a child range starting
                    // at the current size of level l+1.
                    fptr[l].push(fids[l + 1].len());
                }
                fids[l].push(t.mode_idx(order[l])[k]);
            }
            prev = Some(p);
        }
        // Close child ranges with a sentinel (CSR-style).
        for l in 0..n.saturating_sub(1) {
            fptr[l].push(fids[l + 1].len());
        }
        let vals: Vec<f64> = perm.iter().map(|&p| t.vals()[p as usize]).collect();
        // Note: duplicate coordinates collapse into one leaf node only if
        // adjacent after sorting, which they always are; but `first_new ==
        // n` above pushes nothing, so the duplicate's value must be folded
        // into the previous leaf. Handle by compacting here.
        let mut out =
            CsfTensor { dims: t.dims().to_vec(), order: order.to_vec(), fids, fptr, vals };
        out.fold_duplicate_leaves(&perm, t);
        out
    }

    /// Folds values of duplicate coordinates (which share a leaf node)
    /// into that leaf. `build` pushes one leaf per *distinct* coordinate.
    fn fold_duplicate_leaves(&mut self, perm: &[u32], t: &SparseTensor) {
        let n = self.ndim();
        let nleaf = self.fids[n - 1].len();
        if nleaf == perm.len() {
            return; // no duplicates
        }
        let mut vals = vec![0.0; nleaf];
        let mut leaf = usize::MAX;
        let mut prev: Option<usize> = None;
        for &p in perm {
            let k = p as usize;
            let dup = prev.is_some_and(|q| {
                (0..n).all(|l| t.mode_idx(self.order[l])[k] == t.mode_idx(self.order[l])[q])
            });
            if !dup {
                leaf = leaf.wrapping_add(1);
            }
            vals[leaf] += t.vals()[k];
            prev = Some(k);
        }
        self.vals = vals;
    }

    /// Builds the CSF used to compute mode-`mode` MTTKRP: `mode` at the
    /// root, remaining modes sorted by increasing size (SPLATT heuristic —
    /// small modes high in the tree maximize fiber reuse).
    pub fn for_mode(t: &SparseTensor, mode: usize) -> Self {
        let mut rest: Vec<usize> = (0..t.ndim()).filter(|&d| d != mode).collect();
        rest.sort_by_key(|&d| t.dims()[d]);
        let mut order = Vec::with_capacity(t.ndim());
        order.push(mode);
        order.extend(rest);
        CsfTensor::build(t, &order)
    }

    /// Number of modes.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// The mode ordering (root first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The root mode (the one MTTKRP is computed for).
    pub fn root_mode(&self) -> usize {
        self.order[0]
    }

    /// Node count at each level; level `N-1` equals the number of distinct
    /// coordinates.
    pub fn node_counts(&self) -> Vec<usize> {
        self.fids.iter().map(Vec::len).collect()
    }

    /// Mode sizes (in original mode order, not tree-level order).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The node indices at level `level`: `level_fids(l)[j]` is the
    /// mode-`order()[l]` index of node `j`. Exposed for structural audits.
    pub fn level_fids(&self, level: usize) -> &[Idx] {
        &self.fids[level]
    }

    /// The CSR child pointers of level `level` (present for levels
    /// `0..N-1`): node `j`'s children at level `level + 1` are
    /// `level_fptr(l)[j]..level_fptr(l)[j+1]`. Exposed for structural
    /// audits.
    pub fn level_fptr(&self, level: usize) -> &[usize] {
        &self.fptr[level]
    }

    /// Leaf values (one per distinct coordinate), aligned with the leaf
    /// level's nodes.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Storage footprint in bytes (fids + fptr + vals), for experiment E5.
    pub fn storage_bytes(&self) -> usize {
        let fid_bytes: usize = self.fids.iter().map(|v| v.len() * std::mem::size_of::<Idx>()).sum();
        let ptr_bytes: usize =
            self.fptr.iter().map(|v| v.len() * std::mem::size_of::<usize>()).sum();
        fid_bytes + ptr_bytes + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// Exact fused-multiply count of one `mttkrp_root` call at rank `R`:
    /// each non-root node multiplies its accumulated row once.
    pub fn mttkrp_flops(&self, rank: usize) -> usize {
        let non_root_nodes: usize = self.fids[1..].iter().map(Vec::len).sum();
        non_root_nodes * rank
    }

    /// First leaf of the subtree rooted at `(level, node)`, found by
    /// following first-child pointers. Accepts the one-past-the-end node
    /// (CSR sentinel), for which it returns the total leaf count.
    fn leaf_start(&self, mut level: usize, mut node: usize) -> usize {
        while level < self.ndim() - 1 {
            node = self.fptr[level][node];
            level += 1;
        }
        node
    }

    /// Descendant-leaf count (distinct nonzeros) of every root slice —
    /// the nnz weights the scheduler balances.
    pub fn root_slice_weights(&self) -> Vec<usize> {
        (0..self.fids[0].len()).map(|s| self.leaf_start(0, s + 1) - self.leaf_start(0, s)).collect()
    }

    /// Builds the nnz-balanced schedule for the root-mode MTTKRP,
    /// balanced for `threads` workers. Oversized root slices are split by
    /// their level-1 children, each weighing its own descendant-leaf
    /// count. Backends cache the result per mode.
    pub fn root_schedule(&self, threads: usize) -> ModeSchedule {
        let weights = self.root_slice_weights();
        ModeSchedule::build_weighted(&weights, threads, |g| {
            (self.fptr[0][g]..self.fptr[0][g + 1])
                .map(|c| self.leaf_start(1, c + 1) - self.leaf_start(1, c))
                .collect::<Vec<_>>()
        })
    }

    /// Computes the MTTKRP for the root mode, sequentially.
    pub fn mttkrp_root(&self, factors: &[Mat]) -> Mat {
        let rank = self.check(factors);
        let mut m = Mat::zeros(self.dims[self.root_mode()], rank);
        let mut scratch = vec![0.0f64; self.ndim() * rank];
        for s in 0..self.fids[0].len() {
            let row = m.row_mut(self.fids[0][s] as usize);
            self.eval_root_children(
                self.fptr[0][s]..self.fptr[0][s + 1],
                factors,
                rank,
                &mut scratch,
                row,
            );
        }
        m
    }

    /// Computes the MTTKRP for the root mode, parallel over root slices.
    ///
    /// Convenience wrapper over [`CsfTensor::mttkrp_root_into`] that
    /// builds a schedule for the current thread count and a throwaway
    /// workspace. Hot paths should cache both.
    pub fn mttkrp_root_par(&self, factors: &[Mat]) -> Mat {
        let rank = self.check(factors);
        let sched = self.root_schedule(rayon::current_num_threads());
        let mut ws = Workspace::new();
        let mut m = Mat::zeros(self.dims[self.root_mode()], rank);
        self.mttkrp_root_into(factors, &sched, &mut ws, &mut m);
        m
    }

    /// Scheduled parallel root-mode MTTKRP into a caller-provided output.
    ///
    /// `sched` must come from [`CsfTensor::root_schedule`]; `ws` provides
    /// all scratch memory (one `N x R` evaluation stack per task plus one
    /// privatized slot row per split sub-task). Zero heap allocations
    /// when the schedule is sequential; O(tasks) otherwise. Race-freedom
    /// mirrors the COO kernel: Owned tasks get disjoint `out` row spans
    /// via `split_at_mut`, split sub-tasks accumulate level-1 child
    /// subtrees into private slot rows merged per-row afterwards.
    #[adatm::hot]
    pub fn mttkrp_root_into(
        &self,
        factors: &[Mat],
        sched: &ModeSchedule,
        ws: &mut Workspace,
        out: &mut Mat,
    ) {
        let rank = self.check(factors);
        assert_eq!(out.nrows(), self.dims[self.root_mode()], "output rows mismatch");
        assert_eq!(out.ncols(), rank, "output rank mismatch");
        out.fill_zero();
        if rank == 0 || sched.num_tasks() == 0 {
            return;
        }
        #[cfg(feature = "audit")]
        {
            let owned = sched.tasks().iter().flat_map(|task| {
                let groups = match task {
                    Task::Owned { groups } => groups.clone(),
                    Task::Split { .. } => 0..0,
                };
                groups.map(|g| self.fids[0][g] as usize)
            });
            let split =
                sched.splits().iter().map(|sp| (self.fids[0][sp.group] as usize, sp.nslots));
            crate::audit::assert_schedule_claims(owned, split, out.nrows(), "mttkrp_root_par");
        }
        let nscr = self.ndim() * rank;
        let (scratch, slots) = ws.ensure(sched.num_tasks() * nscr, sched.num_slots() * rank);
        if sched.is_sequential() {
            let scr = &mut scratch[..nscr];
            for s in 0..self.fids[0].len() {
                let row = out.row_mut(self.fids[0][s] as usize);
                self.eval_root_children(
                    self.fptr[0][s]..self.fptr[0][s + 1],
                    factors,
                    rank,
                    scr,
                    row,
                );
            }
            return;
        }
        struct Ctx<'a> {
            task: &'a Task,
            buf: &'a mut [f64],
            row0: usize,
            scr: &'a mut [f64],
        }
        let mut ctxs: Vec<Ctx<'_>> = Vec::with_capacity(sched.num_tasks());
        let mut out_rest = out.as_mut_slice();
        let mut consumed_rows = 0usize;
        let mut slots_rest = &mut slots[..];
        let mut scratch_rest = &mut scratch[..];
        for task in sched.tasks() {
            let (scr, rest) = std::mem::take(&mut scratch_rest).split_at_mut(nscr);
            scratch_rest = rest;
            match task {
                Task::Owned { groups } => {
                    let first = self.fids[0][groups.start] as usize;
                    let last = self.fids[0][groups.end - 1] as usize;
                    let tail = std::mem::take(&mut out_rest);
                    let (_, tail) = tail.split_at_mut((first - consumed_rows) * rank);
                    let (span, rest) = tail.split_at_mut((last + 1 - first) * rank);
                    out_rest = rest;
                    consumed_rows = last + 1;
                    ctxs.push(Ctx { task, buf: span, row0: first, scr });
                }
                Task::Split { .. } => {
                    let (row, rest) = std::mem::take(&mut slots_rest).split_at_mut(rank);
                    slots_rest = rest;
                    ctxs.push(Ctx { task, buf: row, row0: 0, scr });
                }
            }
        }
        ctxs.into_par_iter().for_each(|ctx| {
            let Ctx { task, buf, row0, scr } = ctx;
            match task {
                Task::Owned { groups } => {
                    for s in groups.clone() {
                        let off = (self.fids[0][s] as usize - row0) * rank;
                        let row = &mut buf[off..off + rank];
                        self.eval_root_children(
                            self.fptr[0][s]..self.fptr[0][s + 1],
                            factors,
                            rank,
                            scr,
                            row,
                        );
                    }
                }
                Task::Split { group, elems, .. } => {
                    let base = self.fptr[0][*group];
                    self.eval_root_children(
                        base + elems.start..base + elems.end,
                        factors,
                        rank,
                        scr,
                        buf,
                    );
                }
            }
        });
        for sp in sched.splits() {
            let orow = out.row_mut(self.fids[0][sp.group] as usize);
            for s in 0..sp.nslots {
                let srow = &slots[(sp.slot0 + s) * rank..(sp.slot0 + s + 1) * rank];
                kernels::add_assign(orow, srow);
            }
        }
    }

    /// Evaluates a range of level-1 subtrees and accumulates their rows
    /// into `acc` (an output row or a privatized slot row). This is the
    /// root level of the bottom-up walk with the root's own factor row
    /// excluded, as MTTKRP for the root mode requires.
    fn eval_root_children(
        &self,
        children: Range<usize>,
        factors: &[Mat],
        rank: usize,
        scratch: &mut [f64],
        acc: &mut [f64],
    ) {
        for c in children {
            self.eval_subtree(1, c, factors, rank, scratch);
            let row1 = &scratch[rank..2 * rank];
            kernels::add_assign(acc, row1);
        }
    }

    /// Bottom-up evaluation of one subtree over a flat `N x R` scratch
    /// stack. On return, `scratch[level*R..][..R]` holds the accumulated
    /// rank-`R` row of node `(level, node)` with all factor rows *below*
    /// the root multiplied in (the root's own factor is intentionally
    /// excluded: this is MTTKRP for the root mode).
    fn eval_subtree(
        &self,
        level: usize,
        node: usize,
        factors: &[Mat],
        rank: usize,
        scratch: &mut [f64],
    ) {
        let n = self.ndim();
        if level == n - 1 {
            // Leaf: value times the leaf mode's factor row.
            let v = self.vals[node];
            let frow = factors[self.order[level]].row(self.fids[level][node] as usize);
            let dst = &mut scratch[level * rank..(level + 1) * rank];
            kernels::scale(dst, v, frow);
            return;
        }
        let (lo, hi) = (self.fptr[level][node], self.fptr[level][node + 1]);
        // Zero this level's accumulator, sum children into it.
        scratch[level * rank..(level + 1) * rank].fill(0.0);
        for c in lo..hi {
            self.eval_subtree(level + 1, c, factors, rank, scratch);
            let (upper, lower) = scratch.split_at_mut((level + 1) * rank);
            let acc = &mut upper[level * rank..];
            kernels::add_assign(acc, &lower[..rank]);
        }
        if level > 0 {
            // Multiply this node's own factor row in, once for the whole
            // fiber — the source of CSF's advantage over COO.
            let frow = factors[self.order[level]].row(self.fids[level][node] as usize);
            let acc = &mut scratch[level * rank..(level + 1) * rank];
            kernels::mul_assign(acc, frow);
        }
    }

    fn check(&self, factors: &[Mat]) -> usize {
        assert_eq!(factors.len(), self.ndim(), "one factor per mode required");
        let rank = factors[0].ncols();
        for (d, f) in factors.iter().enumerate() {
            assert_eq!(f.nrows(), self.dims[d], "factor {d} rows mismatch");
            assert_eq!(f.ncols(), rank, "factor {d} rank mismatch");
        }
        rank
    }
}

/// One CSF representation per mode, as SPLATT's ALLMODE configuration
/// allocates — the memory-hungriest but fastest non-memoized layout.
#[derive(Clone, Debug)]
pub struct CsfSet {
    csfs: Vec<CsfTensor>,
}

impl CsfSet {
    /// Builds `N` CSF tensors, one rooted at each mode.
    pub fn all_modes(t: &SparseTensor) -> Self {
        CsfSet { csfs: (0..t.ndim()).map(|m| CsfTensor::for_mode(t, m)).collect() }
    }

    /// The CSF rooted at `mode`.
    pub fn for_mode(&self, mode: usize) -> &CsfTensor {
        &self.csfs[mode]
    }

    /// Total storage across all representations.
    pub fn storage_bytes(&self) -> usize {
        self.csfs.iter().map(CsfTensor::storage_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;
    use crate::mttkrp::mttkrp_seq;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5, 2],
            &[
                (vec![0, 1, 2, 1], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 0, 0, 1], 3.0),
                (vec![3, 0, 1, 0], -4.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![2, 2, 2, 1], 7.0),
                (vec![0, 1, 2, 0], 0.5),
            ],
        )
    }

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    #[test]
    fn build_level_structure_is_consistent() {
        let t = toy();
        let c = CsfTensor::build(&t, &[0, 1, 2, 3]);
        let counts = c.node_counts();
        assert_eq!(counts[3], 7, "leaf level has one node per distinct nonzero");
        assert_eq!(counts[0], t.distinct_in_mode(0));
        // fptr CSR invariants.
        for l in 0..3 {
            assert_eq!(c.fptr[l].len(), counts[l] + 1);
            assert_eq!(*c.fptr[l].last().unwrap(), counts[l + 1]);
            assert!(c.fptr[l].windows(2).all(|w| w[0] < w[1]), "nonempty children");
        }
    }

    #[test]
    fn mttkrp_root_matches_coo_all_modes() {
        let t = toy();
        let factors = factors_for(&t, 3, 5);
        for mode in 0..4 {
            let c = CsfTensor::for_mode(&t, mode);
            let m = c.mttkrp_root(&factors);
            let m_ref = mttkrp_seq(&t, &factors, mode);
            assert!(m.max_abs_diff(&m_ref) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn mttkrp_root_matches_dense_oracle() {
        let t = toy();
        let dense = DenseTensor::from_sparse(&t);
        let factors = factors_for(&t, 2, 8);
        let c = CsfTensor::for_mode(&t, 2);
        let m = c.mttkrp_root(&factors);
        assert!(m.max_abs_diff(&dense.mttkrp_ref(&factors, 2)) < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let t = toy();
        let factors = factors_for(&t, 4, 9);
        for mode in 0..4 {
            let c = CsfTensor::for_mode(&t, mode);
            let p = c.mttkrp_root_par(&factors);
            let s = c.mttkrp_root(&factors);
            assert!(p.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn duplicates_fold_into_one_leaf() {
        let t = SparseTensor::from_entries(
            vec![2, 2],
            &[(vec![1, 1], 2.0), (vec![1, 1], 3.0), (vec![0, 0], 1.0)],
        );
        let c = CsfTensor::build(&t, &[0, 1]);
        assert_eq!(c.node_counts(), vec![2, 2]);
        let factors = vec![Mat::from_vec(2, 1, vec![1.0; 2]), Mat::from_vec(2, 1, vec![1.0; 2])];
        let m = c.mttkrp_root(&factors);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn for_mode_orders_small_modes_high() {
        let t = toy(); // dims 4,3,5,2
        let c = CsfTensor::for_mode(&t, 2);
        assert_eq!(c.order(), &[2, 3, 1, 0]); // root 2, then sizes 2,3,4
    }

    #[test]
    fn mttkrp_flops_below_coo_flops() {
        let t = toy();
        let c = CsfTensor::for_mode(&t, 0);
        // CSF never performs more multiply work than element-wise COO.
        assert!(c.mttkrp_flops(8) <= t.nnz() * (t.ndim() - 1) * 8);
    }

    #[test]
    fn root_slice_weights_sum_to_leaves() {
        let t = toy();
        for mode in 0..4 {
            let c = CsfTensor::for_mode(&t, mode);
            let w = c.root_slice_weights();
            assert_eq!(w.len(), c.node_counts()[0], "mode {mode}");
            assert_eq!(w.iter().sum::<usize>(), *c.node_counts().last().unwrap(), "mode {mode}");
        }
    }

    /// Mode-0 index 1 owns almost all fibers — forces a root-slice split.
    fn hot_root_tensor() -> SparseTensor {
        let mut entries = Vec::new();
        for k in 0..300 {
            entries.push((vec![1usize, k % 15, k % 20], 0.1 * k as f64 - 7.0));
        }
        for k in 0..30 {
            entries.push((vec![k % 4, k % 15, k % 20], k as f64));
        }
        SparseTensor::from_entries(vec![4, 15, 20], &entries)
    }

    #[test]
    fn scheduled_root_matches_sequential_with_forced_splits() {
        let t = hot_root_tensor();
        let factors = factors_for(&t, 5, 11);
        let c = CsfTensor::for_mode(&t, 0);
        let weights = c.root_slice_weights();
        let sched = ModeSchedule::build_weighted_with_target(&weights, 4, 16, |g| {
            (c.level_fptr(0)[g]..c.level_fptr(0)[g + 1])
                .map(|ch| c.leaf_start(1, ch + 1) - c.leaf_start(1, ch))
                .collect::<Vec<_>>()
        });
        assert!(!sched.splits().is_empty(), "hot root slice should be split");
        let mut ws = Workspace::new();
        let mut out = Mat::zeros(t.dims()[0], 5);
        c.mttkrp_root_into(&factors, &sched, &mut ws, &mut out);
        let s = c.mttkrp_root(&factors);
        assert!(out.max_abs_diff(&s) < 1e-12);
    }

    #[test]
    fn scheduled_root_is_deterministic() {
        let t = hot_root_tensor();
        let factors = factors_for(&t, 4, 13);
        let c = CsfTensor::for_mode(&t, 0);
        let sched = ModeSchedule::build_weighted_with_target(&c.root_slice_weights(), 4, 16, |g| {
            vec![1usize; c.level_fptr(0)[g + 1] - c.level_fptr(0)[g]]
        });
        let mut ws = Workspace::new();
        let mut a = Mat::zeros(t.dims()[0], 4);
        let mut b = Mat::zeros(t.dims()[0], 4);
        c.mttkrp_root_into(&factors, &sched, &mut ws, &mut a);
        c.mttkrp_root_into(&factors, &sched, &mut ws, &mut b);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn csf_set_covers_all_modes() {
        let t = toy();
        let set = CsfSet::all_modes(&t);
        for m in 0..4 {
            assert_eq!(set.for_mode(m).root_mode(), m);
        }
        assert!(set.storage_bytes() > t.storage_bytes());
    }
}
