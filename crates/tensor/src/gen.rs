//! Synthetic sparse tensor generators.
//!
//! The paper's evaluation runs on real FROSTT-class datasets plus uniform
//! random higher-order tensors. Real datasets are not redistributable
//! here, so the harness substitutes *shape-faithful proxies*: same order
//! and mode-size ratios (scaled to laptop budgets), with per-mode
//! Zipf-skewed index distributions. Skew is the property that matters —
//! it controls how much the nonzero index sets collapse under projection,
//! which is exactly what determines the payoff of memoizing intermediate
//! tensors. Uniform tensors reproduce the no-overlap extreme the papers
//! use as the pessimistic bound.

use crate::coo::{Idx, SparseTensor};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws indices from `0..size` with probability proportional to
/// `1/(k+1)^skew` via an inverse-CDF table. `skew = 0` is uniform.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for a mode of the given size.
    ///
    /// # Panics
    /// Panics if `size == 0` or `skew < 0`.
    pub fn new(size: usize, skew: f64) -> Self {
        assert!(size > 0, "mode size must be positive");
        assert!(skew >= 0.0, "skew must be nonnegative");
        let mut cdf = Vec::with_capacity(size);
        let mut acc = 0.0;
        for k in 0..size {
            acc += 1.0 / ((k + 1) as f64).powf(skew);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Samples one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Idx {
        let u: f64 = rng.gen();
        // partition_point returns the count of entries < u, i.e. the first
        // index whose cdf >= u.
        let i = self.cdf.partition_point(|&c| c < u);
        i.min(self.cdf.len() - 1) as Idx
    }
}

/// Generates a sparse tensor with per-mode Zipf-skewed indices.
///
/// Approximately `nnz` *distinct* coordinates are produced (duplicates
/// from the skewed sampling are summed away, so high skews may return
/// slightly fewer). Values are uniform in `(0, 1]`.
pub fn zipf_tensor(dims: &[usize], nnz: usize, skews: &[f64], seed: u64) -> SparseTensor {
    assert_eq!(dims.len(), skews.len(), "one skew per mode required");
    let mut rng = StdRng::seed_from_u64(seed);
    let samplers: Vec<ZipfSampler> =
        dims.iter().zip(skews.iter()).map(|(&d, &s)| ZipfSampler::new(d, s)).collect();
    let n = dims.len();
    let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(nnz); n];
    let mut vals: Vec<f64> = Vec::with_capacity(nnz);
    let vdist = Uniform::new(f64::MIN_POSITIVE, 1.0);
    let mut t = SparseTensor::empty(dims.to_vec());
    // Sample in rounds until we reach the target distinct count or the
    // duplicate rate shows the space is saturated.
    let mut target = nnz;
    for _round in 0..8 {
        for _ in 0..target {
            for (col, s) in inds.iter_mut().zip(samplers.iter()) {
                col.push(s.sample(&mut rng));
            }
            vals.push(vdist.sample(&mut rng));
        }
        let mut all_inds: Vec<Vec<Idx>> = Vec::with_capacity(n);
        for (d, col) in inds.iter_mut().enumerate() {
            let mut merged = t.mode_idx(d).to_vec();
            merged.append(col);
            all_inds.push(merged);
        }
        let mut all_vals = t.vals().to_vec();
        all_vals.append(&mut vals);
        t = SparseTensor::new(dims.to_vec(), all_inds, all_vals);
        t.dedup_sum();
        if t.nnz() >= nnz {
            break;
        }
        target = (nnz - t.nnz()).max(nnz / 10);
    }
    // Rounds may overshoot; clamp to the requested count. dedup_sum leaves
    // entries lexicographically sorted, so truncating directly would bias
    // the kept coordinates low — shuffle first so the dropped entries are
    // a uniform subset.
    if t.nnz() > nnz {
        let mut perm: Vec<u32> = (0..t.nnz() as u32).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        t.apply_permutation(&perm);
        t.truncate(nnz);
    }
    t
}

/// Generates a sparse tensor with uniformly random distinct coordinates.
pub fn uniform_tensor(dims: &[usize], nnz: usize, seed: u64) -> SparseTensor {
    let skews = vec![0.0; dims.len()];
    zipf_tensor(dims, nnz, &skews, seed)
}

/// Ground truth returned by [`low_rank_tensor`].
pub struct LowRankTruth {
    /// The generated tensor (values sampled from the low-rank model plus
    /// optional Gaussian noise).
    pub tensor: SparseTensor,
    /// The factor matrices that produced it (unit-norm columns are *not*
    /// enforced).
    pub factors: Vec<adatm_linalg::Mat>,
}

/// Generates a sparse sample of a random rank-`rank` CP model.
///
/// Coordinates are uniform-random distinct; each value is the CP model
/// value at that coordinate plus `noise * g` with `g` standard normal
/// (Box–Muller). With `noise = 0`, CP-ALS at the same rank should fit this
/// tensor essentially exactly — the convergence tests rely on it.
pub fn low_rank_tensor(
    dims: &[usize],
    rank: usize,
    nnz: usize,
    noise: f64,
    seed: u64,
) -> LowRankTruth {
    let factors: Vec<adatm_linalg::Mat> = dims
        .iter()
        .enumerate()
        .map(|(d, &n)| adatm_linalg::Mat::random(n, rank, seed ^ (0x9e37 + d as u64)))
        .collect();
    let mut t = uniform_tensor(dims, nnz, seed.wrapping_add(1));
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    for k in 0..t.nnz() {
        let mut v = 0.0;
        for r in 0..rank {
            let mut p = 1.0;
            for (d, f) in factors.iter().enumerate() {
                p *= f.get(t.mode_idx(d)[k] as usize, r);
            }
            v += p;
        }
        if noise > 0.0 {
            let (u1, u2): (f64, f64) = (rng.gen_range(f64::MIN_POSITIVE..1.0), rng.gen());
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            v += noise * g;
        }
        t.vals_mut()[k] = v;
    }
    LowRankTruth { tensor: t, factors }
}

/// Generates a block-clustered sparse tensor: `blocks` dense-ish
/// communities whose member indices co-occur, plus uniform background
/// noise — the community structure of social/commerce tensors, which
/// produces projection collapse *without* global index skew.
///
/// Each block is an axis-aligned sub-box covering `block_frac` of every
/// mode; `noise_frac` of the entries are uniform over the whole tensor.
pub fn clustered_tensor(
    dims: &[usize],
    nnz: usize,
    blocks: usize,
    block_frac: f64,
    noise_frac: f64,
    seed: u64,
) -> SparseTensor {
    assert!(blocks > 0, "need at least one block");
    assert!((0.0..=1.0).contains(&block_frac), "block_frac in [0,1]");
    assert!((0.0..=1.0).contains(&noise_frac), "noise_frac in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = dims.len();
    // Random block origins; extents are block_frac of each mode.
    let extents: Vec<usize> =
        dims.iter().map(|&d| ((d as f64 * block_frac) as usize).max(1)).collect();
    let origins: Vec<Vec<usize>> = (0..blocks)
        .map(|_| {
            dims.iter()
                .zip(extents.iter())
                .map(|(&d, &e)| if d > e { rng.gen_range(0..=d - e) } else { 0 })
                .collect()
        })
        .collect();
    let vdist = Uniform::new(f64::MIN_POSITIVE, 1.0);
    let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(nnz); n];
    let mut vals = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let coords: Vec<usize> = if rng.gen::<f64>() < noise_frac {
            dims.iter().map(|&d| rng.gen_range(0..d)).collect()
        } else {
            let b = &origins[rng.gen_range(0..blocks)];
            b.iter().zip(extents.iter()).map(|(&o, &e)| o + rng.gen_range(0..e)).collect()
        };
        for (col, &c) in inds.iter_mut().zip(coords.iter()) {
            col.push(c as Idx);
        }
        vals.push(vdist.sample(&mut rng));
    }
    let mut t = SparseTensor::new(dims.to_vec(), inds, vals);
    t.dedup_sum();
    t
}

/// Generates a **fully dense** rank-`rank` CP tensor, stored in COO form.
///
/// Unlike [`low_rank_tensor`] (which samples the model at sparse
/// positions, leaving implicit zeros that break exact low-rankness), this
/// enumerates every cell, so the resulting tensor *is* rank <= `rank` and
/// CP-ALS at that rank can reach fit ~1. Only suitable for small dims
/// (`prod(dims)` entries are materialized).
pub fn dense_low_rank(dims: &[usize], rank: usize, noise: f64, seed: u64) -> LowRankTruth {
    let factors: Vec<adatm_linalg::Mat> = dims
        .iter()
        .enumerate()
        .map(|(d, &n)| adatm_linalg::Mat::random(n, rank, seed ^ (0x517c + d as u64)))
        .collect();
    let cells: usize = dims.iter().product();
    let n = dims.len();
    let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(cells); n];
    let mut vals = Vec::with_capacity(cells);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
    let mut coords = vec![0usize; n];
    for _ in 0..cells {
        let mut v = 0.0;
        for r in 0..rank {
            let mut p = 1.0;
            for (d, f) in factors.iter().enumerate() {
                p *= f.get(coords[d], r);
            }
            v += p;
        }
        if noise > 0.0 {
            let (u1, u2): (f64, f64) = (rng.gen_range(f64::MIN_POSITIVE..1.0), rng.gen());
            let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            v += noise * g;
        }
        for (col, &c) in inds.iter_mut().zip(coords.iter()) {
            col.push(c as Idx);
        }
        vals.push(v);
        // Odometer increment, last mode fastest.
        for d in (0..n).rev() {
            coords[d] += 1;
            if coords[d] < dims[d] {
                break;
            }
            coords[d] = 0;
        }
    }
    LowRankTruth { tensor: SparseTensor::new(dims.to_vec(), inds, vals), factors }
}

/// A named synthetic dataset specification (proxy for a paper dataset or
/// a pure synthetic family member).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as it appears in experiment tables.
    pub name: &'static str,
    /// Mode sizes.
    pub dims: Vec<usize>,
    /// Target number of distinct nonzeros.
    pub nnz: usize,
    /// Per-mode Zipf skew (0 = uniform).
    pub skews: Vec<f64>,
    /// RNG seed; fixed so every harness sees identical data.
    pub seed: u64,
    /// What this dataset stands in for.
    pub proxy_for: &'static str,
}

impl DatasetSpec {
    /// Materializes the tensor.
    pub fn build(&self) -> SparseTensor {
        zipf_tensor(&self.dims, self.nnz, &self.skews, self.seed)
    }
}

/// The registry of proxy datasets used across all experiments.
///
/// Dims preserve each real dataset's order and mode-size *ratios*, scaled
/// so the largest harness run finishes in seconds; skews reproduce the
/// heavy-tailed index reuse of web/commerce data (higher on "user"/"tag"
/// style modes). `scale` in `(0, 1]` scales nnz for quick runs.
pub fn proxy_datasets(scale: f64) -> Vec<DatasetSpec> {
    let nnz = |base: usize| ((base as f64 * scale) as usize).max(10_000);
    vec![
        DatasetSpec {
            name: "deli4d",
            dims: vec![200, 12_000, 120_000, 40_000],
            nnz: nnz(1_500_000),
            skews: vec![0.3, 0.9, 0.7, 1.0],
            seed: 11,
            proxy_for: "Delicious (time x user x resource x tag, 4-mode)",
        },
        DatasetSpec {
            name: "flickr4d",
            dims: vec![120, 6_000, 160_000, 30_000],
            nnz: nnz(1_200_000),
            skews: vec![0.3, 0.9, 0.6, 1.1],
            seed: 12,
            proxy_for: "Flickr (time x user x resource x tag, 4-mode)",
        },
        DatasetSpec {
            name: "netflix3d",
            dims: vec![60_000, 3_500, 400],
            nnz: nnz(1_500_000),
            skews: vec![0.7, 0.8, 0.4],
            seed: 13,
            proxy_for: "Netflix (user x movie x time, 3-mode)",
        },
        DatasetSpec {
            name: "nell3d",
            dims: vec![150_000, 80, 40_000],
            nnz: nnz(1_000_000),
            skews: vec![0.8, 0.9, 0.8],
            seed: 14,
            proxy_for: "NELL (entity x relation x entity, 3-mode)",
        },
        DatasetSpec {
            name: "amazon3d",
            dims: vec![200_000, 60_000, 6_000],
            nnz: nnz(2_000_000),
            skews: vec![0.6, 0.7, 1.0],
            seed: 15,
            proxy_for: "Amazon reviews (user x product x word, 3-mode)",
        },
    ]
}

/// Uniform random higher-order tensors matching the papers' RandomND
/// family (every mode the same size, uniform indices). `scale` scales nnz.
pub fn random_nd(order: usize, scale: f64) -> DatasetSpec {
    let nnz = ((600_000.0 * scale) as usize).max(10_000);
    let name: &'static str = match order {
        3 => "random3d",
        4 => "random4d",
        6 => "random6d",
        8 => "random8d",
        12 => "random12d",
        16 => "random16d",
        32 => "random32d",
        _ => "randomNd",
    };
    DatasetSpec {
        name,
        // nnz/dim ratio ~12 at full scale, matching the papers' setup
        // (10M-wide modes with 100M nonzeros) closely enough that MTTKRP
        // work dominates the dense factor operations.
        dims: vec![50_000; order],
        nnz,
        skews: vec![0.0; order],
        seed: 40 + order as u64,
        proxy_for: "uniform random higher-order tensor",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampler_uniform_when_skew_zero() {
        let s = ZipfSampler::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[(s.sample(&mut rng) as usize) / 100] += 1;
        }
        // Each decile should get roughly 2000 draws.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1600..2400).contains(&c), "decile {i} got {c}");
        }
    }

    #[test]
    fn zipf_sampler_concentrates_with_high_skew() {
        let s = ZipfSampler::new(1000, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let head = (0..10_000).filter(|_| s.sample(&mut rng) < 10).count();
        assert!(head > 6_000, "head mass {head} should dominate at skew 1.5");
    }

    #[test]
    fn uniform_tensor_hits_target_nnz_and_bounds() {
        let t = uniform_tensor(&[50, 60, 70], 5_000, 3);
        assert_eq!(t.nnz(), 5_000);
        for d in 0..3 {
            assert!(t.mode_idx(d).iter().all(|&i| (i as usize) < t.dims()[d]));
        }
    }

    #[test]
    fn tensors_are_deterministic_per_seed() {
        let a = zipf_tensor(&[40, 40, 40], 2_000, &[0.5, 0.5, 0.5], 9);
        let b = zipf_tensor(&[40, 40, 40], 2_000, &[0.5, 0.5, 0.5], 9);
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_tensor_has_distinct_coordinates() {
        let mut t = zipf_tensor(&[30, 30, 30], 3_000, &[1.0, 1.0, 1.0], 4);
        let before = t.nnz();
        t.dedup_sum();
        assert_eq!(t.nnz(), before, "generator must emit deduplicated entries");
    }

    #[test]
    fn saturated_space_returns_fewer_entries() {
        // Only 64 cells exist; asking for 1000 must terminate gracefully.
        let t = uniform_tensor(&[4, 4, 4], 1000, 5);
        assert!(t.nnz() <= 64);
        assert!(t.nnz() >= 48, "should nearly fill the space");
    }

    #[test]
    fn clustered_tensor_collapses_more_than_uniform() {
        let dims = [300usize, 300, 300];
        let uni = uniform_tensor(&dims, 5_000, 8);
        let clu = clustered_tensor(&dims, 5_000, 4, 0.05, 0.1, 8);
        let cf_uni = crate::stats::collapse_factor(&uni, &[0, 1]);
        let cf_clu = crate::stats::collapse_factor(&clu, &[0, 1]);
        assert!(cf_clu > cf_uni, "clustered collapse {cf_clu} should exceed uniform {cf_uni}");
    }

    #[test]
    fn clustered_tensor_respects_bounds_and_determinism() {
        let dims = [40usize, 50, 30, 20];
        let a = clustered_tensor(&dims, 1_000, 3, 0.2, 0.2, 5);
        let b = clustered_tensor(&dims, 1_000, 3, 0.2, 0.2, 5);
        assert_eq!(a, b);
        for (d, &size) in dims.iter().enumerate() {
            assert!(a.mode_idx(d).iter().all(|&i| (i as usize) < size));
        }
    }

    #[test]
    fn low_rank_tensor_values_match_model_when_noiseless() {
        let truth = low_rank_tensor(&[20, 25, 30], 3, 500, 0.0, 7);
        let t = &truth.tensor;
        for k in (0..t.nnz()).step_by(97) {
            let mut v = 0.0;
            for r in 0..3 {
                let mut p = 1.0;
                for (d, f) in truth.factors.iter().enumerate() {
                    p *= f.get(t.mode_idx(d)[k] as usize, r);
                }
                v += p;
            }
            assert!((v - t.vals()[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn proxy_registry_shapes() {
        let specs = proxy_datasets(0.01);
        assert_eq!(specs.len(), 5);
        for s in &specs {
            assert_eq!(s.dims.len(), s.skews.len());
            let t = s.build();
            assert!(t.nnz() > 0, "{} is empty", s.name);
            assert_eq!(t.ndim(), s.dims.len());
        }
    }

    #[test]
    fn random_nd_orders() {
        let s = random_nd(8, 0.01);
        assert_eq!(s.dims.len(), 8);
        assert!(s.skews.iter().all(|&x| x == 0.0));
    }
}
