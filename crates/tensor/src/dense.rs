//! Dense tensors: the brute-force oracle.
//!
//! Every sparse kernel in this workspace (COO MTTKRP, CSF MTTKRP, the
//! dimension-tree TTMV engine) is validated against the same dense
//! reference implementations here, which follow the textbook definitions
//! directly. They are `O(prod(dims))` and only suitable for tiny tensors.

use crate::coo::SparseTensor;
use adatm_linalg::Mat;

/// A dense `N`-mode tensor with row-major (last mode fastest) layout.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    data: Vec<f64>,
}

impl DenseTensor {
    /// Creates a zero tensor.
    pub fn zeros(dims: Vec<usize>) -> Self {
        let len = dims.iter().product();
        DenseTensor { dims, data: vec![0.0; len] }
    }

    /// Densifies a sparse tensor (duplicates sum).
    pub fn from_sparse(t: &SparseTensor) -> Self {
        let mut d = DenseTensor::zeros(t.dims().to_vec());
        for k in 0..t.nnz() {
            let coords: Vec<usize> = (0..t.ndim()).map(|m| t.mode_idx(m)[k] as usize).collect();
            let off = d.offset(&coords);
            d.data[off] += t.vals()[k];
        }
        d
    }

    /// Mode sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Flat data (row-major, last mode fastest).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Linear offset of a coordinate.
    pub fn offset(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut off = 0usize;
        for (&c, &d) in coords.iter().zip(self.dims.iter()) {
            debug_assert!(c < d);
            off = off * d + c;
        }
        off
    }

    /// Element access.
    pub fn get(&self, coords: &[usize]) -> f64 {
        self.data[self.offset(coords)]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, coords: &[usize]) -> &mut f64 {
        let off = self.offset(coords);
        &mut self.data[off]
    }

    /// Iterates all coordinates in row-major order (test helper).
    pub fn coords_iter(&self) -> CoordIter {
        CoordIter { dims: self.dims.clone(), next: Some(vec![0; self.dims.len()]) }
    }

    /// Reference MTTKRP: `M(i_n, r) = sum_{nz} X(i_1..i_N) prod_{d != n} U^(d)(i_d, r)`,
    /// evaluated over every dense cell. The definitive oracle for all
    /// sparse MTTKRP implementations.
    ///
    /// # Panics
    /// Panics if `factors` shapes do not match `dims` / a common rank.
    pub fn mttkrp_ref(&self, factors: &[Mat], mode: usize) -> Mat {
        let n = self.dims.len();
        assert_eq!(factors.len(), n, "one factor per mode required");
        let rank = factors[0].ncols();
        for (d, f) in factors.iter().enumerate() {
            assert_eq!(f.nrows(), self.dims[d], "factor {d} row count mismatch");
            assert_eq!(f.ncols(), rank, "factor {d} rank mismatch");
        }
        let mut m = Mat::zeros(self.dims[mode], rank);
        for coords in self.coords_iter() {
            let x = self.get(&coords);
            if x == 0.0 {
                continue;
            }
            for r in 0..rank {
                let mut p = x;
                for d in 0..n {
                    if d != mode {
                        p *= factors[d].get(coords[d], r);
                    }
                }
                let cur = m.get(coords[mode], r);
                m.set(coords[mode], r, cur + p);
            }
        }
        m
    }

    /// Reconstructs the dense tensor of a rank-`R` CP model
    /// `[lambda; U^(1), ..., U^(N)]` (test helper for fit checks).
    pub fn from_cp(lambda: &[f64], factors: &[Mat]) -> DenseTensor {
        let dims: Vec<usize> = factors.iter().map(|f| f.nrows()).collect();
        let rank = lambda.len();
        let mut out = DenseTensor::zeros(dims);
        let coords: Vec<Vec<usize>> = out.coords_iter().collect();
        for c in coords {
            let mut v = 0.0;
            for (r, &l) in lambda.iter().enumerate().take(rank) {
                let mut p = l;
                for (d, f) in factors.iter().enumerate() {
                    p *= f.get(c[d], r);
                }
                v += p;
            }
            *out.get_mut(&c) = v;
        }
        out
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Frobenius distance to another tensor of the same shape.
    pub fn fro_dist(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }
}

/// Row-major coordinate iterator.
pub struct CoordIter {
    dims: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for CoordIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.dims.contains(&0) {
            return None;
        }
        let cur = self.next.take()?;
        let mut nxt = cur.clone();
        // Odometer increment, last mode fastest.
        for d in (0..self.dims.len()).rev() {
            nxt[d] += 1;
            if nxt[d] < self.dims[d] {
                self.next = Some(nxt);
                return Some(cur);
            }
            nxt[d] = 0;
        }
        // Wrapped around: `cur` was the final coordinate.
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_iter_covers_all_cells_once() {
        let t = DenseTensor::zeros(vec![2, 3, 2]);
        let all: Vec<_> = t.coords_iter().collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12);
    }

    #[test]
    fn coords_iter_empty_dim() {
        let t = DenseTensor::zeros(vec![2, 0, 3]);
        assert_eq!(t.coords_iter().count(), 0);
    }

    #[test]
    fn from_sparse_sums_duplicates() {
        let s = SparseTensor::from_entries(
            vec![2, 2],
            &[(vec![1, 0], 2.0), (vec![1, 0], 3.0), (vec![0, 1], -1.0)],
        );
        let d = DenseTensor::from_sparse(&s);
        assert_eq!(d.get(&[1, 0]), 5.0);
        assert_eq!(d.get(&[0, 1]), -1.0);
        assert_eq!(d.get(&[0, 0]), 0.0);
    }

    #[test]
    fn mttkrp_ref_matches_hand_computation_3d() {
        // X(0,0,0)=1, X(1,1,1)=2; R=1 with all-ones factors:
        // M^(0)(0,0)=1, M^(0)(1,0)=2.
        let s = SparseTensor::from_entries(
            vec![2, 2, 2],
            &[(vec![0, 0, 0], 1.0), (vec![1, 1, 1], 2.0)],
        );
        let d = DenseTensor::from_sparse(&s);
        let ones = |n: usize| Mat::from_vec(n, 1, vec![1.0; n]);
        let factors = vec![ones(2), ones(2), ones(2)];
        let m = d.mttkrp_ref(&factors, 0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
    }

    #[test]
    fn mttkrp_ref_weighted_factors() {
        let s = SparseTensor::from_entries(vec![2, 3], &[(vec![1, 2], 4.0)]);
        let d = DenseTensor::from_sparse(&s);
        let u0 = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let u1 = Mat::from_vec(3, 2, vec![0.0, 0.0, 0.0, 0.0, 5.0, 6.0]);
        let m = d.mttkrp_ref(&[u0, u1.clone()], 0);
        // M(1, r) = 4 * U1(2, r)
        assert_eq!(m.get(1, 0), 20.0);
        assert_eq!(m.get(1, 1), 24.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn from_cp_rank1_outer_product() {
        let u0 = Mat::from_vec(2, 1, vec![1.0, 2.0]);
        let u1 = Mat::from_vec(2, 1, vec![3.0, 4.0]);
        let t = DenseTensor::from_cp(&[2.0], &[u0, u1]);
        assert_eq!(t.get(&[0, 0]), 6.0);
        assert_eq!(t.get(&[1, 1]), 16.0);
    }

    #[test]
    fn fro_dist_zero_for_identical() {
        let s = SparseTensor::from_entries(vec![3, 3], &[(vec![0, 2], 1.0)]);
        let d = DenseTensor::from_sparse(&s);
        assert_eq!(d.fro_dist(&d.clone()), 0.0);
    }
}
