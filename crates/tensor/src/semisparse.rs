//! Semi-sparse tensors: sparse in all modes but one.
//!
//! A tensor-times-matrix product (TTM) along mode `n` leaves a tensor
//! that is still sparse over the remaining modes but **dense of width
//! `R`** along the contracted mode — exactly the shape of the dimension
//! tree's intermediate value matrices. [`SemiSparseTensor`] makes that
//! object a first-class public type: distinct index tuples over the
//! sparse modes, plus a row of `R` values per tuple.
//!
//! This is the "sCOO" format of the model-driven CP literature, and the
//! building block a Tucker/HOOI extension would chain.

use crate::coo::{Idx, SparseTensor};
use crate::error::TensorError;
use adatm_linalg::Mat;

/// A tensor sparse over `sparse_modes` and dense (width `R`) along one
/// contracted mode.
#[derive(Clone, Debug)]
pub struct SemiSparseTensor {
    /// Sizes of the sparse modes, in their original mode order.
    pub sparse_dims: Vec<usize>,
    /// The original mode ids of the sparse modes (ascending).
    pub sparse_modes: Vec<usize>,
    /// One index array per sparse mode; all of length `nnz()`.
    pub idx: Vec<Vec<Idx>>,
    /// `nnz() x R` values: row `e` holds the dense fiber of tuple `e`.
    pub vals: Mat,
}

impl SemiSparseTensor {
    /// Number of stored (sparse) index tuples.
    pub fn nnz(&self) -> usize {
        self.vals.nrows()
    }

    /// Width of the dense mode.
    pub fn dense_width(&self) -> usize {
        self.vals.ncols()
    }

    /// The dense fiber of tuple `e`.
    pub fn fiber(&self, e: usize) -> &[f64] {
        self.vals.row(e)
    }

    /// Looks up a tuple's fiber by coordinates over the sparse modes
    /// (linear scan; test/debug helper).
    pub fn get(&self, coords: &[usize]) -> Option<&[f64]> {
        assert_eq!(coords.len(), self.idx.len());
        'outer: for e in 0..self.nnz() {
            for (col, &c) in self.idx.iter().zip(coords.iter()) {
                if col[e] as usize != c {
                    continue 'outer;
                }
            }
            return Some(self.fiber(e));
        }
        None
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.idx.iter().map(|c| c.len() * std::mem::size_of::<Idx>()).sum::<usize>()
            + self.vals.nrows() * self.vals.ncols() * std::mem::size_of::<f64>()
    }
}

/// Tensor-times-matrix along `mode`: `Y(..., r, ...) = sum_j U(j, r)
/// X(..., j, ...)`, returning the semi-sparse result.
///
/// Tuples that coincide after removing `mode` are merged (their fibers
/// sum), so `nnz()` equals the number of distinct projections of the
/// input onto the remaining modes.
///
/// # Panics
/// Panics if `u.nrows() != dims[mode]` or the tensor has fewer than 2
/// modes.
pub fn ttm(t: &SparseTensor, mode: usize, u: &Mat) -> SemiSparseTensor {
    assert!(t.ndim() >= 2, "ttm needs at least 2 modes");
    assert!(mode < t.ndim(), "mode out of range");
    assert_eq!(u.nrows(), t.dims()[mode], "matrix rows must match mode size");
    let rank = u.ncols();
    let keep: Vec<usize> = (0..t.ndim()).filter(|&d| d != mode).collect();
    // Group entries by their projection onto the kept modes.
    let perm = t.sort_permutation(&keep);
    let mut idx: Vec<Vec<Idx>> = vec![Vec::new(); keep.len()];
    let mut rows: Vec<f64> = Vec::new();
    let mut count = 0usize;
    for (pos, &p) in perm.iter().enumerate() {
        let k = p as usize;
        let is_new = pos == 0 || {
            let prev = perm[pos - 1] as usize;
            keep.iter().any(|&d| t.mode_idx(d)[k] != t.mode_idx(d)[prev])
        };
        if is_new {
            for (col, &d) in idx.iter_mut().zip(keep.iter()) {
                col.push(t.mode_idx(d)[k]);
            }
            rows.extend(std::iter::repeat_n(0.0, rank));
            count += 1;
        }
        let urow = u.row(t.mode_idx(mode)[k] as usize);
        let v = t.vals()[k];
        let out = &mut rows[(count - 1) * rank..count * rank];
        for (o, &x) in out.iter_mut().zip(urow.iter()) {
            *o += v * x;
        }
    }
    SemiSparseTensor {
        sparse_dims: keep.iter().map(|&d| t.dims()[d]).collect(),
        sparse_modes: keep,
        idx,
        vals: Mat::from_vec(count, rank, rows),
    }
}

/// TTM of a semi-sparse tensor along one of its *sparse* modes.
///
/// The dense width multiplies: contracting sparse mode `m` (original mode
/// id) with `u` of shape `I_m x S` turns each width-`R` fiber into a
/// width-`S*R` fiber laid out as the Kronecker ordering `(s, r) -> s*R +
/// r`. This is the building block of Tucker/HOOI TTM chains, where the
/// fiber width grows to the product of the contracted ranks.
///
/// # Panics
/// Panics if `mode` is not one of the tensor's sparse modes or the matrix
/// rows do not match that mode's size. [`try_ttm_semisparse`] is the
/// non-panicking form.
pub fn ttm_semisparse(t: &SemiSparseTensor, mode: usize, u: &Mat) -> SemiSparseTensor {
    try_ttm_semisparse(t, mode, u).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ttm_semisparse`] returning a typed error when `mode` is not one of
/// the tensor's sparse modes or too few sparse modes remain.
pub fn try_ttm_semisparse(
    t: &SemiSparseTensor,
    mode: usize,
    u: &Mat,
) -> Result<SemiSparseTensor, TensorError> {
    let pos = t
        .sparse_modes
        .iter()
        .position(|&m| m == mode)
        .ok_or(TensorError::ModeNotSparse { mode })?;
    if t.sparse_modes.len() < 2 {
        // Contracting the last sparse mode would leave no sparse structure.
        return Err(TensorError::TooFewModes { needed: 2, got: t.sparse_modes.len() });
    }
    assert_eq!(u.nrows(), t.sparse_dims[pos], "matrix rows must match mode size");
    let r = t.dense_width();
    let s = u.ncols();
    let keep: Vec<usize> = (0..t.sparse_modes.len()).filter(|&p| p != pos).collect();
    // Sort tuple ids by the kept columns.
    let mut perm: Vec<u32> = (0..t.nnz() as u32).collect();
    perm.sort_unstable_by(|&a, &b| {
        for &p in &keep {
            match t.idx[p][a as usize].cmp(&t.idx[p][b as usize]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut idx: Vec<Vec<Idx>> = vec![Vec::new(); keep.len()];
    let mut rows: Vec<f64> = Vec::new();
    let mut count = 0usize;
    for (iter_pos, &p) in perm.iter().enumerate() {
        let e = p as usize;
        let is_new = iter_pos == 0 || {
            let prev = perm[iter_pos - 1] as usize;
            keep.iter().any(|&kp| t.idx[kp][e] != t.idx[kp][prev])
        };
        if is_new {
            for (col, &kp) in idx.iter_mut().zip(keep.iter()) {
                col.push(t.idx[kp][e]);
            }
            rows.extend(std::iter::repeat_n(0.0, s * r));
            count += 1;
        }
        let urow = u.row(t.idx[pos][e] as usize);
        let fiber = t.fiber(e);
        let out = &mut rows[(count - 1) * s * r..count * s * r];
        for (si, &uv) in urow.iter().enumerate() {
            if uv == 0.0 {
                continue;
            }
            let block = &mut out[si * r..(si + 1) * r];
            for (o, &f) in block.iter_mut().zip(fiber.iter()) {
                *o += uv * f;
            }
        }
    }
    Ok(SemiSparseTensor {
        sparse_dims: keep.iter().map(|&p| t.sparse_dims[p]).collect(),
        sparse_modes: keep.iter().map(|&p| t.sparse_modes[p]).collect(),
        idx,
        vals: Mat::from_vec(count, s * r, rows),
    })
}

/// Chains TTMs over every mode except `skip`: `Y = X x_{d != skip}
/// U_d^T`-style contraction with each `mats[d]` (`I_d x R_d`), producing a
/// semi-sparse tensor sparse only in `skip` with dense width
/// `prod_{d != skip} R_d`.
///
/// The fiber layout orders contracted modes **descending by original mode
/// id** (mode `skip` excluded): entry `(r_{d1}, r_{d2}, ...)` with `d1 >
/// d2 > ...` lives at `((r_{d1} * R_{d2} + r_{d2}) * ...)`.
///
/// # Panics
/// Panics on shape mismatches or `ndim < 2`. [`try_ttm_chain_all_but`] is
/// the non-panicking form.
pub fn ttm_chain_all_but(t: &SparseTensor, skip: usize, mats: &[&Mat]) -> SemiSparseTensor {
    try_ttm_chain_all_but(t, skip, mats).unwrap_or_else(|e| panic!("{e}"))
}

/// [`ttm_chain_all_but`] returning a typed error when the tensor has
/// fewer than 2 modes (no mode left to contract besides `skip`).
pub fn try_ttm_chain_all_but(
    t: &SparseTensor,
    skip: usize,
    mats: &[&Mat],
) -> Result<SemiSparseTensor, TensorError> {
    assert_eq!(mats.len(), t.ndim(), "one matrix per mode required (skip included, unused)");
    // First contraction from COO, then fold the rest in ascending order;
    // contracting ascending modes appends each new rank index on the
    // *left* of the fiber layout, giving the documented descending order.
    let first = (0..t.ndim())
        .find(|&d| d != skip)
        .ok_or(TensorError::TooFewModes { needed: 2, got: t.ndim() })?;
    let mut cur = ttm(t, first, mats[first]);
    for (d, mat) in mats.iter().enumerate() {
        if d == skip || d == first {
            continue;
        }
        cur = try_ttm_semisparse(&cur, d, mat)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;
    use crate::gen::zipf_tensor;

    #[test]
    fn ttm_matches_dense_definition_3d() {
        let t = zipf_tensor(&[6, 5, 7], 60, &[0.4; 3], 3);
        let dense = DenseTensor::from_sparse(&t);
        let u = Mat::random(5, 3, 9);
        let y = ttm(&t, 1, &u);
        assert_eq!(y.sparse_modes, vec![0, 2]);
        for i in 0..6 {
            for k in 0..7 {
                let want: Vec<f64> = (0..3)
                    .map(|r| (0..5).map(|j| u.get(j, r) * dense.get(&[i, j, k])).sum())
                    .collect();
                match y.get(&[i, k]) {
                    Some(fiber) => {
                        for (a, b) in fiber.iter().zip(want.iter()) {
                            assert!((a - b).abs() < 1e-12, "({i},{k})");
                        }
                    }
                    None => {
                        assert!(
                            want.iter().all(|w| w.abs() < 1e-12),
                            "missing nonzero fiber at ({i},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ttm_merges_projected_duplicates() {
        let t = SparseTensor::from_entries(
            vec![2, 3, 2],
            &[(vec![1, 0, 1], 2.0), (vec![1, 2, 1], 3.0)],
        );
        let u = Mat::from_vec(3, 1, vec![1.0, 1.0, 1.0]);
        let y = ttm(&t, 1, &u);
        assert_eq!(y.nnz(), 1);
        assert_eq!(y.get(&[1, 1]).unwrap(), &[5.0]);
    }

    #[test]
    fn ttm_nnz_equals_distinct_projection_count() {
        let t = zipf_tensor(&[20, 25, 15, 10], 400, &[0.8; 4], 7);
        let u = Mat::random(25, 4, 1);
        let y = ttm(&t, 1, &u);
        let want = crate::stats::distinct_projections(&t, &[0, 2, 3]);
        assert_eq!(y.nnz(), want);
        assert_eq!(y.dense_width(), 4);
    }

    #[test]
    fn ttm_with_identity_recovers_slices() {
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 4.0)]);
        let y = ttm(&t, 1, &Mat::eye(2));
        // The fiber along mode 1 at row 0 is [0, 4].
        assert_eq!(y.get(&[0]).unwrap(), &[0.0, 4.0]);
    }

    #[test]
    fn ttm_semisparse_matches_dense_definition() {
        let t = zipf_tensor(&[5, 6, 4], 40, &[0.4; 3], 11);
        let dense = DenseTensor::from_sparse(&t);
        let u1 = Mat::random(6, 2, 1);
        let u2 = Mat::random(4, 3, 2);
        let y = ttm_semisparse(&ttm(&t, 1, &u1), 2, &u2);
        assert_eq!(y.sparse_modes, vec![0]);
        assert_eq!(y.dense_width(), 6); // 3 * 2, layout (r2, r1)
        for i in 0..5 {
            for r2 in 0..3 {
                for r1 in 0..2 {
                    let want: f64 = (0..6)
                        .flat_map(|j| (0..4).map(move |k| (j, k)))
                        .map(|(j, k)| dense.get(&[i, j, k]) * u1.get(j, r1) * u2.get(k, r2))
                        .sum();
                    let got = y.get(&[i]).map_or(0.0, |f| f[r2 * 2 + r1]);
                    assert!((got - want).abs() < 1e-10, "({i},{r1},{r2})");
                }
            }
        }
    }

    #[test]
    fn ttm_chain_all_but_matches_pairwise_composition() {
        let t = zipf_tensor(&[4, 5, 3, 6], 50, &[0.5; 4], 21);
        let mats: Vec<Mat> =
            t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, 2, d as u64)).collect();
        let refs: Vec<&Mat> = mats.iter().collect();
        let y = ttm_chain_all_but(&t, 2, &refs);
        assert_eq!(y.sparse_modes, vec![2]);
        assert_eq!(y.dense_width(), 8);
        // Compose manually: ttm mode 0, then 1, then 3.
        let manual =
            ttm_semisparse(&ttm_semisparse(&ttm(&t, 0, &mats[0]), 1, &mats[1]), 3, &mats[3]);
        assert_eq!(manual.nnz(), y.nnz());
        for e in 0..y.nnz() {
            let coords = vec![y.idx[0][e] as usize];
            let a = y.get(&coords).unwrap();
            let b = manual.get(&coords).unwrap();
            for (x, z) in a.iter().zip(b.iter()) {
                assert!((x - z).abs() < 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one of the sparse modes")]
    fn ttm_semisparse_rejects_contracted_mode() {
        let t = zipf_tensor(&[4, 5, 3], 20, &[0.3; 3], 1);
        let y = ttm(&t, 1, &Mat::random(5, 2, 1));
        let _ = ttm_semisparse(&y, 1, &Mat::random(5, 2, 2));
    }

    #[test]
    fn try_ttm_semisparse_returns_typed_errors() {
        let t = zipf_tensor(&[4, 5, 3], 20, &[0.3; 3], 1);
        let y = ttm(&t, 1, &Mat::random(5, 2, 1));
        let err = try_ttm_semisparse(&y, 1, &Mat::random(5, 2, 2)).unwrap_err();
        assert_eq!(err, TensorError::ModeNotSparse { mode: 1 });
        // Contract down to one sparse mode, then one more is an error.
        let z = ttm_semisparse(&y, 0, &Mat::random(4, 2, 3));
        let err = try_ttm_semisparse(&z, 2, &Mat::random(3, 2, 4)).unwrap_err();
        assert_eq!(err, TensorError::TooFewModes { needed: 2, got: 1 });
    }

    #[test]
    fn storage_bytes_counts_both_parts() {
        let t = zipf_tensor(&[10, 12, 8], 100, &[0.3; 3], 2);
        let u = Mat::random(12, 5, 3);
        let y = ttm(&t, 1, &u);
        assert_eq!(y.storage_bytes(), y.nnz() * 2 * 4 + y.nnz() * 5 * 8);
    }
}
