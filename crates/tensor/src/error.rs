//! Typed errors for fallible tensor construction and contraction.
//!
//! The panicking entry points ([`crate::coo::SparseTensor::from_entries`],
//! [`crate::semisparse::ttm_semisparse`], ...) delegate to `try_`
//! counterparts returning these errors, so library users embedding the
//! kernels can handle malformed inputs without unwinding.

use std::fmt;

/// A structural problem with a tensor operation's inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TensorError {
    /// A coordinate does not fit the compact index type ([`crate::coo::Idx`]).
    IndexOverflow {
        /// Mode the coordinate belongs to.
        mode: usize,
        /// The offending coordinate.
        coordinate: usize,
    },
    /// An entry's coordinate arity differs from the tensor order.
    ArityMismatch {
        /// Expected arity (the tensor order).
        expected: usize,
        /// The entry's arity.
        got: usize,
    },
    /// The requested mode is not one of a semi-sparse tensor's sparse modes.
    ModeNotSparse {
        /// The requested (original) mode id.
        mode: usize,
    },
    /// The operation needs more modes than the tensor has.
    TooFewModes {
        /// Minimum number of modes required.
        needed: usize,
        /// Number of modes present.
        got: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::IndexOverflow { mode, coordinate } => {
                write!(f, "coordinate {coordinate} in mode {mode} exceeds index type capacity")
            }
            TensorError::ArityMismatch { expected, got } => {
                write!(f, "entry arity {got} does not match tensor order {expected}")
            }
            TensorError::ModeNotSparse { mode } => {
                write!(f, "mode {mode} must be one of the sparse modes")
            }
            TensorError::TooFewModes { needed, got } => {
                write!(f, "operation requires at least {needed} modes, tensor has {got}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        let e = TensorError::IndexOverflow { mode: 2, coordinate: 1 << 40 };
        assert!(e.to_string().contains("mode 2"));
        let e = TensorError::ModeNotSparse { mode: 1 };
        assert!(e.to_string().contains("one of the sparse modes"));
        let e = TensorError::TooFewModes { needed: 2, got: 1 };
        assert!(e.to_string().contains("at least 2"));
        let e = TensorError::ArityMismatch { expected: 3, got: 2 };
        assert!(e.to_string().contains("order 3"));
    }
}
