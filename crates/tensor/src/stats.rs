//! Dataset characteristics and projection statistics.
//!
//! The quantity driving every memoization decision is the number of
//! *distinct index tuples* a tensor's nonzeros project to on a subset of
//! modes: it is the element count of the corresponding dimension-tree
//! node, hence both the flop count of computing that node and the memory
//! it occupies. This module provides the exact count (used by the E1
//! dataset table, by tests, and as the oracle for the planner's cheaper
//! estimators).

use crate::coo::SparseTensor;

/// Exact number of distinct projections of the nonzeros onto `modes`.
///
/// Computed by lexicographic sort over the selected modes (`O(nnz log
/// nnz)` with `|modes|`-way comparisons), which is exact for any order —
/// no packing tricks, no hash-collision risk.
///
/// # Panics
/// Panics if `modes` is empty or contains an out-of-range/duplicate mode.
pub fn distinct_projections(t: &SparseTensor, modes: &[usize]) -> usize {
    assert!(!modes.is_empty(), "projection requires at least one mode");
    let mut seen = vec![false; t.ndim()];
    for &m in modes {
        assert!(m < t.ndim() && !seen[m], "invalid projection mode set");
        seen[m] = true;
    }
    if t.nnz() == 0 {
        return 0;
    }
    let perm = t.sort_permutation(modes);
    let mut count = 1usize;
    for w in perm.windows(2) {
        let (a, b) = (w[0] as usize, w[1] as usize);
        if modes.iter().any(|&d| t.mode_idx(d)[a] != t.mode_idx(d)[b]) {
            count += 1;
        }
    }
    count
}

/// The collapse factor of a projection: `nnz / distinct_projections`.
///
/// 1.0 means no index overlap (the pessimistic extreme for memoization);
/// real web-scale tensors show 2–6x on half-mode splits.
pub fn collapse_factor(t: &SparseTensor, modes: &[usize]) -> f64 {
    let d = distinct_projections(t, modes);
    if d == 0 {
        1.0
    } else {
        t.nnz() as f64 / d as f64
    }
}

/// Summary statistics for the E1 dataset table.
#[derive(Clone, Debug)]
pub struct TensorStats {
    /// Tensor order.
    pub order: usize,
    /// Mode sizes.
    pub dims: Vec<usize>,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// `nnz / prod(dims)`.
    pub density: f64,
    /// Distinct index count per mode (non-empty slice count).
    pub distinct_per_mode: Vec<usize>,
    /// Collapse factor of the first-half / second-half mode split (the
    /// root split of a balanced binary dimension tree).
    pub half_split_collapse: (f64, f64),
}

impl TensorStats {
    /// Computes all statistics for a tensor.
    pub fn compute(t: &SparseTensor) -> Self {
        let n = t.ndim();
        let first: Vec<usize> = (0..n / 2).collect();
        let second: Vec<usize> = (n / 2..n).collect();
        let half_split_collapse = if n >= 2 {
            (collapse_factor(t, &first.clone()), collapse_factor(t, &second))
        } else {
            (1.0, 1.0)
        };
        TensorStats {
            order: n,
            dims: t.dims().to_vec(),
            nnz: t.nnz(),
            density: t.density(),
            distinct_per_mode: (0..n).map(|d| t.distinct_in_mode(d)).collect(),
            half_split_collapse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{uniform_tensor, zipf_tensor};

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 4, 4],
            &[
                (vec![0, 1, 2], 1.0),
                (vec![0, 1, 3], 1.0),
                (vec![0, 2, 2], 1.0),
                (vec![1, 1, 2], 1.0),
            ],
        )
    }

    #[test]
    fn distinct_projections_hand_checked() {
        let t = toy();
        assert_eq!(distinct_projections(&t, &[0]), 2);
        assert_eq!(distinct_projections(&t, &[1]), 2);
        assert_eq!(distinct_projections(&t, &[2]), 2);
        assert_eq!(distinct_projections(&t, &[0, 1]), 3); // (0,1),(0,2),(1,1)
        assert_eq!(distinct_projections(&t, &[1, 2]), 3); // (1,2),(1,3),(2,2)
        assert_eq!(distinct_projections(&t, &[0, 1, 2]), 4);
    }

    #[test]
    fn full_mode_set_counts_distinct_nonzeros() {
        let t = uniform_tensor(&[20, 20, 20], 500, 1);
        assert_eq!(distinct_projections(&t, &[0, 1, 2]), t.nnz());
    }

    #[test]
    fn projection_count_never_exceeds_nnz_or_space() {
        let t = zipf_tensor(&[15, 25, 35], 800, &[0.8, 0.8, 0.8], 2);
        for modes in [vec![0], vec![1, 2], vec![0, 2]] {
            let d = distinct_projections(&t, &modes);
            assert!(d <= t.nnz());
            let space: usize = modes.iter().map(|&m| t.dims()[m]).product();
            assert!(d <= space);
        }
    }

    #[test]
    fn skew_increases_collapse() {
        let dims = [200usize, 200, 200, 200];
        let flat = uniform_tensor(&dims, 4000, 5);
        let skewed = zipf_tensor(&dims, 4000, &[1.2; 4], 5);
        let cf_flat = collapse_factor(&flat, &[0, 1]);
        let cf_skew = collapse_factor(&skewed, &[0, 1]);
        assert!(
            cf_skew > cf_flat,
            "skewed collapse {cf_skew} should exceed uniform collapse {cf_flat}"
        );
    }

    #[test]
    fn stats_compute_is_consistent() {
        let t = toy();
        let s = TensorStats::compute(&t);
        assert_eq!(s.order, 3);
        assert_eq!(s.nnz, 4);
        assert_eq!(s.distinct_per_mode, vec![2, 2, 2]);
        assert!(s.density > 0.0);
        assert!(s.half_split_collapse.0 >= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn empty_mode_set_rejected() {
        distinct_projections(&toy(), &[]);
    }
}
