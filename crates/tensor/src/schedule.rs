// lint: hot-path
//! Nnz-balanced static schedules for the parallel MTTKRP kernels.
//!
//! The parallel kernels used to hand one task to each output row (COO
//! group, CSF root slice, dimension-tree element). On skewed inputs that
//! collapses to near-serial execution: a single hot row can own a large
//! share of the nonzeros, so one task does almost all the work while the
//! rest finish instantly. A [`ModeSchedule`] fixes the imbalance once per
//! (tensor, mode): it partitions the row-owning *groups* into contiguous
//! tasks of approximately equal nonzero weight, and breaks any group
//! heavier than the per-task target into **split sub-tasks** that
//! accumulate into privatized slot rows and are merged back by a cheap
//! per-row (not per-matrix) reduction.
//!
//! Schedules are pure index structure: they borrow nothing and stay valid
//! for the lifetime of the tensor representation they were built from.
//! Backends cache one per (tensor, mode) and invalidate them together
//! with their workspaces on `reset()`.

use std::ops::Range;

/// Tasks created per worker thread. More tasks give the static scheduler
/// slack to even out residual imbalance at the cost of a little per-task
/// overhead.
const TASKS_PER_THREAD: usize = 4;

/// Minimum nonzero weight of a task. Prevents over-decomposition of tiny
/// tensors, where per-task overhead would dominate.
const MIN_TASK_WEIGHT: usize = 64;

/// One unit of parallel work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Task {
    /// A contiguous run of groups owned exclusively by this task: it
    /// writes each group's output row directly, no synchronization.
    Owned {
        /// Group indices `[start, end)` into the underlying view.
        groups: Range<usize>,
    },
    /// A sub-range of one oversized group's elements. The task
    /// accumulates into privatized slot row `slot`; slot rows of the same
    /// group are merged into the group's output row after the parallel
    /// phase.
    Split {
        /// The oversized group.
        group: usize,
        /// Element sub-range `[start, end)` *within* the group.
        elems: Range<usize>,
        /// Privatized slot row this sub-task owns.
        slot: usize,
    },
}

/// Merge descriptor for one split group: which slot rows sum into its
/// output row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitGroup {
    /// The group that was split.
    pub group: usize,
    /// First slot row belonging to this group.
    pub slot0: usize,
    /// Number of consecutive slot rows (= sub-tasks) for this group.
    pub nslots: usize,
}

/// An nnz-balanced static schedule over the groups of one mode.
#[derive(Clone, Debug)]
pub struct ModeSchedule {
    tasks: Vec<Task>,
    splits: Vec<SplitGroup>,
    slots: usize,
    threads: usize,
    total_weight: usize,
    target: usize,
}

impl ModeSchedule {
    /// Builds a schedule for groups of the given nonzero `weights`,
    /// balanced for `threads` workers. Elements within a group are
    /// assumed uniform (weight 1 each), as for COO entry groups.
    pub fn build(weights: &[usize], threads: usize) -> Self {
        Self::build_weighted(weights, threads, |g| UniformElems(weights[g]))
    }

    /// [`ModeSchedule::build`] with an explicit per-task weight target
    /// (testing hook: forces splits on small inputs).
    pub fn build_with_target(weights: &[usize], threads: usize, target: usize) -> Self {
        Self::build_inner(weights, threads, target, |g| UniformElems(weights[g]))
    }

    /// Builds a schedule where the elements of group `g` have the weights
    /// yielded by `sub(g)` — e.g. a CSF root slice whose elements are its
    /// level-1 children, each weighing its descendant-leaf count. The
    /// iterator is consulted only for groups that must be split.
    pub fn build_weighted<I>(weights: &[usize], threads: usize, sub: impl Fn(usize) -> I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let total: usize = weights.iter().sum();
        let target =
            total.div_ceil((threads.max(1) * TASKS_PER_THREAD).max(1)).max(MIN_TASK_WEIGHT);
        Self::build_inner(weights, threads, target, sub)
    }

    /// [`ModeSchedule::build_weighted`] with an explicit target.
    pub fn build_weighted_with_target<I>(
        weights: &[usize],
        threads: usize,
        target: usize,
        sub: impl Fn(usize) -> I,
    ) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        Self::build_inner(weights, threads, target, sub)
    }

    fn build_inner<I>(
        weights: &[usize],
        threads: usize,
        target: usize,
        sub: impl Fn(usize) -> I,
    ) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let total: usize = weights.iter().sum();
        let target = target.max(1);
        let mut tasks = Vec::new();
        let mut splits = Vec::new();
        let mut slots = 0usize;
        // Single worker (or nothing to do): one task owning everything.
        if threads <= 1 || total <= target {
            if !weights.is_empty() {
                tasks.push(Task::Owned { groups: 0..weights.len() });
            }
            return ModeSchedule { tasks, splits, slots, threads, total_weight: total, target };
        }
        let mut run_start = None::<usize>;
        let mut run_weight = 0usize;
        let close_run = |tasks: &mut Vec<Task>, run_start: &mut Option<usize>, end: usize| {
            if let Some(s) = run_start.take() {
                if s < end {
                    tasks.push(Task::Owned { groups: s..end });
                }
            }
        };
        for (g, &w) in weights.iter().enumerate() {
            if w > target {
                // Oversized group: close the current run, then split this
                // group into ~equal-weight element sub-ranges.
                close_run(&mut tasks, &mut run_start, g);
                run_weight = 0;
                let slot0 = slots;
                let parts = w.div_ceil(target).max(2);
                let per_part = w.div_ceil(parts);
                let mut elem = 0usize;
                let mut acc = 0usize;
                let mut part_start = 0usize;
                let mut nslots = 0usize;
                for ew in sub(g) {
                    acc += ew;
                    elem += 1;
                    if acc >= per_part {
                        tasks.push(Task::Split { group: g, elems: part_start..elem, slot: slots });
                        slots += 1;
                        nslots += 1;
                        part_start = elem;
                        acc = 0;
                    }
                }
                if part_start < elem {
                    tasks.push(Task::Split { group: g, elems: part_start..elem, slot: slots });
                    slots += 1;
                    nslots += 1;
                }
                if nslots == 1 {
                    // Degenerate split (one giant element): demote the
                    // sub-task back to exclusive ownership — the merge
                    // would be pure overhead.
                    if let Some(Task::Split { group, .. }) = tasks.pop() {
                        tasks.push(Task::Owned { groups: group..group + 1 });
                    }
                    slots = slot0;
                } else if nslots > 1 {
                    splits.push(SplitGroup { group: g, slot0, nslots });
                }
                continue;
            }
            if run_start.is_none() {
                run_start = Some(g);
                run_weight = 0;
            }
            run_weight += w;
            if run_weight >= target {
                close_run(&mut tasks, &mut run_start, g + 1);
                run_weight = 0;
            }
        }
        close_run(&mut tasks, &mut run_start, weights.len());
        ModeSchedule { tasks, splits, slots, threads, total_weight: total, target }
    }

    /// The tasks, ordered by ascending group index.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Split-group merge descriptors, ordered by ascending group index.
    pub fn splits(&self) -> &[SplitGroup] {
        &self.splits
    }

    /// Total privatized slot rows required by the split sub-tasks.
    pub fn num_slots(&self) -> usize {
        self.slots
    }

    /// The worker count the schedule was balanced for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total nonzero weight covered by the schedule.
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// The per-task weight target used to cut tasks.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Whether the schedule degenerates to a single sequential task (the
    /// kernels then take their allocation-free sequential path).
    pub fn is_sequential(&self) -> bool {
        self.tasks.len() <= 1
    }

    /// Approximate bytes held by the schedule (diagnostics).
    pub fn structure_bytes(&self) -> usize {
        self.tasks.len() * std::mem::size_of::<Task>()
            + self.splits.len() * std::mem::size_of::<SplitGroup>()
    }
}

/// Reusable scratch memory for the scheduled kernels.
///
/// Holds two flat `f64` buffers: per-task scratch rows (Hadamard
/// accumulation) and privatized slot rows for split sub-tasks. Buffers
/// grow on demand and never shrink, so after the first call at a given
/// shape the kernels perform zero heap allocations. Backends pair one
/// workspace with each cached schedule and drop both on `reset()`.
#[derive(Clone, Debug, Default)]
pub struct Workspace {
    scratch: Vec<f64>,
    slots: Vec<f64>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are grown by [`Workspace::ensure`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `(scratch, slots)` buffers of at least the requested
    /// lengths, growing them if needed (steady state: no allocation).
    /// The slot buffer is zeroed; scratch contents are unspecified.
    pub fn ensure(&mut self, scratch_len: usize, slots_len: usize) -> (&mut [f64], &mut [f64]) {
        if self.scratch.len() < scratch_len {
            self.scratch.resize(scratch_len, 0.0);
        }
        if self.slots.len() < slots_len {
            self.slots.resize(slots_len, 0.0);
        }
        let slots = &mut self.slots[..slots_len];
        slots.fill(0.0);
        (&mut self.scratch[..scratch_len], slots)
    }

    /// Releases all held memory (backend `reset()` protocol).
    pub fn clear(&mut self) {
        self.scratch = Vec::new();
        self.slots = Vec::new();
    }

    /// Bytes currently held (diagnostics).
    pub fn structure_bytes(&self) -> usize {
        (self.scratch.capacity() + self.slots.capacity()) * std::mem::size_of::<f64>()
    }
}

/// `ExactSizeIterator` of `count` unit weights (the uniform-element case).
struct UniformElems(usize);

impl IntoIterator for UniformElems {
    type Item = usize;
    type IntoIter = std::iter::RepeatN<usize>;
    fn into_iter(self) -> Self::IntoIter {
        std::iter::repeat_n(1, self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every group appears exactly once: either inside exactly one Owned
    /// range, or covered exactly by the element ranges of its Split tasks.
    fn assert_partition(sched: &ModeSchedule, weights: &[usize]) {
        let mut covered = vec![0usize; weights.len()];
        for t in sched.tasks() {
            match t {
                Task::Owned { groups } => {
                    for g in groups.clone() {
                        covered[g] += weights[g].max(1);
                    }
                }
                Task::Split { group, elems, .. } => {
                    covered[*group] += elems.len();
                }
            }
        }
        for (g, &w) in weights.iter().enumerate() {
            assert_eq!(covered[g], w.max(1), "group {g} coverage");
        }
    }

    #[test]
    fn single_thread_is_one_task() {
        let s = ModeSchedule::build(&[5, 1, 9, 3], 1);
        assert_eq!(s.num_tasks(), 1);
        assert!(s.is_sequential());
        assert_eq!(s.num_slots(), 0);
    }

    #[test]
    fn uniform_groups_balance_within_target() {
        let weights = vec![10usize; 100];
        let s = ModeSchedule::build_with_target(&weights, 4, 100);
        assert_partition(&s, &weights);
        assert!(s.num_tasks() >= 8, "tasks {}", s.num_tasks());
        for t in s.tasks() {
            if let Task::Owned { groups } = t {
                let w: usize = groups.clone().map(|g| weights[g]).sum();
                assert!(w <= 110, "task weight {w}");
            }
        }
    }

    #[test]
    fn hot_group_is_split_into_subtasks() {
        // One group owns 90% of the weight: the old one-task-per-group
        // schedule would serialize on it.
        let mut weights = vec![10usize; 20];
        weights[7] = 2_000;
        let s = ModeSchedule::build_with_target(&weights, 8, 100);
        assert_partition(&s, &weights);
        assert_eq!(s.splits().len(), 1);
        let sp = &s.splits()[0];
        assert_eq!(sp.group, 7);
        assert!(sp.nslots >= 10, "hot group split into {} sub-tasks", sp.nslots);
        assert_eq!(s.num_slots(), sp.nslots);
        // Split sub-tasks cover the group's elements exactly once.
        let mut covered = vec![false; 2_000];
        for t in s.tasks() {
            if let Task::Split { group: 7, elems, .. } = t {
                for e in elems.clone() {
                    assert!(!covered[e], "element {e} claimed twice");
                    covered[e] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn weighted_split_respects_element_weights() {
        // Group 0 has 4 elements with very skewed weights; cuts must
        // follow the weights, not the element count.
        let weights = [1_000usize, 10, 10];
        let elems = [700usize, 100, 100, 100];
        let s = ModeSchedule::build_weighted_with_target(&weights, 4, 300, |g| {
            if g == 0 {
                elems.to_vec()
            } else {
                vec![1; weights[g]]
            }
        });
        let split_tasks: Vec<_> = s
            .tasks()
            .iter()
            .filter_map(|t| match t {
                Task::Split { group: 0, elems, .. } => Some(elems.clone()),
                _ => None,
            })
            .collect();
        assert!(split_tasks.len() >= 2);
        // First cut happens right after the 700-weight element.
        assert_eq!(split_tasks[0], 0..1);
    }

    #[test]
    fn tasks_are_ordered_by_group() {
        let mut weights = vec![5usize; 50];
        weights[10] = 500;
        weights[30] = 700;
        let s = ModeSchedule::build_with_target(&weights, 4, 50);
        let mut last = 0usize;
        for t in s.tasks() {
            let start = match t {
                Task::Owned { groups } => groups.start,
                Task::Split { group, .. } => *group,
            };
            assert!(start >= last, "tasks out of order");
            last = start;
        }
        assert_eq!(s.splits().len(), 2);
    }

    #[test]
    fn empty_weights_produce_empty_schedule() {
        let s = ModeSchedule::build(&[], 8);
        assert_eq!(s.num_tasks(), 0);
        assert_eq!(s.num_slots(), 0);
        assert_eq!(s.total_weight(), 0);
    }

    #[test]
    fn small_total_collapses_to_one_task() {
        let s = ModeSchedule::build(&[1, 2, 3], 8);
        assert!(s.is_sequential());
    }
}
