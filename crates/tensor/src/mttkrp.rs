// lint: hot-path
//! Element-wise COO MTTKRP — the Tensor-Toolbox-style baseline.
//!
//! For every nonzero `x` with coordinate `(i_1, ..., i_N)` and every rank
//! column `r`, the mode-`n` MTTKRP accumulates
//! `x * prod_{d != n} U^(d)(i_d, r)` into `M(i_n, r)`. The COO formulation
//! performs `N-1` row Hadamard products per nonzero per mode — `N(N-1)`
//! tensor sweeps per CP-ALS iteration — and is the non-memoized reference
//! point every memoization strategy is measured against.
//!
//! Three schedules are provided:
//! * [`mttkrp_seq`] — a single pass over entries in storage order;
//! * [`mttkrp_par_into`] — the scheduled parallel kernel: an
//!   nnz-balanced [`ModeSchedule`] assigns contiguous group runs (and
//!   privatized sub-ranges of oversized groups) to tasks that write
//!   disjoint `out` row spans directly, with all scratch living in a
//!   caller-owned [`Workspace`] — zero steady-state heap allocations on
//!   the sequential path, and per-call allocations bounded by the task
//!   count (never the nnz) on the parallel path;
//! * [`mttkrp_par_grouped`] — the legacy one-task-per-group kernel,
//!   kept as the bench-regression baseline (it allocates two rows per
//!   group and collapses to near-serial on skewed modes).

use crate::coo::SparseTensor;
use crate::schedule::{ModeSchedule, Task, Workspace};
use crate::sorted::SortedModeView;
use adatm_linalg::kernels;
use adatm_linalg::Mat;
use rayon::prelude::*;

/// Validates factor shapes against a tensor; returns the common rank.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn check_factors(t: &SparseTensor, factors: &[Mat]) -> usize {
    assert_eq!(factors.len(), t.ndim(), "one factor matrix per mode required");
    let rank = factors.first().map_or(0, Mat::ncols);
    for (d, f) in factors.iter().enumerate() {
        assert_eq!(f.nrows(), t.dims()[d], "factor {d} rows must equal mode size");
        assert_eq!(f.ncols(), rank, "factor {d} rank mismatch");
    }
    rank
}

/// Accumulates the contribution of one entry into `row`.
///
/// `row` must hold the running Hadamard product seeded with the entry
/// value; this multiplies in the factor rows of every mode except `mode`.
#[inline]
fn hadamard_rows(row: &mut [f64], factors: &[Mat], t: &SparseTensor, entry: usize, mode: usize) {
    for (d, f) in factors.iter().enumerate() {
        if d == mode {
            continue;
        }
        let frow = f.row(t.mode_idx(d)[entry] as usize);
        kernels::mul_assign(row, frow);
    }
}

/// Sequential COO MTTKRP into a fresh `I_mode x R` matrix.
pub fn mttkrp_seq(t: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let rank = check_factors(t, factors);
    let mut m = Mat::zeros(t.dims()[mode], rank);
    mttkrp_seq_into(t, factors, mode, &mut m);
    m
}

/// Sequential COO MTTKRP into a caller-provided output (zeroed first).
#[adatm::hot]
pub fn mttkrp_seq_into(t: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
    let rank = check_factors(t, factors);
    assert_eq!(out.nrows(), t.dims()[mode], "output rows mismatch");
    assert_eq!(out.ncols(), rank, "output rank mismatch");
    out.fill_zero();
    let mut scratch = vec![0.0f64; rank];
    for k in 0..t.nnz() {
        let orow = out.row_mut(t.mode_idx(mode)[k] as usize);
        accumulate_entry(t, factors, mode, k, &mut scratch, orow);
    }
}

/// Accumulates the contribution of entry `k` into `orow`, using `srow`
/// as the Hadamard scratch row.
///
/// Orders 2–4 take a fully fused single-pass path (`orow += val ⊙ rows`,
/// no scratch traffic at all); higher orders fuse the value seed into the
/// first factor pass and the accumulation into the last — `N - 1`
/// rank-length passes instead of `N + 1`. All paths multiply factor rows
/// in ascending mode index like [`hadamard_rows`], left-to-right, so
/// results are bitwise identical to the unfused form.
#[inline]
fn accumulate_entry(
    t: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    k: usize,
    srow: &mut [f64],
    orow: &mut [f64],
) {
    let val = t.vals()[k];
    let ndim = factors.len();
    let row_of = |d: usize| factors[d].row(t.mode_idx(d)[k] as usize);
    match ndim {
        2 => kernels::axpy(orow, val, row_of(1 - mode)),
        3 => {
            let (a, b) = other_modes3(mode);
            kernels::axpy2(orow, val, row_of(a), row_of(b));
        }
        4 => {
            let (a, b, c) = other_modes4(mode);
            kernels::axpy3(orow, val, row_of(a), row_of(b), row_of(c));
        }
        _ => {
            let last = if mode == ndim - 1 { ndim - 2 } else { ndim - 1 };
            let mut seeded = false;
            for (d, f) in factors.iter().enumerate() {
                if d == mode || d == last {
                    continue;
                }
                let frow = f.row(t.mode_idx(d)[k] as usize);
                if seeded {
                    kernels::mul_assign(srow, frow);
                } else {
                    kernels::scale(srow, val, frow);
                    seeded = true;
                }
            }
            kernels::muladd_assign(orow, srow, row_of(last));
        }
    }
}

/// The two non-`mode` modes of an order-3 tensor, ascending.
#[inline]
fn other_modes3(mode: usize) -> (usize, usize) {
    match mode {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// The three non-`mode` modes of an order-4 tensor, ascending.
#[inline]
fn other_modes4(mode: usize) -> (usize, usize, usize) {
    match mode {
        0 => (1, 2, 3),
        1 => (0, 2, 3),
        2 => (0, 1, 3),
        _ => (0, 1, 2),
    }
}

/// Builds the nnz-balanced schedule for a sorted view, balanced for
/// `threads` workers. Backends cache the result per (tensor, mode).
pub fn schedule_for_view(view: &SortedModeView, threads: usize) -> ModeSchedule {
    ModeSchedule::build(&view.group_weights(), threads)
}

/// Parallel COO MTTKRP using a prebuilt [`SortedModeView`] for `mode`.
///
/// Convenience wrapper over [`mttkrp_par_into`] that builds a schedule
/// for the current thread count and a throwaway workspace. Hot paths
/// (backends, CP-ALS) should cache both and call `mttkrp_par_into`.
///
/// # Panics
/// Panics if `view.mode() != mode` or on factor-shape mismatch.
pub fn mttkrp_par(t: &SparseTensor, factors: &[Mat], mode: usize, view: &SortedModeView) -> Mat {
    let rank = check_factors(t, factors);
    let sched = schedule_for_view(view, rayon::current_num_threads());
    let mut ws = Workspace::new();
    let mut m = Mat::zeros(t.dims()[mode], rank);
    mttkrp_par_into(t, factors, mode, view, &sched, &mut ws, &mut m);
    m
}

/// One scheduled task's slice of the output: either a contiguous span of
/// `out` rows (Owned) or a privatized slot row (Split), plus a scratch row.
struct TaskCtx<'a> {
    task: &'a Task,
    /// Output span (Owned: rows `row0..`, row-major) or one slot row.
    buf: &'a mut [f64],
    /// First output row covered by `buf` (Owned tasks only).
    row0: usize,
    srow: &'a mut [f64],
}

/// Scheduled parallel COO MTTKRP into a caller-provided output.
///
/// `sched` must have been built from `view`'s group weights (see
/// [`schedule_for_view`]); `ws` provides all scratch memory. The kernel
/// performs **no heap allocation** when the schedule is sequential, and
/// allocates only the per-task context vector (O(tasks), independent of
/// nnz) on the parallel path.
///
/// Race-freedom: tasks are ordered by ascending group index and groups
/// map to strictly ascending output rows, so consecutive `split_at_mut`
/// calls hand each Owned task a disjoint row span of `out`; Split tasks
/// write privatized slot rows that are merged per-row afterwards. With
/// the `audit` feature the claim is re-checked at runtime.
///
/// # Panics
/// Panics if `view.mode() != mode`, on factor-shape mismatch, or if
/// `out` has the wrong shape.
#[adatm::hot]
pub fn mttkrp_par_into(
    t: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    view: &SortedModeView,
    sched: &ModeSchedule,
    ws: &mut Workspace,
    out: &mut Mat,
) {
    let rank = check_factors(t, factors);
    assert_eq!(view.mode(), mode, "sorted view is for a different mode");
    assert_eq!(out.nrows(), t.dims()[mode], "output rows mismatch");
    assert_eq!(out.ncols(), rank, "output rank mismatch");
    if rank == 0 || sched.num_tasks() == 0 {
        out.fill_zero();
        return;
    }
    #[cfg(feature = "audit")]
    audit_schedule_claims(view, sched, out.nrows());
    let (scratch, slots) = ws.ensure(sched.num_tasks() * rank, sched.num_slots() * rank);
    if sched.is_sequential() {
        // Allocation-free steady state: one pass over the groups with a
        // single workspace scratch row.
        out.fill_zero();
        let srow = &mut scratch[..rank];
        for g in 0..view.num_groups() {
            let orow = out.row_mut(view.key(g) as usize);
            for &e in view.group(g) {
                accumulate_entry(t, factors, mode, e as usize, srow, orow);
            }
        }
        return;
    }
    // Carve the output into disjoint &mut row spans, one per Owned task,
    // walking `out` left to right (tasks are ordered by group index).
    // There is no up-front zeroing pass: each span starts at the first
    // not-yet-claimed row, so gap rows (absent mode indices and rows
    // privatized by earlier Split tasks) are zeroed by the task that owns
    // the enclosing span, in parallel, while group rows are written by
    // first-touch assignment.
    let mut ctxs: Vec<TaskCtx<'_>> = Vec::with_capacity(sched.num_tasks());
    let mut out_rest = out.as_mut_slice();
    let mut consumed_rows = 0usize;
    let mut slots_rest = &mut slots[..];
    let mut scratch_rest = &mut scratch[..];
    for task in sched.tasks() {
        let (srow, rest) = std::mem::take(&mut scratch_rest).split_at_mut(rank);
        scratch_rest = rest;
        match task {
            Task::Owned { groups } => {
                let last = view.key(groups.end - 1) as usize;
                let tail = std::mem::take(&mut out_rest);
                let (span, rest) = tail.split_at_mut((last + 1 - consumed_rows) * rank);
                out_rest = rest;
                ctxs.push(TaskCtx { task, buf: span, row0: consumed_rows, srow });
                consumed_rows = last + 1;
            }
            Task::Split { .. } => {
                // Slot ids are assigned in task order, so slot rows are
                // consumed in order too. The split group's output row is
                // zeroed by a later Owned span (or the trailing fill) and
                // overwritten by the merge below.
                let (row, rest) = std::mem::take(&mut slots_rest).split_at_mut(rank);
                slots_rest = rest;
                ctxs.push(TaskCtx { task, buf: row, row0: 0, srow });
            }
        }
    }
    ctxs.into_par_iter().for_each(|ctx| {
        let TaskCtx { task, buf, row0, srow } = ctx;
        match task {
            Task::Owned { groups } => {
                let mut cursor = row0;
                for g in groups.clone() {
                    let key = view.key(g) as usize;
                    buf[(cursor - row0) * rank..(key - row0) * rank].fill(0.0);
                    let off = (key - row0) * rank;
                    let orow = &mut buf[off..off + rank];
                    if let Some((&e0, rest)) = view.group(g).split_first() {
                        assign_entry(t, factors, mode, e0 as usize, srow, orow);
                        for &e in rest {
                            accumulate_entry(t, factors, mode, e as usize, srow, orow);
                        }
                    } else {
                        orow.fill(0.0);
                    }
                    cursor = key + 1;
                }
                buf[(cursor - row0) * rank..].fill(0.0);
            }
            Task::Split { group, elems, .. } => {
                for &e in &view.group(*group)[elems.clone()] {
                    accumulate_entry(t, factors, mode, e as usize, srow, buf);
                }
            }
        }
    });
    // Rows past the last Owned span (trailing absent indices and trailing
    // split rows) were never handed to a task.
    out_rest.fill(0.0);
    // Merge each split group's privatized slot rows into its output row —
    // a per-row reduction, not a per-matrix one. The first slot assigns
    // (the row was only gap-zeroed), the rest accumulate.
    for sp in sched.splits() {
        let orow = out.row_mut(view.key(sp.group) as usize);
        for s in 0..sp.nslots {
            let srow = &slots[(sp.slot0 + s) * rank..(sp.slot0 + s + 1) * rank];
            if s == 0 {
                orow.copy_from_slice(srow);
            } else {
                kernels::add_assign(orow, srow);
            }
        }
    }
}

/// Re-checks the schedule's disjoint-write claim against the view.
#[cfg(feature = "audit")]
fn audit_schedule_claims(view: &SortedModeView, sched: &ModeSchedule, nrows: usize) {
    let owned = sched.tasks().iter().flat_map(|task| {
        let groups = match task {
            Task::Owned { groups } => groups.clone(),
            Task::Split { .. } => 0..0,
        };
        groups.map(|g| view.key(g) as usize)
    });
    let split = sched.splits().iter().map(|sp| (view.key(sp.group) as usize, sp.nslots));
    crate::audit::assert_schedule_claims(owned, split, nrows, "mttkrp_par");
}

/// [`accumulate_entry`]'s first-touch form: *assigns* the contribution
/// of entry `k` to `orow` instead of adding it. Used for the first entry
/// of each group on the parallel path so output rows never need a
/// separate zeroing pass (identical products, so results match the
/// accumulate-into-zero form bitwise up to the sign of zero).
#[inline]
fn assign_entry(
    t: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    k: usize,
    srow: &mut [f64],
    orow: &mut [f64],
) {
    let val = t.vals()[k];
    let ndim = factors.len();
    let row_of = |d: usize| factors[d].row(t.mode_idx(d)[k] as usize);
    match ndim {
        2 => kernels::scale(orow, val, row_of(1 - mode)),
        3 => {
            let (a, b) = other_modes3(mode);
            kernels::scale2(orow, val, row_of(a), row_of(b));
        }
        4 => {
            let (a, b, c) = other_modes4(mode);
            kernels::scale3(orow, val, row_of(a), row_of(b), row_of(c));
        }
        _ => {
            let last = if mode == ndim - 1 { ndim - 2 } else { ndim - 1 };
            let mut seeded = false;
            for (d, f) in factors.iter().enumerate() {
                if d == mode || d == last {
                    continue;
                }
                let frow = f.row(t.mode_idx(d)[k] as usize);
                if seeded {
                    kernels::mul_assign(srow, frow);
                } else {
                    kernels::scale(srow, val, frow);
                    seeded = true;
                }
            }
            kernels::mul_into(orow, srow, row_of(last));
        }
    }
}

/// The legacy one-task-per-group parallel kernel (pre-scheduling).
///
/// Retained as the baseline the bench-regression harness measures the
/// scheduled kernel against: it materializes the group list, allocates
/// two `R`-length rows per group, and serializes on hot rows.
pub fn mttkrp_par_grouped(
    t: &SparseTensor,
    factors: &[Mat],
    mode: usize,
    view: &SortedModeView,
) -> Mat {
    let rank = check_factors(t, factors);
    assert_eq!(view.mode(), mode, "sorted view is for a different mode");
    let mut m = Mat::zeros(t.dims()[mode], rank);
    let groups: Vec<(u32, &[u32])> = view.iter().collect();
    let rows: Vec<(usize, Vec<f64>)> = groups
        .par_iter()
        .map(|&(key, grp)| {
            let mut acc = vec![0.0f64; rank];
            let mut scratch = vec![0.0f64; rank];
            for &e in grp {
                let k = e as usize;
                scratch.iter_mut().for_each(|s| *s = t.vals()[k]);
                hadamard_rows(&mut scratch, factors, t, k, mode);
                kernels::add_assign(&mut acc, &scratch);
            }
            (key as usize, acc)
        })
        .collect();
    // Prove the "one group per output row" claim the parallelism rests on.
    #[cfg(feature = "audit")]
    crate::audit::assert_disjoint_rows(rows.iter().map(|&(r, _)| r), m.nrows(), "mttkrp_par");
    for (row_idx, acc) in rows {
        m.row_mut(row_idx).copy_from_slice(&acc);
    }
    m
}

/// Total fused multiply-add count of one COO MTTKRP in one mode
/// (`nnz * (N-1) * R` multiplies plus `nnz * R` adds), used by the cost
/// model and the operation-count experiments.
pub fn flops_per_mode(t: &SparseTensor, rank: usize) -> usize {
    t.nnz() * rank * t.ndim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;

    fn toy4() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5, 2],
            &[
                (vec![0, 1, 2, 1], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 0, 0, 1], 3.0),
                (vec![3, 0, 1, 0], -4.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![2, 2, 2, 1], 7.0),
                (vec![0, 1, 2, 0], 0.5),
            ],
        )
    }

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    #[test]
    fn seq_matches_dense_oracle_all_modes() {
        let t = toy4();
        let dense = DenseTensor::from_sparse(&t);
        let factors = factors_for(&t, 3, 10);
        for mode in 0..4 {
            let m = mttkrp_seq(&t, &factors, mode);
            let m_ref = dense.mttkrp_ref(&factors, mode);
            assert!(m.max_abs_diff(&m_ref) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn par_matches_seq_all_modes() {
        let t = toy4();
        let factors = factors_for(&t, 4, 20);
        for mode in 0..4 {
            let view = SortedModeView::build(&t, mode);
            let p = mttkrp_par(&t, &factors, mode, &view);
            let s = mttkrp_seq(&t, &factors, mode);
            assert!(p.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn empty_slice_rows_stay_zero() {
        let t = SparseTensor::from_entries(vec![5, 2], &[(vec![1, 0], 1.0), (vec![3, 1], 2.0)]);
        let factors = factors_for(&t, 2, 1);
        let m = mttkrp_seq(&t, &factors, 0);
        for &row in &[0usize, 2, 4] {
            assert_eq!(m.row(row), &[0.0, 0.0], "row {row}");
        }
    }

    #[test]
    fn rank_one_ones_factors_gives_slice_sums() {
        let t = toy4();
        let ones: Vec<Mat> = t.dims().iter().map(|&n| Mat::from_vec(n, 1, vec![1.0; n])).collect();
        let m = mttkrp_seq(&t, &ones, 0);
        // With all-ones factors, M(i, 0) is the sum of slice i in mode 0.
        assert!((m.get(0, 0) - (1.0 + 5.0 + 0.5)).abs() < 1e-14);
        assert!((m.get(3, 0) + 4.0).abs() < 1e-14);
    }

    #[test]
    fn mttkrp_into_reuses_buffer() {
        let t = toy4();
        let factors = factors_for(&t, 3, 30);
        let mut out = Mat::zeros(t.dims()[1], 3);
        mttkrp_seq_into(&t, &factors, 1, &mut out);
        let fresh = mttkrp_seq(&t, &factors, 1);
        assert!(out.max_abs_diff(&fresh) < 1e-15);
        // Second call must not accumulate on top of the first.
        mttkrp_seq_into(&t, &factors, 1, &mut out);
        assert!(out.max_abs_diff(&fresh) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "different mode")]
    fn par_rejects_wrong_view() {
        let t = toy4();
        let factors = factors_for(&t, 2, 3);
        let view = SortedModeView::build(&t, 1);
        let _ = mttkrp_par(&t, &factors, 0, &view);
    }

    #[test]
    fn flops_formula() {
        let t = toy4();
        assert_eq!(flops_per_mode(&t, 8), 7 * 8 * 4);
    }

    /// A tensor whose mode-0 index 2 owns most of the nonzeros — forces
    /// the scheduler to split a hot group.
    fn hot_row_tensor() -> SparseTensor {
        let mut entries = Vec::new();
        for k in 0..200 {
            entries.push((vec![2usize, k % 6, k % 4], (k as f64) * 0.25 - 10.0));
        }
        for k in 0..20 {
            entries.push((vec![k % 5, k % 6, k % 4], k as f64 * 0.5));
        }
        SparseTensor::from_entries(vec![5, 6, 4], &entries)
    }

    #[test]
    fn scheduled_matches_seq_with_forced_splits() {
        let t = hot_row_tensor();
        let factors = factors_for(&t, 5, 40);
        for mode in 0..3 {
            let view = SortedModeView::build(&t, mode);
            // Tiny target: every mode ends up with many tasks and the hot
            // mode-0 group splits into privatized sub-tasks.
            let sched = ModeSchedule::build_with_target(&view.group_weights(), 4, 8);
            let mut ws = Workspace::new();
            let mut out = Mat::zeros(t.dims()[mode], 5);
            mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
            let s = mttkrp_seq(&t, &factors, mode);
            assert!(out.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn scheduled_hot_mode_actually_splits() {
        let t = hot_row_tensor();
        let view = SortedModeView::build(&t, 0);
        let sched = ModeSchedule::build_with_target(&view.group_weights(), 4, 8);
        assert!(!sched.splits().is_empty(), "hot group should be split");
    }

    #[test]
    fn scheduled_runs_are_deterministic() {
        let t = hot_row_tensor();
        let factors = factors_for(&t, 6, 50);
        let view = SortedModeView::build(&t, 0);
        let sched = ModeSchedule::build_with_target(&view.group_weights(), 4, 8);
        let mut ws = Workspace::new();
        let mut a = Mat::zeros(t.dims()[0], 6);
        let mut b = Mat::zeros(t.dims()[0], 6);
        mttkrp_par_into(&t, &factors, 0, &view, &sched, &mut ws, &mut a);
        mttkrp_par_into(&t, &factors, 0, &view, &sched, &mut ws, &mut b);
        // Same schedule, same workspace: bitwise-identical output.
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn grouped_legacy_matches_seq() {
        let t = hot_row_tensor();
        let factors = factors_for(&t, 3, 60);
        for mode in 0..3 {
            let view = SortedModeView::build(&t, mode);
            let p = mttkrp_par_grouped(&t, &factors, mode, &view);
            let s = mttkrp_seq(&t, &factors, mode);
            assert!(p.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn workspace_reuse_across_modes_and_shapes() {
        let t = toy4();
        let factors = factors_for(&t, 4, 70);
        let mut ws = Workspace::new();
        for mode in 0..4 {
            let view = SortedModeView::build(&t, mode);
            let sched = ModeSchedule::build_with_target(&view.group_weights(), 2, 2);
            let mut out = Mat::zeros(t.dims()[mode], 4);
            mttkrp_par_into(&t, &factors, mode, &view, &sched, &mut ws, &mut out);
            let s = mttkrp_seq(&t, &factors, mode);
            assert!(out.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }
}
