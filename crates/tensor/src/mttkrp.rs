// lint: hot-path
//! Element-wise COO MTTKRP — the Tensor-Toolbox-style baseline.
//!
//! For every nonzero `x` with coordinate `(i_1, ..., i_N)` and every rank
//! column `r`, the mode-`n` MTTKRP accumulates
//! `x * prod_{d != n} U^(d)(i_d, r)` into `M(i_n, r)`. The COO formulation
//! performs `N-1` row Hadamard products per nonzero per mode — `N(N-1)`
//! tensor sweeps per CP-ALS iteration — and is the non-memoized reference
//! point every memoization strategy is measured against.
//!
//! Two schedules are provided:
//! * [`mttkrp_seq`] — a single pass over entries in storage order;
//! * [`mttkrp_par`] — rayon-parallel over the groups of a
//!   [`SortedModeView`], each group owning one output row (no atomics).

use crate::coo::SparseTensor;
use crate::sorted::SortedModeView;
use adatm_linalg::Mat;
use rayon::prelude::*;

/// Validates factor shapes against a tensor; returns the common rank.
///
/// # Panics
/// Panics on any shape mismatch.
pub fn check_factors(t: &SparseTensor, factors: &[Mat]) -> usize {
    assert_eq!(factors.len(), t.ndim(), "one factor matrix per mode required");
    let rank = factors.first().map_or(0, Mat::ncols);
    for (d, f) in factors.iter().enumerate() {
        assert_eq!(f.nrows(), t.dims()[d], "factor {d} rows must equal mode size");
        assert_eq!(f.ncols(), rank, "factor {d} rank mismatch");
    }
    rank
}

/// Accumulates the contribution of one entry into `row`.
///
/// `row` must hold the running Hadamard product seeded with the entry
/// value; this multiplies in the factor rows of every mode except `mode`.
#[inline]
fn hadamard_rows(row: &mut [f64], factors: &[Mat], t: &SparseTensor, entry: usize, mode: usize) {
    for (d, f) in factors.iter().enumerate() {
        if d == mode {
            continue;
        }
        let frow = f.row(t.mode_idx(d)[entry] as usize);
        for (acc, &u) in row.iter_mut().zip(frow.iter()) {
            *acc *= u;
        }
    }
}

/// Sequential COO MTTKRP into a fresh `I_mode x R` matrix.
pub fn mttkrp_seq(t: &SparseTensor, factors: &[Mat], mode: usize) -> Mat {
    let rank = check_factors(t, factors);
    let mut m = Mat::zeros(t.dims()[mode], rank);
    mttkrp_seq_into(t, factors, mode, &mut m);
    m
}

/// Sequential COO MTTKRP into a caller-provided output (zeroed first).
pub fn mttkrp_seq_into(t: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
    let rank = check_factors(t, factors);
    assert_eq!(out.nrows(), t.dims()[mode], "output rows mismatch");
    assert_eq!(out.ncols(), rank, "output rank mismatch");
    out.fill_zero();
    let mut scratch = vec![0.0f64; rank];
    for k in 0..t.nnz() {
        scratch.iter_mut().for_each(|s| *s = t.vals()[k]);
        hadamard_rows(&mut scratch, factors, t, k, mode);
        let orow = out.row_mut(t.mode_idx(mode)[k] as usize);
        for (o, &s) in orow.iter_mut().zip(scratch.iter()) {
            *o += s;
        }
    }
}

/// Parallel COO MTTKRP using a prebuilt [`SortedModeView`] for `mode`.
///
/// Each group of the view owns a distinct output row, so groups are
/// processed with `par_iter` and write without synchronization. Rows whose
/// mode index never occurs stay zero.
///
/// # Panics
/// Panics if `view.mode() != mode` or on factor-shape mismatch.
pub fn mttkrp_par(t: &SparseTensor, factors: &[Mat], mode: usize, view: &SortedModeView) -> Mat {
    let rank = check_factors(t, factors);
    assert_eq!(view.mode(), mode, "sorted view is for a different mode");
    let mut m = Mat::zeros(t.dims()[mode], rank);
    // Hand each group its own output row. Group g writes row view.key(g);
    // keys are strictly ascending so the rows are disjoint. We iterate the
    // output by row chunks and look groups up by key order.
    let groups: Vec<(u32, &[u32])> = view.iter().collect();
    let rows: Vec<(usize, Vec<f64>)> = groups
        .par_iter()
        .map(|&(key, grp)| {
            let mut acc = vec![0.0f64; rank];
            let mut scratch = vec![0.0f64; rank];
            for &e in grp {
                let k = e as usize;
                scratch.iter_mut().for_each(|s| *s = t.vals()[k]);
                hadamard_rows(&mut scratch, factors, t, k, mode);
                for (a, &s) in acc.iter_mut().zip(scratch.iter()) {
                    *a += s;
                }
            }
            (key as usize, acc)
        })
        .collect();
    // Prove the "one group per output row" claim the parallelism rests on.
    #[cfg(feature = "audit")]
    crate::audit::assert_disjoint_rows(rows.iter().map(|&(r, _)| r), m.nrows(), "mttkrp_par");
    for (row_idx, acc) in rows {
        m.row_mut(row_idx).copy_from_slice(&acc);
    }
    m
}

/// Total fused multiply-add count of one COO MTTKRP in one mode
/// (`nnz * (N-1) * R` multiplies plus `nnz * R` adds), used by the cost
/// model and the operation-count experiments.
pub fn flops_per_mode(t: &SparseTensor, rank: usize) -> usize {
    t.nnz() * rank * t.ndim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;

    fn toy4() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3, 5, 2],
            &[
                (vec![0, 1, 2, 1], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 0, 0, 1], 3.0),
                (vec![3, 0, 1, 0], -4.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![2, 2, 2, 1], 7.0),
                (vec![0, 1, 2, 0], 0.5),
            ],
        )
    }

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    #[test]
    fn seq_matches_dense_oracle_all_modes() {
        let t = toy4();
        let dense = DenseTensor::from_sparse(&t);
        let factors = factors_for(&t, 3, 10);
        for mode in 0..4 {
            let m = mttkrp_seq(&t, &factors, mode);
            let m_ref = dense.mttkrp_ref(&factors, mode);
            assert!(m.max_abs_diff(&m_ref) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn par_matches_seq_all_modes() {
        let t = toy4();
        let factors = factors_for(&t, 4, 20);
        for mode in 0..4 {
            let view = SortedModeView::build(&t, mode);
            let p = mttkrp_par(&t, &factors, mode, &view);
            let s = mttkrp_seq(&t, &factors, mode);
            assert!(p.max_abs_diff(&s) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn empty_slice_rows_stay_zero() {
        let t = SparseTensor::from_entries(vec![5, 2], &[(vec![1, 0], 1.0), (vec![3, 1], 2.0)]);
        let factors = factors_for(&t, 2, 1);
        let m = mttkrp_seq(&t, &factors, 0);
        for &row in &[0usize, 2, 4] {
            assert_eq!(m.row(row), &[0.0, 0.0], "row {row}");
        }
    }

    #[test]
    fn rank_one_ones_factors_gives_slice_sums() {
        let t = toy4();
        let ones: Vec<Mat> = t.dims().iter().map(|&n| Mat::from_vec(n, 1, vec![1.0; n])).collect();
        let m = mttkrp_seq(&t, &ones, 0);
        // With all-ones factors, M(i, 0) is the sum of slice i in mode 0.
        assert!((m.get(0, 0) - (1.0 + 5.0 + 0.5)).abs() < 1e-14);
        assert!((m.get(3, 0) + 4.0).abs() < 1e-14);
    }

    #[test]
    fn mttkrp_into_reuses_buffer() {
        let t = toy4();
        let factors = factors_for(&t, 3, 30);
        let mut out = Mat::zeros(t.dims()[1], 3);
        mttkrp_seq_into(&t, &factors, 1, &mut out);
        let fresh = mttkrp_seq(&t, &factors, 1);
        assert!(out.max_abs_diff(&fresh) < 1e-15);
        // Second call must not accumulate on top of the first.
        mttkrp_seq_into(&t, &factors, 1, &mut out);
        assert!(out.max_abs_diff(&fresh) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "different mode")]
    fn par_rejects_wrong_view() {
        let t = toy4();
        let factors = factors_for(&t, 2, 3);
        let view = SortedModeView::build(&t, 1);
        let _ = mttkrp_par(&t, &factors, 0, &view);
    }

    #[test]
    fn flops_formula() {
        let t = toy4();
        assert_eq!(flops_per_mode(&t, 8), 7 * 8 * 4);
    }
}
