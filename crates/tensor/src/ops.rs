//! Standalone sparse tensor operations: TTV, arithmetic, compaction.
//!
//! These are the public building blocks the decomposition engines
//! specialize internally. [`ttv`] is the textbook tensor-times-vector
//! contraction (Eq. (1) of the CP literature); [`compact`] removes empty
//! slices, the standard preprocessing step for real datasets whose id
//! spaces are sparse themselves.

use crate::coo::{Idx, SparseTensor};

/// Tensor-times-vector along `mode`: contracts the mode away, returning
/// an `(N-1)`-mode tensor with entries
/// `y(i_1, ..their mode numbers shifted..) = sum_j v[j] x(.., j, ..)`.
/// The result is deduplicated (entries whose remaining coordinates
/// coincide are summed).
///
/// # Panics
/// Panics if `v.len() != dims[mode]`, the tensor has fewer than 2 modes,
/// or `mode` is out of range.
pub fn ttv(t: &SparseTensor, mode: usize, v: &[f64]) -> SparseTensor {
    assert!(t.ndim() >= 2, "ttv would produce a 0-mode tensor");
    assert!(mode < t.ndim(), "mode out of range");
    assert_eq!(v.len(), t.dims()[mode], "vector length must match mode size");
    let keep: Vec<usize> = (0..t.ndim()).filter(|&d| d != mode).collect();
    let dims: Vec<usize> = keep.iter().map(|&d| t.dims()[d]).collect();
    let mut inds: Vec<Vec<Idx>> = keep.iter().map(|&d| t.mode_idx(d).to_vec()).collect();
    let mut vals: Vec<f64> =
        (0..t.nnz()).map(|k| t.vals()[k] * v[t.mode_idx(mode)[k] as usize]).collect();
    // Reuse SparseTensor's dedup machinery.
    let mut out = SparseTensor::new(dims, std::mem::take(&mut inds), std::mem::take(&mut vals));
    out.dedup_sum();
    out
}

/// Applies a chain of TTVs in the *original* tensor's mode numbering:
/// multiplies away every `(mode, vector)` pair, highest mode first so the
/// shifting of mode indices never invalidates the remaining pairs.
///
/// # Panics
/// Panics on duplicate modes or a chain that would consume every mode.
pub fn ttv_chain(t: &SparseTensor, pairs: &[(usize, &[f64])]) -> SparseTensor {
    assert!(pairs.len() < t.ndim(), "chain must leave at least one mode");
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(pairs[i].0));
    for w in order.windows(2) {
        assert_ne!(pairs[w[0]].0, pairs[w[1]].0, "duplicate mode in TTV chain");
    }
    let mut cur = t.clone();
    for &i in &order {
        cur = ttv(&cur, pairs[i].0, pairs[i].1);
    }
    cur
}

/// Scales every value by `alpha` in place.
pub fn scale(t: &mut SparseTensor, alpha: f64) {
    for v in t.vals_mut() {
        *v *= alpha;
    }
}

/// Element-wise sum of two tensors of identical shape (duplicates are
/// merged).
///
/// # Panics
/// Panics if shapes differ.
pub fn add(a: &SparseTensor, b: &SparseTensor) -> SparseTensor {
    assert_eq!(a.dims(), b.dims(), "tensor shapes must match");
    let n = a.ndim();
    let mut inds: Vec<Vec<Idx>> = (0..n)
        .map(|d| {
            let mut col = a.mode_idx(d).to_vec();
            col.extend_from_slice(b.mode_idx(d));
            col
        })
        .collect();
    let mut vals = a.vals().to_vec();
    vals.extend_from_slice(b.vals());
    let mut out =
        SparseTensor::new(a.dims().to_vec(), std::mem::take(&mut inds), std::mem::take(&mut vals));
    out.dedup_sum();
    out
}

/// Result of [`compact`]: the squeezed tensor plus, per mode, the map
/// from new (dense) index to the original index.
#[derive(Clone, Debug)]
pub struct Compacted {
    /// The tensor with all empty slices removed (mode `d` has size equal
    /// to the number of distinct original indices).
    pub tensor: SparseTensor,
    /// `maps[d][new_index] = original_index`.
    pub maps: Vec<Vec<Idx>>,
}

/// Removes empty slices in every mode, renumbering indices densely.
///
/// Real datasets (user ids, entity ids) routinely have mode sizes far
/// above the number of distinct indices actually used; compaction shrinks
/// the factor matrices and every downstream structure accordingly.
pub fn compact(t: &SparseTensor) -> Compacted {
    let n = t.ndim();
    let mut maps: Vec<Vec<Idx>> = Vec::with_capacity(n);
    let mut inds: Vec<Vec<Idx>> = Vec::with_capacity(n);
    let mut dims: Vec<usize> = Vec::with_capacity(n);
    for d in 0..n {
        let mut used = t.mode_idx(d).to_vec();
        used.sort_unstable();
        used.dedup();
        // old -> new lookup by binary search (used is sorted).
        let col: Vec<Idx> =
            t.mode_idx(d).iter().map(|&i| used.partition_point(|&u| u < i) as Idx).collect();
        dims.push(used.len().max(1));
        maps.push(used);
        inds.push(col);
    }
    Compacted { tensor: SparseTensor::new(dims, inds, t.vals().to_vec()), maps }
}

/// Inner (Frobenius) product of two same-shape sparse tensors.
///
/// Both tensors are canonicalized copies internally; for repeated use,
/// keep operands deduplicated and sorted.
pub fn inner(a: &SparseTensor, b: &SparseTensor) -> f64 {
    assert_eq!(a.dims(), b.dims(), "tensor shapes must match");
    let mut x = a.clone();
    let mut y = b.clone();
    x.dedup_sum();
    y.dedup_sum();
    // Merge the two sorted entry streams.
    let cmp = |x: &SparseTensor, i: usize, y: &SparseTensor, j: usize| {
        for d in 0..x.ndim() {
            match x.mode_idx(d)[i].cmp(&y.mode_idx(d)[j]) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    };
    let (mut i, mut j, mut total) = (0usize, 0usize, 0.0);
    while i < x.nnz() && j < y.nnz() {
        match cmp(&x, i, &y, j) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                total += x.vals()[i] * y.vals()[j];
                i += 1;
                j += 1;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseTensor;
    use crate::gen::zipf_tensor;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 2],
            &[
                (vec![0, 1, 0], 2.0),
                (vec![0, 1, 1], 3.0),
                (vec![2, 0, 1], -1.0),
                (vec![1, 3, 0], 4.0),
            ],
        )
    }

    #[test]
    fn ttv_matches_dense_definition() {
        let t = toy();
        let dense = DenseTensor::from_sparse(&t);
        let v = [0.5, -1.0, 2.0, 0.25];
        let y = ttv(&t, 1, &v);
        assert_eq!(y.dims(), &[3, 2]);
        for i in 0..3 {
            for k in 0..2 {
                let want: f64 = (0..4).map(|j| v[j] * dense.get(&[i, j, k])).sum();
                assert!((y.get(&[i, k]) - want).abs() < 1e-12, "({i},{k})");
            }
        }
    }

    #[test]
    fn ttv_merges_collapsing_coordinates() {
        // Two entries that differ only in the contracted mode must merge.
        let t = SparseTensor::from_entries(vec![2, 3], &[(vec![1, 0], 2.0), (vec![1, 2], 5.0)]);
        let y = ttv(&t, 1, &[1.0, 1.0, 1.0]);
        assert_eq!(y.nnz(), 1);
        assert_eq!(y.get(&[1]), 7.0);
    }

    #[test]
    fn ttv_chain_order_independence() {
        let t = zipf_tensor(&[6, 7, 8, 5], 100, &[0.4; 4], 3);
        let u: Vec<f64> = (0..7).map(|i| 0.1 * i as f64 - 0.3).collect();
        let w: Vec<f64> = (0..5).map(|i| 1.0 / (i + 1) as f64).collect();
        let a = ttv_chain(&t, &[(1, &u), (3, &w)]);
        let b = ttv_chain(&t, &[(3, &w), (1, &u)]);
        assert_eq!(a.dims(), b.dims());
        for k in 0..a.nnz() {
            let coords: Vec<usize> = (0..a.ndim()).map(|d| a.mode_idx(d)[k] as usize).collect();
            assert!((a.vals()[k] - b.get(&coords)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate mode")]
    fn ttv_chain_rejects_duplicates() {
        let t = toy();
        let v = vec![1.0; 4];
        let _ = ttv_chain(&t, &[(1, &v), (1, &v)]);
    }

    #[test]
    fn scale_and_add_are_linear() {
        let a = toy();
        let mut a2 = a.clone();
        scale(&mut a2, 2.0);
        let s = add(&a, &a);
        // a + a == 2a entry-wise.
        for k in 0..s.nnz() {
            let coords: Vec<usize> = (0..s.ndim()).map(|d| s.mode_idx(d)[k] as usize).collect();
            assert!((s.vals()[k] - a2.get(&coords)).abs() < 1e-12);
        }
    }

    #[test]
    fn add_cancellation_keeps_structural_zero() {
        let a = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 1], 3.0)]);
        let mut b = a.clone();
        scale(&mut b, -1.0);
        let s = add(&a, &b);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.vals()[0], 0.0);
    }

    #[test]
    fn compact_removes_empty_slices_and_round_trips() {
        let t = SparseTensor::from_entries(
            vec![100, 50, 10],
            &[(vec![7, 30, 2], 1.0), (vec![99, 30, 5], 2.0), (vec![7, 4, 2], 3.0)],
        );
        let c = compact(&t);
        assert_eq!(c.tensor.dims(), &[2, 2, 2]);
        assert_eq!(c.tensor.nnz(), 3);
        // Every compacted entry maps back to an original entry.
        for k in 0..c.tensor.nnz() {
            let orig: Vec<usize> =
                (0..3).map(|d| c.maps[d][c.tensor.mode_idx(d)[k] as usize] as usize).collect();
            assert_eq!(t.get(&orig), c.tensor.vals()[k]);
        }
    }

    #[test]
    fn inner_matches_norm_on_self() {
        let t = zipf_tensor(&[10, 12, 8], 200, &[0.5; 3], 9);
        assert!((inner(&t, &t) - t.fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn inner_of_disjoint_supports_is_zero() {
        let a = SparseTensor::from_entries(vec![4, 4], &[(vec![0, 0], 5.0)]);
        let b = SparseTensor::from_entries(vec![4, 4], &[(vec![3, 3], 7.0)]);
        assert_eq!(inner(&a, &b), 0.0);
    }
}
