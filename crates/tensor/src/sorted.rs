//! Per-mode sorted views over a COO tensor.
//!
//! A [`SortedModeView`] for mode `n` is a permutation of entry ids grouped
//! by their mode-`n` index, plus the group boundaries. It gives the COO
//! MTTKRP a race-free parallel schedule: each group writes exactly one row
//! of the output matrix, so groups can be processed by different threads
//! without atomics or locks — the same "owner computes the row" structure
//! the dimension-tree engine uses for its reduction sets.

use crate::coo::{Idx, SparseTensor};

/// Entry ids of a tensor grouped by their index in one mode.
#[derive(Clone, Debug)]
pub struct SortedModeView {
    mode: usize,
    /// Distinct mode indices, ascending; one per group.
    keys: Vec<Idx>,
    /// Group boundaries into `perm`: group `g` is `perm[ptr[g]..ptr[g+1]]`.
    ptr: Vec<usize>,
    /// Entry ids, grouped by mode index.
    perm: Vec<u32>,
}

impl SortedModeView {
    /// Builds the view for `mode` by counting sort over the mode's index
    /// array (`O(nnz + I_mode)`), then orders the entries *within* each
    /// group lexicographically by the other modes' indices, largest mode
    /// first.
    ///
    /// The secondary sort is a locality optimization for "long-mode"
    /// groups (small mode dimension, many entries per group): the MTTKRP
    /// entry kernel gathers one factor row per non-target mode per entry,
    /// and on a mode whose groups span thousands of entries those reads
    /// land anywhere in factor matrices that are megabytes large. Walking
    /// a group in ascending largest-mode order turns the dominant gather
    /// stream into a monotone address walk the hardware prefetcher can
    /// follow. Group membership is unchanged, so the race-freedom story
    /// is untouched; only the in-group summation order (and therefore
    /// floating-point rounding, within tolerance) differs.
    pub fn build(t: &SparseTensor, mode: usize) -> Self {
        let idx = t.mode_idx(mode);
        let size = t.dims()[mode];
        let mut counts = vec![0usize; size + 1];
        for &i in idx {
            counts[i as usize + 1] += 1;
        }
        for i in 0..size {
            counts[i + 1] += counts[i];
        }
        let mut perm = vec![0u32; t.nnz()];
        let mut cursor = counts.clone();
        for (k, &i) in idx.iter().enumerate() {
            perm[cursor[i as usize]] = k as u32;
            cursor[i as usize] += 1;
        }
        // Compact empty groups.
        let mut keys = Vec::new();
        let mut ptr = vec![0usize];
        for i in 0..size {
            if counts[i + 1] > counts[i] {
                keys.push(i as Idx);
                ptr.push(counts[i + 1]);
            }
        }
        // Secondary in-group order: other modes by descending size, ties
        // broken by entry id for determinism.
        let mut others: Vec<usize> = (0..t.ndim()).filter(|&d| d != mode).collect();
        others.sort_by_key(|&d| std::cmp::Reverse(t.dims()[d]));
        for g in 0..keys.len() {
            let grp = &mut perm[ptr[g]..ptr[g + 1]];
            if grp.len() > 1 {
                grp.sort_unstable_by(|&a, &b| {
                    for &d in &others {
                        let col = t.mode_idx(d);
                        match col[a as usize].cmp(&col[b as usize]) {
                            std::cmp::Ordering::Equal => continue,
                            ord => return ord,
                        }
                    }
                    a.cmp(&b)
                });
            }
        }
        SortedModeView { mode, keys, ptr, perm }
    }

    /// The mode this view groups by.
    pub fn mode(&self) -> usize {
        self.mode
    }

    /// Number of non-empty groups (distinct mode indices).
    pub fn num_groups(&self) -> usize {
        self.keys.len()
    }

    /// The mode index shared by all entries of group `g`.
    pub fn key(&self, g: usize) -> Idx {
        self.keys[g]
    }

    /// Entry ids of group `g`.
    pub fn group(&self, g: usize) -> &[u32] {
        &self.perm[self.ptr[g]..self.ptr[g + 1]]
    }

    /// Iterates `(mode_index, entry_ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Idx, &[u32])> {
        (0..self.num_groups()).map(move |g| (self.key(g), self.group(g)))
    }

    /// All distinct keys (ascending).
    pub fn keys(&self) -> &[Idx] {
        &self.keys
    }

    /// Per-group entry counts — the nnz weights the scheduler balances.
    pub fn group_weights(&self) -> Vec<usize> {
        (0..self.num_groups()).map(|g| self.group(g).len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 3],
            &[
                (vec![2, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![2, 2], 3.0),
                (vec![0, 0], 4.0),
                (vec![3, 1], 5.0),
            ],
        )
    }

    #[test]
    fn groups_partition_all_entries() {
        let t = toy();
        for mode in 0..2 {
            let v = SortedModeView::build(&t, mode);
            let mut seen: Vec<u32> = v.iter().flat_map(|(_, g)| g.iter().copied()).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "mode {mode}");
        }
    }

    #[test]
    fn group_members_share_key() {
        let t = toy();
        let v = SortedModeView::build(&t, 0);
        for (key, grp) in v.iter() {
            for &e in grp {
                assert_eq!(t.mode_idx(0)[e as usize], key);
            }
        }
    }

    #[test]
    fn empty_slices_are_skipped() {
        let t = toy();
        let v = SortedModeView::build(&t, 0);
        // Mode-0 index 1 never occurs.
        assert_eq!(v.num_groups(), 3);
        assert_eq!(v.keys(), &[0, 2, 3]);
    }

    #[test]
    fn keys_ascending_and_counts_match() {
        let t = toy();
        let v = SortedModeView::build(&t, 1);
        assert_eq!(v.keys(), &[0, 1, 2]);
        assert_eq!(v.group(0).len(), 2); // indices 0: entries (2,0),(0,0)
        assert_eq!(v.group(1).len(), 2);
        assert_eq!(v.group(2).len(), 1);
    }

    #[test]
    fn empty_tensor_has_no_groups() {
        let t = SparseTensor::empty(vec![5, 5]);
        let v = SortedModeView::build(&t, 0);
        assert_eq!(v.num_groups(), 0);
    }
}
