//! Sparse tensor substrate for CP decomposition.
//!
//! This crate provides everything below the decomposition algorithms:
//!
//! * [`coo`] — the coordinate (COO) sparse tensor, stored
//!   structure-of-arrays (one index array per mode plus a value array),
//!   which is both the interchange format (FROSTT) and the root of every
//!   dimension tree;
//! * [`sorted`] — per-mode sorted views used to parallelize COO MTTKRP
//!   without atomics;
//! * [`dense`] — a small dense tensor used as a brute-force oracle in tests
//!   and for tiny examples;
//! * [`csf`] — compressed sparse fiber storage and the SPLATT-style
//!   fiber-reusing MTTKRP, the state-of-the-art baseline the paper
//!   compares against;
//! * [`mttkrp`] — the element-wise COO MTTKRP baseline (Tensor-Toolbox
//!   style);
//! * [`schedule`] — nnz-balanced static schedules and reusable kernel
//!   workspaces shared by the parallel MTTKRP paths;
//! * [`ops`] — standalone tensor operations: TTV and TTV chains,
//!   add/scale, empty-slice compaction, inner products;
//! * [`semisparse`] — sCOO tensors (sparse modes + one dense mode) and
//!   the TTM / TTM-chain operations Tucker builds on;
//! * [`io`] — FROSTT `.tns` text and a compact binary format;
//! * [`gen`] — synthetic tensor generators (uniform, Zipf-skewed,
//!   low-rank-plus-noise) and shape-faithful proxies for the real datasets
//!   used in the paper's line of work;
//! * [`stats`] — dataset characteristics and projection-collapse
//!   statistics used by the planner's experiments;
//! * [`error`] — typed errors for the fallible construction and
//!   contraction entry points;
//! * [`audit`] (feature `audit`) — the runtime write-overlap detector the
//!   parallel MTTKRP kernels use to prove their row-disjointness claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod coo;
pub mod csf;
pub mod dense;
pub mod error;
pub mod gen;
pub mod io;
pub mod mttkrp;
pub mod ops;
pub mod schedule;
pub mod semisparse;
pub mod sorted;
pub mod stats;

pub use coo::SparseTensor;
pub use csf::CsfTensor;
pub use dense::DenseTensor;
pub use error::TensorError;
pub use sorted::SortedModeView;
