//! Coordinate-format (COO) sparse tensors, stored structure-of-arrays.

use std::fmt;

/// Index type for mode coordinates.
///
/// `u32` halves the index footprint relative to `usize` — the memory-usage
/// experiments (E5) depend on index storage being the dominant term — and
/// no dataset in this workspace approaches 2^32 along any mode.
pub type Idx = u32;

/// An `N`-mode sparse tensor in coordinate format.
///
/// Layout is structure-of-arrays: one index array per mode plus one value
/// array, all of length `nnz`. Every kernel in the workspace walks one or
/// two modes' index arrays at a time, so SoA keeps those walks contiguous
/// (an AoS tuple layout would stride by `N`).
///
/// ```
/// use adatm_tensor::SparseTensor;
///
/// let t = SparseTensor::from_entries(
///     vec![3, 4, 2],
///     &[(vec![0, 1, 0], 2.5), (vec![2, 3, 1], -1.0)],
/// );
/// assert_eq!(t.ndim(), 3);
/// assert_eq!(t.nnz(), 2);
/// assert_eq!(t.get(&[0, 1, 0]), 2.5);
/// assert_eq!(t.get(&[1, 1, 1]), 0.0); // implicit zero
/// ```
///
/// Invariants (checked by [`SparseTensor::new`], preserved by all methods):
/// * every index array has the same length as `vals`;
/// * every index is strictly below the corresponding mode size.
///
/// Duplicate coordinates are permitted; [`SparseTensor::dedup_sum`]
/// canonicalizes by summing duplicates.
#[derive(Clone, PartialEq)]
pub struct SparseTensor {
    dims: Vec<usize>,
    inds: Vec<Vec<Idx>>,
    vals: Vec<f64>,
}

impl fmt::Debug for SparseTensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SparseTensor")
            .field("dims", &self.dims)
            .field("nnz", &self.vals.len())
            .finish()
    }
}

impl SparseTensor {
    /// Creates a sparse tensor from per-mode index arrays and values.
    ///
    /// # Panics
    /// Panics if array lengths are inconsistent, if `inds.len() !=
    /// dims.len()`, or if any index is out of bounds for its mode.
    pub fn new(dims: Vec<usize>, inds: Vec<Vec<Idx>>, vals: Vec<f64>) -> Self {
        assert_eq!(inds.len(), dims.len(), "one index array per mode required");
        for (d, (col, &size)) in inds.iter().zip(dims.iter()).enumerate() {
            assert_eq!(col.len(), vals.len(), "index array {d} length mismatch");
            assert!(
                size <= Idx::MAX as usize + 1,
                "mode {d} size {size} exceeds index type capacity"
            );
            if let Some(&bad) = col.iter().find(|&&i| (i as usize) >= size) {
                panic!("index {bad} out of bounds for mode {d} of size {size}");
            }
        }
        SparseTensor { dims, inds, vals }
    }

    /// Creates an empty tensor with the given mode sizes.
    pub fn empty(dims: Vec<usize>) -> Self {
        let n = dims.len();
        SparseTensor { dims, inds: vec![Vec::new(); n], vals: Vec::new() }
    }

    /// Creates a tensor from `(coordinates, value)` entries.
    ///
    /// Convenient for tests and examples; large tensors should be built
    /// column-wise with [`SparseTensor::new`].
    ///
    /// # Panics
    /// Panics if any entry has the wrong arity or an out-of-bounds index.
    /// [`SparseTensor::try_from_entries`] is the non-panicking form.
    pub fn from_entries(dims: Vec<usize>, entries: &[(Vec<usize>, f64)]) -> Self {
        Self::try_from_entries(dims, entries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`SparseTensor::from_entries`] returning a typed error instead of
    /// panicking on bad arity or coordinates that overflow [`Idx`].
    ///
    /// Out-of-bounds (but representable) coordinates still panic in
    /// [`SparseTensor::new`]; use this to guard the representability of
    /// externally supplied coordinates.
    pub fn try_from_entries(
        dims: Vec<usize>,
        entries: &[(Vec<usize>, f64)],
    ) -> Result<Self, crate::error::TensorError> {
        let n = dims.len();
        let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(entries.len()); n];
        let mut vals = Vec::with_capacity(entries.len());
        for (coords, v) in entries {
            if coords.len() != n {
                return Err(crate::error::TensorError::ArityMismatch {
                    expected: n,
                    got: coords.len(),
                });
            }
            for (mode, (col, &c)) in inds.iter_mut().zip(coords.iter()).enumerate() {
                let idx = Idx::try_from(c).map_err(|_| {
                    crate::error::TensorError::IndexOverflow { mode, coordinate: c }
                })?;
                col.push(idx);
            }
            vals.push(*v);
        }
        Ok(SparseTensor::new(dims, inds, vals))
    }

    /// Number of modes (the tensor order, `N`).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Mode sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The index array of mode `d` (length `nnz`).
    #[inline]
    pub fn mode_idx(&self, d: usize) -> &[Idx] {
        &self.inds[d]
    }

    /// The value array (length `nnz`).
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable access to the value array.
    ///
    /// Structure (indices) stays fixed, which is exactly the contract the
    /// symbolic/numeric split of the dimension-tree engine relies on.
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// The full coordinate of entry `k` (allocates; test/debug helper).
    pub fn coord(&self, k: usize) -> Vec<Idx> {
        self.inds.iter().map(|col| col[k]).collect()
    }

    /// Density: `nnz / prod(dims)`, computed in `f64` to avoid overflow.
    pub fn density(&self) -> f64 {
        let cells: f64 = self.dims.iter().map(|&d| d as f64).product();
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Frobenius norm of the tensor (assumes deduplicated entries).
    pub fn fro_norm(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm (assumes deduplicated entries).
    pub fn fro_norm_sq(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum::<f64>()
    }

    /// Bytes used by index arrays plus values (the COO storage footprint
    /// reported by the memory experiment).
    pub fn storage_bytes(&self) -> usize {
        self.ndim() * self.nnz() * std::mem::size_of::<Idx>()
            + self.nnz() * std::mem::size_of::<f64>()
    }

    /// Reorders entries in place according to `perm`, where the entry at
    /// old position `perm[k]` moves to position `k`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..nnz` (detected
    /// indirectly via length/bounds checks).
    pub fn apply_permutation(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.nnz(), "permutation length mismatch");
        for col in &mut self.inds {
            *col = gather_u32(col, perm);
        }
        self.vals = gather_f64(&self.vals, perm);
    }

    /// Sorts entries lexicographically by the given mode order.
    ///
    /// `mode_order` lists modes from most- to least-significant; it may be
    /// a prefix (remaining entry order is then unspecified but stable).
    pub fn sort_by_modes(&mut self, mode_order: &[usize]) {
        let perm = self.sort_permutation(mode_order);
        self.apply_permutation(&perm);
    }

    /// Computes (without applying) the stable permutation that sorts
    /// entries lexicographically by `mode_order`.
    pub fn sort_permutation(&self, mode_order: &[usize]) -> Vec<u32> {
        let mut perm: Vec<u32> = (0..self.nnz() as u32).collect();
        let inds = &self.inds;
        perm.sort_by(|&a, &b| {
            for &d in mode_order {
                let (ia, ib) = (inds[d][a as usize], inds[d][b as usize]);
                match ia.cmp(&ib) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        perm
    }

    /// Sums duplicate coordinates, leaving entries sorted lexicographically
    /// by mode `0, 1, ..., N-1`. Entries that sum to exactly zero are kept
    /// (they remain structurally significant for symbolic analysis).
    pub fn dedup_sum(&mut self) {
        if self.nnz() == 0 {
            return;
        }
        let order: Vec<usize> = (0..self.ndim()).collect();
        self.sort_by_modes(&order);
        let n = self.ndim();
        let nnz = self.nnz();
        let mut write = 0usize;
        for read in 1..nnz {
            let same = (0..n).all(|d| self.inds[d][read] == self.inds[d][write]);
            if same {
                self.vals[write] += self.vals[read];
            } else {
                write += 1;
                for d in 0..n {
                    self.inds[d][write] = self.inds[d][read];
                }
                self.vals[write] = self.vals[read];
            }
        }
        let new_len = write + 1;
        for col in &mut self.inds {
            col.truncate(new_len);
        }
        self.vals.truncate(new_len);
    }

    /// Returns a tensor with modes permuted: mode `d` of the result is mode
    /// `perm[d]` of `self`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..ndim`.
    pub fn permute_modes(&self, perm: &[usize]) -> SparseTensor {
        assert_eq!(perm.len(), self.ndim(), "mode permutation arity mismatch");
        let mut seen = vec![false; self.ndim()];
        for &p in perm {
            assert!(p < self.ndim() && !seen[p], "invalid mode permutation");
            seen[p] = true;
        }
        SparseTensor {
            dims: perm.iter().map(|&p| self.dims[p]).collect(),
            inds: perm.iter().map(|&p| self.inds[p].clone()).collect(),
            vals: self.vals.clone(),
        }
    }

    /// Looks up the value at a coordinate by linear scan (test helper).
    pub fn get(&self, coords: &[usize]) -> f64 {
        assert_eq!(coords.len(), self.ndim());
        'outer: for k in 0..self.nnz() {
            for (d, &c) in coords.iter().enumerate() {
                if self.inds[d][k] as usize != c {
                    continue 'outer;
                }
            }
            return self.vals[k];
        }
        0.0
    }

    /// Keeps only the first `len` entries (no-op if `len >= nnz`).
    pub fn truncate(&mut self, len: usize) {
        for col in &mut self.inds {
            col.truncate(len);
        }
        self.vals.truncate(len);
    }

    /// Counts the number of distinct index values appearing in mode `d`
    /// (i.e., the number of non-empty slices).
    pub fn distinct_in_mode(&self, d: usize) -> usize {
        let mut sorted = self.inds[d].clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }
}

/// Gathers `src[perm[k]]` into position `k`.
pub(crate) fn gather_u32(src: &[Idx], perm: &[u32]) -> Vec<Idx> {
    perm.iter().map(|&p| src[p as usize]).collect()
}

/// Gathers `src[perm[k]]` into position `k`.
pub(crate) fn gather_f64(src: &[f64], perm: &[u32]) -> Vec<f64> {
    perm.iter().map(|&p| src[p as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_entries_reports_arity_and_overflow() {
        use crate::error::TensorError;
        let err = SparseTensor::try_from_entries(vec![2, 2], &[(vec![0], 1.0)]).unwrap_err();
        assert_eq!(err, TensorError::ArityMismatch { expected: 2, got: 1 });
        let big = Idx::MAX as usize + 1;
        let err = SparseTensor::try_from_entries(vec![usize::MAX, 2], &[(vec![big, 0], 1.0)])
            .unwrap_err();
        assert_eq!(err, TensorError::IndexOverflow { mode: 0, coordinate: big });
        let ok = SparseTensor::try_from_entries(vec![2, 2], &[(vec![1, 0], 1.0)]);
        assert_eq!(ok.map(|t| t.nnz()), Ok(1));
    }

    fn toy() -> SparseTensor {
        // The 4x4x4x4 example shape from the dimension-tree literature.
        SparseTensor::from_entries(
            vec![4, 4, 4, 4],
            &[
                (vec![0, 1, 2, 3], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 3, 0, 1], 3.0),
                (vec![3, 0, 1, 2], 4.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![0, 1, 2, 0], 6.0),
                (vec![2, 3, 2, 3], 7.0),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = toy();
        assert_eq!(t.ndim(), 4);
        assert_eq!(t.nnz(), 7);
        assert_eq!(t.dims(), &[4, 4, 4, 4]);
        assert_eq!(t.get(&[2, 3, 0, 1]), 3.0);
        assert_eq!(t.get(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn new_rejects_out_of_bounds_index() {
        SparseTensor::from_entries(vec![2, 2], &[(vec![0, 2], 1.0)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn new_rejects_ragged_arrays() {
        SparseTensor::new(vec![2, 2], vec![vec![0, 1], vec![0]], vec![1.0, 2.0]);
    }

    #[test]
    fn density_of_toy() {
        let t = toy();
        assert!((t.density() - 7.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn sort_by_modes_orders_lexicographically() {
        let mut t = toy();
        t.sort_by_modes(&[2, 0]);
        let m2 = t.mode_idx(2);
        assert!(m2.windows(2).all(|w| w[0] <= w[1]));
        // Within equal mode-2 index, mode 0 must be sorted.
        for k in 1..t.nnz() {
            if t.mode_idx(2)[k] == t.mode_idx(2)[k - 1] {
                assert!(t.mode_idx(0)[k] >= t.mode_idx(0)[k - 1]);
            }
        }
    }

    #[test]
    fn sort_preserves_entries() {
        let mut t = toy();
        let before = t.get(&[0, 1, 2, 3]);
        t.sort_by_modes(&[3, 1, 2, 0]);
        assert_eq!(t.nnz(), 7);
        assert_eq!(t.get(&[0, 1, 2, 3]), before);
    }

    #[test]
    fn dedup_sums_duplicates() {
        let mut t = SparseTensor::from_entries(
            vec![3, 3],
            &[(vec![1, 2], 1.5), (vec![0, 0], 1.0), (vec![1, 2], 2.5), (vec![0, 0], -1.0)],
        );
        t.dedup_sum();
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.get(&[1, 2]), 4.0);
        assert_eq!(t.get(&[0, 0]), 0.0); // kept: structurally present, value 0
    }

    #[test]
    fn dedup_on_empty_is_noop() {
        let mut t = SparseTensor::empty(vec![5, 5, 5]);
        t.dedup_sum();
        assert_eq!(t.nnz(), 0);
    }

    #[test]
    fn permute_modes_round_trip() {
        let t = toy();
        let p = t.permute_modes(&[3, 2, 1, 0]);
        assert_eq!(p.get(&[3, 2, 1, 0]), t.get(&[0, 1, 2, 3]));
        let back = p.permute_modes(&[3, 2, 1, 0]);
        assert_eq!(back, t);
    }

    #[test]
    fn fro_norm_matches_manual() {
        let t = SparseTensor::from_entries(vec![2, 2], &[(vec![0, 0], 3.0), (vec![1, 1], 4.0)]);
        assert!((t.fro_norm() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn distinct_in_mode_counts_nonempty_slices() {
        let t = toy();
        assert_eq!(t.distinct_in_mode(0), 4);
        let t2 = SparseTensor::from_entries(vec![10, 2], &[(vec![3, 0], 1.0), (vec![3, 1], 1.0)]);
        assert_eq!(t2.distinct_in_mode(0), 1);
    }

    #[test]
    fn storage_bytes_formula() {
        let t = toy();
        assert_eq!(t.storage_bytes(), 4 * 7 * 4 + 7 * 8);
    }
}
