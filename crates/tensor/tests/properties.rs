//! Property-based tests of the tensor substrate: CSF equivalence, TTV
//! algebra, I/O round trips, and compaction, on random sparse tensors.

use adatm_linalg::Mat;
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::dense::DenseTensor;
use adatm_tensor::io::{read_binary, read_tns, write_binary, write_tns};
use adatm_tensor::mttkrp::mttkrp_seq;
use adatm_tensor::ops::{add, compact, inner, scale, ttv};
use adatm_tensor::semisparse::ttm;
use adatm_tensor::stats::distinct_projections;
use adatm_tensor::SparseTensor;
use proptest::prelude::*;

fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (2usize..=4)
        .prop_flat_map(|ndim| {
            proptest::collection::vec(2usize..8, ndim).prop_flat_map(move |dims| {
                let cells: usize = dims.iter().product();
                let entry = {
                    let dims = dims.clone();
                    (0..cells).prop_map(move |flat| {
                        let mut c = Vec::with_capacity(dims.len());
                        let mut rest = flat;
                        for &d in dims.iter().rev() {
                            c.push(rest % d);
                            rest /= d;
                        }
                        c.reverse();
                        c
                    })
                };
                (
                    Just(dims.clone()),
                    proptest::collection::vec((entry, -4.0f64..4.0), 1..=cells.min(30)),
                )
            })
        })
        .prop_map(|(dims, entries)| {
            let mut t = SparseTensor::from_entries(dims, &entries);
            t.dedup_sum();
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csf_mttkrp_equals_coo_mttkrp(t in arb_tensor(), seed in 0u64..500) {
        let rank = 2;
        let factors: Vec<Mat> = t.dims().iter().enumerate()
            .map(|(d, &n)| Mat::random(n, rank, seed + d as u64))
            .collect();
        for mode in 0..t.ndim() {
            let csf = CsfTensor::for_mode(&t, mode);
            let a = csf.mttkrp_root(&factors);
            let b = mttkrp_seq(&t, &factors, mode);
            prop_assert!(a.max_abs_diff(&b) < 1e-9, "mode {mode}");
        }
    }

    #[test]
    fn csf_leaf_count_is_distinct_coordinate_count(t in arb_tensor()) {
        let csf = CsfTensor::build(&t, &(0..t.ndim()).collect::<Vec<_>>());
        prop_assert_eq!(*csf.node_counts().last().unwrap(), t.nnz());
    }

    #[test]
    fn ttv_is_linear_in_values(t in arb_tensor(), alpha in -3.0f64..3.0) {
        prop_assume!(t.ndim() >= 2);
        let mode = t.ndim() - 1;
        let v: Vec<f64> = (0..t.dims()[mode]).map(|i| 0.5 + i as f64).collect();
        let y1 = ttv(&t, mode, &v);
        let mut t2 = t.clone();
        scale(&mut t2, alpha);
        let y2 = ttv(&t2, mode, &v);
        // y2 == alpha * y1 entry-wise.
        for k in 0..y2.nnz() {
            let coords: Vec<usize> =
                (0..y2.ndim()).map(|d| y2.mode_idx(d)[k] as usize).collect();
            prop_assert!((y2.vals()[k] - alpha * y1.get(&coords)).abs() < 1e-9);
        }
    }

    #[test]
    fn ttm_row_sums_equal_ttv_with_same_vector(t in arb_tensor(), seed in 0u64..100) {
        prop_assume!(t.ndim() >= 2);
        let mode = 0;
        let u = Mat::random(t.dims()[mode], 3, seed);
        let y = ttm(&t, mode, &u);
        // Column r of the TTM equals the TTV with u's column r.
        for r in 0..3 {
            let col: Vec<f64> = (0..u.nrows()).map(|i| u.get(i, r)).collect();
            let z = ttv(&t, mode, &col);
            for e in 0..y.nnz() {
                let coords: Vec<usize> =
                    (0..y.idx.len()).map(|p| y.idx[p][e] as usize).collect();
                prop_assert!((y.fiber(e)[r] - z.get(&coords)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn add_commutes(a in arb_tensor()) {
        let mut b = a.clone();
        scale(&mut b, 0.5);
        let ab = add(&a, &b);
        let ba = add(&b, &a);
        prop_assert_eq!(ab.nnz(), ba.nnz());
        for k in 0..ab.nnz() {
            let coords: Vec<usize> =
                (0..ab.ndim()).map(|d| ab.mode_idx(d)[k] as usize).collect();
            prop_assert!((ab.vals()[k] - ba.get(&coords)).abs() < 1e-12);
        }
    }

    #[test]
    fn inner_is_bilinear_diagonal(t in arb_tensor(), alpha in -2.0f64..2.0) {
        let mut s = t.clone();
        scale(&mut s, alpha);
        prop_assert!((inner(&t, &s) - alpha * t.fro_norm_sq()).abs() < 1e-7);
    }

    #[test]
    fn compact_preserves_values_and_projections(t in arb_tensor()) {
        let c = compact(&t);
        prop_assert_eq!(c.tensor.nnz(), t.nnz());
        // Distinct projections are invariant under index renaming.
        for m in 0..t.ndim() {
            prop_assert_eq!(
                distinct_projections(&c.tensor, &[m]),
                distinct_projections(&t, &[m])
            );
        }
        prop_assert!((c.tensor.fro_norm() - t.fro_norm()).abs() < 1e-12);
    }

    #[test]
    fn tns_round_trip_preserves_dense_content(t in arb_tensor()) {
        let mut buf = Vec::new();
        write_tns(&t, &mut buf).unwrap();
        let mut back = read_tns(&buf[..]).unwrap();
        back.dedup_sum();
        // The reader infers dims from max indices; compare via dense on
        // the original dims (the read tensor's dims are <= original).
        let dense_a = DenseTensor::from_sparse(&t);
        for k in 0..back.nnz() {
            let coords: Vec<usize> =
                (0..back.ndim()).map(|d| back.mode_idx(d)[k] as usize).collect();
            prop_assert!((dense_a.get(&coords) - back.vals()[k]).abs() < 1e-9);
        }
        prop_assert_eq!(back.nnz(), t.nnz());
    }

    #[test]
    fn binary_round_trip_is_exact(t in arb_tensor()) {
        let mut buf = Vec::new();
        write_binary(&t, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        prop_assert_eq!(back, t);
    }
}
