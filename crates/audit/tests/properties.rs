//! Property tests for the validators: structures the kernels build must
//! always validate, and targeted corruptions must fail with the *right*
//! [`AuditError`] variant.

use adatm_audit::{validate_canonical, validate_csf_parts, validate_symbolic, Validate};
use adatm_dtree::{DimTree, SymbolicTree, TreeShape};
use adatm_linalg::Mat;
use adatm_tensor::coo::Idx;
use adatm_tensor::csf::CsfTensor;
use adatm_tensor::semisparse::ttm;
use adatm_tensor::SparseTensor;
use proptest::prelude::*;

/// Strategy: a random sparse tensor with 2-5 modes, small dims, and a
/// handful of entries, canonicalized by `dedup_sum`.
fn arb_tensor() -> impl Strategy<Value = SparseTensor> {
    (2usize..=5)
        .prop_flat_map(|ndim| {
            let dims = proptest::collection::vec(2usize..7, ndim);
            dims.prop_flat_map(move |dims| {
                let cells: usize = dims.iter().product();
                let max_nnz = cells.min(40);
                let entry = {
                    let dims = dims.clone();
                    (0..cells).prop_map(move |flat| {
                        let mut c = Vec::with_capacity(dims.len());
                        let mut rest = flat;
                        for &d in dims.iter().rev() {
                            c.push(rest % d);
                            rest /= d;
                        }
                        c.reverse();
                        c
                    })
                };
                (Just(dims.clone()), proptest::collection::vec((entry, -5.0f64..5.0), 1..=max_nnz))
            })
        })
        .prop_map(|(dims, entries)| {
            let entries: Vec<(Vec<usize>, f64)> = entries;
            let mut t = SparseTensor::from_entries(dims, &entries);
            t.dedup_sum();
            t
        })
}

/// Owned raw parts of a CSF tensor: `(dims, order, fids, fptr, vals)`.
type CsfParts = (Vec<usize>, Vec<usize>, Vec<Vec<Idx>>, Vec<Vec<usize>>, Vec<f64>);

/// Borrows a CSF tensor's raw parts, ready for corruption.
fn csf_parts(c: &CsfTensor) -> CsfParts {
    let n = c.ndim();
    (
        c.dims().to_vec(),
        c.order().to_vec(),
        (0..n).map(|l| c.level_fids(l).to_vec()).collect(),
        (0..n - 1).map(|l| c.level_fptr(l).to_vec()).collect(),
        c.vals().to_vec(),
    )
}

fn run_parts(
    dims: &[usize],
    order: &[usize],
    fids: &[Vec<Idx>],
    fptr: &[Vec<usize>],
    vals: &[f64],
) -> Result<(), adatm_audit::AuditError> {
    let fids: Vec<&[Idx]> = fids.iter().map(Vec::as_slice).collect();
    let fptr: Vec<&[usize]> = fptr.iter().map(Vec::as_slice).collect();
    validate_csf_parts(dims, order, &fids, &fptr, vals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip: a canonical COO tensor validates, and every per-mode
    /// CSF built from it validates too.
    #[test]
    fn coo_to_csf_round_trip_always_validates(t in arb_tensor()) {
        prop_assert_eq!(t.validate(), Ok(()));
        prop_assert_eq!(validate_canonical(&t), Ok(()));
        for m in 0..t.ndim() {
            let c = CsfTensor::for_mode(&t, m);
            prop_assert_eq!(c.validate(), Ok(()));
        }
    }

    /// A duplicated coordinate (skipping `dedup_sum`) is reported as
    /// `DuplicateIndex` by the canonical validator.
    #[test]
    fn duplicate_coordinate_fails_canonical(t in arb_tensor()) {
        // Rebuild the tensor with its first entry repeated at the end,
        // then re-sort (without merging) so ordering is not the failure.
        let mut entries: Vec<(Vec<usize>, f64)> = (0..t.nnz())
            .map(|k| {
                ((0..t.ndim()).map(|d| t.mode_idx(d)[k] as usize).collect(), t.vals()[k])
            })
            .collect();
        entries.push(entries[0].clone());
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let dup = SparseTensor::from_entries(t.dims().to_vec(), &entries);
        prop_assert_eq!(dup.validate(), Ok(()));
        prop_assert!(matches!(
            validate_canonical(&dup),
            Err(adatm_audit::AuditError::DuplicateIndex { what: "coo coordinates", .. })
        ));
    }

    /// A NaN planted anywhere in the values is reported as `NonFinite`
    /// at exactly that position.
    #[test]
    fn nan_value_fails_with_nonfinite(t in arb_tensor(), at in 0usize..1000) {
        let mut t = t;
        let pos = at % t.nnz();
        t.vals_mut()[pos] = f64::NAN;
        let got = t.validate();
        let want = Err(adatm_audit::AuditError::NonFinite { what: "coo values", pos });
        prop_assert_eq!(got, want);
    }

    /// Shuffling a CSF level's fibers (when there is anything to shuffle)
    /// is reported as `Unsorted` or `DuplicateIndex` — never accepted.
    #[test]
    fn shuffled_csf_fiber_fails(t in arb_tensor(), which in 0usize..1000) {
        let mode = which % t.ndim();
        let c = CsfTensor::for_mode(&t, mode);
        let (dims, order, mut fids, fptr, vals) = csf_parts(&c);
        prop_assume!(fids[0].len() >= 2);
        // Reverse the root level: with >= 2 distinct fibers this breaks
        // strict ascending order while keeping all pointers intact.
        fids[0].reverse();
        prop_assert!(matches!(
            run_parts(&dims, &order, &fids, &fptr, &vals),
            Err(adatm_audit::AuditError::Unsorted { what: "csf root fibers", .. })
        ));
    }

    /// Truncating the CSF leaf values breaks the fiber-count/nnz
    /// accounting and is reported as `CountMismatch`.
    #[test]
    fn csf_leaf_accounting_fails_on_truncation(t in arb_tensor()) {
        let c = CsfTensor::for_mode(&t, 0);
        let (dims, order, fids, fptr, mut vals) = csf_parts(&c);
        vals.pop();
        prop_assert!(matches!(
            run_parts(&dims, &order, &fids, &fptr, &vals),
            Err(adatm_audit::AuditError::CountMismatch { what: "csf leaf values", .. })
        ));
    }

    /// Semi-sparse TTM outputs always validate; a swapped tuple fails.
    #[test]
    fn ttm_output_validates_and_swap_fails(t in arb_tensor(), seed in 0u64..1000) {
        let mode = (seed as usize) % t.ndim();
        let u = Mat::random(t.dims()[mode], 2, seed);
        let mut s = ttm(&t, mode, &u);
        prop_assert_eq!(s.validate(), Ok(()));
        prop_assume!(s.nnz() >= 2);
        let last = s.nnz() - 1;
        for col in &mut s.idx {
            col.swap(0, last);
        }
        prop_assert!(matches!(
            s.validate(),
            Err(adatm_audit::AuditError::Unsorted { what: "semisparse tuples", .. })
        ));
    }

    /// Every random dimension tree and its symbolic structure validate.
    #[test]
    fn random_trees_and_symbolic_always_validate(t in arb_tensor(), seed in 0u64..1000) {
        for shape in [
            TreeShape::two_level(t.ndim()),
            TreeShape::three_level(t.ndim()),
            TreeShape::balanced_binary(t.ndim()),
            TreeShape::left_deep(t.ndim()),
        ] {
            let tree = DimTree::from_shape(&shape);
            prop_assert_eq!(tree.validate(), Ok(()));
            let sym = SymbolicTree::build(&t, &tree);
            prop_assert_eq!(validate_symbolic(&sym, &tree), Ok(()));
        }
        let _ = seed;
    }

    /// Factor sets produced for a tensor validate; a planted infinity
    /// fails with `NonFinite`.
    #[test]
    fn factor_sets_validate_until_poisoned(t in arb_tensor(), seed in 0u64..1000) {
        let rank = 3;
        let mut factors: Vec<Mat> = t
            .dims()
            .iter()
            .enumerate()
            .map(|(d, &n)| Mat::random(n, rank, seed + d as u64))
            .collect();
        prop_assert_eq!(adatm_audit::validate_factors(&factors, t.dims(), rank), Ok(()));
        factors[0].set(0, 0, f64::INFINITY);
        prop_assert!(matches!(
            adatm_audit::validate_factors(&factors, t.dims(), rank),
            Err(adatm_audit::AuditError::NonFinite { what: "matrix entries", pos: 0 })
        ));
    }
}
