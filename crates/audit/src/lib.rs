//! Invariant audits for the sparse-tensor kernels.
//!
//! Every data structure the CP-ALS pipeline moves through — COO tensors,
//! CSF forests, semi-sparse intermediates, dimension trees and their
//! symbolic structure, factor matrices — carries invariants the numeric
//! kernels silently rely on: sorted and deduplicated indices, CSR-shaped
//! pointer arrays whose reduction sets partition the parent, mode sets
//! that partition on the way down the tree, finite floating-point values.
//! A violation rarely crashes; it produces a *wrong decomposition*.
//!
//! This crate makes those invariants checkable: the [`Validate`] trait
//! returns a typed [`AuditError`] naming the first violated invariant,
//! precisely enough that a property test can corrupt a structure and
//! assert the *right* error comes back. The `audit` cargo feature of the
//! kernel crates (`adatm-tensor`, `adatm-dtree`, `adatm-core`) wires
//! these checks — plus the runtime write-overlap detector in
//! `adatm_tensor::audit` — into every stage boundary of CP-ALS.
//!
//! Validators are pure and allocation-light (`O(size)` scans, one bitset
//! for permutation checks); they never mutate what they check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod coo;
mod csf;
mod dtree;
mod factors;
mod semisparse;

pub use coo::validate_canonical;
pub use csf::validate_csf_parts;
pub use dtree::validate_symbolic;
pub use factors::validate_factors;

/// The first violated invariant found by a validator.
///
/// `what` fields name the structure (or part) being audited; positions
/// are indices into that structure so a failure is reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// Two parts that must have equal lengths do not.
    LengthMismatch {
        /// The part whose length is wrong.
        what: &'static str,
        /// Required length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// An index exceeds its mode's size.
    IndexOutOfBounds {
        /// The audited structure.
        what: &'static str,
        /// The (original) mode the index belongs to.
        mode: usize,
        /// Position of the offending index within its array.
        pos: usize,
        /// The offending index.
        index: usize,
        /// The exclusive bound it must stay under.
        bound: usize,
    },
    /// A sequence that must be sorted is out of order at `pos`.
    Unsorted {
        /// The audited sequence.
        what: &'static str,
        /// Position whose element is smaller than its predecessor.
        pos: usize,
    },
    /// A coordinate (or node index) occurs twice where it must be unique.
    DuplicateIndex {
        /// The audited sequence.
        what: &'static str,
        /// Position of the second occurrence.
        pos: usize,
    },
    /// A floating-point value is NaN or infinite.
    NonFinite {
        /// The audited value array.
        what: &'static str,
        /// Flat position of the first non-finite value.
        pos: usize,
    },
    /// A CSR-style pointer array is malformed.
    BrokenPointers {
        /// The audited structure.
        what: &'static str,
        /// Level (CSF) or node id (dimension tree) of the pointer array.
        level: usize,
        /// Position of the offending pointer.
        pos: usize,
        /// Which pointer rule broke.
        detail: &'static str,
    },
    /// A derived count does not match what the structure accounts for
    /// (e.g. fiber counts vs. nonzero counts).
    CountMismatch {
        /// The audited count.
        what: &'static str,
        /// Required value.
        expected: usize,
        /// Actual value.
        got: usize,
    },
    /// A mode-set or element partition does not partition.
    PartitionViolation {
        /// The audited structure.
        what: &'static str,
        /// The node (or element) where the partition breaks.
        node: usize,
        /// Which partition rule broke.
        detail: &'static str,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::LengthMismatch { what, expected, got } => {
                write!(f, "{what}: length {got}, expected {expected}")
            }
            AuditError::IndexOutOfBounds { what, mode, pos, index, bound } => {
                write!(
                    f,
                    "{what}: index {index} at position {pos} exceeds mode {mode} bound {bound}"
                )
            }
            AuditError::Unsorted { what, pos } => {
                write!(f, "{what}: out of sorted order at position {pos}")
            }
            AuditError::DuplicateIndex { what, pos } => {
                write!(f, "{what}: duplicate at position {pos}")
            }
            AuditError::NonFinite { what, pos } => {
                write!(f, "{what}: non-finite value at position {pos}")
            }
            AuditError::BrokenPointers { what, level, pos, detail } => {
                write!(f, "{what}: pointer array at level {level}, position {pos}: {detail}")
            }
            AuditError::CountMismatch { what, expected, got } => {
                write!(f, "{what}: count {got}, expected {expected}")
            }
            AuditError::PartitionViolation { what, node, detail } => {
                write!(f, "{what}: node {node}: {detail}")
            }
        }
    }
}

impl std::error::Error for AuditError {}

/// A structure whose invariants can be audited.
///
/// `validate` returns the **first** violated invariant (scan order is
/// deterministic), or `Ok(())` when every invariant holds. Implementations
/// exist for [`adatm_tensor::SparseTensor`], [`adatm_tensor::CsfTensor`],
/// [`adatm_tensor::semisparse::SemiSparseTensor`],
/// [`adatm_dtree::DimTree`] and [`adatm_linalg::Mat`].
pub trait Validate {
    /// Checks every invariant; `Err` names the first violation.
    fn validate(&self) -> Result<(), AuditError>;
}

/// Checks that `seq` is a permutation of `0..len` (helper shared by the
/// CSF and symbolic validators).
fn check_permutation(
    what: &'static str,
    seq: impl Iterator<Item = usize>,
    len: usize,
) -> Result<(), AuditError> {
    let mut seen = vec![false; len];
    let mut count = 0usize;
    for (pos, v) in seq.enumerate() {
        if v >= len {
            return Err(AuditError::IndexOutOfBounds { what, mode: 0, pos, index: v, bound: len });
        }
        if seen[v] {
            return Err(AuditError::DuplicateIndex { what, pos });
        }
        seen[v] = true;
        count += 1;
    }
    if count != len {
        return Err(AuditError::LengthMismatch { what, expected: len, got: count });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_locate_the_violation() {
        let e = AuditError::Unsorted { what: "csf fiber", pos: 3 };
        assert_eq!(e.to_string(), "csf fiber: out of sorted order at position 3");
        let e = AuditError::NonFinite { what: "factor 1", pos: 7 };
        assert!(e.to_string().contains("non-finite"));
        let e = AuditError::BrokenPointers {
            what: "csf",
            level: 1,
            pos: 2,
            detail: "empty child range",
        };
        assert!(e.to_string().contains("level 1"));
    }

    #[test]
    fn permutation_helper_catches_all_violations() {
        assert_eq!(check_permutation("p", [1usize, 0, 2].into_iter(), 3), Ok(()));
        assert!(matches!(
            check_permutation("p", [0usize, 0].into_iter(), 2),
            Err(AuditError::DuplicateIndex { .. })
        ));
        assert!(matches!(
            check_permutation("p", [3usize].into_iter(), 2),
            Err(AuditError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            check_permutation("p", [0usize].into_iter(), 2),
            Err(AuditError::LengthMismatch { .. })
        ));
    }
}
