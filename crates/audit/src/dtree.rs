//! Validators for dimension trees and their symbolic structure.

use crate::{check_permutation, AuditError, Validate};
use adatm_dtree::{DimTree, SymbolicTree};

impl Validate for DimTree {
    /// Mode-partition consistency of the tree:
    ///
    /// * the root covers modes `0..ndim` exactly and has no parent;
    /// * every other node has a parent that precedes it (topological
    ///   order) and lists it among its children;
    /// * mode sets are strictly ascending;
    /// * `modes ∪ delta` reproduces the parent's mode set — the invariant
    ///   the TTV kernels' factor-row products rest on;
    /// * an internal node's children partition its mode set;
    /// * every mode's leaf lookup lands on a single-mode leaf.
    fn validate(&self) -> Result<(), AuditError> {
        if self.is_empty() {
            return Err(AuditError::LengthMismatch {
                what: "dimension tree nodes",
                expected: 1,
                got: 0,
            });
        }
        let n = self.ndim();
        let root = self.node(0);
        if root.parent.is_some() {
            return Err(AuditError::PartitionViolation {
                what: "dimension tree",
                node: 0,
                detail: "root must not have a parent",
            });
        }
        if root.modes != (0..n).collect::<Vec<_>>() {
            return Err(AuditError::PartitionViolation {
                what: "dimension tree",
                node: 0,
                detail: "root must cover all modes exactly once",
            });
        }
        for id in 0..self.len() {
            let node = self.node(id);
            if !node.modes.windows(2).all(|w| w[0] < w[1]) {
                return Err(AuditError::PartitionViolation {
                    what: "dimension tree",
                    node: id,
                    detail: "mode set must be strictly ascending",
                });
            }
            if id > 0 {
                let Some(parent) = node.parent else {
                    return Err(AuditError::PartitionViolation {
                        what: "dimension tree",
                        node: id,
                        detail: "non-root node has no parent",
                    });
                };
                if parent >= id {
                    return Err(AuditError::PartitionViolation {
                        what: "dimension tree",
                        node: id,
                        detail: "parent must precede child",
                    });
                }
                if !self.node(parent).children.contains(&id) {
                    return Err(AuditError::PartitionViolation {
                        what: "dimension tree",
                        node: id,
                        detail: "parent does not list this child",
                    });
                }
                let mut merged: Vec<usize> =
                    node.modes.iter().chain(node.delta.iter()).copied().collect();
                merged.sort_unstable();
                merged.dedup();
                if merged != self.node(parent).modes {
                    return Err(AuditError::PartitionViolation {
                        what: "dimension tree",
                        node: id,
                        detail: "modes and delta do not partition the parent's mode set",
                    });
                }
            }
            if !node.is_leaf() {
                let mut union: Vec<usize> = node
                    .children
                    .iter()
                    .flat_map(|&c| self.node(c).modes.iter().copied())
                    .collect();
                union.sort_unstable();
                if union != node.modes {
                    return Err(AuditError::PartitionViolation {
                        what: "dimension tree",
                        node: id,
                        detail: "children's mode sets do not partition the node's",
                    });
                }
            }
        }
        for m in 0..n {
            let leaf = self.leaf_of(m);
            if !self.node(leaf).is_leaf() || self.node(leaf).modes != [m] {
                return Err(AuditError::PartitionViolation {
                    what: "dimension tree",
                    node: leaf,
                    detail: "leaf lookup does not land on that mode's leaf",
                });
            }
        }
        Ok(())
    }
}

/// Validates a symbolic structure against its tree: per non-root node the
/// reduction sets must partition the parent's elements (CSR-shaped
/// `rptr`, no empty sets, `rperm` a permutation of `0..parent_len`), the
/// per-mode index arrays must match the element count, and a `pmap`, if
/// present, must map every parent element to a valid element. These are
/// the invariants that make the numeric pass's per-element parallelism
/// race-free.
///
/// This is the `Result`-returning counterpart of the assertion-style
/// hooks the `audit` feature wires into the symbolic phase itself.
pub fn validate_symbolic(sym: &SymbolicTree, tree: &DimTree) -> Result<(), AuditError> {
    if sym.len() != tree.len() {
        return Err(AuditError::LengthMismatch {
            what: "symbolic nodes",
            expected: tree.len(),
            got: sym.len(),
        });
    }
    for id in 1..sym.len() {
        let node = sym.node(id);
        let parent = tree.node(id).parent.unwrap_or(0);
        let parent_len = sym.node(parent).len;
        let expected_rptr = if node.len == 0 { 1 } else { node.len + 1 };
        if node.rptr.len() != expected_rptr {
            return Err(AuditError::BrokenPointers {
                what: "symbolic reduction sets",
                level: id,
                pos: node.rptr.len(),
                detail: "rptr must have one entry per element plus a sentinel",
            });
        }
        let covered = if node.len == 0 { 0 } else { parent_len };
        if node.rptr.last() != Some(&covered) {
            return Err(AuditError::BrokenPointers {
                what: "symbolic reduction sets",
                level: id,
                pos: node.rptr.len() - 1,
                detail: "reduction sets must cover the parent exactly",
            });
        }
        for (pos, w) in node.rptr.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(AuditError::BrokenPointers {
                    what: "symbolic reduction sets",
                    level: id,
                    pos: pos + 1,
                    detail: "empty reduction set",
                });
            }
        }
        check_permutation("symbolic rperm", node.rperm.iter().map(|&j| j as usize), parent_len)?;
        for col in &node.idx {
            if col.len() != node.len {
                return Err(AuditError::LengthMismatch {
                    what: "symbolic index array",
                    expected: node.len,
                    got: col.len(),
                });
            }
        }
        if let Some(pmap) = &node.pmap {
            if pmap.len() != parent_len {
                return Err(AuditError::LengthMismatch {
                    what: "symbolic pmap",
                    expected: parent_len,
                    got: pmap.len(),
                });
            }
            for (pos, &e) in pmap.iter().enumerate() {
                if (e as usize) >= node.len {
                    return Err(AuditError::IndexOutOfBounds {
                        what: "symbolic pmap",
                        mode: 0,
                        pos,
                        index: e as usize,
                        bound: node.len,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_dtree::TreeShape;
    use adatm_tensor::SparseTensor;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![4, 4, 4, 4],
            &[
                (vec![0, 1, 2, 3], 1.0),
                (vec![1, 2, 3, 0], 2.0),
                (vec![2, 3, 0, 1], 3.0),
                (vec![0, 1, 0, 1], 5.0),
                (vec![2, 3, 2, 3], 7.0),
            ],
        )
    }

    #[test]
    fn every_shape_family_validates() {
        for shape in [
            TreeShape::two_level(5),
            TreeShape::three_level(5),
            TreeShape::balanced_binary(5),
            TreeShape::left_deep(5),
        ] {
            assert_eq!(DimTree::from_shape(&shape).validate(), Ok(()));
        }
    }

    #[test]
    fn symbolic_structure_validates_for_every_shape() {
        let t = toy();
        for shape in [
            TreeShape::two_level(4),
            TreeShape::three_level(4),
            TreeShape::balanced_binary(4),
            TreeShape::left_deep(4),
        ] {
            let tree = DimTree::from_shape(&shape);
            let sym = SymbolicTree::build(&t, &tree);
            assert_eq!(validate_symbolic(&sym, &tree), Ok(()));
        }
    }

    #[test]
    fn symbolic_of_empty_tensor_validates() {
        let t = SparseTensor::empty(vec![4, 4, 4, 4]);
        let tree = DimTree::from_shape(&TreeShape::balanced_binary(4));
        let sym = SymbolicTree::build(&t, &tree);
        assert_eq!(validate_symbolic(&sym, &tree), Ok(()));
    }

    #[test]
    fn symbolic_node_count_mismatch_is_caught() {
        let t = toy();
        let big = DimTree::from_shape(&TreeShape::balanced_binary(4));
        let small = DimTree::from_shape(&TreeShape::two_level(4));
        let sym = SymbolicTree::build(&t, &small);
        assert!(matches!(
            validate_symbolic(&sym, &big),
            Err(AuditError::LengthMismatch { what: "symbolic nodes", .. })
        ));
    }
}
