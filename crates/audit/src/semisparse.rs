//! Validators for semi-sparse (sCOO) intermediates.

use crate::{AuditError, Validate};
use adatm_tensor::semisparse::SemiSparseTensor;

impl Validate for SemiSparseTensor {
    /// Invariants of the sCOO intermediates the TTM chains produce:
    ///
    /// * one size and one index array per sparse mode, with the sparse
    ///   mode ids strictly ascending;
    /// * every index array has one entry per stored tuple and stays under
    ///   its mode's size;
    /// * tuples are strictly increasing in lexicographic order — sorted
    ///   and merged, as the TTM kernels construct them;
    /// * every dense-fiber value is finite.
    fn validate(&self) -> Result<(), AuditError> {
        let k = self.sparse_modes.len();
        if self.sparse_dims.len() != k {
            return Err(AuditError::LengthMismatch {
                what: "semisparse mode sizes",
                expected: k,
                got: self.sparse_dims.len(),
            });
        }
        if self.idx.len() != k {
            return Err(AuditError::LengthMismatch {
                what: "semisparse index arrays",
                expected: k,
                got: self.idx.len(),
            });
        }
        for pos in 1..k {
            match self.sparse_modes[pos - 1].cmp(&self.sparse_modes[pos]) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    return Err(AuditError::DuplicateIndex { what: "semisparse modes", pos });
                }
                std::cmp::Ordering::Greater => {
                    return Err(AuditError::Unsorted { what: "semisparse modes", pos });
                }
            }
        }
        let nnz = self.nnz();
        for (m, col) in self.idx.iter().enumerate() {
            if col.len() != nnz {
                return Err(AuditError::LengthMismatch {
                    what: "semisparse index array",
                    expected: nnz,
                    got: col.len(),
                });
            }
            let bound = self.sparse_dims[m];
            for (pos, &i) in col.iter().enumerate() {
                if (i as usize) >= bound {
                    return Err(AuditError::IndexOutOfBounds {
                        what: "semisparse index",
                        mode: self.sparse_modes[m],
                        pos,
                        index: i as usize,
                        bound,
                    });
                }
            }
        }
        for pos in 1..nnz {
            let mut ord = std::cmp::Ordering::Equal;
            for col in &self.idx {
                ord = col[pos - 1].cmp(&col[pos]);
                if ord != std::cmp::Ordering::Equal {
                    break;
                }
            }
            match ord {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => {
                    return Err(AuditError::DuplicateIndex { what: "semisparse tuples", pos });
                }
                std::cmp::Ordering::Greater => {
                    return Err(AuditError::Unsorted { what: "semisparse tuples", pos });
                }
            }
        }
        for (pos, v) in self.vals.as_slice().iter().enumerate() {
            if !v.is_finite() {
                return Err(AuditError::NonFinite { what: "semisparse fibers", pos });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_linalg::Mat;
    use adatm_tensor::semisparse::{ttm, ttm_chain_all_but, ttm_semisparse};
    use adatm_tensor::SparseTensor;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 5, 2],
            &[
                (vec![0, 1, 2, 0], 1.0),
                (vec![1, 2, 3, 1], 2.0),
                (vec![2, 3, 4, 0], 3.0),
                (vec![2, 0, 1, 1], 4.0),
                (vec![0, 1, 4, 0], 5.0),
            ],
        )
    }

    #[test]
    fn ttm_output_validates() {
        let t = toy();
        for mode in 0..t.ndim() {
            let u = Mat::random(t.dims()[mode], 3, 7);
            assert_eq!(ttm(&t, mode, &u).validate(), Ok(()), "mode {mode}");
        }
    }

    #[test]
    fn chained_ttm_output_validates() {
        let t = toy();
        let s = ttm(&t, 3, &Mat::random(2, 3, 1));
        let s2 = ttm_semisparse(&s, 2, &Mat::random(5, 2, 2));
        assert_eq!(s2.validate(), Ok(()));
        let factors: Vec<Mat> =
            t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, 2, d as u64)).collect();
        let refs: Vec<&Mat> = factors.iter().collect();
        assert_eq!(ttm_chain_all_but(&t, 1, &refs).validate(), Ok(()));
    }

    #[test]
    fn corrupted_tuple_order_is_caught() {
        let t = toy();
        let mut s = ttm(&t, 3, &Mat::random(2, 3, 7));
        assert!(s.nnz() >= 2);
        let last = s.idx[0].len() - 1;
        for col in &mut s.idx {
            col.swap(0, last);
        }
        assert!(matches!(
            s.validate(),
            Err(AuditError::Unsorted { what: "semisparse tuples", .. })
        ));
    }

    #[test]
    fn duplicated_tuple_is_caught() {
        let t = toy();
        let mut s = ttm(&t, 3, &Mat::random(2, 3, 7));
        for col in &mut s.idx {
            let first = col[0];
            col[1] = first;
        }
        assert!(matches!(
            s.validate(),
            Err(AuditError::DuplicateIndex { what: "semisparse tuples", .. })
        ));
    }

    #[test]
    fn non_finite_fiber_is_caught() {
        let t = toy();
        let mut s = ttm(&t, 3, &Mat::random(2, 3, 7));
        s.vals.set(0, 1, f64::NAN);
        assert_eq!(s.validate(), Err(AuditError::NonFinite { what: "semisparse fibers", pos: 1 }));
    }

    #[test]
    fn out_of_bounds_index_is_caught() {
        let t = toy();
        let mut s = ttm(&t, 3, &Mat::random(2, 3, 7));
        s.idx[1][0] = s.sparse_dims[1] as u32;
        assert!(matches!(
            s.validate(),
            Err(AuditError::IndexOutOfBounds { what: "semisparse index", mode: 1, .. })
        ));
    }
}
