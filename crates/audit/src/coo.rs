//! Validators for COO tensors ([`SparseTensor`]).

use crate::{AuditError, Validate};
use adatm_tensor::SparseTensor;

impl Validate for SparseTensor {
    /// Structural invariants of COO storage: every mode's index array has
    /// one entry per nonzero, every index stays under its mode's size, and
    /// every value is finite. Ordering is *not* required here — COO
    /// tensors are legal unsorted; see [`validate_canonical`] for the
    /// sorted-and-deduplicated form the kernels consume.
    fn validate(&self) -> Result<(), AuditError> {
        let nnz = self.nnz();
        if self.vals().len() != nnz {
            return Err(AuditError::LengthMismatch {
                what: "coo values",
                expected: nnz,
                got: self.vals().len(),
            });
        }
        for d in 0..self.ndim() {
            let col = self.mode_idx(d);
            if col.len() != nnz {
                return Err(AuditError::LengthMismatch {
                    what: "coo index array",
                    expected: nnz,
                    got: col.len(),
                });
            }
            let bound = self.dims()[d];
            for (pos, &i) in col.iter().enumerate() {
                if (i as usize) >= bound {
                    return Err(AuditError::IndexOutOfBounds {
                        what: "coo index",
                        mode: d,
                        pos,
                        index: i as usize,
                        bound,
                    });
                }
            }
        }
        for (pos, v) in self.vals().iter().enumerate() {
            if !v.is_finite() {
                return Err(AuditError::NonFinite { what: "coo values", pos });
            }
        }
        Ok(())
    }
}

/// Validates the *canonical* COO form the kernels consume: structurally
/// valid ([`SparseTensor::validate`]) **and** coordinates strictly
/// increasing in lexicographic mode order `0..ndim` — i.e. sorted with no
/// duplicate coordinates (what [`SparseTensor::dedup_sum`] produces).
///
/// Equal adjacent coordinates yield [`AuditError::DuplicateIndex`];
/// out-of-order ones yield [`AuditError::Unsorted`], both at the second
/// entry's position.
pub fn validate_canonical(t: &SparseTensor) -> Result<(), AuditError> {
    t.validate()?;
    for pos in 1..t.nnz() {
        let mut ord = std::cmp::Ordering::Equal;
        for d in 0..t.ndim() {
            let col = t.mode_idx(d);
            ord = col[pos - 1].cmp(&col[pos]);
            if ord != std::cmp::Ordering::Equal {
                break;
            }
        }
        match ord {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Equal => {
                return Err(AuditError::DuplicateIndex { what: "coo coordinates", pos });
            }
            std::cmp::Ordering::Greater => {
                return Err(AuditError::Unsorted { what: "coo coordinates", pos });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SparseTensor {
        let mut t = SparseTensor::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 1, 2], 1.0),
                (vec![1, 2, 3], 2.0),
                (vec![2, 3, 4], 3.0),
                (vec![0, 0, 0], 4.0),
            ],
        );
        t.dedup_sum();
        t
    }

    #[test]
    fn canonical_tensor_validates() {
        let t = toy();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(validate_canonical(&t), Ok(()));
    }

    #[test]
    fn empty_tensor_validates() {
        let t = SparseTensor::empty(vec![2, 2, 2]);
        assert_eq!(validate_canonical(&t), Ok(()));
    }

    #[test]
    fn nan_value_is_caught() {
        let mut t = toy();
        t.vals_mut()[2] = f64::NAN;
        assert_eq!(t.validate(), Err(AuditError::NonFinite { what: "coo values", pos: 2 }));
    }

    #[test]
    fn unsorted_coordinates_are_caught() {
        // from_entries preserves input order; this one is deliberately
        // reversed and never deduplicated.
        let t = SparseTensor::from_entries(vec![3, 3], &[(vec![2, 2], 1.0), (vec![0, 0], 2.0)]);
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(
            validate_canonical(&t),
            Err(AuditError::Unsorted { what: "coo coordinates", pos: 1 })
        );
    }

    #[test]
    fn duplicate_coordinates_are_caught() {
        let t = SparseTensor::from_entries(vec![3, 3], &[(vec![1, 1], 1.0), (vec![1, 1], 2.0)]);
        assert_eq!(
            validate_canonical(&t),
            Err(AuditError::DuplicateIndex { what: "coo coordinates", pos: 1 })
        );
    }

    #[test]
    fn infinity_is_caught_too() {
        let mut t = toy();
        *t.vals_mut().last_mut().expect("nonempty") = f64::INFINITY;
        let pos = t.nnz() - 1;
        assert_eq!(t.validate(), Err(AuditError::NonFinite { what: "coo values", pos }));
        // validate_canonical runs the structural checks first.
        assert_eq!(validate_canonical(&t), Err(AuditError::NonFinite { what: "coo values", pos }));
    }
}
