//! Validators for compressed-sparse-fiber forests ([`CsfTensor`]).

use crate::{check_permutation, AuditError, Validate};
use adatm_tensor::coo::Idx;
use adatm_tensor::csf::CsfTensor;

/// Validates CSF storage handed in as raw parts.
///
/// `fids[l]` are the node indices of level `l` (one level per mode, root
/// level first); `fptr[l]` is the CSR-style child-range array of level
/// `l` (present for levels `0..N-1`); `vals` aligns with the leaf level.
/// The checks, in order:
///
/// 1. `order` is a permutation of `0..dims.len()`;
/// 2. level counts match the tensor order;
/// 3. every `fptr[l]` is CSR-shaped: `fids[l].len() + 1` entries (a lone
///    `[0]` for an empty level), starts at `0`, ends at the next level's
///    node count, and is **strictly** increasing — no node without
///    children;
/// 4. every `fids[l][j]` stays under `dims[order[l]]`;
/// 5. sibling fibers are strictly increasing: the whole root level, and
///    each child range at deeper levels (ties are duplicates — CSF
///    construction must have merged them);
/// 6. the leaf level accounts for `vals` exactly, and every value is
///    finite.
///
/// Taking slices instead of a [`CsfTensor`] lets property tests corrupt
/// one part (shuffle a fiber, break a pointer) without having to
/// construct an invalid tensor through the validating builders.
pub fn validate_csf_parts(
    dims: &[usize],
    order: &[usize],
    fids: &[&[Idx]],
    fptr: &[&[usize]],
    vals: &[f64],
) -> Result<(), AuditError> {
    let n = dims.len();
    check_permutation("csf mode order", order.iter().copied(), n)?;
    if fids.len() != n {
        return Err(AuditError::LengthMismatch {
            what: "csf index levels",
            expected: n,
            got: fids.len(),
        });
    }
    if fptr.len() != n.saturating_sub(1) {
        return Err(AuditError::LengthMismatch {
            what: "csf pointer levels",
            expected: n.saturating_sub(1),
            got: fptr.len(),
        });
    }
    for (l, ptr) in fptr.iter().enumerate() {
        if ptr.len() != fids[l].len() + 1 {
            return Err(AuditError::BrokenPointers {
                what: "csf",
                level: l,
                pos: ptr.len(),
                detail: "fptr must have one entry per node plus a sentinel",
            });
        }
        if ptr.first() != Some(&0) {
            return Err(AuditError::BrokenPointers {
                what: "csf",
                level: l,
                pos: 0,
                detail: "child ranges must start at 0",
            });
        }
        if ptr.last() != Some(&fids[l + 1].len()) {
            return Err(AuditError::BrokenPointers {
                what: "csf",
                level: l,
                pos: ptr.len() - 1,
                detail: "child ranges must cover the next level exactly",
            });
        }
        for (pos, w) in ptr.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(AuditError::BrokenPointers {
                    what: "csf",
                    level: l,
                    pos: pos + 1,
                    detail: "empty child range",
                });
            }
        }
    }
    for (l, level) in fids.iter().enumerate() {
        let bound = dims[order[l]];
        for (pos, &i) in level.iter().enumerate() {
            if (i as usize) >= bound {
                return Err(AuditError::IndexOutOfBounds {
                    what: "csf fiber index",
                    mode: order[l],
                    pos,
                    index: i as usize,
                    bound,
                });
            }
        }
    }
    // Sibling ordering: the root level is one sibling range; deeper levels
    // are split by the parent's (already validated) child ranges.
    check_strictly_increasing("csf root fibers", fids[0], 1, fids[0].len())?;
    for l in 1..n {
        for w in fptr[l - 1].windows(2) {
            check_strictly_increasing("csf sibling fibers", fids[l], w[0] + 1, w[1])?;
        }
    }
    let leaves = fids[n - 1].len();
    if vals.len() != leaves {
        return Err(AuditError::CountMismatch {
            what: "csf leaf values",
            expected: leaves,
            got: vals.len(),
        });
    }
    for (pos, v) in vals.iter().enumerate() {
        if !v.is_finite() {
            return Err(AuditError::NonFinite { what: "csf values", pos });
        }
    }
    Ok(())
}

/// Checks `seq[from..to]` strictly increasing relative to each previous
/// element (ties are duplicates, drops are sort violations).
fn check_strictly_increasing(
    what: &'static str,
    seq: &[Idx],
    from: usize,
    to: usize,
) -> Result<(), AuditError> {
    for pos in from..to {
        match seq[pos - 1].cmp(&seq[pos]) {
            std::cmp::Ordering::Less => {}
            std::cmp::Ordering::Equal => {
                return Err(AuditError::DuplicateIndex { what, pos });
            }
            std::cmp::Ordering::Greater => return Err(AuditError::Unsorted { what, pos }),
        }
    }
    Ok(())
}

impl Validate for CsfTensor {
    /// Delegates to [`validate_csf_parts`] over the tensor's own levels.
    fn validate(&self) -> Result<(), AuditError> {
        let n = self.ndim();
        let fids: Vec<&[Idx]> = (0..n).map(|l| self.level_fids(l)).collect();
        let fptr: Vec<&[usize]> = (0..n.saturating_sub(1)).map(|l| self.level_fptr(l)).collect();
        validate_csf_parts(self.dims(), self.order(), &fids, &fptr, self.vals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::SparseTensor;

    fn toy() -> SparseTensor {
        SparseTensor::from_entries(
            vec![3, 4, 5],
            &[
                (vec![0, 1, 2], 1.0),
                (vec![0, 1, 4], 1.5),
                (vec![1, 2, 3], 2.0),
                (vec![2, 3, 4], 3.0),
                (vec![2, 0, 1], 4.0),
            ],
        )
    }

    /// Owned raw parts of a built CSF: `(dims, order, fids, fptr, vals)`.
    type Parts = (Vec<usize>, Vec<usize>, Vec<Vec<Idx>>, Vec<Vec<usize>>, Vec<f64>);

    /// Borrowed raw parts of a built CSF, for corruption.
    fn parts(c: &CsfTensor) -> Parts {
        let n = c.ndim();
        (
            c.dims().to_vec(),
            c.order().to_vec(),
            (0..n).map(|l| c.level_fids(l).to_vec()).collect(),
            (0..n - 1).map(|l| c.level_fptr(l).to_vec()).collect(),
            c.vals().to_vec(),
        )
    }

    fn run(
        dims: &[usize],
        order: &[usize],
        fids: &[Vec<Idx>],
        fptr: &[Vec<usize>],
        vals: &[f64],
    ) -> Result<(), AuditError> {
        let fids: Vec<&[Idx]> = fids.iter().map(Vec::as_slice).collect();
        let fptr: Vec<&[usize]> = fptr.iter().map(Vec::as_slice).collect();
        validate_csf_parts(dims, order, &fids, &fptr, vals)
    }

    #[test]
    fn built_csf_validates_for_every_mode() {
        let t = toy();
        for m in 0..t.ndim() {
            assert_eq!(CsfTensor::for_mode(&t, m).validate(), Ok(()), "mode {m}");
        }
    }

    #[test]
    fn empty_tensor_csf_validates() {
        let t = SparseTensor::empty(vec![3, 4, 5]);
        assert_eq!(CsfTensor::for_mode(&t, 0).validate(), Ok(()));
    }

    #[test]
    fn shuffled_sibling_fiber_is_unsorted() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, order, mut fids, fptr, vals) = parts(&c);
        // Swap two root-level fibers: order breaks, pointers stay intact.
        let last = fids[0].len() - 1;
        fids[0].swap(0, last);
        assert!(matches!(
            run(&dims, &order, &fids, &fptr, &vals),
            Err(AuditError::Unsorted { what: "csf root fibers", .. })
        ));
    }

    #[test]
    fn duplicated_sibling_fiber_is_caught() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, order, mut fids, fptr, vals) = parts(&c);
        fids[0][1] = fids[0][0];
        assert!(matches!(
            run(&dims, &order, &fids, &fptr, &vals),
            Err(AuditError::DuplicateIndex { what: "csf root fibers", .. })
        ));
    }

    #[test]
    fn broken_pointer_shapes_are_caught() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, order, fids, fptr, vals) = parts(&c);

        let mut bad = fptr.clone();
        bad[0][0] = 1; // must start at 0
        assert!(matches!(
            run(&dims, &order, &fids, &bad, &vals),
            Err(AuditError::BrokenPointers { level: 0, pos: 0, .. })
        ));

        let mut bad = fptr.clone();
        let last = bad[0].len() - 1;
        bad[0][last] += 1; // overruns the next level
        assert!(matches!(
            run(&dims, &order, &fids, &bad, &vals),
            Err(AuditError::BrokenPointers { level: 0, .. })
        ));

        let mut bad = fptr.clone();
        bad[0].pop(); // lost sentinel
        assert!(matches!(
            run(&dims, &order, &fids, &bad, &vals),
            Err(AuditError::BrokenPointers { level: 0, .. })
        ));

        let mut bad = fptr;
        bad[1][1] = bad[1][2]; // empty child range mid-level
        assert!(matches!(
            run(&dims, &order, &fids, &bad, &vals),
            Err(AuditError::BrokenPointers { level: 1, detail: "empty child range", .. })
        ));
    }

    #[test]
    fn out_of_bounds_fiber_index_is_caught() {
        let c = CsfTensor::for_mode(&toy(), 1);
        let (dims, order, mut fids, fptr, vals) = parts(&c);
        fids[0][0] = dims[order[0]] as Idx;
        assert!(matches!(
            run(&dims, &order, &fids, &fptr, &vals),
            Err(AuditError::IndexOutOfBounds { what: "csf fiber index", .. })
        ));
    }

    #[test]
    fn leaf_value_accounting_is_checked() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, order, fids, fptr, mut vals) = parts(&c);
        vals.pop();
        assert!(matches!(
            run(&dims, &order, &fids, &fptr, &vals),
            Err(AuditError::CountMismatch { what: "csf leaf values", .. })
        ));
    }

    #[test]
    fn non_finite_leaf_value_is_caught() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, order, fids, fptr, mut vals) = parts(&c);
        vals[3] = f64::NAN;
        assert_eq!(
            run(&dims, &order, &fids, &fptr, &vals),
            Err(AuditError::NonFinite { what: "csf values", pos: 3 })
        );
    }

    #[test]
    fn bad_mode_order_is_caught() {
        let c = CsfTensor::for_mode(&toy(), 0);
        let (dims, _, fids, fptr, vals) = parts(&c);
        assert!(matches!(
            run(&dims, &[0, 0, 2], &fids, &fptr, &vals),
            Err(AuditError::DuplicateIndex { what: "csf mode order", .. })
        ));
    }
}
