//! Validators for factor matrices.

use crate::{AuditError, Validate};
use adatm_linalg::Mat;

impl Validate for Mat {
    /// A matrix is valid when every entry is finite — NaN or infinity in
    /// a factor (or an MTTKRP output) silently poisons every later
    /// iteration through the gram products.
    fn validate(&self) -> Result<(), AuditError> {
        for (pos, v) in self.as_slice().iter().enumerate() {
            if !v.is_finite() {
                return Err(AuditError::NonFinite { what: "matrix entries", pos });
            }
        }
        Ok(())
    }
}

/// Validates a full CP factor set against the tensor it factors: one
/// matrix per mode, `dims[d] x rank` each, all entries finite.
pub fn validate_factors(factors: &[Mat], dims: &[usize], rank: usize) -> Result<(), AuditError> {
    if factors.len() != dims.len() {
        return Err(AuditError::LengthMismatch {
            what: "factor matrices",
            expected: dims.len(),
            got: factors.len(),
        });
    }
    for (d, f) in factors.iter().enumerate() {
        if f.nrows() != dims[d] {
            return Err(AuditError::CountMismatch {
                what: "factor rows",
                expected: dims[d],
                got: f.nrows(),
            });
        }
        if f.ncols() != rank {
            return Err(AuditError::CountMismatch {
                what: "factor columns",
                expected: rank,
                got: f.ncols(),
            });
        }
        f.validate()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_factors_validate() {
        let dims = [6, 4, 5];
        let factors: Vec<Mat> =
            dims.iter().enumerate().map(|(d, &n)| Mat::random(n, 3, d as u64)).collect();
        assert_eq!(validate_factors(&factors, &dims, 3), Ok(()));
    }

    #[test]
    fn nan_entry_is_located() {
        let mut m = Mat::zeros(3, 2);
        m.set(2, 1, f64::NEG_INFINITY);
        assert_eq!(m.validate(), Err(AuditError::NonFinite { what: "matrix entries", pos: 5 }));
    }

    #[test]
    fn shape_mismatches_are_caught() {
        let dims = [6, 4];
        let factors = vec![Mat::zeros(6, 3), Mat::zeros(5, 3)];
        assert!(matches!(
            validate_factors(&factors, &dims, 3),
            Err(AuditError::CountMismatch { what: "factor rows", .. })
        ));
        let factors = vec![Mat::zeros(6, 3)];
        assert!(matches!(
            validate_factors(&factors, &dims, 3),
            Err(AuditError::LengthMismatch { what: "factor matrices", .. })
        ));
        let factors = vec![Mat::zeros(6, 3), Mat::zeros(4, 2)];
        assert!(matches!(
            validate_factors(&factors, &dims, 3),
            Err(AuditError::CountMismatch { what: "factor columns", .. })
        ));
    }
}
