//! Trace-schema conformance: every `event!` / `span_guard!` call site
//! must match the registry declared in `adatm_trace::schema`.
//!
//! One schema, two enforcement points: this static lint rejects a
//! drifting call site at `cargo xtask analyze` time, and the runtime
//! `xtask trace-check` validator rejects a captured NDJSON file whose
//! lines disagree with the same tables — so the README's trace table
//! (generated from the registry) can never silently diverge from either.
//!
//! Checked per site: the event/span kind exists, every field name is
//! declared, no required field is missing, no reserved infrastructure
//! name (`ev`, `seq`, `span`, `elapsed_ns`) is used, and — where the
//! field expression's type is inferable from its tokens (an `as u64`
//! cast, a suffixed literal, a string literal, a bool) — the type
//! matches the declaration. Dynamic kinds (`event!(kind_var, ...)`) are
//! reported as warnings, not failures, since the registry cannot name
//! them; the workspace currently has none.

use crate::tree::{MacroSite, Tree};
use crate::{CrateModel, Finding, LintOutcome};
use adatm_trace::schema::{
    find_event, find_span, FieldSpec, FieldType, RESERVED_EVENT_FIELDS, RESERVED_SPAN_FIELDS,
};

/// Whether a macro site is one of ours (`event!`, `adatm_trace::event!`,
/// `$crate`-expanded spellings).
fn is_trace_macro(m: &MacroSite) -> Option<&'static str> {
    let name = match m.name() {
        "event" => "event",
        "span_guard" => "span_guard",
        _ => return None,
    };
    let qualified_ok = match m.path.len() {
        1 => true,
        n => matches!(m.path[n - 2].as_str(), "adatm_trace" | "trace" | "crate"),
    };
    qualified_ok.then_some(name)
}

/// Splits macro argument trees on top-level commas.
fn split_args(args: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (i, t) in args.iter().enumerate() {
        if t.is_punct(',') {
            out.push(&args[start..i]);
            start = i + 1;
        }
    }
    if start < args.len() {
        out.push(&args[start..]);
    }
    out
}

/// Maps a cast-target / suffix type name to a schema field type.
fn type_name_to_field(ty: &str) -> Option<FieldType> {
    match ty {
        "u8" | "u16" | "u32" | "u64" | "usize" => Some(FieldType::U64),
        "i8" | "i16" | "i32" | "i64" | "isize" => Some(FieldType::I64),
        "f32" | "f64" => Some(FieldType::F64),
        "bool" => Some(FieldType::Bool),
        _ => None,
    }
}

/// Infers the schema type of a field expression from its tokens, where
/// the tokens pin it down; `None` means "cannot tell, skip the check".
fn infer_type(expr: &[Tree]) -> Option<FieldType> {
    if expr.is_empty() {
        return None;
    }
    // A trailing cast wins: `x as u64`, `(a / b) as f64`.
    for (i, t) in expr.iter().enumerate().rev() {
        if t.ident() == Some("as") {
            return expr.get(i + 1).and_then(Tree::ident).and_then(type_name_to_field);
        }
    }
    match expr {
        // A lone literal or ident.
        [one] => {
            if one.str_lit().is_some() {
                return Some(FieldType::Str);
            }
            if let Tree::Leaf(t) = one {
                if let crate::lexer::TokKind::NumLit(text) = &t.kind {
                    return num_suffix_type(text);
                }
                if matches!(t.ident(), Some("true") | Some("false")) {
                    return Some(FieldType::Bool);
                }
            }
            None
        }
        // `-1i64` and friends.
        [neg, num] if neg.is_punct('-') => {
            if let Tree::Leaf(t) = num {
                if let crate::lexer::TokKind::NumLit(text) = &t.kind {
                    return num_suffix_type(text);
                }
            }
            None
        }
        _ => {
            // `format!(...)` and a trailing `.to_string()` / `.as_str()`
            // are strings; a trailing `.is_*()` is a bool.
            if expr[0].ident() == Some("format") && expr.get(1).is_some_and(|t| t.is_punct('!')) {
                return Some(FieldType::Str);
            }
            if let [.., name, Tree::Group { delim: '(', .. }] = expr {
                match name.ident() {
                    Some("to_string") | Some("as_str") => return Some(FieldType::Str),
                    Some(n) if n.starts_with("is_") => return Some(FieldType::Bool),
                    _ => {}
                }
            }
            None
        }
    }
}

/// The schema type implied by a numeric literal's suffix, if any.
fn num_suffix_type(text: &str) -> Option<FieldType> {
    for (suffix, ty) in [
        ("usize", FieldType::U64),
        ("isize", FieldType::I64),
        ("u64", FieldType::U64),
        ("u32", FieldType::U64),
        ("u16", FieldType::U64),
        ("u8", FieldType::U64),
        ("i64", FieldType::I64),
        ("i32", FieldType::I64),
        ("i16", FieldType::I64),
        ("i8", FieldType::I64),
        ("f64", FieldType::F64),
        ("f32", FieldType::F64),
    ] {
        if text.ends_with(suffix) {
            return Some(ty);
        }
    }
    None
}

/// Checks one macro site against a declared field list. `what` is
/// "event" or "span" for messages; `kind` the declared name.
#[allow(clippy::too_many_arguments)]
fn check_fields(
    site: &MacroSite,
    file: &str,
    what: &str,
    kind: &str,
    specs: &[FieldSpec],
    reserved: &[&str],
    chunks: &[&[Tree]],
    out: &mut LintOutcome,
) {
    let mut present: Vec<&str> = Vec::new();
    for chunk in chunks {
        // `name : expr` — the name ident, a single `:`, then the value.
        let Some(name) = chunk.first().and_then(Tree::ident) else {
            out.findings.push(Finding {
                lint: "schema",
                file: file.to_string(),
                line: site.line,
                message: format!("malformed field in `{what}!(\"{kind}\", ...)`"),
            });
            continue;
        };
        if reserved.contains(&name) {
            out.findings.push(Finding {
                lint: "schema",
                file: file.to_string(),
                line: site.line,
                message: format!(
                    "field `{name}` on {what} `{kind}` collides with a reserved \
                     infrastructure field ({})",
                    reserved.join(", ")
                ),
            });
            continue;
        }
        let Some(spec) = specs.iter().find(|s| s.name == name) else {
            out.findings.push(Finding {
                lint: "schema",
                file: file.to_string(),
                line: site.line,
                message: format!(
                    "{what} `{kind}` has no declared field `{name}` — add it to \
                     crates/trace/src/schema.rs or fix the call site"
                ),
            });
            continue;
        };
        present.push(spec.name);
        let expr = &chunk[2..]; // past `name` and `:`
        if let Some(ty) = infer_type(expr) {
            if ty != spec.ty {
                out.findings.push(Finding {
                    lint: "schema",
                    file: file.to_string(),
                    line: site.line,
                    message: format!(
                        "field `{name}` of {what} `{kind}` is declared {} but the call \
                         site passes {}",
                        spec.ty.name(),
                        ty.name()
                    ),
                });
            }
        }
    }
    for spec in specs {
        if spec.required && !present.contains(&spec.name) {
            out.findings.push(Finding {
                lint: "schema",
                file: file.to_string(),
                line: site.line,
                message: format!("{what} `{kind}` is missing its required field `{}`", spec.name),
            });
        }
    }
}

/// The trace-schema conformance lint.
pub fn schema_lint(model: &CrateModel) -> LintOutcome {
    let mut out = LintOutcome::default();
    for f in &model.fns {
        if f.item.is_test {
            continue;
        }
        for m in &f.facts.macros {
            let Some(what) = is_trace_macro(m) else { continue };
            let chunks = split_args(&m.args);
            let Some(kind_chunk) = chunks.first() else {
                out.findings.push(Finding {
                    lint: "schema",
                    file: f.file.clone(),
                    line: m.line,
                    message: format!("`{what}!` with no kind argument"),
                });
                continue;
            };
            let kind = match kind_chunk {
                [one] if one.str_lit().is_some() => one.str_lit().unwrap_or(""),
                _ => {
                    out.warnings.push(format!(
                        "[schema] {}:{}: dynamic {what} kind — not statically checkable",
                        f.file, m.line
                    ));
                    continue;
                }
            };
            let fields = &chunks[1..];
            match what {
                "event" => match find_event(kind) {
                    Some(schema) => {
                        check_fields(
                            m,
                            &f.file,
                            "event",
                            kind,
                            schema.fields,
                            RESERVED_EVENT_FIELDS,
                            fields,
                            &mut out,
                        );
                    }
                    None => out.findings.push(Finding {
                        lint: "schema",
                        file: f.file.clone(),
                        line: m.line,
                        message: format!(
                            "unknown event kind `{kind}` — declare it in \
                             crates/trace/src/schema.rs"
                        ),
                    }),
                },
                _ => match find_span(kind) {
                    Some(schema) => {
                        check_fields(
                            m,
                            &f.file,
                            "span",
                            kind,
                            schema.fields,
                            RESERVED_SPAN_FIELDS,
                            fields,
                            &mut out,
                        );
                    }
                    None => out.findings.push(Finding {
                        lint: "schema",
                        file: f.file.clone(),
                        line: m.line,
                        message: format!(
                            "unknown span name `{kind}` — declare it in \
                             crates/trace/src/schema.rs"
                        ),
                    }),
                },
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_model;
    use crate::config::CrateConfig;

    fn lint(src: &str) -> LintOutcome {
        let m = build_model("t", CrateConfig::default(), &[("x.rs".to_string(), src.to_string())]);
        schema_lint(&m)
    }

    const STAGE_OK: &str = r#"iter: 0u64, mode: 1u64, stage: "mttkrp", elapsed_ns: 5u64"#;

    #[test]
    fn known_event_with_declared_fields_passes() {
        let src = format!(r#"fn f() {{ adatm_trace::event!("stage", {STAGE_OK}); }}"#);
        let out = lint(&src);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unknown_kind_fails() {
        let src = r#"fn f() { adatm_trace::event!("not.a.kind", x: 1u64); }"#;
        let out = lint(src);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("unknown event kind"));
    }

    #[test]
    fn undeclared_field_fails() {
        let src = format!(r#"fn f() {{ adatm_trace::event!("stage", {STAGE_OK}, bogus: 1u64); }}"#);
        let out = lint(&src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("bogus"));
    }

    #[test]
    fn missing_required_field_fails() {
        let src = r#"fn f() { adatm_trace::event!("stage", iter: 0u64, elapsed_ns: 5u64); }"#;
        let out = lint(src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("required field `stage`"));
    }

    #[test]
    fn type_mismatch_from_cast_fails() {
        let src = r#"fn f(m: usize) {
            adatm_trace::event!("stage", iter: 0u64, mode: m as f64, stage: "x",
                elapsed_ns: 5u64);
        }"#;
        let out = lint(src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("declared u64"));
    }

    #[test]
    fn reserved_field_name_fails() {
        let src = format!(r#"fn f() {{ adatm_trace::event!("stage", {STAGE_OK}, seq: 1u64); }}"#);
        let out = lint(&src);
        assert_eq!(out.findings.len(), 1, "{:?}", out.findings);
        assert!(out.findings[0].message.contains("reserved"));
    }

    #[test]
    fn span_sites_are_checked_too() {
        let good = r#"fn f() { let _s = adatm_trace::span_guard!("cpals.iter", iter: 3u64); }"#;
        assert!(lint(good).findings.is_empty(), "{:?}", lint(good).findings);
        let bad = r#"fn f() { let _s = adatm_trace::span_guard!("no.such.span"); }"#;
        assert_eq!(lint(bad).findings.len(), 1);
    }

    #[test]
    fn dynamic_kind_warns_instead_of_failing() {
        let src = r#"fn f(k: &str) { adatm_trace::event!(k, stage: "x"); }"#;
        let out = lint(src);
        assert!(out.findings.is_empty());
        assert_eq!(out.warnings.len(), 1);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r##"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { adatm_trace::event!("made.up", x: 1u64); }
            }
        "##;
        assert!(lint(src).findings.is_empty());
    }
}
