//! Structural static analysis for the adatm workspace.
//!
//! `cargo xtask analyze` drives four passes over the workspace sources:
//!
//! 1. **Hot-path allocation lint** ([`hot`]): no allocation machinery
//!    (`Vec::new`, `collect`, `clone`, `format!`, ...) in functions
//!    tagged `#[adatm::hot]` or listed in a crate's `analyze.toml`,
//!    propagated transitively through same-crate callees.
//! 2. **Panic-freedom lint** ([`panics`]): no `unwrap`/`expect`/`panic!`
//!    in kernel crates, plus unchecked slice indexing in hot-path code
//!    ([`hot::index_lint`]) — both hard-deny, backed by explicit
//!    per-function allowances with burn-down accounting.
//! 3. **Trace-schema conformance** ([`schema_lint`]): every `event!` /
//!    `span_guard!` call site is checked against the declared registry
//!    in `adatm_trace::schema` — same registry the runtime
//!    `xtask trace-check` validator uses.
//! 4. **Schedule-disjointness prover** ([`prover`]): an exhaustive
//!    small-universe model check that `ModeSchedule` and
//!    `ScatterSchedule` only ever produce disjoint parallel writes.
//!
//! The build environment is offline, so there is no `syn`; passes 1–3
//! run on an in-tree lexer ([`lexer`]) and token-tree item extractor
//! ([`tree`]) — an AST-lite that gives reliable token boundaries and
//! delimiter structure (a `.unwrap()` in a comment or string can never
//! fire), not full expression grammar. The known parsing limits are
//! listed in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod discover;
pub mod hot;
pub mod lexer;
pub mod panics;
pub mod prover;
pub mod schema_lint;
pub mod tree;

use config::{Allowance, CrateConfig};
use std::collections::BTreeMap;
use tree::{body_facts, parse_file, BodyFacts, FnItem};

/// One lint finding (a hard failure for `cargo xtask analyze`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Which pass produced it (`alloc`, `panic`, `index`, `schema`,
    /// `parse`, `prover`).
    pub lint: &'static str,
    /// File, as named when the sources were loaded.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.lint, self.file, self.line, self.message)
    }
}

/// One analyzed function with its precomputed body facts.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// File the function lives in (as named when loaded).
    pub file: String,
    /// The parsed item.
    pub item: FnItem,
    /// Calls/macros/indexing extracted from the body (empty for
    /// body-less trait declarations).
    pub facts: BodyFacts,
    /// Whether the file carries the `// lint: hot-path` marker.
    pub hot_file: bool,
}

impl FnInfo {
    /// The allowance key for this function: `"file.rs::fn_name"`, with
    /// the file reduced to its base name so keys survive layout moves.
    pub fn allow_key(&self) -> String {
        let base = self.file.rsplit('/').next().unwrap_or(&self.file);
        format!("{base}::{}", self.item.name)
    }
}

/// A whole crate, parsed and ready for the lint passes.
#[derive(Clone, Debug)]
pub struct CrateModel {
    /// Crate name (`adatm-tensor`).
    pub name: String,
    /// Parsed `analyze.toml` (default when absent).
    pub config: CrateConfig,
    /// Every function in the crate.
    pub fns: Vec<FnInfo>,
    /// Parse/lex problems, reported as findings of the `parse` lint.
    pub parse_findings: Vec<Finding>,
}

/// Whether the file opts into the hot-path indexing lint (same
/// `// lint: hot-path` marker the old advisory scan used).
pub fn is_hot_path_tagged(src: &str) -> bool {
    src.lines().take(10).any(|l| l.contains("lint: hot-path"))
}

/// Parses `(file name, source)` pairs into a [`CrateModel`].
pub fn build_model(name: &str, config: CrateConfig, files: &[(String, String)]) -> CrateModel {
    let mut fns = Vec::new();
    let mut parse_findings = Vec::new();
    for (file, src) in files {
        let hot_file = is_hot_path_tagged(src);
        let items = parse_file(src);
        for e in &items.errors {
            parse_findings.push(Finding {
                lint: "parse",
                file: file.clone(),
                line: e.line,
                message: e.message.clone(),
            });
        }
        for item in items.fns {
            let facts = match &item.body {
                Some(body) => body_facts(body),
                None => BodyFacts::default(),
            };
            fns.push(FnInfo { file: file.clone(), item, facts, hot_file });
        }
    }
    CrateModel { name: name.to_string(), config, fns, parse_findings }
}

/// Result of one lint pass after allowances are applied.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Hard failures.
    pub findings: Vec<Finding>,
    /// Advisories (stale allowances, skipped dynamic sites).
    pub warnings: Vec<String>,
}

impl LintOutcome {
    /// Merges another outcome into this one.
    pub fn merge(&mut self, other: LintOutcome) {
        self.findings.extend(other.findings);
        self.warnings.extend(other.warnings);
    }
}

/// Applies a per-function allowance map to raw findings.
///
/// Findings are grouped by function key; a key with an allowance of `N`
/// sites suppresses up to `N` findings. More than `N` fails with an
/// aggregate finding (so a regression names the function, not `N`
/// spelling-identical lines); fewer than `N` emits a stale-allowance
/// warning so burn-down progress shrinks the allowlist.
pub fn apply_allowances(
    lint: &'static str,
    raw: Vec<(String, Finding)>,
    allow: &BTreeMap<String, Allowance>,
) -> LintOutcome {
    let mut by_key: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for (key, finding) in raw {
        by_key.entry(key).or_default().push(finding);
    }
    let mut out = LintOutcome::default();
    for (key, findings) in &by_key {
        match allow.get(key) {
            Some(a) if findings.len() <= a.sites => {
                if findings.len() < a.sites {
                    out.warnings.push(format!(
                        "[{lint}] stale allowance `{key}`: allows {} sites, found {} — \
                         shrink it",
                        a.sites,
                        findings.len()
                    ));
                }
            }
            Some(a) => {
                let f0 = &findings[0];
                out.findings.push(Finding {
                    lint,
                    file: f0.file.clone(),
                    line: f0.line,
                    message: format!(
                        "`{key}` has {} {lint} sites but its allowance covers {} \
                         (reason: {}) — fix the new sites or re-justify the allowance",
                        findings.len(),
                        a.sites,
                        a.reason
                    ),
                });
            }
            None => out.findings.extend(findings.iter().cloned()),
        }
    }
    // Allowances that match nothing at all are dead config.
    for key in allow.keys() {
        if !by_key.contains_key(key) {
            out.warnings
                .push(format!("[{lint}] unused allowance `{key}`: no findings — remove it"));
        }
    }
    out
}

/// Counts raw findings per allowance key (the `--bless` path).
pub fn count_by_key(raw: &[(String, Finding)]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for (key, _) in raw {
        *counts.entry(key.clone()).or_insert(0usize) += 1;
    }
    counts
}

/// Checks that a crate root source declares `#![forbid(unsafe_code)]`
/// (kept from the old scanner: the workspace-level deny must not be
/// overridable locally).
pub fn check_forbid_unsafe(file: &str, src: &str) -> Option<Finding> {
    let found = src.lines().any(|l| {
        let t = l.trim();
        t == "#![forbid(unsafe_code)]" || t.starts_with("#![forbid(unsafe_code)]")
    });
    if found {
        None
    } else {
        Some(Finding {
            lint: "unsafe",
            file: file.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// Runs every static pass over one crate model (everything except the
/// prover, which is workspace-global).
pub fn analyze_crate(model: &CrateModel) -> LintOutcome {
    let mut out = LintOutcome::default();
    out.findings.extend(model.parse_findings.iter().cloned());
    out.merge(hot::alloc_lint(model));
    out.merge(hot::index_lint(model));
    out.merge(panics::panic_lint(model));
    out.merge(schema_lint::schema_lint(model));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32) -> Finding {
        Finding { lint: "index", file: file.into(), line, message: "m".into() }
    }

    #[test]
    fn allowance_suppresses_exact_count() {
        let mut allow = BTreeMap::new();
        allow.insert("f.rs::g".to_string(), Allowance { sites: 2, reason: "ok".into() });
        let raw = vec![
            ("f.rs::g".to_string(), finding("f.rs", 1)),
            ("f.rs::g".to_string(), finding("f.rs", 2)),
        ];
        let out = apply_allowances("index", raw, &allow);
        assert!(out.findings.is_empty());
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn allowance_overflow_fails_and_names_the_fn() {
        let mut allow = BTreeMap::new();
        allow.insert("f.rs::g".to_string(), Allowance { sites: 1, reason: "ok".into() });
        let raw = vec![
            ("f.rs::g".to_string(), finding("f.rs", 1)),
            ("f.rs::g".to_string(), finding("f.rs", 2)),
        ];
        let out = apply_allowances("index", raw, &allow);
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("f.rs::g"));
    }

    #[test]
    fn stale_and_unused_allowances_warn() {
        let mut allow = BTreeMap::new();
        allow.insert("f.rs::g".to_string(), Allowance { sites: 3, reason: "ok".into() });
        allow.insert("f.rs::gone".to_string(), Allowance { sites: 1, reason: "ok".into() });
        let raw = vec![("f.rs::g".to_string(), finding("f.rs", 1))];
        let out = apply_allowances("index", raw, &allow);
        assert!(out.findings.is_empty());
        assert_eq!(out.warnings.len(), 2);
        assert!(out.warnings.iter().any(|w| w.contains("stale")));
        assert!(out.warnings.iter().any(|w| w.contains("unused")));
    }

    #[test]
    fn unallowed_findings_pass_through() {
        let raw = vec![("f.rs::g".to_string(), finding("f.rs", 9))];
        let out = apply_allowances("index", raw, &BTreeMap::new());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].line, 9);
    }

    #[test]
    fn forbid_unsafe_check_matches_old_scanner() {
        assert!(check_forbid_unsafe("lib.rs", "pub fn f() {}").is_some());
        assert!(check_forbid_unsafe("lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}").is_none());
    }
}
