//! Workspace discovery: which crates exist and which files they own.
//!
//! The old `xtask lint` walked a hard-coded directory list, which
//! silently skipped crates added after the list was written. This asks
//! `cargo metadata --no-deps` for the workspace members instead (the
//! same source of truth cargo builds from) and falls back to a manifest
//! walk when cargo is unavailable (e.g. a stripped CI container running
//! the analyzer binary directly).
//!
//! No JSON dependency exists offline, so the metadata is scanned for its
//! `"manifest_path"` values; crate names come from each `Cargo.toml`
//! rather than the JSON (dependency objects also carry `"name"` keys,
//! making in-place extraction ambiguous).

use std::path::{Path, PathBuf};
use std::process::Command;

/// One workspace member.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkspaceCrate {
    /// Package name from its manifest.
    pub name: String,
    /// The crate's `Cargo.toml`.
    pub manifest: PathBuf,
    /// The crate's `src/` directory (may not exist for manifest-only
    /// packages; callers skip those).
    pub src_dir: PathBuf,
}

impl WorkspaceCrate {
    /// The crate's `analyze.toml`, next to its manifest (may not exist).
    pub fn config_path(&self) -> PathBuf {
        self.manifest.with_file_name("analyze.toml")
    }
}

/// Lists workspace members via `cargo metadata`, falling back to a
/// manifest walk of the member globs in the root `Cargo.toml`.
pub fn workspace_crates(root: &Path) -> std::io::Result<Vec<WorkspaceCrate>> {
    match metadata_manifests(root) {
        Ok(manifests) if !manifests.is_empty() => collect(manifests),
        _ => collect(walk_manifests(root)),
    }
}

/// Runs `cargo metadata --no-deps` and extracts every manifest path.
fn metadata_manifests(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let out = Command::new("cargo")
        .args(["metadata", "--no-deps", "--format-version", "1"])
        .current_dir(root)
        .output()?;
    if !out.status.success() {
        return Err(std::io::Error::other(format!(
            "cargo metadata failed: {}",
            String::from_utf8_lossy(&out.stderr)
        )));
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut manifests = Vec::new();
    let needle = "\"manifest_path\":\"";
    let mut rest: &str = &text;
    while let Some(at) = rest.find(needle) {
        rest = &rest[at + needle.len()..];
        if let Some(end) = rest.find('"') {
            // JSON string escapes do not occur in this workspace's paths;
            // a path that somehow contains them is skipped by the
            // manifest-exists check below.
            let path = PathBuf::from(&rest[..end]);
            if path.is_file() && !manifests.contains(&path) {
                manifests.push(path);
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
    Ok(manifests)
}

/// Fallback: the root manifest plus every `Cargo.toml` one or two levels
/// below it (covers `crates/*`, `shims/*`, `xtask`).
fn walk_manifests(root: &Path) -> Vec<PathBuf> {
    let mut manifests = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        manifests.push(root_manifest);
    }
    let mut dirs = vec![root.to_path_buf()];
    for depth in 0..2 {
        let mut next = Vec::new();
        for dir in &dirs {
            let Ok(entries) = std::fs::read_dir(dir) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if !path.is_dir() {
                    continue;
                }
                let name = entry.file_name();
                if name == "target" || name == ".git" {
                    continue;
                }
                if depth > 0 || matches!(name.to_str(), Some("crates" | "shims" | "xtask")) {
                    let m = path.join("Cargo.toml");
                    if m.is_file() && !manifests.contains(&m) {
                        manifests.push(m);
                    }
                    next.push(path);
                }
            }
        }
        dirs = next;
    }
    manifests
}

/// Builds [`WorkspaceCrate`] entries from manifest paths.
fn collect(manifests: Vec<PathBuf>) -> std::io::Result<Vec<WorkspaceCrate>> {
    let mut out = Vec::new();
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest)?;
        let Some(name) = package_name(&text) else {
            continue; // virtual manifest (workspace-only)
        };
        let dir = manifest.parent().unwrap_or(Path::new("."));
        out.push(WorkspaceCrate { name, src_dir: dir.join("src"), manifest });
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

/// Extracts `name = "..."` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']') == "package";
            continue;
        }
        if in_package {
            if let Some(value) = line.strip_prefix("name") {
                let value = value.trim_start();
                if let Some(value) = value.strip_prefix('=') {
                    let v = value.trim();
                    return v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .map(|v| v.to_string());
                }
            }
        }
    }
    None
}

/// Recursively lists `.rs` files under a directory (sorted for
/// deterministic reports), skipping `target/`.
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                if entry.file_name() != "target" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_extraction() {
        let m = "[workspace]\nmembers = [\"a\"]\n\n[package]\nname = \"adatm-analyze\"\n";
        assert_eq!(package_name(m), Some("adatm-analyze".to_string()));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn discovers_this_workspace() {
        // CARGO_MANIFEST_DIR = crates/analyze; the workspace root is two
        // levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let crates = workspace_crates(&root).expect("discovery");
        let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"adatm-analyze"), "{names:?}");
        assert!(names.contains(&"adatm-tensor"), "{names:?}");
        assert!(names.contains(&"adatm"), "{names:?}");
        let me = crates.iter().find(|c| c.name == "adatm-analyze").expect("self");
        let sources = rust_sources(&me.src_dir);
        assert!(sources.iter().any(|p| p.ends_with("discover.rs")));
    }
}
