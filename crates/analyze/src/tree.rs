//! Token trees and AST-lite item extraction.
//!
//! Builds on [`crate::lexer`]: groups the flat token stream by
//! delimiter, then walks the trees extracting the structure the lints
//! need — functions with their attributes, module/`impl` context, and
//! `#[cfg(test)]` scoping, plus per-body facts (calls, method calls,
//! macro invocations with argument trees, unchecked-indexing sites).
//!
//! Known limits, acceptable for this workspace's style and documented in
//! DESIGN.md: const-generic brace expressions in return types would be
//! mistaken for a function body, and nested named `fn` items inside a
//! body are attributed to the enclosing function.

use crate::lexer::{lex, Tok, TokKind};

/// One node of a token tree.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A single token.
    Leaf(Tok),
    /// A delimited group: `(...)`, `[...]`, or `{...}`.
    Group {
        /// The opening delimiter: `(`, `[`, or `{`.
        delim: char,
        /// Children.
        trees: Vec<Tree>,
        /// 1-based line of the opening delimiter.
        line: u32,
    },
}

impl Tree {
    /// The leaf identifier, if any.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.ident(),
            Tree::Group { .. } => None,
        }
    }

    /// Whether this is the given punctuation leaf.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tree::Leaf(t) if t.is_punct(c))
    }

    /// The leaf string literal's inner text, if any.
    pub fn str_lit(&self) -> Option<&str> {
        match self {
            Tree::Leaf(t) => t.str_lit(),
            Tree::Group { .. } => None,
        }
    }

    /// The source line this node starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tree::Leaf(t) => t.line,
            Tree::Group { line, .. } => *line,
        }
    }
}

/// A problem found while parsing (unbalanced delimiters, lex errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// Description.
    pub message: String,
}

fn close_of(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Groups a token stream into trees.
pub fn build_trees(toks: &[Tok]) -> (Vec<Tree>, Vec<ParseError>) {
    let mut errors = Vec::new();
    let mut stack: Vec<(char, u32, Vec<Tree>)> = Vec::new();
    let mut top = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Punct(c @ ('(' | '[' | '{')) => {
                stack.push((c, t.line, Vec::new()));
            }
            TokKind::Punct(c @ (')' | ']' | '}')) => match stack.pop() {
                Some((open, line, trees)) if close_of(open) == c => {
                    let group = Tree::Group { delim: open, trees, line };
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(group),
                        None => top.push(group),
                    }
                }
                Some((open, line, trees)) => {
                    errors.push(ParseError {
                        line: t.line,
                        message: format!("`{c}` does not close `{open}` from line {line}"),
                    });
                    let group = Tree::Group { delim: open, trees, line };
                    match stack.last_mut() {
                        Some((_, _, parent)) => parent.push(group),
                        None => top.push(group),
                    }
                }
                None => errors
                    .push(ParseError { line: t.line, message: format!("unmatched closing `{c}`") }),
            },
            _ => {
                let leaf = Tree::Leaf(t.clone());
                match stack.last_mut() {
                    Some((_, _, parent)) => parent.push(leaf),
                    None => top.push(leaf),
                }
            }
        }
    }
    while let Some((open, line, trees)) = stack.pop() {
        errors.push(ParseError { line, message: format!("unclosed `{open}`") });
        let group = Tree::Group { delim: open, trees, line };
        match stack.last_mut() {
            Some((_, _, parent)) => parent.push(group),
            None => top.push(group),
        }
    }
    (top, errors)
}

/// One attribute (`#[...]`), flattened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    /// The attribute path, `::`-joined (`adatm::hot`, `cfg`, `test`).
    pub path: String,
    /// Every identifier inside the attribute group, space-joined
    /// (`cfg test`, `cfg feature audit`). Coarse but sufficient for
    /// `cfg(test)` detection.
    pub idents: String,
}

impl Attr {
    fn from_group(trees: &[Tree]) -> Attr {
        let mut path = String::new();
        for t in trees {
            match t {
                Tree::Leaf(tok) => match &tok.kind {
                    TokKind::Ident(s) => {
                        if !path.is_empty() {
                            path.push_str("::");
                        }
                        path.push_str(s);
                    }
                    TokKind::Punct(':') => continue,
                    _ => break,
                },
                Tree::Group { .. } => break,
            }
        }
        let mut idents = String::new();
        collect_idents(trees, &mut idents);
        Attr { path, idents }
    }

    /// Whether this is `#[cfg(test)]` (or any cfg mentioning `test`,
    /// e.g. `cfg(any(test, feature = "x"))` — conservative toward
    /// treating code as test code).
    pub fn is_cfg_test(&self) -> bool {
        self.path == "cfg" && self.idents.split_whitespace().any(|w| w == "test")
    }
}

fn collect_idents(trees: &[Tree], out: &mut String) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if let TokKind::Ident(s) = &tok.kind {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(s);
                }
            }
            Tree::Group { trees, .. } => collect_idents(trees, out),
        }
    }
}

/// A function item found in a file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Qualified name: `module::fn`, or `Type::method` inside an
    /// `impl`/`trait` block (module path omitted — names are matched by
    /// final segment).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Outer attributes.
    pub attrs: Vec<Attr>,
    /// Whether this item is test-only (`#[test]`, `#[cfg(test)]` on it
    /// or any enclosing module).
    pub is_test: bool,
    /// Body token trees (`None` for trait-method declarations).
    pub body: Option<Vec<Tree>>,
}

impl FnItem {
    /// The unqualified name (final path segment).
    pub fn short_name(&self) -> &str {
        self.name.rsplit("::").next().unwrap_or(&self.name)
    }

    /// Whether the function is tagged `#[adatm::hot]` (accepting the
    /// unrenamed `adatm_macros::hot` spelling too).
    pub fn is_hot_tagged(&self) -> bool {
        self.attrs.iter().any(|a| a.path == "adatm::hot" || a.path == "adatm_macros::hot")
    }
}

/// Everything extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// All functions, in source order.
    pub fns: Vec<FnItem>,
    /// Parse/lex problems.
    pub errors: Vec<ParseError>,
}

/// Lexes and parses one file into its function items.
pub fn parse_file(src: &str) -> FileItems {
    let (toks, lex_errors) = lex(src);
    let (trees, mut errors) = build_trees(&toks);
    errors.extend(lex_errors.into_iter().map(|e| ParseError { line: e.line, message: e.message }));
    let mut items = FileItems { fns: Vec::new(), errors };
    walk_items(&trees, &mut Ctx { scope: None, in_test: false }, &mut items);
    items
}

struct Ctx {
    /// Enclosing `impl`/`trait` type name (methods become `Type::name`).
    scope: Option<String>,
    in_test: bool,
}

/// Skips a matched `<...>` generics run starting at `i` (which points at
/// the `<`). Returns the index just past the closing `>`. `->`'s `>` is
/// ignored via byte-adjacency with the preceding `-`.
fn skip_generics(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev_minus_pos: Option<u32> = None;
    while i < trees.len() {
        if let Tree::Leaf(t) = &trees[i] {
            match t.kind {
                TokKind::Punct('<') => depth += 1,
                TokKind::Punct('>') => {
                    let arrow = prev_minus_pos == Some(t.pos.wrapping_sub(1));
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                }
                _ => {}
            }
            prev_minus_pos = if t.is_punct('-') { Some(t.pos) } else { None };
        } else {
            prev_minus_pos = None;
        }
        i += 1;
    }
    i
}

fn walk_items(trees: &[Tree], ctx: &mut Ctx, out: &mut FileItems) {
    let mut i = 0usize;
    while i < trees.len() {
        // Collect outer attributes; skip inner (`#![...]`) ones.
        let mut attrs: Vec<Attr> = Vec::new();
        while trees[i].is_punct('#') {
            let inner = trees.get(i + 1).is_some_and(|t| t.is_punct('!'));
            let group_at = if inner { i + 2 } else { i + 1 };
            match trees.get(group_at) {
                Some(Tree::Group { delim: '[', trees: g, .. }) => {
                    if !inner {
                        attrs.push(Attr::from_group(g));
                    }
                    i = group_at + 1;
                }
                _ => {
                    i += 1;
                    break;
                }
            }
            if i >= trees.len() {
                return;
            }
        }
        if i >= trees.len() {
            return;
        }
        let attr_test = attrs.iter().any(|a| a.is_cfg_test() || a.path == "test");
        let Some(kw) = trees[i].ident() else {
            i += 1;
            continue;
        };
        match kw {
            "pub" => {
                // Visibility: skip `pub` and an optional `(crate)` group,
                // then re-enter the item match with the attrs intact.
                i += 1;
                if matches!(trees.get(i), Some(Tree::Group { delim: '(', .. })) {
                    i += 1;
                }
                i = item_after_vis(trees, i, attrs, attr_test, ctx, out);
            }
            _ => {
                i = item_after_vis(trees, i, attrs, attr_test, ctx, out);
            }
        }
    }
}

/// Parses one item starting at `i` (visibility already consumed).
/// Returns the index just past the item.
fn item_after_vis(
    trees: &[Tree],
    mut i: usize,
    attrs: Vec<Attr>,
    attr_test: bool,
    ctx: &mut Ctx,
    out: &mut FileItems,
) -> usize {
    // Function qualifiers.
    while let Some(q) = trees.get(i).and_then(Tree::ident) {
        match q {
            "default" | "async" | "unsafe" => i += 1,
            "const" if trees.get(i + 1).and_then(Tree::ident) == Some("fn") => i += 1,
            "extern" if trees.get(i + 1).and_then(Tree::ident).is_none() => {
                // `extern "C" fn` / `extern "C" { ... }`.
                i += 1;
                if matches!(trees.get(i), Some(Tree::Leaf(t)) if matches!(t.kind, TokKind::StrLit(_)))
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let Some(kw) = trees.get(i).and_then(Tree::ident) else {
        return i + 1;
    };
    match kw {
        "fn" => {
            let name_i = i + 1;
            let short = trees.get(name_i).and_then(Tree::ident).unwrap_or("<anon>").to_string();
            let name = match &ctx.scope {
                Some(t) => format!("{t}::{short}"),
                None => short,
            };
            let line = trees[i].line();
            let mut j = name_i + 1;
            if trees.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_generics(trees, j);
            }
            // Scan to the body brace group or a terminating `;`.
            let mut body = None;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Group { delim: '{', trees: b, .. } => {
                        body = Some(b.clone());
                        j += 1;
                        break;
                    }
                    t if t.is_punct(';') => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.fns.push(FnItem { name, line, attrs, is_test: ctx.in_test || attr_test, body });
            j
        }
        "mod" => {
            let name = trees.get(i + 1).and_then(Tree::ident).unwrap_or("").to_string();
            match trees.get(i + 2) {
                Some(Tree::Group { delim: '{', trees: b, .. }) => {
                    let saved_test = ctx.in_test;
                    let saved_scope = ctx.scope.take();
                    ctx.in_test = saved_test || attr_test || name == "tests";
                    walk_items(b, ctx, out);
                    ctx.in_test = saved_test;
                    ctx.scope = saved_scope;
                    i + 3
                }
                _ => i + 3, // `mod name;`
            }
        }
        "impl" | "trait" => {
            let mut j = i + 1;
            if trees.get(j).is_some_and(|t| t.is_punct('<')) {
                j = skip_generics(trees, j);
            }
            // Scope name: the first ident after `for` if present in the
            // header, else the first ident after the generics.
            let mut scope_name = None;
            let mut after_for = false;
            let mut body = None;
            let mut end = trees.len();
            for (k, t) in trees.iter().enumerate().skip(j) {
                match t {
                    Tree::Group { delim: '{', trees: b, .. } => {
                        body = Some(b);
                        end = k + 1;
                        break;
                    }
                    t if t.is_punct(';') => {
                        end = k + 1;
                        break;
                    }
                    t => {
                        if let Some(id) = t.ident() {
                            if id == "for" {
                                after_for = true;
                                scope_name = None;
                            } else if scope_name.is_none() || after_for {
                                scope_name = Some(id.to_string());
                                after_for = false;
                            }
                        }
                    }
                }
            }
            if let Some(b) = body {
                let saved_test = ctx.in_test;
                let saved_scope = ctx.scope.take();
                ctx.in_test = saved_test || attr_test;
                ctx.scope = scope_name;
                walk_items(b, ctx, out);
                ctx.in_test = saved_test;
                ctx.scope = saved_scope;
            }
            end
        }
        "macro_rules" => {
            // `macro_rules ! name { ... }` — skip entirely; a macro body
            // is not code the lints should read.
            let mut j = i + 1;
            while j < trees.len() {
                if matches!(&trees[j], Tree::Group { delim: '{', .. }) {
                    return j + 1;
                }
                j += 1;
            }
            j
        }
        "struct" | "enum" | "union" => {
            // Skip to `;` or the first brace group.
            let mut j = i + 1;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Group { delim: '{', .. } => return j + 1,
                    t if t.is_punct(';') => return j + 1,
                    _ => j += 1,
                }
            }
            j
        }
        "use" | "static" | "type" | "const" => {
            let mut j = i + 1;
            while j < trees.len() {
                if trees[j].is_punct(';') {
                    return j + 1;
                }
                j += 1;
            }
            j
        }
        "extern" => {
            // `extern crate x;` or `extern { ... }`.
            let mut j = i + 1;
            while j < trees.len() {
                match &trees[j] {
                    Tree::Group { delim: '{', .. } => return j + 1,
                    t if t.is_punct(';') => return j + 1,
                    _ => j += 1,
                }
            }
            j
        }
        _ => i + 1,
    }
}

/// A call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments (`["Vec", "new"]`; method calls have one segment).
    pub path: Vec<String>,
    /// Whether this was a `.method(...)` call.
    pub method: bool,
    /// 1-based line.
    pub line: u32,
}

impl CallSite {
    /// The final path segment.
    pub fn last(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }

    /// The last two segments joined (`Vec::new`), or just the last.
    pub fn tail2(&self) -> String {
        match self.path.len() {
            0 | 1 => self.last().to_string(),
            n => format!("{}::{}", self.path[n - 2], self.path[n - 1]),
        }
    }
}

/// A macro invocation inside a function body.
#[derive(Clone, Debug)]
pub struct MacroSite {
    /// Path segments (`["adatm_trace", "event"]`).
    pub path: Vec<String>,
    /// 1-based line.
    pub line: u32,
    /// The argument group's children.
    pub args: Vec<Tree>,
}

impl MacroSite {
    /// The final path segment (the macro's own name).
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// Facts extracted from one function body.
#[derive(Clone, Debug, Default)]
pub struct BodyFacts {
    /// Free/path and method calls.
    pub calls: Vec<CallSite>,
    /// Macro invocations.
    pub macros: Vec<MacroSite>,
    /// Lines of direct slice/array indexing expressions (`expr[...]`,
    /// excluding `&[...]` literals, attributes, and type positions).
    pub index_lines: Vec<u32>,
}

/// Walks a function body collecting [`BodyFacts`].
pub fn body_facts(body: &[Tree]) -> BodyFacts {
    let mut facts = BodyFacts::default();
    walk_body(body, &mut facts);
    facts
}

fn walk_body(trees: &[Tree], facts: &mut BodyFacts) {
    let mut i = 0usize;
    while i < trees.len() {
        // Nested `fn` items: skip the keyword and name so the parameter
        // group is not mistaken for a call of the function's own name.
        if trees[i].ident() == Some("fn") {
            i += 2;
            continue;
        }
        // Path: ident (:: ident)* with optional turbofish.
        if let Some(first) = trees[i].ident() {
            let mut path = vec![first.to_string()];
            let mut j = i + 1;
            loop {
                // `:: ident` continuation.
                if trees.get(j).is_some_and(|t| t.is_punct(':'))
                    && trees.get(j + 1).is_some_and(|t| t.is_punct(':'))
                {
                    if let Some(seg) = trees.get(j + 2).and_then(Tree::ident) {
                        path.push(seg.to_string());
                        j += 3;
                        continue;
                    }
                    // `::<...>` turbofish.
                    if trees.get(j + 2).is_some_and(|t| t.is_punct('<')) {
                        j = skip_generics(trees, j + 2);
                        continue;
                    }
                }
                break;
            }
            match trees.get(j) {
                Some(Tree::Group { delim: '(', trees: args, line }) => {
                    let method = i > 0 && trees[i - 1].is_punct('.');
                    facts.calls.push(CallSite {
                        path: if method {
                            vec![path.last().cloned().unwrap_or_default()]
                        } else {
                            path
                        },
                        method,
                        line: *line,
                    });
                    walk_body(args, facts);
                    i = j + 1;
                    continue;
                }
                Some(t) if t.is_punct('!') => {
                    if let Some(Tree::Group { trees: args, line, .. }) = trees.get(j + 1) {
                        facts.macros.push(MacroSite { path, line: *line, args: args.clone() });
                        walk_body(args, facts);
                        i = j + 2;
                        continue;
                    }
                    i = j + 1;
                    continue;
                }
                _ => {
                    i = j.max(i + 1);
                    continue;
                }
            }
        }
        match &trees[i] {
            Tree::Group { delim: '[', trees: inner, line } => {
                // Indexing: previous sibling is an ident or a closed
                // `(...)`/`[...]` group (`a[i]`, `f(x)[i]`, `a[i][j]`).
                let indexing = i > 0
                    && match &trees[i - 1] {
                        Tree::Leaf(t) => matches!(t.kind, TokKind::Ident(_)),
                        Tree::Group { delim, .. } => matches!(delim, '(' | '['),
                    };
                if indexing {
                    facts.index_lines.push(*line);
                }
                walk_body(inner, facts);
            }
            Tree::Group { trees: inner, .. } => walk_body(inner, facts),
            Tree::Leaf(_) => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_with_attrs_and_test_scope() {
        let src = "
            #[adatm::hot]
            pub fn hot_one(x: &[f64]) -> f64 { x[0] }

            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { helper(); }
            }

            fn helper() {}
        ";
        let items = parse_file(src);
        assert!(items.errors.is_empty(), "{:?}", items.errors);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["hot_one", "t", "helper"]);
        assert!(items.fns[0].is_hot_tagged());
        assert!(items.fns[1].is_test);
        assert!(!items.fns[2].is_test);
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let src = "
            impl<T: Clone> Foo<T> {
                pub fn build(&self) -> usize { self.n }
            }
            impl Backend for Bar {
                fn run(&mut self) {}
            }
        ";
        let items = parse_file(src);
        let names: Vec<_> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["Foo::build", "Bar::run"]);
    }

    #[test]
    fn generic_fn_with_arrow_in_bounds_finds_its_body() {
        let src = "fn f<F: Fn(usize) -> usize>(g: F) -> usize { g(1) }";
        let items = parse_file(src);
        assert_eq!(items.fns.len(), 1);
        assert!(items.fns[0].body.is_some());
        let facts = body_facts(items.fns[0].body.as_ref().unwrap());
        assert_eq!(facts.calls.len(), 1);
        assert_eq!(facts.calls[0].last(), "g");
    }

    #[test]
    fn body_facts_extracts_calls_macros_and_indexing() {
        let src = r#"
            fn f(a: &[u32], i: usize) -> u32 {
                let v: Vec<u32> = a.iter().copied().collect();
                let s: &[u32] = &[1, 2];
                let x = Vec::<u8>::new();
                adatm_trace::event!("stage", iter: i as u64);
                format!("{}", a[i] + s[0] + v[1])
            }
        "#;
        let items = parse_file(src);
        assert!(items.errors.is_empty(), "{:?}", items.errors);
        let facts = body_facts(items.fns[0].body.as_ref().unwrap());
        let tails: Vec<_> = facts.calls.iter().map(CallSite::tail2).collect();
        assert!(tails.contains(&"collect".to_string()));
        assert!(tails.contains(&"Vec::new".to_string()));
        let macros: Vec<_> = facts.macros.iter().map(MacroSite::name).collect();
        assert!(macros.contains(&"event"));
        assert!(macros.contains(&"format"));
        // `a[i]`, `s[0]`, `v[1]` count; the `&[1, 2]` literal does not.
        assert_eq!(facts.index_lines.len(), 3);
    }

    #[test]
    fn macro_rules_definitions_are_skipped() {
        let src = "
            macro_rules! noisy {
                ($x:expr) => { $x.unwrap()[0] };
            }
            fn clean() {}
        ";
        let items = parse_file(src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].name, "clean");
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "trait T { fn decl(&self); fn given(&self) { self.decl() } }";
        let items = parse_file(src);
        assert_eq!(items.fns.len(), 2);
        assert!(items.fns[0].body.is_none());
        assert!(items.fns[1].body.is_some());
    }
}
