//! Per-crate analyzer configuration: `analyze.toml` next to a crate's
//! `Cargo.toml`.
//!
//! ```toml
//! # Kernel crates get the panic-freedom lint.
//! kernel = true
//!
//! [hot]
//! # Extra hot-path roots beyond `#[adatm::hot]`-tagged functions,
//! # named by qualified (`Type::method`) or bare function name.
//! fns = ["mttkrp_serial"]
//!
//! # Allowances: `"file.rs::fn" = { sites = N, reason = "..." }`.
//! # Up to N findings of that class in that function are suppressed;
//! # fewer than N triggers a stale-allowance warning so burn-down
//! # progress shrinks the file instead of rotting in it.
//! [allow.index]
//! "mttkrp.rs::mttkrp_coo" = { sites = 4, reason = "rows validated on construction" }
//!
//! [allow.alloc]
//! [allow.panic]
//! ```
//!
//! The parser covers exactly this subset of TOML (comments, booleans,
//! string arrays, inline tables with `sites`/`reason`), hand-rolled
//! because the build environment is offline.

use std::collections::BTreeMap;

/// One allowance entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allowance {
    /// Maximum findings of the class suppressed at this key.
    pub sites: usize,
    /// Why the findings are acceptable.
    pub reason: String,
}

/// Parsed per-crate configuration.
#[derive(Clone, Debug, Default)]
pub struct CrateConfig {
    /// Whether the crate is a kernel crate (panic-freedom lint applies).
    pub kernel: bool,
    /// Extra hot-path root functions (qualified or bare names).
    pub hot_fns: Vec<String>,
    /// Indexing allowances, keyed `"file.rs::fn"`.
    pub allow_index: BTreeMap<String, Allowance>,
    /// Hot-path allocation allowances.
    pub allow_alloc: BTreeMap<String, Allowance>,
    /// Panic-freedom allowances.
    pub allow_panic: BTreeMap<String, Allowance>,
}

/// A configuration parse problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `analyze.toml`.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl CrateConfig {
    /// Parses an `analyze.toml` source text.
    pub fn parse(src: &str) -> Result<CrateConfig, ConfigError> {
        let mut cfg = CrateConfig::default();
        let mut section = String::new();
        let mut lines = src.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let lineno = i + 1;
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "hot" | "allow.index" | "allow.alloc" | "allow.panic" => {}
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown section `[{other}]`"),
                        });
                    }
                }
                continue;
            }
            // `key = value`, where a multi-line array may continue until
            // the closing `]`.
            let mut stmt = line;
            while needs_continuation(&stmt) {
                match lines.next() {
                    Some((_, cont)) => {
                        stmt.push(' ');
                        stmt.push_str(strip_toml_comment(cont).trim());
                    }
                    None => {
                        return Err(ConfigError {
                            line: lineno,
                            message: "unterminated array".into(),
                        });
                    }
                }
            }
            let Some((key, value)) = stmt.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{stmt}`"),
                });
            };
            let key = parse_key(key.trim()).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("malformed key `{}`", key.trim()),
            })?;
            let value = value.trim();
            match section.as_str() {
                "" => match key.as_str() {
                    "kernel" => {
                        cfg.kernel = parse_bool(value).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("`kernel` must be true/false, got `{value}`"),
                        })?;
                    }
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown top-level key `{other}`"),
                        });
                    }
                },
                "hot" => match key.as_str() {
                    "fns" => {
                        cfg.hot_fns = parse_string_array(value).ok_or_else(|| ConfigError {
                            line: lineno,
                            message: format!("`fns` must be an array of strings, got `{value}`"),
                        })?;
                    }
                    other => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown `[hot]` key `{other}`"),
                        });
                    }
                },
                allow => {
                    let entry = parse_allowance(value).ok_or_else(|| ConfigError {
                        line: lineno,
                        message: format!(
                            "allowance must be `{{ sites = N, reason = \"...\" }}`, got `{value}`"
                        ),
                    })?;
                    let map = match allow {
                        "allow.index" => &mut cfg.allow_index,
                        "allow.alloc" => &mut cfg.allow_alloc,
                        _ => &mut cfg.allow_panic,
                    };
                    if map.insert(key.clone(), entry).is_some() {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("duplicate allowance key `{key}`"),
                        });
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// Renders the configuration back to `analyze.toml` text (used by
    /// `--bless` to regenerate allowlists).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Analyzer configuration for this crate (see crates/analyze).\n\
             # Regenerate allowances with `cargo xtask analyze --bless`, then\n\
             # replace generated reasons with real justifications.\n",
        );
        if self.kernel {
            out.push_str("\nkernel = true\n");
        }
        if !self.hot_fns.is_empty() {
            out.push_str("\n[hot]\nfns = [\n");
            for f in &self.hot_fns {
                out.push_str(&format!("    \"{f}\",\n"));
            }
            out.push_str("]\n");
        }
        for (name, map) in [
            ("index", &self.allow_index),
            ("alloc", &self.allow_alloc),
            ("panic", &self.allow_panic),
        ] {
            if map.is_empty() {
                continue;
            }
            out.push_str(&format!("\n[allow.{name}]\n"));
            for (key, a) in map {
                out.push_str(&format!(
                    "\"{key}\" = {{ sites = {}, reason = \"{}\" }}\n",
                    a.sites, a.reason
                ));
            }
        }
        out
    }
}

/// Strips a `#` comment unless it sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether a statement's brackets are still open (multi-line array).
fn needs_continuation(stmt: &str) -> bool {
    let mut depth = 0isize;
    let mut in_str = false;
    for b in stmt.bytes() {
        match b {
            b'"' => in_str = !in_str,
            b'[' if !in_str => depth += 1,
            b']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

/// Parses a bare or quoted key.
fn parse_key(s: &str) -> Option<String> {
    if let Some(inner) = s.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        (!inner.is_empty()).then(|| inner.to_string())
    } else if !s.is_empty()
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
    {
        Some(s.to_string())
    } else {
        None
    }
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses `"a"` out of a quoted string value.
fn parse_string(s: &str) -> Option<String> {
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).map(|s| s.to_string())
}

/// Parses `["a", "b"]`.
fn parse_string_array(s: &str) -> Option<Vec<String>> {
    let inner = s.strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

/// Parses `{ sites = N, reason = "..." }`.
fn parse_allowance(s: &str) -> Option<Allowance> {
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut sites = None;
    let mut reason = None;
    // `reason` strings may contain commas; split on commas outside quotes.
    let mut parts = Vec::new();
    let mut depth_str = false;
    let mut start = 0usize;
    for (i, b) in inner.bytes().enumerate() {
        match b {
            b'"' => depth_str = !depth_str,
            b',' if !depth_str => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part.split_once('=')?;
        match k.trim() {
            "sites" => sites = v.trim().parse::<usize>().ok(),
            "reason" => reason = parse_string(v.trim()),
            _ => return None,
        }
    }
    Some(Allowance { sites: sites?, reason: reason? })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let src = r#"
            # kernel crate
            kernel = true

            [hot]
            fns = [
                "mttkrp_serial",  # explicit root
                "Csf::walk",
            ]

            [allow.index]
            "mttkrp.rs::mttkrp_coo" = { sites = 4, reason = "rows validated, see audit" }

            [allow.panic]
            "audit.rs::assert_disjoint" = { sites = 1, reason = "contract abort" }
        "#;
        let cfg = CrateConfig::parse(src).unwrap();
        assert!(cfg.kernel);
        assert_eq!(cfg.hot_fns, vec!["mttkrp_serial", "Csf::walk"]);
        assert_eq!(cfg.allow_index["mttkrp.rs::mttkrp_coo"].sites, 4);
        assert_eq!(cfg.allow_panic["audit.rs::assert_disjoint"].reason, "contract abort");
        assert!(cfg.allow_alloc.is_empty());
    }

    #[test]
    fn empty_config_is_default() {
        let cfg = CrateConfig::parse("").unwrap();
        assert!(!cfg.kernel);
        assert!(cfg.hot_fns.is_empty());
    }

    #[test]
    fn unknown_section_is_rejected() {
        let err = CrateConfig::parse("[surprise]\n").unwrap_err();
        assert!(err.message.contains("surprise"));
    }

    #[test]
    fn malformed_allowance_is_rejected() {
        let err =
            CrateConfig::parse("[allow.index]\n\"f.rs::g\" = { sites = many }\n").unwrap_err();
        assert!(err.message.contains("allowance"));
    }

    #[test]
    fn render_round_trips() {
        let mut cfg = CrateConfig { kernel: true, ..Default::default() };
        cfg.hot_fns.push("walk".into());
        cfg.allow_alloc.insert(
            "k.rs::f".into(),
            Allowance { sites: 2, reason: "Range clone, allocation-free".into() },
        );
        let back = CrateConfig::parse(&cfg.render()).unwrap();
        assert!(back.kernel);
        assert_eq!(back.hot_fns, cfg.hot_fns);
        assert_eq!(back.allow_alloc, cfg.allow_alloc);
    }
}
