//! Hot-path lints: allocation freedom and unchecked indexing.
//!
//! The hot set of a crate is every function tagged `#[adatm::hot]` or
//! listed under `[hot] fns` in the crate's `analyze.toml`, closed
//! transitively over same-crate calls: if a hot function calls `foo` and
//! exactly one non-test `foo` exists in the crate, `foo` is hot too.
//! Qualified calls (`Type::method`) only propagate to a matching
//! `Type::method`, so `Vec::new` never drags an unrelated local `new`
//! into the set.
//!
//! *Allocation lint* — hot functions must not allocate: the kernels'
//! steady-state contract (see `schedule::Workspace`) is zero heap
//! traffic, and an allocation inside a rayon region also serializes on
//! the global allocator. Denied: `Vec::new`-style constructors,
//! `with_capacity`, `collect`/`to_vec`/`to_owned`/`to_string`/`clone`,
//! `Box::new`, and the `vec!`/`format!`/print-family macros.
//!
//! *Indexing lint* — the promotion of the old advisory scan: direct
//! `expr[...]` indexing in hot functions **or** in files tagged
//! `// lint: hot-path` is a hard failure unless covered by an
//! `[allow.index]` entry, because a bounds panic aborts a rayon worker.

use crate::tree::CallSite;
use crate::{apply_allowances, CrateModel, Finding, FnInfo, LintOutcome};
use std::collections::BTreeSet;

/// Constructor paths whose tail means "fresh heap allocation".
const ALLOC_PATH_TAILS: &[&str] = &[
    "Vec::new",
    "Vec::from",
    "VecDeque::new",
    "Box::new",
    "String::new",
    "String::from",
    "HashMap::new",
    "HashSet::new",
    "BTreeMap::new",
    "BTreeSet::new",
];

/// Method names that allocate on the common container/str types.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone", "into_vec"];

/// Macros that allocate or drag in the formatting machinery.
const ALLOC_MACROS: &[&str] =
    &["vec", "format", "format_args", "println", "print", "eprintln", "eprint"];

/// Resolves a call site to the index of a same-crate callee, if the name
/// match is unambiguous.
fn resolve_call(call: &CallSite, model: &CrateModel) -> Option<usize> {
    let short = call.last();
    if short.is_empty() {
        return None;
    }
    let qualifier = if call.path.len() >= 2 {
        let q = &call.path[call.path.len() - 2];
        // `self::f()` / `crate::f()` behave like free calls.
        (!matches!(q.as_str(), "self" | "crate" | "super")).then_some(q.as_str())
    } else {
        None
    };
    let mut found = None;
    for (i, f) in model.fns.iter().enumerate() {
        if f.item.is_test || f.item.short_name() != short {
            continue;
        }
        let matches_qualifier = match qualifier {
            Some(q) => f.item.name == format!("{q}::{short}"),
            None => true,
        };
        if !matches_qualifier {
            continue;
        }
        if found.is_some() {
            return None; // ambiguous — do not propagate
        }
        found = Some(i);
    }
    found
}

/// Computes the transitive hot set (indices into `model.fns`).
pub fn hot_set(model: &CrateModel) -> BTreeSet<usize> {
    let mut hot = BTreeSet::new();
    let mut queue = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        let listed =
            model.config.hot_fns.iter().any(|n| n == &f.item.name || n == f.item.short_name());
        if !f.item.is_test && (f.item.is_hot_tagged() || listed) && hot.insert(i) {
            queue.push(i);
        }
    }
    while let Some(i) = queue.pop() {
        // The facts are cloned up front so the borrow of `model.fns[i]`
        // does not outlive the mutation of `hot` — call lists are short.
        let calls = model.fns[i].facts.calls.clone();
        for call in &calls {
            if let Some(j) = resolve_call(call, model) {
                if hot.insert(j) {
                    queue.push(j);
                }
            }
        }
    }
    hot
}

fn is_alloc_call(call: &CallSite) -> bool {
    if call.method {
        return ALLOC_METHODS.contains(&call.last());
    }
    if call.path.len() >= 2 && ALLOC_PATH_TAILS.contains(&call.tail2().as_str()) {
        return true;
    }
    call.last() == "with_capacity"
}

/// The hot-path allocation lint.
pub fn alloc_lint(model: &CrateModel) -> LintOutcome {
    let hot = hot_set(model);
    let mut raw = Vec::new();
    for &i in &hot {
        let f = &model.fns[i];
        for call in &f.facts.calls {
            if is_alloc_call(call) {
                raw.push((
                    f.allow_key(),
                    Finding {
                        lint: "alloc",
                        file: f.file.clone(),
                        line: call.line,
                        message: format!(
                            "hot fn `{}` allocates via `{}` — reuse a workspace buffer \
                             or hoist the allocation out of the hot path",
                            f.item.name,
                            call.tail2()
                        ),
                    },
                ));
            }
        }
        for m in &f.facts.macros {
            if ALLOC_MACROS.contains(&m.name()) {
                raw.push((
                    f.allow_key(),
                    Finding {
                        lint: "alloc",
                        file: f.file.clone(),
                        line: m.line,
                        message: format!(
                            "hot fn `{}` invokes `{}!` — formatting/collection macros \
                             allocate on every call",
                            f.item.name,
                            m.name()
                        ),
                    },
                ));
            }
        }
    }
    apply_allowances("alloc", raw, &model.config.allow_alloc)
}

/// Whether the indexing lint applies to this function.
fn index_scope(f: &FnInfo, hot: &BTreeSet<usize>, i: usize) -> bool {
    !f.item.is_test && (hot.contains(&i) || f.hot_file)
}

/// The hot-path indexing lint (hard-deny successor of the old advisory
/// count).
pub fn index_lint(model: &CrateModel) -> LintOutcome {
    let hot = hot_set(model);
    let mut raw = Vec::new();
    for (i, f) in model.fns.iter().enumerate() {
        if !index_scope(f, &hot, i) {
            continue;
        }
        for &line in &f.facts.index_lines {
            raw.push((
                f.allow_key(),
                Finding {
                    lint: "index",
                    file: f.file.clone(),
                    line,
                    message: format!(
                        "unchecked indexing in hot-path fn `{}` — a bounds panic here \
                         aborts a rayon worker; use a checked access or add an \
                         `[allow.index]` entry with the bounds argument",
                        f.item.name
                    ),
                },
            ));
        }
    }
    apply_allowances("index", raw, &model.config.allow_index)
}

/// `(allow key, site count)` pairs for one lint, sorted by key.
pub type LintCounts = Vec<(String, usize)>;

/// Raw (pre-allowance) counts for `--bless`: `(key, count)` per function
/// for the `index` and `alloc` lints respectively.
pub fn raw_counts(model: &CrateModel) -> (LintCounts, LintCounts) {
    let hot = hot_set(model);
    let mut index = std::collections::BTreeMap::new();
    let mut alloc = std::collections::BTreeMap::new();
    for (i, f) in model.fns.iter().enumerate() {
        if index_scope(f, &hot, i) {
            let n = f.facts.index_lines.len();
            if n > 0 {
                *index.entry(f.allow_key()).or_insert(0usize) += n;
            }
        }
        if hot.contains(&i) {
            let n = f.facts.calls.iter().filter(|c| is_alloc_call(c)).count()
                + f.facts.macros.iter().filter(|m| ALLOC_MACROS.contains(&m.name())).count();
            if n > 0 {
                *alloc.entry(f.allow_key()).or_insert(0usize) += n;
            }
        }
    }
    (index.into_iter().collect(), alloc.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_model;
    use crate::config::CrateConfig;

    fn model(src: &str) -> CrateModel {
        model_with(src, CrateConfig::default())
    }

    fn model_with(src: &str, config: CrateConfig) -> CrateModel {
        build_model("test", config, &[("lib.rs".to_string(), src.to_string())])
    }

    #[test]
    fn attr_tagged_fn_roots_the_hot_set_and_propagates() {
        let src = "
            #[adatm::hot]
            fn kernel(n: usize) { helper(n); }
            fn helper(n: usize) { let v: Vec<u32> = (0..n).collect(); drop(v); }
            fn cold() { let _x = Vec::<u8>::new(); }
        ";
        let m = model(src);
        let hot = hot_set(&m);
        assert_eq!(hot.len(), 2);
        let out = alloc_lint(&m);
        // Only `helper`'s collect fires; `cold` is not hot.
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("helper"));
        assert!(out.findings[0].message.contains("collect"));
    }

    #[test]
    fn config_listed_fn_is_a_root() {
        let cfg = CrateConfig::parse("[hot]\nfns = [\"listed\"]\n").unwrap();
        let src = "fn listed() { let _s = format!(\"x\"); }";
        let out = alloc_lint(&model_with(src, cfg));
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("format"));
    }

    #[test]
    fn ambiguous_callee_does_not_propagate() {
        let src = "
            #[adatm::hot]
            fn kernel() { helper(); }
            fn helper() {}
            mod a { pub fn helper() { let _v = vec![1]; } }
        ";
        // Two `helper` fns: no propagation, so the vec! never fires.
        let out = alloc_lint(&model(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn qualified_call_propagates_to_matching_method_only() {
        let src = "
            #[adatm::hot]
            fn kernel() { Ws::make(); }
            struct Ws;
            impl Ws { fn make() { let _b = Box::new(3); } }
            struct Other;
            impl Other { fn unrelated() { let _v = Vec::<u8>::new(); } }
        ";
        let out = alloc_lint(&model(src));
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("Ws::make"));
    }

    #[test]
    fn vec_new_in_hot_fn_does_not_mark_local_new_hot() {
        let src = "
            #[adatm::hot]
            fn kernel() { let _v: Vec<u8> = Vec::new(); }
            struct S;
            impl S { fn new() { let _x = vec![0u8; 4]; } }
        ";
        let out = alloc_lint(&model(src));
        // One finding for kernel's Vec::new; S::new stays cold.
        assert_eq!(out.findings.len(), 1);
        assert!(out.findings[0].message.contains("kernel"));
    }

    #[test]
    fn index_lint_fires_in_hot_file_and_respects_allowance() {
        let src = "// lint: hot-path\nfn f(a: &[u32], i: usize) -> u32 { a[i] }\n";
        let out = index_lint(&model(src));
        assert_eq!(out.findings.len(), 1);

        let cfg = CrateConfig::parse(
            "[allow.index]\n\"lib.rs::f\" = { sites = 1, reason = \"i < a.len() by contract\" }\n",
        )
        .unwrap();
        let out = index_lint(&model_with(src, cfg));
        assert!(out.findings.is_empty());
        assert!(out.warnings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "// lint: hot-path\n#[cfg(test)]\nmod tests {\n  fn t(a: &[u32]) -> u32 { \
                   a[0] }\n}\n";
        assert!(index_lint(&model(src)).findings.is_empty());
    }

    #[test]
    fn raw_counts_report_bless_data() {
        let src = "// lint: hot-path\nfn f(a: &[u32]) -> u32 { a[0] + a[1] }\n";
        let (index, alloc) = raw_counts(&model(src));
        assert_eq!(index, vec![("lib.rs::f".to_string(), 2)]);
        assert!(alloc.is_empty());
    }
}
