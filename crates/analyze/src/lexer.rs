//! A small Rust lexer: source text → a flat token stream with line
//! numbers.
//!
//! The build environment is offline, so `syn` is unavailable; this
//! lexer plus the token-tree/item layer in [`crate::tree`] cover the
//! AST-lite subset the lints need — reliable token *boundaries* (so a
//! `.unwrap()` inside a string literal or comment can never fire a
//! lint) and delimiter structure, not full expression grammar.
//!
//! Deliberately loose where looseness is safe: number literals keep
//! their suffix glued on (`1i64` is one token — exactly what the
//! schema-type inference wants), multi-char operators stay as adjacent
//! single-char puncts (adjacency is recoverable from byte positions),
//! and exotic literals (`c"..."`) lex as their prefix ident plus a
//! string.

/// What a token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including literal prefixes that ended
    /// up standalone).
    Ident(String),
    /// A lifetime (`'a`), label, or `'_`.
    Lifetime(String),
    /// A string literal (regular, raw, or byte). The inner text is kept
    /// verbatim (escape sequences unprocessed) — the schema lint matches
    /// event-kind literals, which never contain escapes.
    StrLit(String),
    /// A char or byte literal, contents dropped.
    CharLit,
    /// A numeric literal, text kept (suffix detection).
    NumLit(String),
    /// A single punctuation character (delimiters included).
    Punct(char),
}

/// One token with its position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// The token.
    pub kind: TokKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character (adjacency checks).
    pub pos: u32,
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// The string literal's inner text, if this is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokKind::StrLit(s) => Some(s),
            _ => None,
        }
    }
}

/// A lexing problem (unterminated literal or comment). The lexer keeps
/// whatever it produced before the error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the problem.
    pub line: u32,
    /// Description.
    pub message: String,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.i + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        if b == b'\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Comments and whitespace are dropped;
/// literal contents are dropped (only their kind and position matter to
/// the lints).
pub fn lex(src: &str) -> (Vec<Tok>, Vec<LexError>) {
    let mut c = Cursor { src: src.as_bytes(), i: 0, line: 1 };
    let mut toks = Vec::new();
    let mut errors = Vec::new();
    while let Some(b) = c.peek() {
        let line = c.line;
        let pos = c.i as u32;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                while let Some(b) = c.peek() {
                    if b == b'\n' {
                        break;
                    }
                    c.bump();
                }
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let mut depth = 1usize;
                loop {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => {
                            errors.push(LexError {
                                line,
                                message: "unterminated block comment".into(),
                            });
                            break;
                        }
                    }
                }
            }
            b'"' => {
                let text = lex_string(&mut c, &mut errors);
                toks.push(Tok { kind: TokKind::StrLit(text), line, pos });
            }
            b'\'' => {
                // Lifetime vs char literal. After the quote: a backslash
                // means char; a codepoint followed by a closing quote
                // means char (`'a'`, `'_'`); otherwise lifetime (`'a`,
                // `'static`, `'_`).
                let rest = &src[c.i + 1..];
                let mut chars = rest.chars();
                match chars.next() {
                    Some('\\') => {
                        lex_char(&mut c, &mut errors);
                        toks.push(Tok { kind: TokKind::CharLit, line, pos });
                    }
                    Some(c1) if chars.next() == Some('\'') && c1 != '\'' => {
                        lex_char(&mut c, &mut errors);
                        toks.push(Tok { kind: TokKind::CharLit, line, pos });
                    }
                    Some(_) => {
                        c.bump(); // the quote
                        let start = c.i;
                        while c.peek().is_some_and(is_ident_cont) {
                            c.bump();
                        }
                        let name = src[start..c.i].to_string();
                        toks.push(Tok { kind: TokKind::Lifetime(name), line, pos });
                    }
                    None => {
                        errors.push(LexError { line, message: "dangling quote".into() });
                        c.bump();
                    }
                }
            }
            _ if b.is_ascii_digit() => {
                let start = c.i;
                // Digits, `_`, suffix/radix letters; a `.` joins only
                // when followed by a digit (so `0..n` and `1.max()`
                // keep their dots as separate puncts).
                while let Some(b) = c.peek() {
                    let dot_digit = b == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit());
                    if is_ident_cont(b) || dot_digit {
                        c.bump();
                    } else {
                        break;
                    }
                }
                toks.push(Tok { kind: TokKind::NumLit(src[start..c.i].to_string()), line, pos });
            }
            _ if is_ident_start(b) => {
                let start = c.i;
                while c.peek().is_some_and(is_ident_cont) {
                    c.bump();
                }
                let text = &src[start..c.i];
                // Literal prefixes: `r"`, `r#"`, `b"`, `br#"`, `b'`, ...
                let raw_next = matches!(c.peek(), Some(b'"') | Some(b'#'));
                match text {
                    "r" | "br" | "cr" if raw_next => {
                        let text = lex_raw_string(&mut c, &mut errors);
                        toks.push(Tok { kind: TokKind::StrLit(text), line, pos });
                    }
                    "b" | "c" if c.peek() == Some(b'"') => {
                        let text = lex_string(&mut c, &mut errors);
                        toks.push(Tok { kind: TokKind::StrLit(text), line, pos });
                    }
                    "b" if c.peek() == Some(b'\'') => {
                        lex_char(&mut c, &mut errors);
                        toks.push(Tok { kind: TokKind::CharLit, line, pos });
                    }
                    _ => {
                        toks.push(Tok { kind: TokKind::Ident(text.to_string()), line, pos });
                    }
                }
            }
            _ => {
                c.bump();
                toks.push(Tok { kind: TokKind::Punct(b as char), line, pos });
            }
        }
    }
    (toks, errors)
}

/// Consumes a `"..."` string (cursor on the opening quote), returning the
/// inner text (escapes kept verbatim).
fn lex_string(c: &mut Cursor<'_>, errors: &mut Vec<LexError>) -> String {
    let line = c.line;
    c.bump();
    let start = c.i;
    loop {
        match c.bump() {
            Some(b'\\') => {
                c.bump();
            }
            Some(b'"') => {
                return String::from_utf8_lossy(&c.src[start..c.i - 1]).into_owned();
            }
            Some(_) => {}
            None => {
                errors.push(LexError { line, message: "unterminated string literal".into() });
                return String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
            }
        }
    }
}

/// Consumes a `r#"..."#` raw string (cursor on `#` or `"` after the
/// prefix ident was consumed), returning the inner text.
fn lex_raw_string(c: &mut Cursor<'_>, errors: &mut Vec<LexError>) -> String {
    let line = c.line;
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() != Some(b'"') {
        errors.push(LexError { line, message: "malformed raw string prefix".into() });
        return String::new();
    }
    c.bump();
    let start = c.i;
    'outer: loop {
        match c.bump() {
            Some(b'"') => {
                let end = c.i - 1;
                for _ in 0..hashes {
                    if c.peek() == Some(b'#') {
                        c.bump();
                    } else {
                        continue 'outer;
                    }
                }
                return String::from_utf8_lossy(&c.src[start..end]).into_owned();
            }
            Some(_) => {}
            None => {
                errors.push(LexError { line, message: "unterminated raw string".into() });
                return String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
            }
        }
    }
}

/// Consumes a `'x'` char literal (cursor on the opening quote).
fn lex_char(c: &mut Cursor<'_>, errors: &mut Vec<LexError>) {
    let line = c.line;
    c.bump();
    loop {
        match c.bump() {
            Some(b'\\') => {
                c.bump();
            }
            Some(b'\'') => return,
            Some(_) => {}
            None => {
                errors.push(LexError { line, message: "unterminated char literal".into() });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        let (toks, errs) = lex(src);
        assert!(errs.is_empty(), "{errs:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let (toks, _) = lex("fn f() {\n  x.y\n}\n");
        assert_eq!(toks[0].ident(), Some("fn"));
        assert_eq!(toks[0].line, 1);
        let dot = toks.iter().find(|t| t.is_punct('.')).unwrap();
        assert_eq!(dot.line, 2);
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let ks = kinds("a // .unwrap()\n\"no .expect( here\" /* b /* nested */ c */ d");
        assert_eq!(
            ks,
            vec![
                TokKind::Ident("a".into()),
                TokKind::StrLit("no .expect( here".into()),
                TokKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a str; 'x'; '\\n'; 'static; b'z'; '_'");
        assert!(ks.contains(&TokKind::Lifetime("a".into())));
        assert!(ks.contains(&TokKind::Lifetime("static".into())));
        assert_eq!(ks.iter().filter(|k| **k == TokKind::CharLit).count(), 4);
    }

    #[test]
    fn raw_and_byte_strings() {
        let ks = kinds(r###"r"a" r#"b"# b"c" br#"d"#"###);
        let expect: Vec<TokKind> =
            ["a", "b", "c", "d"].iter().map(|s| TokKind::StrLit((*s).into())).collect();
        assert_eq!(ks, expect);
    }

    #[test]
    fn numbers_keep_suffixes_and_release_range_dots() {
        let ks = kinds("1i64 2.5f64 0..n 1.0e3 0x_ff");
        assert!(ks.contains(&TokKind::NumLit("1i64".into())));
        assert!(ks.contains(&TokKind::NumLit("2.5f64".into())));
        assert!(ks.contains(&TokKind::NumLit("0x_ff".into())));
        // `0..n`: the dots stay puncts.
        assert_eq!(ks.iter().filter(|k| **k == TokKind::Punct('.')).count(), 2);
    }

    #[test]
    fn unterminated_string_reports_but_keeps_tokens() {
        let (toks, errs) = lex("let x = \"oops");
        assert_eq!(errs.len(), 1);
        assert!(toks.iter().any(|t| t.ident() == Some("let")));
    }
}
