//! Panic-freedom lint for kernel crates.
//!
//! Crates marked `kernel = true` in their `analyze.toml` (tensor, dtree,
//! linalg) surface failures as typed errors; a stray `unwrap` turns a
//! reportable condition into an anonymous abort deep inside a rayon
//! region. Denied in non-test code: `.unwrap()`, `.expect(...)`, and the
//! `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros. Deliberate
//! contract aborts (the audit module's invariant failures) are carried
//! by `[allow.panic]` entries with their justification.
//!
//! `assert!`-family macros are *not* denied: the kernels use them for
//! cheap preconditions whose failure is a caller bug, and
//! `debug_assert!` vanishes in release builds.

use crate::{apply_allowances, CrateModel, Finding, LintOutcome};

/// Method calls that panic on the error/none path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that unconditionally panic when reached.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The panic-freedom lint (no-op unless `config.kernel`).
pub fn panic_lint(model: &CrateModel) -> LintOutcome {
    if !model.config.kernel {
        return LintOutcome::default();
    }
    let raw = raw_panics(model);
    apply_allowances("panic", raw, &model.config.allow_panic)
}

fn raw_panics(model: &CrateModel) -> Vec<(String, Finding)> {
    let mut raw = Vec::new();
    for f in &model.fns {
        if f.item.is_test {
            continue;
        }
        for call in &f.facts.calls {
            if call.method && PANICKY_METHODS.contains(&call.last()) {
                raw.push((
                    f.allow_key(),
                    Finding {
                        lint: "panic",
                        file: f.file.clone(),
                        line: call.line,
                        message: format!(
                            "`.{}(...)` in kernel fn `{}` — return a typed error, or add \
                             an `[allow.panic]` entry justifying the abort",
                            call.last(),
                            f.item.name
                        ),
                    },
                ));
            }
        }
        for m in &f.facts.macros {
            if PANICKY_MACROS.contains(&m.name()) {
                raw.push((
                    f.allow_key(),
                    Finding {
                        lint: "panic",
                        file: f.file.clone(),
                        line: m.line,
                        message: format!(
                            "`{}!` in kernel fn `{}` — return a typed error, or add an \
                             `[allow.panic]` entry justifying the abort",
                            m.name(),
                            f.item.name
                        ),
                    },
                ));
            }
        }
    }
    raw
}

/// Raw (pre-allowance) counts per function for `--bless`.
pub fn raw_counts(model: &CrateModel) -> Vec<(String, usize)> {
    if !model.config.kernel {
        return Vec::new();
    }
    let mut counts = std::collections::BTreeMap::new();
    for (key, _) in raw_panics(model) {
        *counts.entry(key).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_model;
    use crate::config::CrateConfig;

    fn kernel_model(src: &str, extra_cfg: &str) -> CrateModel {
        let cfg = CrateConfig::parse(&format!("kernel = true\n{extra_cfg}")).unwrap();
        build_model("kern", cfg, &[("k.rs".to_string(), src.to_string())])
    }

    #[test]
    fn unwrap_and_expect_are_flagged() {
        let src = "
            fn f(x: Option<u32>) -> u32 { x.unwrap() }
            fn g(x: Option<u32>) -> u32 { x.expect(\"present\") }
        ";
        let out = panic_lint(&kernel_model(src, ""));
        assert_eq!(out.findings.len(), 2);
    }

    #[test]
    fn unwrap_or_else_and_strings_are_fine() {
        let src = "
            fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }
            fn g() -> &'static str { \"calls .unwrap() in text\" }
            // .expect( in a comment
            fn h() {}
        ";
        assert!(panic_lint(&kernel_model(src, "")).findings.is_empty());
    }

    #[test]
    fn panic_macro_is_flagged_but_allowance_covers_it() {
        let src = "fn audit_fail() { panic!(\"invariant broken\"); }";
        let out = panic_lint(&kernel_model(src, ""));
        assert_eq!(out.findings.len(), 1);
        let out = panic_lint(&kernel_model(
            src,
            "[allow.panic]\n\"k.rs::audit_fail\" = { sites = 1, reason = \"contract abort\" }\n",
        ));
        assert!(out.findings.is_empty());
    }

    #[test]
    fn non_kernel_crate_is_exempt() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        let m = build_model(
            "notkern",
            CrateConfig::default(),
            &[("lib.rs".to_string(), src.to_string())],
        );
        assert!(panic_lint(&m).findings.is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(panic_lint(&kernel_model(src, "")).findings.is_empty());
    }
}
