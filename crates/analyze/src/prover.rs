//! Schedule-disjointness prover: an exhaustive small-universe model
//! check that the parallel schedules only ever produce disjoint writes.
//!
//! The parallel MTTKRP kernels take their write pattern entirely from a
//! [`ModeSchedule`] (tensor modes) or a `ScatterSchedule` (dimension-tree
//! push kernels): an `Owned` task writes the output rows of its group
//! range, a `Split` sub-task writes its private slot row, and a scatter
//! chunk writes its own accumulator segment. So "the kernels are
//! race-free" reduces to a property of the schedule builders — one that
//! a model checker can verify *exhaustively* on a bounded universe
//! instead of sampling.
//!
//! The abstraction that makes the universe small: a tensor reaches
//! `ModeSchedule::build` only as a per-group nonzero-weight vector, so
//! checking every weight vector with ≤ 6 groups summing to ≤ 24 covers
//! *every* tensor with ≤ 4 modes × ≤ 6 rows per mode × ≤ 24 nonzeros —
//! each mode's schedule is built independently from its own vector. On
//! top of the default build, explicit low targets force the split paths
//! that real inputs of this size would never trigger (`MIN_TASK_WEIGHT`
//! hides them), and a weighted pass exercises non-uniform element
//! weights. `ScatterSchedule` gets the same treatment over all small
//! inverse-reduction maps plus structured large ones (the `MIN_CHUNK`
//! floor makes small parents single-chunk, so multi-chunk behavior needs
//! large parents).
//!
//! The verifiers take plain task/descriptor data, not the opaque
//! schedule types, so fixture tests can hand-corrupt a schedule and
//! watch the prover reject it — and the `audit-agree` proptests can
//! assert the prover and the runtime overlap detector
//! (`adatm_tensor::audit::check_schedule_claims`) agree.

use adatm_tensor::schedule::{ModeSchedule, SplitGroup, Task};
use rayon::prelude::*;

/// Outcome of a prover run.
#[derive(Clone, Debug, Default)]
pub struct ProverReport {
    /// `ModeSchedule`s built and verified.
    pub mode_builds: u64,
    /// Of those, schedules that actually contained split sub-tasks.
    pub mode_split_builds: u64,
    /// `ScatterSchedule`s built and verified.
    pub scatter_builds: u64,
    /// Violations, capped at [`MAX_FAILURES`] messages.
    pub failures: Vec<String>,
}

/// Failure messages kept per report (the first one is already a bug).
pub const MAX_FAILURES: usize = 20;

impl ProverReport {
    /// Whether the universe verified clean.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    fn merge(mut self, other: ProverReport) -> ProverReport {
        self.mode_builds += other.mode_builds;
        self.mode_split_builds += other.mode_split_builds;
        self.scatter_builds += other.scatter_builds;
        for f in other.failures {
            if self.failures.len() < MAX_FAILURES {
                self.failures.push(f);
            }
        }
        self
    }

    fn fail(&mut self, msg: String) {
        if self.failures.len() < MAX_FAILURES {
            self.failures.push(msg);
        }
    }
}

/// Verifies that a mode schedule's tasks describe a disjoint, complete
/// write pattern over `elem_counts.len()` groups, where group `g` has
/// `elem_counts[g]` splittable elements.
///
/// Disjointness follows from the checked structure: each group's output
/// row is written by exactly one `Owned` task or one post-merge
/// reduction, each slot row by exactly one `Split` sub-task, and no slot
/// is shared between groups.
pub fn verify_mode_schedule(
    tasks: &[Task],
    splits: &[SplitGroup],
    num_slots: usize,
    elem_counts: &[usize],
) -> Result<(), String> {
    let n = elem_counts.len();
    // 0 = uncovered, 1 = owned, 2 = split.
    let mut cover = vec![0u8; n];
    let mut split_ranges: Vec<(usize, std::ops::Range<usize>, usize)> = Vec::new();
    let mut slot_used = vec![false; num_slots];
    for t in tasks {
        match t {
            Task::Owned { groups } => {
                if groups.start >= groups.end || groups.end > n {
                    return Err(format!("owned range {groups:?} out of bounds (n={n})"));
                }
                for g in groups.clone() {
                    if cover[g] != 0 {
                        return Err(format!("group {g} covered twice (owned)"));
                    }
                    cover[g] = 1;
                }
            }
            Task::Split { group, elems, slot } => {
                if *group >= n {
                    return Err(format!("split group {group} out of bounds (n={n})"));
                }
                if cover[*group] == 1 {
                    return Err(format!("group {group} both owned and split"));
                }
                cover[*group] = 2;
                if elems.start >= elems.end || elems.end > elem_counts[*group] {
                    return Err(format!(
                        "split of group {group} has bad element range {elems:?} \
                         (elems={})",
                        elem_counts[*group]
                    ));
                }
                if *slot >= num_slots {
                    return Err(format!("slot {slot} out of bounds (slots={num_slots})"));
                }
                if slot_used[*slot] {
                    return Err(format!("slot {slot} assigned to two sub-tasks"));
                }
                slot_used[*slot] = true;
                split_ranges.push((*group, elems.clone(), *slot));
            }
        }
    }
    for (g, &c) in cover.iter().enumerate() {
        if c == 0 {
            return Err(format!("group {g} not covered by any task"));
        }
    }
    if let Some(s) = slot_used.iter().position(|&u| !u) {
        return Err(format!("slot {s} allocated but never assigned"));
    }
    // Per split group: element ranges must tile 0..elem_counts[g], the
    // sub-task count must be ≥ 2 (a 1-way split should have been demoted
    // to Owned), and exactly one descriptor must cover its slots.
    split_ranges.sort_by_key(|(g, r, _)| (*g, r.start));
    let mut i = 0usize;
    while i < split_ranges.len() {
        let g = split_ranges[i].0;
        let mut j = i;
        let mut expect = 0usize;
        let mut slots_of_g = Vec::new();
        while j < split_ranges.len() && split_ranges[j].0 == g {
            let (_, r, s) = &split_ranges[j];
            if r.start != expect {
                return Err(format!(
                    "group {g} elements [{expect}, {}) not covered exactly once",
                    r.start
                ));
            }
            expect = r.end;
            slots_of_g.push(*s);
            j += 1;
        }
        if expect != elem_counts[g] {
            return Err(format!("group {g} elements [{expect}, {}) not covered", elem_counts[g]));
        }
        if slots_of_g.len() < 2 {
            return Err(format!("group {g} split into a single sub-task (undemoted)"));
        }
        let desc: Vec<_> = splits.iter().filter(|s| s.group == g).collect();
        if desc.len() != 1 {
            return Err(format!("group {g} has {} merge descriptors", desc.len()));
        }
        let d = desc[0];
        slots_of_g.sort_unstable();
        let expected: Vec<usize> = (d.slot0..d.slot0 + d.nslots).collect();
        if slots_of_g != expected {
            return Err(format!(
                "group {g} merge descriptor ({}..{}) does not match its sub-task \
                 slots {slots_of_g:?}",
                d.slot0,
                d.slot0 + d.nslots
            ));
        }
        i = j;
    }
    // No descriptor may exist for a group without split tasks.
    for d in splits {
        if !split_ranges.iter().any(|(g, _, _)| *g == d.group) {
            return Err(format!("merge descriptor for group {} with no sub-tasks", d.group));
        }
    }
    Ok(())
}

/// Convenience wrapper over a freshly built schedule (uniform elements:
/// group `g` has `weights[g]` elements of weight 1).
pub fn verify_built(s: &ModeSchedule, elem_counts: &[usize]) -> Result<(), String> {
    verify_mode_schedule(s.tasks(), s.splits(), s.num_slots(), elem_counts)
}

/// Plain-data form of a `ScatterSchedule` (so fixtures can corrupt it).
#[derive(Clone, Debug)]
pub struct ScatterParts {
    /// Chunk boundaries over the parent (`nchunks + 1`, ascending).
    pub chunk_ptr: Vec<usize>,
    /// Touched-row list boundaries (`nchunks + 1`, ascending).
    pub row_ptr: Vec<usize>,
    /// Flat per-chunk touched child rows.
    pub rows: Vec<u32>,
    /// Per parent element: index into its chunk's touched-row list.
    pub cmap: Vec<u32>,
}

impl ScatterParts {
    /// Extracts the parts of a built schedule through its accessors.
    pub fn of(s: &adatm_dtree::sched::ScatterSchedule) -> ScatterParts {
        let nchunks = s.num_chunks();
        let mut chunk_ptr = Vec::with_capacity(nchunks + 1);
        let mut row_ptr = Vec::with_capacity(nchunks + 1);
        let mut rows = Vec::with_capacity(s.total_rows());
        chunk_ptr.push(if nchunks > 0 { s.chunk(0).start } else { 0 });
        row_ptr.push(0);
        for c in 0..nchunks {
            chunk_ptr.push(s.chunk(c).end);
            rows.extend_from_slice(s.chunk_rows(c));
            row_ptr.push(rows.len());
        }
        ScatterParts { chunk_ptr, row_ptr, rows, cmap: s.cmap().to_vec() }
    }
}

/// Verifies a scatter schedule against its inputs: chunks tile the
/// parent, each chunk's touched rows are distinct and in-bounds (so
/// per-chunk accumulator writes are disjoint), the accumulator segments
/// are disjoint, and `cmap` routes every element to the accumulator row
/// of *its own* chunk that maps back to `pmap[j]`.
pub fn verify_scatter_parts(
    p: &ScatterParts,
    pmap: &[u32],
    child_len: usize,
) -> Result<(), String> {
    let parent_len = pmap.len();
    let nchunks = p.chunk_ptr.len().saturating_sub(1);
    if nchunks == 0 {
        return Err("no chunks".to_string());
    }
    if p.row_ptr.len() != nchunks + 1 {
        return Err(format!("row_ptr has {} entries for {nchunks} chunks", p.row_ptr.len()));
    }
    if p.chunk_ptr[0] != 0 || p.chunk_ptr[nchunks] != parent_len {
        return Err(format!(
            "chunks [{}, {}) do not span the parent (len {parent_len})",
            p.chunk_ptr[0], p.chunk_ptr[nchunks]
        ));
    }
    if p.row_ptr[0] != 0 || p.row_ptr[nchunks] != p.rows.len() {
        return Err("row_ptr does not span rows".to_string());
    }
    if p.cmap.len() != parent_len {
        return Err(format!("cmap length {} != parent {parent_len}", p.cmap.len()));
    }
    let mut seen = vec![false; child_len];
    for c in 0..nchunks {
        if p.chunk_ptr[c] > p.chunk_ptr[c + 1] || p.row_ptr[c] > p.row_ptr[c + 1] {
            return Err(format!("chunk {c} boundaries not monotone"));
        }
        let rows = &p.rows[p.row_ptr[c]..p.row_ptr[c + 1]];
        for &r in rows {
            if (r as usize) >= child_len {
                return Err(format!("chunk {c} touches row {r} >= child_len {child_len}"));
            }
            if seen[r as usize] {
                return Err(format!("chunk {c} lists row {r} twice"));
            }
            seen[r as usize] = true;
        }
        #[allow(clippy::needless_range_loop)] // j indexes cmap and pmap in lockstep
        for j in p.chunk_ptr[c]..p.chunk_ptr[c + 1] {
            let k = p.cmap[j] as usize;
            if k >= rows.len() {
                return Err(format!("cmap[{j}] = {k} outside chunk {c}'s {} rows", rows.len()));
            }
            if rows[k] != pmap[j] {
                return Err(format!(
                    "cmap[{j}] routes element to row {} but pmap says {}",
                    rows[k], pmap[j]
                ));
            }
        }
        for &r in rows {
            seen[r as usize] = false;
        }
    }
    Ok(())
}

/// Bounds of the exhaustive mode-schedule universe.
#[derive(Clone, Copy, Debug)]
pub struct ModeUniverse {
    /// Maximum groups per weight vector (rows per mode).
    pub max_groups: usize,
    /// Maximum total weight (nonzeros per mode).
    pub max_total: usize,
}

/// The CI universe: every tensor with ≤ 4 modes × ≤ 6 rows × ≤ 24 nnz.
pub const FULL: ModeUniverse = ModeUniverse { max_groups: 6, max_total: 24 };

/// A small universe for unit tests (sub-second).
pub const QUICK: ModeUniverse = ModeUniverse { max_groups: 4, max_total: 10 };

const THREADS: &[usize] = &[1, 2, 4, 8];
/// `None` = the production target; explicit low targets force splits
/// that `MIN_TASK_WEIGHT` would otherwise hide at this scale.
const TARGETS: &[Option<usize>] = &[None, Some(1), Some(3), Some(8)];

/// Enumerates suffixes of a weight vector and verifies each completion.
fn extend_and_check(prefix: &mut Vec<usize>, len: usize, budget: usize, rep: &mut ProverReport) {
    if prefix.len() == len {
        check_vector(prefix, rep);
        return;
    }
    for w in 0..=budget {
        prefix.push(w);
        extend_and_check(prefix, len, budget - w, rep);
        prefix.pop();
    }
}

/// Runs every (threads, target) configuration over one weight vector.
fn check_vector(weights: &[usize], rep: &mut ProverReport) {
    for &threads in THREADS {
        for &target in TARGETS {
            let s = match target {
                None => ModeSchedule::build(weights, threads),
                Some(t) => ModeSchedule::build_with_target(weights, threads, t),
            };
            rep.mode_builds += 1;
            if s.num_slots() > 0 {
                rep.mode_split_builds += 1;
            }
            if let Err(e) = verify_built(&s, weights) {
                rep.fail(format!(
                    "ModeSchedule(weights={weights:?}, threads={threads}, \
                     target={target:?}): {e}"
                ));
            }
        }
    }
}

/// Exhaustive uniform-element pass over a universe.
pub fn prove_mode_uniform(u: ModeUniverse) -> ProverReport {
    // Parallelize over (length, first element); each task enumerates the
    // remaining entries. Length 0 is the single empty vector.
    let mut seeds: Vec<(usize, usize)> = Vec::new();
    for len in 1..=u.max_groups {
        for first in 0..=u.max_total {
            seeds.push((len, first));
        }
    }
    let mut rep = seeds
        .into_par_iter()
        .map(|(len, first)| {
            let mut rep = ProverReport::default();
            let mut prefix = vec![first];
            extend_and_check(&mut prefix, len, u.max_total - first, &mut rep);
            rep
        })
        .reduce(ProverReport::default, ProverReport::merge);
    check_vector(&[], &mut rep);
    rep
}

/// Structured element-weight patterns for the weighted pass. Each yields
/// element weights for a group of total weight `w` (sum preserved).
fn elem_patterns(pattern: usize, w: usize) -> Vec<usize> {
    match pattern {
        // One element carrying everything: the degenerate-split case the
        // builder must demote back to Owned.
        0 => {
            if w == 0 {
                vec![]
            } else {
                vec![w]
            }
        }
        // Front-heavy: one big element then units.
        1 => {
            if w == 0 {
                vec![]
            } else {
                let big = w.div_ceil(2);
                let mut v = vec![big];
                v.extend(std::iter::repeat_n(1, w - big));
                v
            }
        }
        // Back-heavy.
        2 => {
            if w == 0 {
                vec![]
            } else {
                let big = w.div_ceil(2);
                let mut v = vec![1usize; w - big];
                v.push(big);
                v
            }
        }
        // Pairs: elements of weight 2 (plus a unit remainder).
        _ => {
            let mut v = vec![2usize; w / 2];
            if w % 2 == 1 {
                v.push(1);
            }
            v
        }
    }
}

/// Weighted-element pass: smaller vector universe × structured element
/// patterns through `build_weighted_with_target`.
pub fn prove_mode_weighted(u: ModeUniverse) -> ProverReport {
    let mut vectors: Vec<Vec<usize>> = Vec::new();
    let mut prefix = Vec::new();
    fn gen(prefix: &mut Vec<usize>, len: usize, budget: usize, out: &mut Vec<Vec<usize>>) {
        if prefix.len() == len {
            out.push(prefix.clone());
            return;
        }
        for w in 0..=budget {
            prefix.push(w);
            gen(prefix, len, budget - w, out);
            prefix.pop();
        }
    }
    let (mg, mt) = (u.max_groups.min(4), u.max_total.min(12));
    for len in 1..=mg {
        gen(&mut prefix, len, mt, &mut vectors);
    }
    vectors
        .into_par_iter()
        .map(|weights| {
            let mut rep = ProverReport::default();
            for pattern in 0..4usize {
                let counts: Vec<usize> =
                    weights.iter().map(|&w| elem_patterns(pattern, w).len()).collect();
                for &threads in THREADS {
                    for &target in TARGETS {
                        let t = target.unwrap_or(usize::MAX);
                        let s = if target.is_none() {
                            ModeSchedule::build_weighted(&weights, threads, |g| {
                                elem_patterns(pattern, weights[g])
                            })
                        } else {
                            ModeSchedule::build_weighted_with_target(&weights, threads, t, |g| {
                                elem_patterns(pattern, weights[g])
                            })
                        };
                        rep.mode_builds += 1;
                        if s.num_slots() > 0 {
                            rep.mode_split_builds += 1;
                        }
                        if let Err(e) =
                            verify_mode_schedule(s.tasks(), s.splits(), s.num_slots(), &counts)
                        {
                            rep.fail(format!(
                                "ModeSchedule(weighted, weights={weights:?}, \
                                 pattern={pattern}, threads={threads}, target={target:?}): {e}"
                            ));
                        }
                    }
                }
            }
            rep
        })
        .reduce(ProverReport::default, ProverReport::merge)
}

/// Exhaustive small scatter pass: every `pmap` with `parent_len ≤ max_p`
/// over `child_len ≤ max_c` (counting in base `child_len`).
pub fn prove_scatter_exhaustive(max_p: usize, max_c: usize) -> ProverReport {
    let mut cases: Vec<(usize, usize)> = Vec::new();
    for c in 1..=max_c {
        for p in 0..=max_p {
            cases.push((c, p));
        }
    }
    cases
        .into_par_iter()
        .map(|(c, p)| {
            let mut rep = ProverReport::default();
            let mut pmap = vec![0u32; p];
            let total = (c as u64).pow(p as u32);
            for code in 0..total {
                let mut x = code;
                for slot in pmap.iter_mut() {
                    *slot = (x % c as u64) as u32;
                    x /= c as u64;
                }
                for &threads in THREADS {
                    let s = adatm_dtree::sched::ScatterSchedule::build(&pmap, c, threads);
                    rep.scatter_builds += 1;
                    if let Err(e) = verify_scatter_parts(&ScatterParts::of(&s), &pmap, c) {
                        rep.fail(format!(
                            "ScatterSchedule(pmap={pmap:?}, child={c}, threads={threads}): {e}"
                        ));
                    }
                }
            }
            rep
        })
        .reduce(ProverReport::default, ProverReport::merge)
}

/// Structured large scatter pass: parents past the `MIN_CHUNK` floor so
/// the multi-chunk paths actually run.
pub fn prove_scatter_structured() -> ProverReport {
    let parents = [2048usize, 4096, 6000];
    let children = [1usize, 3, 16, 100];
    let patterns = 4usize;
    let mut rep = ProverReport::default();
    for &parent_len in &parents {
        for &child_len in &children {
            for pattern in 0..patterns {
                let pmap: Vec<u32> = (0..parent_len)
                    .map(|j| match pattern {
                        0 => (j % child_len) as u32,
                        1 => (j * child_len / parent_len.max(1)) as u32, // blocks
                        2 => 0u32,                                       // all-hot row
                        // Deterministic LCG scramble.
                        _ => {
                            let x = (j as u64)
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            ((x >> 33) % child_len as u64) as u32
                        }
                    })
                    .collect();
                for &threads in &[2usize, 4, 8] {
                    let s = adatm_dtree::sched::ScatterSchedule::build(&pmap, child_len, threads);
                    rep.scatter_builds += 1;
                    if let Err(e) = verify_scatter_parts(&ScatterParts::of(&s), &pmap, child_len) {
                        rep.fail(format!(
                            "ScatterSchedule(parent={parent_len}, child={child_len}, \
                             pattern={pattern}, threads={threads}): {e}"
                        ));
                    }
                }
            }
        }
    }
    rep
}

/// The full prover: all four passes over the given mode universe.
pub fn prove(u: ModeUniverse) -> ProverReport {
    prove_mode_uniform(u)
        .merge(prove_mode_weighted(u))
        .merge(prove_scatter_exhaustive(7, 4))
        .merge(prove_scatter_structured())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_universe_verifies_clean_and_exercises_splits() {
        let rep = prove(QUICK);
        assert!(rep.ok(), "violations: {:?}", rep.failures);
        assert!(rep.mode_builds > 50_000, "builds: {}", rep.mode_builds);
        // The explicit-target configs must actually reach the split
        // machinery, or the universe proves nothing about it.
        assert!(rep.mode_split_builds > 1_000, "splits: {}", rep.mode_split_builds);
        assert!(rep.scatter_builds > 10_000, "scatter: {}", rep.scatter_builds);
    }

    #[test]
    fn overlapping_owned_tasks_are_rejected() {
        let tasks = vec![Task::Owned { groups: 0..2 }, Task::Owned { groups: 1..3 }];
        let err = verify_mode_schedule(&tasks, &[], 0, &[1, 1, 1]).unwrap_err();
        assert!(err.contains("covered twice"), "{err}");
    }

    #[test]
    fn shared_slot_is_rejected() {
        let tasks = vec![
            Task::Split { group: 0, elems: 0..2, slot: 0 },
            Task::Split { group: 0, elems: 2..4, slot: 0 },
        ];
        let splits = vec![SplitGroup { group: 0, slot0: 0, nslots: 1 }];
        let err = verify_mode_schedule(&tasks, &splits, 1, &[4]).unwrap_err();
        assert!(err.contains("slot 0"), "{err}");
    }

    #[test]
    fn element_gap_is_rejected() {
        let tasks = vec![
            Task::Split { group: 0, elems: 0..2, slot: 0 },
            Task::Split { group: 0, elems: 3..4, slot: 1 },
        ];
        let splits = vec![SplitGroup { group: 0, slot0: 0, nslots: 2 }];
        let err = verify_mode_schedule(&tasks, &splits, 2, &[4]).unwrap_err();
        assert!(err.contains("not covered"), "{err}");
    }

    #[test]
    fn uncovered_group_is_rejected() {
        let tasks = vec![Task::Owned { groups: 0..1 }];
        let err = verify_mode_schedule(&tasks, &[], 0, &[1, 1]).unwrap_err();
        assert!(err.contains("group 1 not covered"), "{err}");
    }

    #[test]
    fn corrupted_scatter_cmap_is_rejected() {
        let pmap: Vec<u32> = (0..64).map(|j| (j % 3) as u32).collect();
        let s = adatm_dtree::sched::ScatterSchedule::build(&pmap, 3, 2);
        let mut parts = ScatterParts::of(&s);
        assert!(verify_scatter_parts(&parts, &pmap, 3).is_ok());
        // Re-route one element to the wrong accumulator row.
        parts.cmap[5] = (parts.cmap[5] + 1) % (parts.row_ptr[1] - parts.row_ptr[0]) as u32;
        assert!(verify_scatter_parts(&parts, &pmap, 3).is_err());
    }

    #[test]
    fn duplicated_scatter_row_is_rejected() {
        let pmap: Vec<u32> = (0..64).map(|j| (j % 5) as u32).collect();
        let s = adatm_dtree::sched::ScatterSchedule::build(&pmap, 5, 2);
        let mut parts = ScatterParts::of(&s);
        if parts.rows.len() >= 2 {
            parts.rows[1] = parts.rows[0];
            assert!(verify_scatter_parts(&parts, &pmap, 5).is_err());
        }
    }
}
