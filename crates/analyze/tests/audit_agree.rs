#![cfg(feature = "audit-agree")]
//! Adversarial agreement tests between the static schedule-disjointness
//! prover and the runtime write-overlap detector
//! (`adatm_tensor::audit`, compiled in via the `audit-agree` feature).
//!
//! The two checkers were written independently against the same safety
//! property — every output row claimed by exactly one parallel task —
//! so they must agree in both directions: every schedule the builder
//! produces satisfies both, and every corruption one rejects, the other
//! rejects too (when handed the same claims). Disagreement in either
//! direction means one of the checkers has a hole.
//!
//! Run with `cargo test -p adatm-analyze --features audit-agree`.

use adatm_analyze::prover::{verify_built, verify_mode_schedule};
use adatm_tensor::audit::{check_schedule_claims, ClaimOutcome};
use adatm_tensor::schedule::{ModeSchedule, SplitGroup, Task};
use proptest::prelude::*;

/// Derives the row claims a scheduled kernel makes from its schedule —
/// the same shape the kernels hand to `assert_schedule_claims` under
/// `--features audit`: owned output rows, plus `(row, nslots)` for each
/// split group merged from privatized slots.
fn claims(s: &ModeSchedule) -> (Vec<usize>, Vec<(usize, usize)>) {
    let mut owned = Vec::new();
    for t in s.tasks() {
        if let Task::Owned { groups } = t {
            owned.extend(groups.clone());
        }
    }
    let split = s.splits().iter().map(|d| (d.group, d.nslots)).collect();
    (owned, split)
}

proptest! {
    /// Soundness agreement: whatever the builder produces, both checkers
    /// accept — across thread counts and the explicit low split targets
    /// that force the privatization machinery at small sizes.
    #[test]
    fn built_schedules_satisfy_both_checkers(
        weights in proptest::collection::vec(0usize..=9, 1..=6),
        threads in 1usize..=8,
        target in 0usize..=8,
    ) {
        // target 0 = the production default; 1..=8 force low split
        // targets that MIN_TASK_WEIGHT would otherwise hide.
        let s = match target {
            0 => ModeSchedule::build(&weights, threads),
            t => ModeSchedule::build_with_target(&weights, threads, t),
        };
        prop_assert!(verify_built(&s, &weights).is_ok());
        let (owned, split) = claims(&s);
        prop_assert_eq!(
            check_schedule_claims(owned, split, weights.len()),
            ClaimOutcome::Disjoint
        );
    }

    /// Rejection agreement: claim one row twice and both checkers must
    /// flag it.
    #[test]
    fn duplicated_row_claim_is_rejected_by_both(
        weights in proptest::collection::vec(1usize..=9, 2..=6),
        threads in 1usize..=8,
        pick in 0usize..64,
    ) {
        let s = ModeSchedule::build(&weights, threads);
        let dup = pick % weights.len();
        let mut tasks = s.tasks().to_vec();
        tasks.push(Task::Owned { groups: dup..dup + 1 });
        prop_assert!(
            verify_mode_schedule(&tasks, s.splits(), s.num_slots(), &weights).is_err()
        );
        let (mut owned, split) = claims(&s);
        owned.push(dup);
        prop_assert!(matches!(
            check_schedule_claims(owned, split, weights.len()),
            ClaimOutcome::Overlap { .. }
        ));
    }
}

#[test]
fn degenerate_split_is_rejected_by_both() {
    // A one-slot split should have been demoted to ownership; both
    // checkers treat it as a scheduler bug.
    let tasks = vec![Task::Split { group: 0, elems: 0..4, slot: 0 }];
    let splits = vec![SplitGroup { group: 0, slot0: 0, nslots: 1 }];
    let err = verify_mode_schedule(&tasks, &splits, 1, &[4]).unwrap_err();
    assert!(err.contains("single sub-task"), "{err}");
    assert_eq!(
        check_schedule_claims(std::iter::empty(), [(0usize, 1usize)], 1),
        ClaimOutcome::DegenerateSplit { row: 0, nslots: 1 }
    );
}

#[test]
fn out_of_bounds_claim_is_rejected_by_both() {
    let tasks = vec![Task::Owned { groups: 0..2 }];
    assert!(verify_mode_schedule(&tasks, &[], 0, &[1]).is_err());
    assert_eq!(
        check_schedule_claims([0usize, 1], std::iter::empty::<(usize, usize)>(), 1),
        ClaimOutcome::OutOfBounds { row: 1, nrows: 1 }
    );
}
