//! End-to-end fixture tests: seed one violation per lint class through
//! the public API (`build_model` → `analyze_crate`) and assert the
//! engine reports exactly it — these are the acceptance tests that the
//! analyzer *fails* on bad code, complementing the clean run over the
//! real workspace in CI.

use adatm_analyze::config::CrateConfig;
use adatm_analyze::{analyze_crate, build_model, check_forbid_unsafe, LintOutcome};

fn run(kernel: bool, allow_toml: &str, files: &[(&str, &str)]) -> LintOutcome {
    let mut cfg = if allow_toml.is_empty() {
        CrateConfig::default()
    } else {
        CrateConfig::parse(allow_toml).expect("fixture config parses")
    };
    cfg.kernel = kernel;
    let files: Vec<(String, String)> =
        files.iter().map(|(n, s)| (n.to_string(), s.to_string())).collect();
    analyze_crate(&build_model("fixture", cfg, &files))
}

fn lints_of(out: &LintOutcome) -> Vec<&'static str> {
    out.findings.iter().map(|f| f.lint).collect()
}

#[test]
fn hot_allocation_is_denied() {
    let out = run(
        false,
        "",
        &[("k.rs", "#[adatm::hot]\npub fn k(n: usize) -> Vec<f64> {\n    vec![0.0; n]\n}\n")],
    );
    assert_eq!(lints_of(&out), ["alloc"], "{:?}", out.findings);
    assert_eq!(out.findings[0].line, 3);
}

#[test]
fn allocation_in_private_callee_is_denied_transitively() {
    let src = "#[adatm::hot]\npub fn k(xs: &[u32]) -> usize {\n    helper(xs)\n}\n\
               fn helper(xs: &[u32]) -> usize {\n    xs.to_vec().len()\n}\n";
    let out = run(false, "", &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["alloc"], "{:?}", out.findings);
    assert!(out.findings[0].message.contains("helper"), "{}", out.findings[0].message);
}

#[test]
fn cold_code_may_allocate() {
    let out = run(false, "", &[("k.rs", "pub fn cold(n: usize) -> Vec<f64> { vec![0.0; n] }\n")]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn hot_indexing_is_denied_without_an_allowance() {
    let src = "#[adatm::hot]\npub fn f(a: &[u32], i: usize) -> u32 {\n    a[i]\n}\n";
    let out = run(false, "", &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["index"], "{:?}", out.findings);
}

#[test]
fn exact_allowance_suppresses_and_counts_are_enforced() {
    let src = "#[adatm::hot]\npub fn f(a: &[u32], i: usize) -> u32 {\n    a[i] + a[0]\n}\n";
    let exact = "[allow.index]\n\"k.rs::f\" = { sites = 2, reason = \"bounds checked\" }\n";
    let out = run(false, exact, &[("k.rs", src)]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(out.warnings.is_empty(), "{:?}", out.warnings);

    // An allowance wider than reality is stale config, not silence.
    let stale = "[allow.index]\n\"k.rs::f\" = { sites = 5, reason = \"bounds checked\" }\n";
    let out = run(false, stale, &[("k.rs", src)]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert!(out.warnings.iter().any(|w| w.contains("stale")), "{:?}", out.warnings);

    // New sites beyond the allowance fail, citing the recorded reason.
    let tight = "[allow.index]\n\"k.rs::f\" = { sites = 1, reason = \"bounds checked\" }\n";
    let out = run(false, tight, &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["index"], "{:?}", out.findings);
    assert!(out.findings[0].message.contains("bounds checked"), "{}", out.findings[0].message);

    // An allowance matching nothing is dead config.
    let unused = "[allow.index]\n\"k.rs::gone\" = { sites = 1, reason = \"old\" }\n";
    let out = run(false, unused, &[("k.rs", "pub fn f() {}\n")]);
    assert!(out.warnings.iter().any(|w| w.contains("unused")), "{:?}", out.warnings);
}

#[test]
fn panic_lint_applies_only_to_kernel_crates() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let out = run(true, "", &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["panic"], "{:?}", out.findings);
    let out = run(false, "", &[("k.rs", src)]);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn undeclared_trace_event_is_denied() {
    let src = "pub fn f() {\n    adatm_trace::event!(\"made.up.kind\", x: 1u64);\n}\n";
    let out = run(false, "", &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["schema"], "{:?}", out.findings);
}

#[test]
fn config_listed_hot_fn_needs_no_attribute() {
    let src = "pub fn listed(n: usize) -> Vec<u8> {\n    Vec::with_capacity(n)\n}\n";
    let out = run(false, "[hot]\nfns = [\"listed\"]\n", &[("k.rs", src)]);
    assert_eq!(lints_of(&out), ["alloc"], "{:?}", out.findings);
}

#[test]
fn crate_root_must_forbid_unsafe() {
    assert!(check_forbid_unsafe("lib.rs", "//! A crate.\npub fn f() {}\n").is_some());
    assert!(check_forbid_unsafe(
        "lib.rs",
        "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n"
    )
    .is_none());
}

#[test]
fn one_violation_per_class_in_one_crate_all_surface() {
    let src = "#[adatm::hot]\npub fn hot_fn(a: &[u32], n: usize) -> u32 {\n    \
               let v = vec![0u32; n];\n    a[0] + v.len() as u32\n}\n\
               pub fn p(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
               pub fn t() {\n    adatm_trace::event!(\"nope\", x: 1u64);\n}\n";
    let out = run(true, "", &[("k.rs", src)]);
    let mut lints = lints_of(&out);
    lints.sort_unstable();
    assert_eq!(lints, ["alloc", "index", "panic", "schema"], "{:?}", out.findings);
}
