//! CP-ALS drivers over pluggable MTTKRP backends.
//!
//! This crate is the public face of the workspace: it runs the
//! alternating-least-squares CP decomposition over any of the MTTKRP
//! engines built below it, and wires the model-driven planner in as the
//! default strategy selector.
//!
//! * [`backend`] — the [`backend::MttkrpBackend`] trait and
//!   its implementations: element-wise COO (Tensor-Toolbox class),
//!   SPLATT-style CSF, dimension-tree memoization (any shape), and the
//!   model-driven adaptive backend;
//! * [`cpals`] — the CP-ALS loop: MTTKRP, Hadamard-of-Grams normal
//!   equations, pseudoinverse solve, column normalization, efficient fit;
//! * [`model`] — the decomposition result type [`model::CpModel`];
//! * [`decompose`] / [`decompose_with`] — one-call conveniences.
//!
//! # Quickstart
//!
//! ```
//! use adatm_core::{decompose, CpAlsOptions};
//! use adatm_tensor::gen::dense_low_rank;
//!
//! let truth = dense_low_rank(&[8, 9, 7, 6], 4, 0.0, 7);
//! let result = decompose(&truth.tensor, &CpAlsOptions::new(4).max_iters(60)).unwrap();
//! assert!(result.final_fit() > 0.98); // noiseless low-rank data fits
//! assert!(result.diagnostics.clean()); // no breakdowns, no recoveries
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod completion;
pub mod cpals;
pub mod cpopt;
pub mod diagnostics;
pub mod env;
pub mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod init;
pub mod model;
pub mod ncp;
pub mod tucker;

pub use backend::{
    all_backends, AdaptiveBackend, CooBackend, CsfBackend, DtreeBackend, MttkrpBackend,
};
pub use checkpoint::{
    CheckpointConfig, CheckpointError, CheckpointMedium, CheckpointStore, CheckpointWarning,
    CpCheckpoint, FsMedium, ResumeOutcome,
};
pub use completion::{complete, CompletionOptions, CompletionResult};
pub use cpals::{CpAls, CpAlsOptions, CpResult, PhaseTimings};
pub use cpopt::{cp_opt, CpOptOptions, CpOptResult};
pub use diagnostics::{BreakdownEvent, BreakdownKind, RecoveryAction, RunDiagnostics, StopReason};
pub use error::CpAlsError;
#[cfg(feature = "fault-inject")]
pub use fault::{
    FaultInjectingBackend, FaultKind, FaultSchedule, FaultyMedium, IoFaultKind, IoFaultLog,
    IoFaultSchedule,
};
pub use init::InitStrategy;
pub use model::{factor_match_score, CpModel};
pub use ncp::{ncp, NcpOptions, NcpResult};
pub use tucker::{hooi, TuckerModel, TuckerOptions, TuckerResult};

use adatm_tensor::SparseTensor;

/// Decomposes `tensor` with the model-driven adaptive backend (plan the
/// memoization strategy, then run CP-ALS).
pub fn decompose(tensor: &SparseTensor, opts: &CpAlsOptions) -> Result<CpResult, CpAlsError> {
    let mut backend = AdaptiveBackend::plan(tensor, opts.rank);
    CpAls::new(opts.clone()).run(tensor, &mut backend)
}

/// Decomposes `tensor` with an explicit backend.
pub fn decompose_with<B: MttkrpBackend>(
    tensor: &SparseTensor,
    opts: &CpAlsOptions,
    backend: &mut B,
) -> Result<CpResult, CpAlsError> {
    CpAls::new(opts.clone()).run(tensor, backend)
}
