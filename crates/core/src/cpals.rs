//! The CP-ALS driver.
//!
//! One iteration performs, for each mode `n`:
//!
//! 1. `backend.begin_mode(n)` (memoization invalidation),
//! 2. `M^(n) <- MTTKRP(X, factors, n)` via the backend,
//! 3. `H^(n) <- hadamard_{i != n} W^(i)` with `W^(i) = U^(i)^T U^(i)`
//!    cached and updated incrementally,
//! 4. `U^(n) <- M^(n) pinv(H^(n))`,
//! 5. column-normalize `U^(n)` into `lambda` (2-norm on the first
//!    iteration, max-norm afterwards — the standard practice that keeps
//!    factors well-scaled without re-shrinking converged columns),
//! 6. `W^(n) <- U^(n)^T U^(n)`.
//!
//! The fit `1 - ||X - M|| / ||X||` is computed per iteration at
//! `O(I_N R + R²)` extra cost using the last subiteration's MTTKRP
//! result — no extra pass over the tensor.
//!
//! # Resilience
//!
//! The driver never panics, spins, or returns a NaN-poisoned model on
//! hostile input. Malformed caller input is rejected up front with a
//! typed [`CpAlsError`]; numeric breakdowns mid-run are detected after
//! every mode update and repaired by an escalating sequence of recovery
//! policies:
//!
//! 1. **Tikhonov ridge re-solve** when the Gram system is numerically
//!    singular (condition estimate from the Jacobi eigenvalues the
//!    pseudoinverse already computed) or the dense solve fails;
//! 2. **rollback** to the last-good factor set plus seeded
//!    re-randomization of the offending factor, with all memoized
//!    backend intermediates invalidated (a NaN that reached a
//!    dimension-tree node would otherwise poison every later MTTKRP);
//! 3. **graceful degradation** once the rollback budget is exhausted:
//!    the best-so-far model is returned with `converged = false` and a
//!    diagnostic explaining why.
//!
//! An optional wall-clock budget ([`CpAlsOptions::time_budget`]) is
//! checked at every mode boundary so callers serving traffic get
//! best-so-far results instead of unbounded runs. Everything a detector
//! saw and every recovery taken is recorded in
//! [`CpResult::diagnostics`].

use crate::backend::MttkrpBackend;
use crate::checkpoint::{
    CheckpointConfig, CheckpointError, CheckpointStore, CheckpointView, CpCheckpoint,
};
use crate::diagnostics::{
    BreakdownEvent, BreakdownKind, RecoveryAction, RunDiagnostics, StopReason,
};
use crate::error::CpAlsError;
use crate::init::{init_factors, InitStrategy};
use crate::model::CpModel;
use adatm_linalg::{pinv::ridge_solve_gram, pinv::try_solve_gram, Mat};
use adatm_tensor::SparseTensor;
use std::time::{Duration, Instant};

/// Audit hook: panics when `v` violates its invariants, naming the CP-ALS
/// stage boundary where the corruption was detected.
#[cfg(feature = "audit")]
fn audit_stage(stage: &str, v: &dyn adatm_audit::Validate) {
    if let Err(e) = v.validate() {
        panic!("audit: {stage}: {e}");
    }
}

/// Condition-estimate threshold above which a Gram system is treated as
/// degenerate and re-solved with a ridge.
const COND_LIMIT: f64 = 1e12;

/// Relative ridge applied to a degenerate Gram system (scaled by the
/// largest eigenvalue magnitude, floored at `RIDGE_FLOOR`).
const RIDGE_REL: f64 = 1e-8;

/// Absolute floor for the Tikhonov ridge.
const RIDGE_FLOOR: f64 = 1e-12;

/// Absolute fit drop between consecutive iterations treated as
/// divergence. Healthy ALS sweeps are monotone to rounding; a drop this
/// large means the trajectory has been corrupted.
const DIVERGENCE_DROP: f64 = 0.25;

/// Iterations of fit change below `STALL_EPS` before a stall event is
/// recorded (detection only — with `tol = 0` the caller asked for every
/// iteration to run).
const STALL_WINDOW: usize = 8;

/// Fit-change threshold for stall detection.
const STALL_EPS: f64 = 1e-13;

/// Options for a CP-ALS run.
#[derive(Clone, Debug)]
pub struct CpAlsOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum number of outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit between iterations.
    pub tol: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Factor initialization strategy.
    pub init: InitStrategy,
    /// Optional wall-clock budget, checked at mode boundaries; on expiry
    /// the best-so-far model is returned with
    /// [`StopReason::TimeBudget`].
    pub time_budget: Option<Duration>,
    /// Maximum number of rollback recoveries before the run degrades
    /// gracefully (ridge re-solves are not counted — they are cheap,
    /// deterministic repairs that cannot loop).
    pub recovery_budget: usize,
    /// Drift threshold: when the backend supplies a calibrated
    /// per-iteration prediction and the measured kernel time per
    /// iteration exceeds `prediction * drift_factor`, a
    /// [`BreakdownKind::PredictionDrift`] diagnostic (and a
    /// `drift.warning` trace event) is emitted. `0.0` disables the
    /// check.
    pub drift_factor: f64,
    /// Optional durable-checkpoint config: when set, the driver writes a
    /// rotated, checksummed checkpoint at iteration boundaries on the
    /// configured cadence (and a final one on `TimeBudget` expiry), from
    /// which [`CpAls::resume_from`] continues bitwise-identically.
    pub checkpoint: Option<CheckpointConfig>,
}

impl CpAlsOptions {
    /// Defaults: 50 iterations, tolerance `1e-5`, seed 0, random init, no
    /// time budget, 8 rollback recoveries.
    ///
    /// A rank of 0 is rejected with [`CpAlsError::ZeroRank`] when the
    /// solver runs.
    pub fn new(rank: usize) -> Self {
        CpAlsOptions {
            rank,
            max_iters: 50,
            tol: 1e-5,
            seed: 0,
            init: InitStrategy::Random,
            time_budget: None,
            recovery_budget: 8,
            drift_factor: 2.0,
            checkpoint: None,
        }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the fit-change convergence tolerance (0 disables early stop).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization strategy.
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Sets the wall-clock budget (the watchdog checked at mode
    /// boundaries).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the rollback recovery budget.
    pub fn recovery_budget(mut self, budget: usize) -> Self {
        self.recovery_budget = budget;
        self
    }

    /// Sets the prediction-drift warning threshold (`0.0` disables).
    pub fn drift_factor(mut self, factor: f64) -> Self {
        self.drift_factor = factor;
        self
    }

    /// Enables durable checkpointing with the given config.
    pub fn checkpoint(mut self, cfg: CheckpointConfig) -> Self {
        self.checkpoint = Some(cfg);
        self
    }
}

/// Wall-clock dissection of a run (experiment E10).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time in backend MTTKRP calls.
    pub mttkrp: Duration,
    /// Time in dense work: Grams, Hadamards, pseudoinverse solves,
    /// normalization.
    pub dense: Duration,
    /// Time computing the fit.
    pub fit: Duration,
    /// Time serializing and persisting checkpoints (zero when
    /// checkpointing is disabled). The bench suite gates this phase's
    /// overhead relative to the rest of the iteration.
    pub checkpoint: Duration,
}

impl PhaseTimings {
    /// Total measured time.
    pub fn total(&self) -> Duration {
        self.mttkrp + self.dense + self.fit + self.checkpoint
    }
}

/// Result of a CP-ALS run.
#[derive(Clone, Debug)]
pub struct CpResult {
    /// The decomposition.
    pub model: CpModel,
    /// Number of completed iterations.
    pub iters: usize,
    /// Fit after each iteration.
    pub fit_history: Vec<f64>,
    /// Whether the tolerance stop fired (vs. hitting `max_iters`).
    pub converged: bool,
    /// Phase timings over the whole run.
    pub timings: PhaseTimings,
    /// Breakdown events, recoveries taken, and the stop reason.
    pub diagnostics: RunDiagnostics,
}

impl CpResult {
    /// Fit after the final iteration (0 if no iterations ran).
    pub fn final_fit(&self) -> f64 {
        self.fit_history.last().copied().unwrap_or(0.0)
    }

    /// A compact human-readable run summary: iterations, stop reason,
    /// fit, phase timings, recoveries, and — when the backend supplied a
    /// calibrated prediction — predicted vs measured per-iteration time.
    pub fn trace_summary(&self) -> String {
        let mut s = format!(
            "iters={} stop={:?} fit={:.6} converged={} mttkrp={:.3}ms dense={:.3}ms fit_time={:.3}ms events={} recoveries={}",
            self.iters,
            self.diagnostics.stop,
            self.final_fit(),
            self.converged,
            self.timings.mttkrp.as_secs_f64() * 1e3,
            self.timings.dense.as_secs_f64() * 1e3,
            self.timings.fit.as_secs_f64() * 1e3,
            self.diagnostics.events.len(),
            self.diagnostics.recoveries,
        );
        if let (Some(pred), Some(meas)) =
            (self.diagnostics.predicted_iter_ns, self.diagnostics.measured_iter_ns)
        {
            s.push_str(&format!(
                " predicted_iter={:.0}ns measured_iter={:.0}ns ratio={:.2}",
                pred,
                meas,
                if pred > 0.0 { meas / pred } else { f64::NAN }
            ));
        }
        s
    }
}

/// Watchdog check shared by every stage boundary: when the budget has
/// expired, records the diagnostic (with the stage that detected it),
/// sets the stop reason, and tells the caller to break the run. Checking
/// after MTTKRP and after the dense phase — not just at the top of each
/// mode — bounds the overrun by a single stage rather than a whole
/// mode's worth of kernel work.
fn watchdog_expired(
    start: Instant,
    budget: Option<Duration>,
    iter: usize,
    mode: usize,
    stage: &'static str,
    diag: &mut RunDiagnostics,
) -> bool {
    let Some(budget) = budget else { return false };
    if start.elapsed() < budget {
        return false;
    }
    adatm_trace::event!(
        "watchdog.expired",
        iter: iter as u64,
        mode: mode as u64,
        stage: stage,
        budget_ns: budget.as_nanos() as u64,
        elapsed_ns: start.elapsed().as_nanos() as u64
    );
    diag.record(BreakdownEvent {
        iter,
        mode: Some(mode),
        kind: BreakdownKind::TimeBudgetExpired,
        recovery: RecoveryAction::None,
        recovery_time: Duration::ZERO,
    });
    diag.stop = StopReason::TimeBudget;
    true
}

/// Last-known-good solver state for rollback recoveries.
struct Snapshot {
    factors: Vec<Mat>,
    grams: Vec<Mat>,
    lambda: Vec<f64>,
}

/// Loop state restored from a checkpoint by [`CpAls::resume_from`].
/// Everything the iteration loop reads that is not recomputed from the
/// factors (grams are) must pass through here, or a resumed trajectory
/// diverges from the uninterrupted one.
struct ResumeState {
    start_iter: usize,
    lambda: Vec<f64>,
    fit_history: Vec<f64>,
    best_fit: f64,
    last_good: Option<Snapshot>,
    rollbacks_left: usize,
    recoveries: usize,
    stall_recorded: bool,
    elapsed_base_ns: u64,
}

/// Live checkpointing state for one run: the open store plus cadence
/// tracking.
struct CkptCtx {
    store: CheckpointStore,
    every_iters: usize, // 0: no iteration-count cadence
    every: Option<Duration>,
    last_write: Instant,
}

impl CkptCtx {
    /// Opens the configured store. Failing to open it is a hard, typed
    /// error at run start — a caller that asked for durability should
    /// not silently run without it.
    fn open(cfg: &CheckpointConfig) -> Result<Self, CpAlsError> {
        let store = cfg.build_store().map_err(CpAlsError::Checkpoint)?;
        let every_iters = match (cfg.every_iters, cfg.every) {
            // No cadence configured at all: checkpoint every iteration.
            (None, None) => 1,
            (n, _) => n.unwrap_or(0),
        };
        Ok(CkptCtx { store, every_iters, every: cfg.every, last_write: Instant::now() })
    }

    /// Whether a checkpoint is due after completing `iter` (0-based).
    /// The iteration count is absolute, so a resumed run writes at the
    /// same boundaries the uninterrupted one would.
    fn due(&self, iter: usize) -> bool {
        (self.every_iters > 0 && (iter + 1).is_multiple_of(self.every_iters))
            || self.every.is_some_and(|dt| self.last_write.elapsed() >= dt)
    }
}

/// Writes one checkpoint generation from live solver state. Write
/// failures are non-fatal: durability degrades (earlier generations
/// stay intact), correctness does not, so the run records a
/// [`BreakdownKind::CheckpointWriteFailed`] diagnostic and keeps
/// iterating.
#[allow(clippy::too_many_arguments)]
fn write_checkpoint(
    ck: &mut CkptCtx,
    seed: u64,
    next_iter: usize,
    lambda: &[f64],
    factors: &[Mat],
    fit_history: &[f64],
    best_fit: f64,
    rollbacks_left: usize,
    stall_recorded: bool,
    last_good: &Option<Snapshot>,
    elapsed_ns: u64,
    diag: &mut RunDiagnostics,
    timings: &mut PhaseTimings,
) {
    let t0 = Instant::now();
    let view = CheckpointView {
        seed,
        next_iter,
        lambda,
        factors,
        fit_history,
        best_fit,
        recoveries: diag.recoveries,
        rollbacks_left,
        stall_recorded,
        elapsed_ns,
        last_good: last_good.as_ref().map(|s| (s.lambda.as_slice(), s.factors.as_slice())),
    };
    if ck.store.write(&view).is_err() {
        diag.record(BreakdownEvent {
            iter: next_iter.saturating_sub(1),
            mode: None,
            kind: BreakdownKind::CheckpointWriteFailed,
            recovery: RecoveryAction::None,
            recovery_time: t0.elapsed(),
        });
    }
    ck.last_write = Instant::now();
    timings.checkpoint += t0.elapsed();
}

/// The CP-ALS solver.
#[derive(Clone, Debug)]
pub struct CpAls {
    opts: CpAlsOptions,
}

impl CpAls {
    /// Creates a solver with the given options.
    pub fn new(opts: CpAlsOptions) -> Self {
        CpAls { opts }
    }

    /// Runs CP-ALS on `tensor` with `backend`, starting from a seeded
    /// random initialization.
    ///
    /// Returns [`CpAlsError`] for malformed input (zero rank, too few
    /// modes, non-finite tensor values); numeric breakdowns during the
    /// run are recovered or degrade gracefully and are reported in
    /// [`CpResult::diagnostics`] instead.
    pub fn run<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
    ) -> Result<CpResult, CpAlsError> {
        let factors = init_factors(tensor, self.opts.rank, self.opts.seed, self.opts.init);
        self.run_from(tensor, backend, factors)
    }

    /// Runs CP-ALS from explicit initial factors (each `I_n x R`).
    ///
    /// Factor-shape mismatches and non-finite initial factors are
    /// rejected with a typed error; this entry point never panics on
    /// caller input.
    pub fn run_from<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
        factors: Vec<Mat>,
    ) -> Result<CpResult, CpAlsError> {
        let n = tensor.ndim();
        let rank = self.opts.rank;
        if rank == 0 {
            return Err(CpAlsError::ZeroRank);
        }
        if n < 2 {
            return Err(CpAlsError::TooFewModes { ndim: n });
        }
        if factors.len() != n {
            return Err(CpAlsError::FactorCountMismatch { expected: n, found: factors.len() });
        }
        for (d, f) in factors.iter().enumerate() {
            if f.nrows() != tensor.dims()[d] || f.ncols() != rank {
                return Err(CpAlsError::FactorShapeMismatch {
                    mode: d,
                    expected: (tensor.dims()[d], rank),
                    found: (f.nrows(), f.ncols()),
                });
            }
            if !f.is_finite() {
                return Err(CpAlsError::NonFiniteInit { mode: d });
            }
        }
        if !tensor.vals().iter().all(|v| v.is_finite()) {
            return Err(CpAlsError::NonFiniteTensor);
        }
        #[cfg(feature = "audit")]
        audit_stage("cp-als input tensor", tensor);
        self.run_inner(tensor, backend, factors, None)
    }

    /// Resumes a run from a durable checkpoint (see
    /// [`CheckpointStore::load_latest`]), continuing **bitwise-identically**
    /// to an uninterrupted run with the same options: the restored fit
    /// history keeps the stall/divergence detectors from mistriggering,
    /// and the restored recovery counters keep every reseed RNG stream
    /// aligned. Gram matrices are recomputed from the restored factors
    /// (they are bitwise-pure functions of them).
    ///
    /// The checkpoint must match `tensor` (mode dimensions), the
    /// configured rank, and the configured seed; disagreements return a
    /// typed [`CpAlsError::Checkpoint`] with
    /// [`CheckpointError::Mismatch`] inside.
    pub fn resume_from<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
        ckpt: CpCheckpoint,
    ) -> Result<CpResult, CpAlsError> {
        let n = tensor.ndim();
        let rank = self.opts.rank;
        if rank == 0 {
            return Err(CpAlsError::ZeroRank);
        }
        if n < 2 {
            return Err(CpAlsError::TooFewModes { ndim: n });
        }
        let mismatch = |what: String| CpAlsError::Checkpoint(CheckpointError::Mismatch { what });
        if ckpt.rank() != rank {
            return Err(mismatch(format!(
                "checkpoint rank {} vs requested rank {rank}",
                ckpt.rank()
            )));
        }
        if ckpt.factors.len() != n {
            return Err(mismatch(format!(
                "checkpoint has {} modes, tensor has {n}",
                ckpt.factors.len()
            )));
        }
        for (d, f) in ckpt.factors.iter().enumerate() {
            if f.nrows() != tensor.dims()[d] || f.ncols() != rank {
                return Err(mismatch(format!(
                    "factor {d} is {} x {}, tensor/rank require {} x {rank}",
                    f.nrows(),
                    f.ncols(),
                    tensor.dims()[d]
                )));
            }
            if !f.is_finite() {
                return Err(CpAlsError::NonFiniteInit { mode: d });
            }
        }
        if ckpt.seed != self.opts.seed {
            return Err(mismatch(format!(
                "checkpoint seed {} vs options seed {} — resume with the original seed \
                 for a bitwise-identical trajectory",
                ckpt.seed, self.opts.seed
            )));
        }
        // Rolled-back iterations consume an iteration index without
        // recording a fit, so the history may be shorter than the
        // counter — but never longer.
        if ckpt.fit_history.len() > ckpt.next_iter {
            return Err(mismatch(format!(
                "fit history has {} entries but the iteration counter is only {}",
                ckpt.fit_history.len(),
                ckpt.next_iter
            )));
        }
        if let Some((l, fs)) = &ckpt.last_good {
            let shape_ok = l.len() == rank
                && fs.len() == n
                && fs.iter().zip(tensor.dims()).all(|(m, &d)| m.nrows() == d && m.ncols() == rank);
            if !shape_ok {
                return Err(mismatch("last-good snapshot shape mismatch".to_string()));
            }
            if !fs.iter().all(Mat::is_finite) || !l.iter().all(|v| v.is_finite()) {
                return Err(mismatch("last-good snapshot is non-finite".to_string()));
            }
        }
        if !tensor.vals().iter().all(|v| v.is_finite()) {
            return Err(CpAlsError::NonFiniteTensor);
        }
        #[cfg(feature = "audit")]
        audit_stage("cp-als input tensor", tensor);
        let CpCheckpoint {
            next_iter,
            lambda,
            factors,
            fit_history,
            best_fit,
            recoveries,
            rollbacks_left,
            stall_recorded,
            elapsed_ns,
            last_good,
            ..
        } = ckpt;
        let last_good = last_good.map(|(lambda, factors)| Snapshot {
            grams: factors.iter().map(Mat::gram).collect(),
            factors,
            lambda,
        });
        self.run_inner(
            tensor,
            backend,
            factors,
            Some(ResumeState {
                start_iter: next_iter,
                lambda,
                fit_history,
                best_fit,
                last_good,
                rollbacks_left,
                recoveries,
                stall_recorded,
                elapsed_base_ns: elapsed_ns,
            }),
        )
    }

    /// The shared iteration loop behind [`CpAls::run_from`] (fresh state)
    /// and [`CpAls::resume_from`] (state restored from a checkpoint).
    /// Input validation has already happened in the callers.
    fn run_inner<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
        mut factors: Vec<Mat>,
        resume: Option<ResumeState>,
    ) -> Result<CpResult, CpAlsError> {
        let n = tensor.ndim();
        let rank = self.opts.rank;
        backend.reset();
        let start = Instant::now();
        let mut timings = PhaseTimings::default();
        let mut diag = RunDiagnostics::default();
        let xnorm2 = tensor.fro_norm_sq();
        let (
            start_iter,
            mut lambda,
            mut fit_history,
            mut best_fit,
            mut last_good,
            mut rollbacks_left,
            mut stall_recorded,
            elapsed_base_ns,
        ) = match resume {
            Some(rs) => {
                // Restoring the recovery count keeps the rollback
                // `attempt` counters — and so every reseed stream —
                // aligned with the uninterrupted trajectory.
                diag.recoveries = rs.recoveries;
                (
                    rs.start_iter,
                    rs.lambda,
                    rs.fit_history,
                    rs.best_fit,
                    rs.last_good,
                    rs.rollbacks_left,
                    rs.stall_recorded,
                    rs.elapsed_base_ns,
                )
            }
            None => (
                0,
                vec![1.0; rank],
                Vec::new(),
                f64::NEG_INFINITY,
                None,
                self.opts.recovery_budget,
                false,
                0,
            ),
        };
        // Cached Gram matrices W^(d) = U^(d)^T U^(d).
        let mut grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
        let mut m_buf = Mat::zeros(0, 0);
        // Reusable R x R work matrices: the Hadamard-of-Grams system and
        // the fit Gram. Allocated once; steady-state iterations perform
        // no dense-phase allocations beyond the factor solve itself.
        let mut h_buf = Mat::zeros(rank, rank);
        let mut g_buf = Mat::zeros(rank, rank);
        let mut converged = false;
        let mut iters = start_iter;
        // Checkpointing is pure observation of the loop state: enabling
        // it must not perturb the trajectory (the kill-and-resume tests
        // assert bitwise identity against checkpoint-free runs).
        let mut ckpt = match &self.opts.checkpoint {
            Some(cfg) => Some(CkptCtx::open(cfg)?),
            None => None,
        };
        // Visit modes in the backend's preferred order (for memoizing
        // backends: the tree's leaf order, so every intermediate is
        // computed exactly once per iteration). Any per-iteration
        // permutation is a valid ALS sweep.
        let order = backend.mode_order(n);
        debug_assert!({
            let mut o = order.clone();
            o.sort_unstable();
            o == (0..n).collect::<Vec<_>>()
        });
        let last = order[order.len() - 1];
        let _run_span = adatm_trace::span_guard!(
            "cpals.run",
            backend: backend.name(),
            rank: rank as u64,
            max_iters: self.opts.max_iters as u64,
            ndim: n as u64,
            nnz: tensor.nnz() as u64
        );

        'run: for iter in start_iter..self.opts.max_iters {
            let _iter_span = adatm_trace::span_guard!("cpals.iter", iter: iter as u64);
            let mut iteration_aborted = false;
            for &mode in &order {
                let _mode_span =
                    adatm_trace::span_guard!("cpals.mode", iter: iter as u64, mode: mode as u64);
                // Watchdog: callers serving traffic get best-so-far
                // results instead of unbounded runs. Checked at the top
                // of the mode and again after each kernel stage below, so
                // an overrun is bounded by one stage.
                if watchdog_expired(
                    start,
                    self.opts.time_budget,
                    iter,
                    mode,
                    "pre-mttkrp",
                    &mut diag,
                ) {
                    break 'run;
                }
                let t0 = Instant::now();
                backend.begin_mode(mode);
                if m_buf.nrows() != tensor.dims()[mode] || m_buf.ncols() != rank {
                    m_buf = Mat::zeros(tensor.dims()[mode], rank);
                }
                backend.mttkrp_into(tensor, &factors, mode, &mut m_buf);
                let d_mttkrp = t0.elapsed();
                timings.mttkrp += d_mttkrp;
                adatm_trace::event!(
                    "stage",
                    iter: iter as u64,
                    mode: mode as u64,
                    stage: "mttkrp",
                    elapsed_ns: d_mttkrp.as_nanos() as u64
                );
                // Re-check: a stalled or mispredicted MTTKRP must not let
                // the overrun grow past this one stage.
                if watchdog_expired(
                    start,
                    self.opts.time_budget,
                    iter,
                    mode,
                    "post-mttkrp",
                    &mut diag,
                ) {
                    break 'run;
                }

                // Detector: a poisoned MTTKRP output. Nothing downstream
                // of a NaN here is salvageable for this mode — roll back.
                // (Runs before the audit hook: a non-finite output is a
                // recoverable breakdown here, not an invariant violation.)
                if !m_buf.is_finite() {
                    match self.rollback(
                        BreakdownKind::NonFiniteMttkrp,
                        iter,
                        mode,
                        tensor,
                        backend,
                        &mut factors,
                        &mut grams,
                        &mut lambda,
                        &mut last_good,
                        &mut rollbacks_left,
                        &mut diag,
                    ) {
                        true => {
                            iteration_aborted = true;
                            break;
                        }
                        false => break 'run,
                    }
                }
                #[cfg(feature = "audit")]
                audit_stage("mttkrp output", &m_buf);

                let t1 = Instant::now();
                h_buf.as_mut_slice().fill(1.0);
                for (d, w) in grams.iter().enumerate() {
                    if d != mode {
                        h_buf.hadamard_assign(w);
                    }
                }
                adatm_trace::event!(
                    "stage",
                    iter: iter as u64,
                    mode: mode as u64,
                    stage: "gram",
                    elapsed_ns: t1.elapsed().as_nanos() as u64
                );
                let h = &h_buf;
                // Detector: a poisoned Gram system (possible only if a
                // non-finite factor slipped past an earlier detector or
                // the Hadamard product overflowed).
                if !h.is_finite() {
                    let d_dense = t1.elapsed();
                    timings.dense += d_dense;
                    adatm_trace::event!(
                        "stage",
                        iter: iter as u64,
                        mode: mode as u64,
                        stage: "dense",
                        elapsed_ns: d_dense.as_nanos() as u64
                    );
                    match self.rollback(
                        BreakdownKind::NonFiniteGram,
                        iter,
                        mode,
                        tensor,
                        backend,
                        &mut factors,
                        &mut grams,
                        &mut lambda,
                        &mut last_good,
                        &mut rollbacks_left,
                        &mut diag,
                    ) {
                        true => {
                            iteration_aborted = true;
                            break;
                        }
                        false => break 'run,
                    }
                }

                let t_solve = Instant::now();
                let mut u = match try_solve_gram(&m_buf, h) {
                    Ok((u, info)) => {
                        if info.rank_deficient() || info.cond() > COND_LIMIT {
                            // Detector: degenerate Gram system, condition
                            // estimate read straight off the Jacobi
                            // eigenvalues the pseudoinverse computed.
                            // Recovery: Tikhonov ridge re-solve.
                            let rt = Instant::now();
                            let ridge = (info.max_abs_eig * RIDGE_REL).max(RIDGE_FLOOR);
                            let repaired = ridge_solve_gram(&m_buf, h, ridge).ok();
                            let recovered = repaired.is_some();
                            diag.record(BreakdownEvent {
                                iter,
                                mode: Some(mode),
                                kind: BreakdownKind::SingularGram,
                                recovery: if recovered {
                                    RecoveryAction::RidgeResolve { ridge }
                                } else {
                                    RecoveryAction::None
                                },
                                recovery_time: rt.elapsed(),
                            });
                            repaired.unwrap_or(u)
                        } else {
                            u
                        }
                    }
                    Err(_) => {
                        // Detector: the dense solve itself failed.
                        // Recovery: ridge re-solve; if even that fails,
                        // roll back.
                        let rt = Instant::now();
                        let scale = (0..rank).map(|r| h.get(r, r).abs()).fold(0.0_f64, f64::max);
                        let ridge = (scale * RIDGE_REL).max(RIDGE_FLOOR);
                        match ridge_solve_gram(&m_buf, h, ridge) {
                            Ok(u) => {
                                diag.record(BreakdownEvent {
                                    iter,
                                    mode: Some(mode),
                                    kind: BreakdownKind::SolveFailed,
                                    recovery: RecoveryAction::RidgeResolve { ridge },
                                    recovery_time: rt.elapsed(),
                                });
                                u
                            }
                            Err(_) => {
                                let d_dense = t1.elapsed();
                                timings.dense += d_dense;
                                adatm_trace::event!(
                                    "stage",
                                    iter: iter as u64,
                                    mode: mode as u64,
                                    stage: "dense",
                                    elapsed_ns: d_dense.as_nanos() as u64
                                );
                                match self.rollback(
                                    BreakdownKind::SolveFailed,
                                    iter,
                                    mode,
                                    tensor,
                                    backend,
                                    &mut factors,
                                    &mut grams,
                                    &mut lambda,
                                    &mut last_good,
                                    &mut rollbacks_left,
                                    &mut diag,
                                ) {
                                    true => {
                                        iteration_aborted = true;
                                        break;
                                    }
                                    false => break 'run,
                                }
                            }
                        }
                    }
                };
                adatm_trace::event!(
                    "stage",
                    iter: iter as u64,
                    mode: mode as u64,
                    stage: "solve",
                    elapsed_ns: t_solve.elapsed().as_nanos() as u64
                );
                let t_norm = Instant::now();
                lambda = if iter == 0 { u.normalize_cols() } else { u.normalize_cols_max() };
                // Guard: a zero column (rank deficiency) would poison the
                // model; re-seed it with noise so ALS can recover.
                let mut reseeded = 0;
                for (r, &l) in lambda.iter().enumerate() {
                    if l == 0.0 {
                        let noise = Mat::random(u.nrows(), 1, self.opts.seed ^ 0xdead ^ r as u64);
                        for i in 0..u.nrows() {
                            u.set(i, r, noise.get(i, 0));
                        }
                        reseeded += 1;
                    }
                }
                if reseeded > 0 {
                    diag.record(BreakdownEvent {
                        iter,
                        mode: Some(mode),
                        kind: BreakdownKind::ZeroColumns,
                        recovery: RecoveryAction::ReseedColumns { reseeded_cols: reseeded },
                        recovery_time: Duration::ZERO,
                    });
                }
                // Detector: the updated factor or its scales went
                // non-finite despite a finite system (overflow).
                if !u.is_finite() || !lambda.iter().all(|l| l.is_finite()) {
                    let d_dense = t1.elapsed();
                    timings.dense += d_dense;
                    adatm_trace::event!(
                        "stage",
                        iter: iter as u64,
                        mode: mode as u64,
                        stage: "dense",
                        elapsed_ns: d_dense.as_nanos() as u64
                    );
                    match self.rollback(
                        BreakdownKind::NonFiniteFactor,
                        iter,
                        mode,
                        tensor,
                        backend,
                        &mut factors,
                        &mut grams,
                        &mut lambda,
                        &mut last_good,
                        &mut rollbacks_left,
                        &mut diag,
                    ) {
                        true => {
                            iteration_aborted = true;
                            break;
                        }
                        false => break 'run,
                    }
                }
                grams[mode] = u.gram();
                factors[mode] = u;
                adatm_trace::event!(
                    "stage",
                    iter: iter as u64,
                    mode: mode as u64,
                    stage: "normalize",
                    elapsed_ns: t_norm.elapsed().as_nanos() as u64
                );
                let d_dense = t1.elapsed();
                timings.dense += d_dense;
                adatm_trace::event!(
                    "stage",
                    iter: iter as u64,
                    mode: mode as u64,
                    stage: "dense",
                    elapsed_ns: d_dense.as_nanos() as u64
                );
                #[cfg(feature = "audit")]
                audit_stage("updated factor", &factors[mode]);
                // Re-check: bound a dense-phase overrun by this stage too.
                if watchdog_expired(
                    start,
                    self.opts.time_budget,
                    iter,
                    mode,
                    "post-dense",
                    &mut diag,
                ) {
                    break 'run;
                }
            }
            if iteration_aborted {
                // The recovery consumed this iteration slot; restart the
                // sweep from the repaired state.
                continue;
            }

            // Efficient fit from the last subiteration: with every factor
            // now normalized and lambda holding the last-updated mode's
            // scales, <X, model> = sum_r lambda_r <M(:, r), U(:, r)> for
            // that mode.
            let t2 = Instant::now();
            let mut inner = 0.0;
            for (r, &l) in lambda.iter().enumerate() {
                inner += l * m_buf.col_dot(&factors[last], r);
            }
            g_buf.as_mut_slice().fill(1.0);
            for w in &grams {
                g_buf.hadamard_assign(w);
            }
            let mnorm2 = g_buf.weighted_quad(&lambda, &lambda).max(0.0);
            let resid2 = (xnorm2 - 2.0 * inner + mnorm2).max(0.0);
            let fit = if xnorm2 > 0.0 { 1.0 - (resid2 / xnorm2).sqrt() } else { 0.0 };
            let d_fit = t2.elapsed();
            timings.fit += d_fit;
            adatm_trace::event!(
                "stage",
                iter: iter as u64,
                stage: "fit",
                elapsed_ns: d_fit.as_nanos() as u64,
                fit: fit
            );

            let prev = fit_history.last().copied();
            // Detector: fit divergence. Healthy sweeps are monotone to
            // rounding; a sharp drop or a non-finite fit means the state
            // is corrupted beyond local repair. Restore the best earlier
            // state and stop.
            let diverged =
                !fit.is_finite() || prev.map(|p| fit < p - DIVERGENCE_DROP).unwrap_or(false);
            if diverged {
                let rt = Instant::now();
                if let Some(snap) = &last_good {
                    factors.clone_from(&snap.factors);
                    lambda.clone_from(&snap.lambda);
                }
                diag.record(BreakdownEvent {
                    iter,
                    mode: None,
                    kind: BreakdownKind::FitDivergence,
                    recovery: RecoveryAction::Degrade,
                    recovery_time: rt.elapsed(),
                });
                diag.stop = StopReason::Diverged;
                diag.degraded = true;
                break;
            }

            iters = iter + 1;
            fit_history.push(fit);
            // Detector: a stalled run with early stopping disabled.
            // Detection only — the caller asked for every iteration.
            if !stall_recorded && self.opts.tol == 0.0 && fit_history.len() >= STALL_WINDOW {
                let win = &fit_history[fit_history.len() - STALL_WINDOW..];
                let spread = win.iter().fold(f64::NEG_INFINITY, |m, &f| m.max(f))
                    - win.iter().fold(f64::INFINITY, |m, &f| m.min(f));
                if spread < STALL_EPS {
                    stall_recorded = true;
                    diag.record(BreakdownEvent {
                        iter,
                        mode: None,
                        kind: BreakdownKind::FitStall,
                        recovery: RecoveryAction::None,
                        recovery_time: Duration::ZERO,
                    });
                }
            }
            if fit >= best_fit {
                best_fit = fit;
                last_good = Some(Snapshot {
                    factors: factors.clone(),
                    grams: grams.clone(),
                    lambda: lambda.clone(),
                });
            }
            // Iteration-boundary checkpoint. Cadence is keyed on the
            // absolute iteration number, so a resumed run writes at the
            // same boundaries as the uninterrupted one; aborted
            // (rolled-back) iterations never reach this point in either.
            if let Some(ck) = ckpt.as_mut() {
                if ck.due(iter) {
                    write_checkpoint(
                        ck,
                        self.opts.seed,
                        iter + 1,
                        &lambda,
                        &factors,
                        &fit_history,
                        best_fit,
                        rollbacks_left,
                        stall_recorded,
                        &last_good,
                        elapsed_base_ns + start.elapsed().as_nanos() as u64,
                        &mut diag,
                        &mut timings,
                    );
                }
            }
            if let Some(p) = prev {
                if self.opts.tol > 0.0 && (fit - p).abs() < self.opts.tol {
                    converged = true;
                    diag.stop = StopReason::Converged;
                    break;
                }
            }
        }

        // Durability on watchdog expiry: the loop above only checkpoints
        // at iteration boundaries it completed, so a time-budget stop
        // mid-iteration would otherwise lose everything since the last
        // cadence hit. Persist the best-so-far state before returning.
        if diag.stop == StopReason::TimeBudget {
            if let Some(ck) = ckpt.as_mut() {
                write_checkpoint(
                    ck,
                    self.opts.seed,
                    iters,
                    &lambda,
                    &factors,
                    &fit_history,
                    best_fit,
                    rollbacks_left,
                    stall_recorded,
                    &last_good,
                    elapsed_base_ns + start.elapsed().as_nanos() as u64,
                    &mut diag,
                    &mut timings,
                );
            }
        }

        // A degraded run may still hold non-finite working state if no
        // last-good snapshot existed; the rollback path guarantees the
        // factors it leaves behind are finite, so this is belt and
        // braces for the model we hand back.
        debug_assert!(factors.iter().all(Mat::is_finite));
        diag.elapsed = start.elapsed();
        // Drift detector: with a calibrated backend, compare its
        // per-iteration prediction against the measured kernel time
        // (MTTKRP + dense, the phases the model prices). A large excess
        // means the profile is stale or the model mispriced this tensor.
        diag.predicted_iter_ns = backend.predicted_iter_ns();
        if iters > 0 {
            let kernel_ns = (timings.mttkrp + timings.dense).as_nanos() as f64;
            let measured = kernel_ns / iters as f64;
            diag.measured_iter_ns = Some(measured);
            if let Some(predicted) = diag.predicted_iter_ns {
                adatm_trace::event!(
                    "drift.check",
                    predicted_ns: predicted,
                    measured_ns: measured,
                    factor: self.opts.drift_factor
                );
                if self.opts.drift_factor > 0.0
                    && predicted > 0.0
                    && measured > predicted * self.opts.drift_factor
                {
                    adatm_trace::event!(
                        "drift.warning",
                        predicted_ns: predicted,
                        measured_ns: measured,
                        ratio: measured / predicted,
                        factor: self.opts.drift_factor
                    );
                    diag.record(BreakdownEvent {
                        iter: iters - 1,
                        mode: None,
                        kind: BreakdownKind::PredictionDrift,
                        recovery: RecoveryAction::None,
                        recovery_time: Duration::ZERO,
                    });
                }
            }
        }
        #[cfg(feature = "audit")]
        adatm_audit::validate_factors(&factors, tensor.dims(), rank)
            .unwrap_or_else(|e| panic!("audit: final factor set: {e}"));
        Ok(CpResult {
            model: CpModel { lambda, factors },
            iters,
            fit_history,
            converged,
            timings,
            diagnostics: diag,
        })
    }

    /// Rollback recovery: restore the last-good factor set (or reseed
    /// everything if no good state exists yet), re-randomize the
    /// offending mode, and invalidate all memoized backend state.
    ///
    /// Returns `true` if the run should continue with the repaired state
    /// and `false` when the rollback budget is exhausted — in which case
    /// the state has been restored to the best-so-far model and the run
    /// must degrade gracefully.
    #[allow(clippy::too_many_arguments)]
    fn rollback<B: MttkrpBackend + ?Sized>(
        &self,
        kind: BreakdownKind,
        iter: usize,
        mode: usize,
        tensor: &SparseTensor,
        backend: &mut B,
        factors: &mut Vec<Mat>,
        grams: &mut Vec<Mat>,
        lambda: &mut Vec<f64>,
        last_good: &mut Option<Snapshot>,
        rollbacks_left: &mut usize,
        diag: &mut RunDiagnostics,
    ) -> bool {
        let rt = Instant::now();
        let rank = self.opts.rank;
        let attempt = diag.recoveries as u64;
        let restore = |factors: &mut Vec<Mat>, grams: &mut Vec<Mat>, lambda: &mut Vec<f64>| {
            if let Some(snap) = last_good.as_ref() {
                factors.clone_from(&snap.factors);
                grams.clone_from(&snap.grams);
                lambda.clone_from(&snap.lambda);
            } else {
                // No good state yet: reseed every factor from a
                // recovery-derived seed so the restart is deterministic
                // but different from the poisoned trajectory.
                let seed = self.opts.seed ^ 0x5eed_0000 ^ (attempt + 1);
                for (d, f) in factors.iter_mut().enumerate() {
                    *f = Mat::random(tensor.dims()[d], rank, seed ^ ((d as u64) << 16));
                }
                *grams = factors.iter().map(Mat::gram).collect();
                *lambda = vec![1.0; rank];
            }
        };
        if *rollbacks_left == 0 {
            restore(factors, grams, lambda);
            diag.record(BreakdownEvent {
                iter,
                mode: Some(mode),
                kind,
                recovery: RecoveryAction::Degrade,
                recovery_time: rt.elapsed(),
            });
            diag.stop = StopReason::Degraded;
            diag.degraded = true;
            backend.reset();
            return false;
        }
        *rollbacks_left -= 1;
        restore(factors, grams, lambda);
        // Re-randomize the offending mode so the deterministic re-sweep
        // does not just reproduce the breakdown.
        let reseed =
            self.opts.seed ^ 0xbad0_0000 ^ ((iter as u64) << 24) ^ ((mode as u64) << 8) ^ attempt;
        factors[mode] = Mat::random(tensor.dims()[mode], rank, reseed);
        grams[mode] = factors[mode].gram();
        // Memoized intermediates may hold the poisoned values; flush
        // everything.
        backend.reset();
        diag.record(BreakdownEvent {
            iter,
            mode: Some(mode),
            kind,
            recovery: RecoveryAction::Rollback { reseeded_cols: rank },
            recovery_time: rt.elapsed(),
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{all_backends, AdaptiveBackend, CooBackend, CsfBackend, DtreeBackend};
    use adatm_tensor::gen::{dense_low_rank, low_rank_tensor, zipf_tensor};

    #[test]
    fn recovers_noiseless_low_rank_tensor() {
        let truth = dense_low_rank(&[12, 14, 10], 3, 0.0, 11);
        let mut backend = CooBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(60).seed(5))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        assert!(res.final_fit() > 0.99, "fit {} after {} iters", res.final_fit(), res.iters);
    }

    #[test]
    fn fit_history_is_essentially_monotone() {
        let truth = low_rank_tensor(&[20, 25, 15, 18], 4, 2_000, 0.05, 3);
        let mut backend = DtreeBackend::balanced_binary(&truth.tensor, 4);
        let res = CpAls::new(CpAlsOptions::new(4).max_iters(25).tol(0.0).seed(1))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        assert_eq!(res.iters, 25);
        for w in res.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fit regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn all_backends_converge_to_same_fit() {
        let truth = low_rank_tensor(&[18, 22, 16, 14], 3, 1_500, 0.01, 8);
        let t = &truth.tensor;
        let opts = CpAlsOptions::new(3).max_iters(15).tol(0.0).seed(42);
        let mut fits = Vec::new();
        for mut b in all_backends(t, 3) {
            let res = CpAls::new(opts.clone()).run(t, &mut b).unwrap();
            fits.push((b.name(), b.mode_order(4), res.final_fit()));
        }
        // Backends sharing the natural mode order must match to rounding;
        // a backend with a permuted sweep order (the adaptive planner may
        // reorder) takes a different but equally valid ALS trajectory.
        let natural: Vec<usize> = (0..4).collect();
        let baseline = fits[0].2;
        for (name, order, fit) in &fits {
            if *order == natural {
                assert!((fit - baseline).abs() < 1e-8, "{name} fit {fit} differs from {baseline}");
            } else {
                assert!(
                    (fit - baseline).abs() < 0.05,
                    "{name} (permuted order) fit {fit} far from {baseline}"
                );
            }
        }
    }

    #[test]
    fn reported_fit_matches_model_fit_to() {
        let truth = low_rank_tensor(&[15, 20, 12], 2, 800, 0.1, 9);
        let mut backend = CsfBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(10).tol(0.0).seed(7))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        let direct = res.model.fit_to(&truth.tensor);
        assert!(
            (res.final_fit() - direct).abs() < 1e-8,
            "loop fit {} vs direct {}",
            res.final_fit(),
            direct
        );
    }

    #[test]
    fn convergence_stop_fires() {
        let truth = dense_low_rank(&[10, 10, 10], 2, 0.0, 2);
        let mut backend = CooBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(200).tol(1e-7).seed(3))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        assert!(res.converged, "should converge well before 200 iterations");
        assert!(res.iters < 200);
        assert_eq!(res.diagnostics.stop, StopReason::Converged);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = zipf_tensor(&[15, 18, 12], 500, &[0.5; 3], 6);
        let opts = CpAlsOptions::new(3).max_iters(5).tol(0.0).seed(77);
        let mut b1 = CooBackend::new(&t);
        let mut b2 = CooBackend::with_parallel(&t, false);
        let r1 = CpAls::new(opts.clone()).run(&t, &mut b1).unwrap();
        let r2 = CpAls::new(opts).run(&t, &mut b2).unwrap();
        // Parallel and sequential COO sum in different orders, so allow
        // floating-point slack but require the same trajectory.
        for (a, b) in r1.fit_history.iter().zip(r2.fit_history.iter()) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn timings_cover_phases() {
        let truth = low_rank_tensor(&[25, 25, 25], 3, 2_000, 0.0, 5);
        let mut backend = AdaptiveBackend::plan(&truth.tensor, 3);
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(5).tol(0.0))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        assert!(res.timings.mttkrp > Duration::ZERO);
        assert!(res.timings.dense > Duration::ZERO);
        assert!(res.timings.total() > Duration::ZERO);
    }

    #[test]
    fn run_from_accepts_custom_init() {
        let truth = dense_low_rank(&[12, 14, 10], 2, 0.0, 4);
        let t = &truth.tensor;
        let mut backend = CooBackend::new(t);
        // Initialize at the ground truth: fit should be ~1 after one sweep.
        let init = truth.factors.clone();
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(2).tol(0.0))
            .run_from(t, &mut backend, init)
            .unwrap();
        assert!(res.final_fit() > 0.999, "fit {}", res.final_fit());
    }

    #[test]
    fn run_from_rejects_bad_rank() {
        let t = zipf_tensor(&[10, 10], 50, &[0.0; 2], 1);
        let mut backend = CooBackend::new(&t);
        let bad = vec![Mat::zeros(10, 3), Mat::zeros(10, 3)];
        let err = CpAls::new(CpAlsOptions::new(2)).run_from(&t, &mut backend, bad).unwrap_err();
        assert!(matches!(err, CpAlsError::FactorShapeMismatch { mode: 0, .. }));
    }

    #[test]
    fn run_rejects_malformed_input_without_panicking() {
        let t = zipf_tensor(&[10, 12], 50, &[0.0; 2], 1);
        let mut backend = CooBackend::new(&t);
        // Zero rank.
        let err = CpAls::new(CpAlsOptions::new(0)).run(&t, &mut backend).unwrap_err();
        assert_eq!(err, CpAlsError::ZeroRank);
        // Wrong factor count.
        let err = CpAls::new(CpAlsOptions::new(2))
            .run_from(&t, &mut backend, vec![Mat::zeros(10, 2)])
            .unwrap_err();
        assert_eq!(err, CpAlsError::FactorCountMismatch { expected: 2, found: 1 });
        // Non-finite initial factor.
        let mut bad = Mat::zeros(10, 2);
        bad.set(3, 1, f64::NAN);
        let err = CpAls::new(CpAlsOptions::new(2))
            .run_from(&t, &mut backend, vec![bad, Mat::zeros(12, 2)])
            .unwrap_err();
        assert_eq!(err, CpAlsError::NonFiniteInit { mode: 0 });
    }

    #[test]
    fn run_rejects_non_finite_tensor() {
        let mut t = zipf_tensor(&[8, 9], 40, &[0.0; 2], 2);
        t.vals_mut()[7] = f64::NAN;
        let mut backend = CooBackend::new(&t);
        let err = CpAls::new(CpAlsOptions::new(2)).run(&t, &mut backend).unwrap_err();
        assert_eq!(err, CpAlsError::NonFiniteTensor);
    }

    #[test]
    fn clean_run_reports_clean_diagnostics() {
        let truth = dense_low_rank(&[10, 11, 9], 2, 0.0, 3);
        let mut backend = CooBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(10).seed(1))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        assert_eq!(res.diagnostics.recoveries, 0);
        assert!(!res.diagnostics.degraded);
        assert!(res.diagnostics.elapsed > Duration::ZERO);
    }

    #[test]
    fn zero_max_iters_returns_finite_empty_run() {
        let t = zipf_tensor(&[10, 10, 10], 100, &[0.0; 3], 4);
        let mut backend = CooBackend::new(&t);
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(0)).run(&t, &mut backend).unwrap();
        assert_eq!(res.iters, 0);
        assert!(res.fit_history.is_empty());
        assert!(!res.converged);
        assert!(res.model.factors.iter().all(Mat::is_finite));
        assert_eq!(res.diagnostics.stop, StopReason::MaxIters);
    }

    #[test]
    fn zero_time_budget_expires_on_iteration_zero() {
        let t = zipf_tensor(&[10, 10, 10], 100, &[0.0; 3], 4);
        let mut backend = CooBackend::new(&t);
        let res = CpAls::new(CpAlsOptions::new(3).max_iters(50).time_budget(Duration::ZERO))
            .run(&t, &mut backend)
            .unwrap();
        assert_eq!(res.iters, 0);
        assert!(!res.converged);
        assert_eq!(res.diagnostics.stop, StopReason::TimeBudget);
        assert_eq!(res.diagnostics.count_of(BreakdownKind::TimeBudgetExpired), 1);
        assert!(res.model.factors.iter().all(Mat::is_finite));
    }
}
