//! The CP-ALS driver.
//!
//! One iteration performs, for each mode `n`:
//!
//! 1. `backend.begin_mode(n)` (memoization invalidation),
//! 2. `M^(n) <- MTTKRP(X, factors, n)` via the backend,
//! 3. `H^(n) <- hadamard_{i != n} W^(i)` with `W^(i) = U^(i)^T U^(i)`
//!    cached and updated incrementally,
//! 4. `U^(n) <- M^(n) pinv(H^(n))`,
//! 5. column-normalize `U^(n)` into `lambda` (2-norm on the first
//!    iteration, max-norm afterwards — the standard practice that keeps
//!    factors well-scaled without re-shrinking converged columns),
//! 6. `W^(n) <- U^(n)^T U^(n)`.
//!
//! The fit `1 - ||X - M|| / ||X||` is computed per iteration at
//! `O(I_N R + R²)` extra cost using the last subiteration's MTTKRP
//! result — no extra pass over the tensor.

use crate::backend::MttkrpBackend;
use crate::init::{init_factors, InitStrategy};
use crate::model::CpModel;
use adatm_linalg::{pinv::solve_gram, Mat};
use adatm_tensor::SparseTensor;
use std::time::{Duration, Instant};

/// Audit hook: panics when `v` violates its invariants, naming the CP-ALS
/// stage boundary where the corruption was detected.
#[cfg(feature = "audit")]
fn audit_stage(stage: &str, v: &dyn adatm_audit::Validate) {
    if let Err(e) = v.validate() {
        panic!("audit: {stage}: {e}");
    }
}

/// Options for a CP-ALS run.
#[derive(Clone, Debug)]
pub struct CpAlsOptions {
    /// Decomposition rank `R`.
    pub rank: usize,
    /// Maximum number of outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit between iterations.
    pub tol: f64,
    /// Seed for the random factor initialization.
    pub seed: u64,
    /// Factor initialization strategy.
    pub init: InitStrategy,
}

impl CpAlsOptions {
    /// Defaults: 50 iterations, tolerance `1e-5`, seed 0, random init.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        CpAlsOptions { rank, max_iters: 50, tol: 1e-5, seed: 0, init: InitStrategy::Random }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the fit-change convergence tolerance (0 disables early stop).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the initialization strategy.
    pub fn init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }
}

/// Wall-clock dissection of a run (experiment E10).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time in backend MTTKRP calls.
    pub mttkrp: Duration,
    /// Time in dense work: Grams, Hadamards, pseudoinverse solves,
    /// normalization.
    pub dense: Duration,
    /// Time computing the fit.
    pub fit: Duration,
}

impl PhaseTimings {
    /// Total measured time.
    pub fn total(&self) -> Duration {
        self.mttkrp + self.dense + self.fit
    }
}

/// Result of a CP-ALS run.
#[derive(Clone, Debug)]
pub struct CpResult {
    /// The decomposition.
    pub model: CpModel,
    /// Number of completed iterations.
    pub iters: usize,
    /// Fit after each iteration.
    pub fit_history: Vec<f64>,
    /// Whether the tolerance stop fired (vs. hitting `max_iters`).
    pub converged: bool,
    /// Phase timings over the whole run.
    pub timings: PhaseTimings,
}

impl CpResult {
    /// Fit after the final iteration (0 if no iterations ran).
    pub fn final_fit(&self) -> f64 {
        self.fit_history.last().copied().unwrap_or(0.0)
    }
}

/// The CP-ALS solver.
#[derive(Clone, Debug)]
pub struct CpAls {
    opts: CpAlsOptions,
}

impl CpAls {
    /// Creates a solver with the given options.
    pub fn new(opts: CpAlsOptions) -> Self {
        CpAls { opts }
    }

    /// Runs CP-ALS on `tensor` with `backend`, starting from a seeded
    /// random initialization.
    pub fn run<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
    ) -> CpResult {
        let factors = init_factors(tensor, self.opts.rank, self.opts.seed, self.opts.init);
        self.run_from(tensor, backend, factors)
    }

    /// Runs CP-ALS from explicit initial factors (each `I_n x R`).
    ///
    /// # Panics
    /// Panics on factor-shape mismatches.
    pub fn run_from<B: MttkrpBackend + ?Sized>(
        &self,
        tensor: &SparseTensor,
        backend: &mut B,
        mut factors: Vec<Mat>,
    ) -> CpResult {
        let n = tensor.ndim();
        let rank = self.opts.rank;
        assert!(n >= 2, "CP-ALS needs at least 2 modes");
        assert_eq!(factors.len(), n, "one initial factor per mode");
        for (d, f) in factors.iter().enumerate() {
            assert_eq!(f.nrows(), tensor.dims()[d], "factor {d} rows mismatch");
            assert_eq!(f.ncols(), rank, "factor {d} rank mismatch");
        }
        #[cfg(feature = "audit")]
        audit_stage("cp-als input tensor", tensor);
        backend.reset();
        let mut timings = PhaseTimings::default();
        let xnorm2 = tensor.fro_norm_sq();
        let mut lambda = vec![1.0; rank];
        // Cached Gram matrices W^(d) = U^(d)^T U^(d).
        let mut grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
        let mut m_buf = Mat::zeros(0, 0);
        let mut fit_history = Vec::new();
        let mut converged = false;
        let mut iters = 0;
        // Visit modes in the backend's preferred order (for memoizing
        // backends: the tree's leaf order, so every intermediate is
        // computed exactly once per iteration). Any per-iteration
        // permutation is a valid ALS sweep.
        let order = backend.mode_order(n);
        debug_assert!({
            let mut o = order.clone();
            o.sort_unstable();
            o == (0..n).collect::<Vec<_>>()
        });
        let last = *order.last().expect("at least one mode");

        for iter in 0..self.opts.max_iters {
            for &mode in &order {
                let t0 = Instant::now();
                backend.begin_mode(mode);
                if m_buf.nrows() != tensor.dims()[mode] || m_buf.ncols() != rank {
                    m_buf = Mat::zeros(tensor.dims()[mode], rank);
                }
                backend.mttkrp_into(tensor, &factors, mode, &mut m_buf);
                timings.mttkrp += t0.elapsed();
                #[cfg(feature = "audit")]
                audit_stage("mttkrp output", &m_buf);

                let t1 = Instant::now();
                let mut h = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
                for (d, w) in grams.iter().enumerate() {
                    if d != mode {
                        h.hadamard_assign(w);
                    }
                }
                let mut u = solve_gram(&m_buf, &h);
                lambda = if iter == 0 { u.normalize_cols() } else { u.normalize_cols_max() };
                // Guard: a zero column (rank deficiency) would poison the
                // model; re-seed it with noise so ALS can recover.
                for (r, &l) in lambda.iter().enumerate() {
                    if l == 0.0 {
                        let noise = Mat::random(u.nrows(), 1, self.opts.seed ^ 0xdead ^ r as u64);
                        for i in 0..u.nrows() {
                            u.set(i, r, noise.get(i, 0));
                        }
                    }
                }
                grams[mode] = u.gram();
                factors[mode] = u;
                timings.dense += t1.elapsed();
                #[cfg(feature = "audit")]
                audit_stage("updated factor", &factors[mode]);
            }

            // Efficient fit from the last subiteration: with every factor
            // now normalized and lambda holding the last-updated mode's
            // scales, <X, model> = sum_r lambda_r <M(:, r), U(:, r)> for
            // that mode.
            let t2 = Instant::now();
            let mut inner = 0.0;
            for (r, &l) in lambda.iter().enumerate() {
                inner += l * m_buf.col_dot(&factors[last], r);
            }
            let mut g = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
            for w in &grams {
                g.hadamard_assign(w);
            }
            let mnorm2 = g.weighted_quad(&lambda, &lambda).max(0.0);
            let resid2 = (xnorm2 - 2.0 * inner + mnorm2).max(0.0);
            let fit = if xnorm2 > 0.0 { 1.0 - (resid2 / xnorm2).sqrt() } else { 0.0 };
            timings.fit += t2.elapsed();

            iters = iter + 1;
            let prev = fit_history.last().copied();
            fit_history.push(fit);
            if let Some(p) = prev {
                if self.opts.tol > 0.0 && (fit - p).abs() < self.opts.tol {
                    converged = true;
                    break;
                }
            }
        }

        #[cfg(feature = "audit")]
        adatm_audit::validate_factors(&factors, tensor.dims(), rank)
            .unwrap_or_else(|e| panic!("audit: final factor set: {e}"));
        CpResult { model: CpModel { lambda, factors }, iters, fit_history, converged, timings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{all_backends, AdaptiveBackend, CooBackend, CsfBackend, DtreeBackend};
    use adatm_tensor::gen::{dense_low_rank, low_rank_tensor, zipf_tensor};

    #[test]
    fn recovers_noiseless_low_rank_tensor() {
        let truth = dense_low_rank(&[12, 14, 10], 3, 0.0, 11);
        let mut backend = CooBackend::new(&truth.tensor);
        let res =
            CpAls::new(CpAlsOptions::new(3).max_iters(60).seed(5)).run(&truth.tensor, &mut backend);
        assert!(res.final_fit() > 0.99, "fit {} after {} iters", res.final_fit(), res.iters);
    }

    #[test]
    fn fit_history_is_essentially_monotone() {
        let truth = low_rank_tensor(&[20, 25, 15, 18], 4, 2_000, 0.05, 3);
        let mut backend = DtreeBackend::balanced_binary(&truth.tensor, 4);
        let res = CpAls::new(CpAlsOptions::new(4).max_iters(25).tol(0.0).seed(1))
            .run(&truth.tensor, &mut backend);
        assert_eq!(res.iters, 25);
        for w in res.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "fit regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn all_backends_converge_to_same_fit() {
        let truth = low_rank_tensor(&[18, 22, 16, 14], 3, 1_500, 0.01, 8);
        let t = &truth.tensor;
        let opts = CpAlsOptions::new(3).max_iters(15).tol(0.0).seed(42);
        let mut fits = Vec::new();
        for mut b in all_backends(t, 3) {
            let res = CpAls::new(opts.clone()).run(t, &mut b);
            fits.push((b.name(), b.mode_order(4), res.final_fit()));
        }
        // Backends sharing the natural mode order must match to rounding;
        // a backend with a permuted sweep order (the adaptive planner may
        // reorder) takes a different but equally valid ALS trajectory.
        let natural: Vec<usize> = (0..4).collect();
        let baseline = fits[0].2;
        for (name, order, fit) in &fits {
            if *order == natural {
                assert!((fit - baseline).abs() < 1e-8, "{name} fit {fit} differs from {baseline}");
            } else {
                assert!(
                    (fit - baseline).abs() < 0.05,
                    "{name} (permuted order) fit {fit} far from {baseline}"
                );
            }
        }
    }

    #[test]
    fn reported_fit_matches_model_fit_to() {
        let truth = low_rank_tensor(&[15, 20, 12], 2, 800, 0.1, 9);
        let mut backend = CsfBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(10).tol(0.0).seed(7))
            .run(&truth.tensor, &mut backend);
        let direct = res.model.fit_to(&truth.tensor);
        assert!(
            (res.final_fit() - direct).abs() < 1e-8,
            "loop fit {} vs direct {}",
            res.final_fit(),
            direct
        );
    }

    #[test]
    fn convergence_stop_fires() {
        let truth = dense_low_rank(&[10, 10, 10], 2, 0.0, 2);
        let mut backend = CooBackend::new(&truth.tensor);
        let res = CpAls::new(CpAlsOptions::new(2).max_iters(200).tol(1e-7).seed(3))
            .run(&truth.tensor, &mut backend);
        assert!(res.converged, "should converge well before 200 iterations");
        assert!(res.iters < 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = zipf_tensor(&[15, 18, 12], 500, &[0.5; 3], 6);
        let opts = CpAlsOptions::new(3).max_iters(5).tol(0.0).seed(77);
        let mut b1 = CooBackend::new(&t);
        let mut b2 = CooBackend::with_parallel(&t, false);
        let r1 = CpAls::new(opts.clone()).run(&t, &mut b1);
        let r2 = CpAls::new(opts).run(&t, &mut b2);
        // Parallel and sequential COO sum in different orders, so allow
        // floating-point slack but require the same trajectory.
        for (a, b) in r1.fit_history.iter().zip(r2.fit_history.iter()) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn timings_cover_phases() {
        let truth = low_rank_tensor(&[25, 25, 25], 3, 2_000, 0.0, 5);
        let mut backend = AdaptiveBackend::plan(&truth.tensor, 3);
        let res =
            CpAls::new(CpAlsOptions::new(3).max_iters(5).tol(0.0)).run(&truth.tensor, &mut backend);
        assert!(res.timings.mttkrp > Duration::ZERO);
        assert!(res.timings.dense > Duration::ZERO);
        assert!(res.timings.total() > Duration::ZERO);
    }

    #[test]
    fn run_from_accepts_custom_init() {
        let truth = dense_low_rank(&[12, 14, 10], 2, 0.0, 4);
        let t = &truth.tensor;
        let mut backend = CooBackend::new(t);
        // Initialize at the ground truth: fit should be ~1 after one sweep.
        let init = truth.factors.clone();
        let res =
            CpAls::new(CpAlsOptions::new(2).max_iters(2).tol(0.0)).run_from(t, &mut backend, init);
        assert!(res.final_fit() > 0.999, "fit {}", res.final_fit());
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn run_from_rejects_bad_rank() {
        let t = zipf_tensor(&[10, 10], 50, &[0.0; 2], 1);
        let mut backend = CooBackend::new(&t);
        let bad = vec![Mat::zeros(10, 3), Mat::zeros(10, 3)];
        let _ = CpAls::new(CpAlsOptions::new(2)).run_from(&t, &mut backend, bad);
    }
}
