//! MTTKRP backends: the engines CP-ALS alternates over.
//!
//! Each backend owns whatever preprocessed representation it needs (sorted
//! views, CSF forests, dimension-tree symbolic structure) and produces the
//! mode-`n` MTTKRP on demand. The [`MttkrpBackend::begin_mode`] hook
//! exists for memoizing backends: the dimension-tree protocol must
//! invalidate stale intermediates before each subiteration.

use adatm_dtree::{DtreeEngine, EngineOptions, TreeShape};
use adatm_linalg::Mat;
use adatm_model::{KernelProfile, MemoPlan, NnzEstimator, Planner};
use adatm_tensor::csf::CsfSet;
use adatm_tensor::mttkrp::{mttkrp_par_into, mttkrp_seq_into, schedule_for_view};
use adatm_tensor::schedule::{ModeSchedule, Workspace};
use adatm_tensor::{SortedModeView, SparseTensor};

/// An engine that computes MTTKRPs for CP-ALS.
pub trait MttkrpBackend {
    /// Called at the start of the subiteration that will update
    /// `U^(mode)`, *before* [`MttkrpBackend::mttkrp_into`]. Memoizing
    /// backends invalidate intermediates that involve `U^(mode)` here.
    fn begin_mode(&mut self, mode: usize) {
        let _ = mode;
    }

    /// Computes the mode-`mode` MTTKRP of `tensor` with the current
    /// `factors` into `out` (an `I_mode x R` matrix, overwritten).
    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat);

    /// Invalidates all cached numeric state (call after re-initializing
    /// factors outside the ALS protocol).
    fn reset(&mut self) {}

    /// The order in which CP-ALS subiterations should visit the modes.
    ///
    /// Non-memoizing backends are order-indifferent (natural order).
    /// Dimension-tree backends return their tree's left-to-right leaf
    /// sequence: visiting modes in that order is what guarantees every
    /// memoized node is computed exactly once per iteration (a subtree's
    /// leaves are contiguous in it, so a node stays valid precisely while
    /// the iteration works inside its subtree).
    fn mode_order(&self, ndim: usize) -> Vec<usize> {
        (0..ndim).collect()
    }

    /// Short label for experiment tables.
    fn name(&self) -> &'static str;

    /// Bytes of preprocessed structure held by the backend (index
    /// structures; excludes transient value matrices).
    fn structure_bytes(&self) -> usize {
        0
    }

    /// The calibrated per-iteration wall-time prediction in nanoseconds,
    /// for backends that planned with a kernel profile. The CP-ALS drift
    /// detector compares this against measured kernel time per iteration.
    /// `None` (the default) disables drift detection.
    fn predicted_iter_ns(&self) -> Option<f64> {
        None
    }
}

/// Element-wise COO MTTKRP (Tensor-Toolbox class): `N-1` row Hadamard
/// products per nonzero per mode, no memoization, no auxiliary structure
/// beyond per-mode sorted views for parallelism.
pub struct CooBackend {
    views: Vec<SortedModeView>,
    /// Per-mode nnz-balanced schedules, built lazily for the current
    /// thread count and dropped on [`MttkrpBackend::reset`].
    scheds: Vec<Option<ModeSchedule>>,
    /// Thread count the cached schedules were balanced for (0 = none).
    sched_threads: usize,
    /// Reusable kernel scratch; with it, steady-state calls allocate
    /// nothing on the sequential path and O(tasks) on the parallel one.
    ws: Workspace,
    parallel: bool,
}

impl CooBackend {
    /// Builds sorted views for every mode.
    pub fn new(tensor: &SparseTensor) -> Self {
        Self::with_parallel(tensor, true)
    }

    /// [`CooBackend::new`] with explicit parallelism.
    pub fn with_parallel(tensor: &SparseTensor, parallel: bool) -> Self {
        let views: Vec<SortedModeView> =
            (0..tensor.ndim()).map(|m| SortedModeView::build(tensor, m)).collect();
        let scheds = (0..views.len()).map(|_| None).collect();
        CooBackend { views, scheds, sched_threads: 0, ws: Workspace::new(), parallel }
    }
}

impl MttkrpBackend for CooBackend {
    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        if self.parallel {
            let threads = rayon::current_num_threads();
            if self.sched_threads != threads {
                for s in &mut self.scheds {
                    *s = None;
                }
                self.sched_threads = threads;
            }
            let view = &self.views[mode];
            let sched = self.scheds[mode].get_or_insert_with(|| {
                adatm_trace::event!(
                    "backend.schedule_rebuild",
                    backend: "coo",
                    mode: mode as u64,
                    threads: threads as u64
                );
                schedule_for_view(view, threads)
            });
            mttkrp_par_into(tensor, factors, mode, view, sched, &mut self.ws, out);
        } else {
            mttkrp_seq_into(tensor, factors, mode, out);
        }
    }

    fn reset(&mut self) {
        for s in &mut self.scheds {
            *s = None;
        }
        self.sched_threads = 0;
        self.ws.clear();
    }

    fn name(&self) -> &'static str {
        "coo"
    }

    fn structure_bytes(&self) -> usize {
        // One u32 permutation per mode plus group boundaries (~nnz each),
        // plus the cached schedules.
        self.views.iter().map(|v| (v.num_groups() + 1) * 8).sum::<usize>()
            + self.scheds.iter().flatten().map(ModeSchedule::structure_bytes).sum::<usize>()
            + self.ws.structure_bytes()
    }
}

/// SPLATT-style CSF backend: one fiber forest per mode, fiber-level reuse
/// of partial Hadamard products, no cross-mode memoization. The
/// state-of-the-art non-memoized baseline.
pub struct CsfBackend {
    set: CsfSet,
    /// Per-mode root-slice schedules, built lazily for the current
    /// thread count and dropped on [`MttkrpBackend::reset`].
    scheds: Vec<Option<ModeSchedule>>,
    /// Thread count the cached schedules were balanced for (0 = none).
    sched_threads: usize,
    /// Reusable kernel scratch shared across modes.
    ws: Workspace,
    parallel: bool,
}

impl CsfBackend {
    /// Builds all `N` CSF representations.
    pub fn new(tensor: &SparseTensor) -> Self {
        Self::with_parallel(tensor, true)
    }

    /// [`CsfBackend::new`] with explicit parallelism.
    pub fn with_parallel(tensor: &SparseTensor, parallel: bool) -> Self {
        let scheds = (0..tensor.ndim()).map(|_| None).collect();
        CsfBackend {
            set: CsfSet::all_modes(tensor),
            scheds,
            sched_threads: 0,
            ws: Workspace::new(),
            parallel,
        }
    }
}

impl MttkrpBackend for CsfBackend {
    fn mttkrp_into(&mut self, _tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        let csf = self.set.for_mode(mode);
        if self.parallel {
            let threads = rayon::current_num_threads();
            if self.sched_threads != threads {
                for s in &mut self.scheds {
                    *s = None;
                }
                self.sched_threads = threads;
            }
            let sched = self.scheds[mode].get_or_insert_with(|| {
                adatm_trace::event!(
                    "backend.schedule_rebuild",
                    backend: "splatt-csf",
                    mode: mode as u64,
                    threads: threads as u64
                );
                csf.root_schedule(threads)
            });
            csf.mttkrp_root_into(factors, sched, &mut self.ws, out);
        } else {
            let m = csf.mttkrp_root(factors);
            out.as_mut_slice().copy_from_slice(m.as_slice());
        }
    }

    fn reset(&mut self) {
        for s in &mut self.scheds {
            *s = None;
        }
        self.sched_threads = 0;
        self.ws.clear();
    }

    fn name(&self) -> &'static str {
        "splatt-csf"
    }

    fn structure_bytes(&self) -> usize {
        self.set.storage_bytes()
            + self.scheds.iter().flatten().map(ModeSchedule::structure_bytes).sum::<usize>()
            + self.ws.structure_bytes()
    }
}

/// Dimension-tree memoizing backend with a fixed shape.
pub struct DtreeBackend {
    engine: DtreeEngine,
    label: &'static str,
}

impl DtreeBackend {
    /// Builds the engine for an arbitrary shape.
    pub fn new(tensor: &SparseTensor, shape: &TreeShape, rank: usize) -> Self {
        Self::with_options(tensor, shape, rank, EngineOptions::default(), "dtree")
    }

    /// Flat 2-level tree (index-compressed, non-memoizing — the
    /// `ht-tree2` reference point).
    pub fn two_level(tensor: &SparseTensor, rank: usize) -> Self {
        let shape = TreeShape::two_level(tensor.ndim());
        Self::with_options(tensor, &shape, rank, EngineOptions::default(), "tree2")
    }

    /// 3-level tree (one memoized split — Phan et al.'s scheme).
    pub fn three_level(tensor: &SparseTensor, rank: usize) -> Self {
        let shape = TreeShape::three_level(tensor.ndim());
        Self::with_options(tensor, &shape, rank, EngineOptions::default(), "tree3")
    }

    /// Balanced binary dimension tree.
    pub fn balanced_binary(tensor: &SparseTensor, rank: usize) -> Self {
        let shape = TreeShape::balanced_binary(tensor.ndim());
        Self::with_options(tensor, &shape, rank, EngineOptions::default(), "bdt")
    }

    /// Fully explicit construction.
    pub fn with_options(
        tensor: &SparseTensor,
        shape: &TreeShape,
        rank: usize,
        opts: EngineOptions,
        label: &'static str,
    ) -> Self {
        DtreeBackend { engine: DtreeEngine::with_options(tensor, shape, rank, opts), label }
    }

    /// The underlying engine (counters, memory stats).
    pub fn engine(&self) -> &DtreeEngine {
        &self.engine
    }
}

impl MttkrpBackend for DtreeBackend {
    fn begin_mode(&mut self, mode: usize) {
        self.engine.invalidate_mode(mode);
    }

    fn mode_order(&self, ndim: usize) -> Vec<usize> {
        let order = self.engine.tree().shape().modes();
        debug_assert_eq!(order.len(), ndim);
        order
    }

    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        self.engine.mttkrp_into(tensor, factors, mode, out);
    }

    fn reset(&mut self) {
        self.engine.invalidate_all();
        self.engine.reset_caches();
    }

    fn name(&self) -> &'static str {
        self.label
    }

    fn structure_bytes(&self) -> usize {
        self.engine.symbolic().index_bytes()
    }
}

/// The engine an [`AdaptiveBackend`] dispatched to.
enum AdaptiveInner {
    /// A dimension tree on the plan's chosen shape (the usual case).
    Tree(DtreeBackend),
    /// The SPLATT-CSF baseline — chosen when a calibration profile
    /// predicts no memoization strategy beats it on this machine.
    Csf(CsfBackend),
    /// The fused scheduled-COO baseline — chosen when calibration
    /// predicts it outruns both the trees and CSF here.
    Coo(CooBackend),
}

/// The model-driven backend: plans the memoization strategy with the cost
/// model, then runs the dimension-tree engine on the chosen shape — or
/// the CSF baseline, when a calibrated plan predicts memoization cannot
/// pay here. This is the system the paper proposes.
///
/// When the `ADATM_PROFILE` environment variable names a readable kernel
/// profile (written by `cargo xtask calibrate`), every planning
/// constructor ranks candidates by calibrated wall time at the current
/// rayon thread count; otherwise the analytic model decides.
pub struct AdaptiveBackend {
    inner: AdaptiveInner,
    plan: MemoPlan,
}

impl AdaptiveBackend {
    /// Plans with default estimator/search and builds the engine.
    pub fn plan(tensor: &SparseTensor, rank: usize) -> Self {
        Self::from_planner(tensor, rank, Self::default_planner(tensor, rank))
    }

    /// Plans with an explicit estimator.
    pub fn plan_with_estimator(
        tensor: &SparseTensor,
        rank: usize,
        estimator: NnzEstimator,
    ) -> Self {
        Self::from_planner(tensor, rank, Self::default_planner(tensor, rank).estimator(estimator))
    }

    /// Plans with a memory budget on resident structures.
    pub fn plan_with_budget(tensor: &SparseTensor, rank: usize, budget_bytes: usize) -> Self {
        Self::from_planner(
            tensor,
            rank,
            Self::default_planner(tensor, rank).memory_budget(budget_bytes),
        )
    }

    /// The planner the convenience constructors start from: current
    /// thread count, plus the environment calibration profile when one
    /// is available.
    fn default_planner(tensor: &SparseTensor, rank: usize) -> Planner<'_> {
        let mut planner = Planner::new(tensor, rank).threads(rayon::current_num_threads());
        if let Some(profile) = KernelProfile::load_env() {
            planner = planner.calibration(profile);
        }
        planner
    }

    /// Runs an explicitly configured planner and builds the engine.
    pub fn from_planner(tensor: &SparseTensor, rank: usize, planner: Planner<'_>) -> Self {
        Self::from_plan(tensor, rank, planner.plan())
    }

    /// Builds the engine for an already-computed plan — the entry point
    /// for admission-controlled callers, which obtain the plan via
    /// [`Planner::plan_admitted`] (so a rejected budget surfaces as a
    /// typed error *before* any engine structures are allocated) and
    /// then dispatch here.
    pub fn from_plan(tensor: &SparseTensor, rank: usize, plan: MemoPlan) -> Self {
        let inner = if plan.use_coo {
            AdaptiveInner::Coo(CooBackend::new(tensor))
        } else if plan.use_csf {
            AdaptiveInner::Csf(CsfBackend::new(tensor))
        } else {
            AdaptiveInner::Tree(DtreeBackend::with_options(
                tensor,
                &plan.shape,
                rank,
                EngineOptions::default(),
                "adaptive",
            ))
        };
        adatm_trace::event!(
            "backend.dispatch",
            engine: match &inner {
                AdaptiveInner::Tree(_) => "tree",
                AdaptiveInner::Csf(_) => "csf",
                AdaptiveInner::Coo(_) => "coo",
            },
            shape: format!("{}", plan.shape),
            use_csf: plan.use_csf,
            use_coo: plan.use_coo,
            predicted_ns: plan.predicted_ns.unwrap_or(-1.0)
        );
        AdaptiveBackend { inner, plan }
    }

    /// The plan (chosen shape, predictions, alternatives).
    pub fn memo_plan(&self) -> &MemoPlan {
        &self.plan
    }

    /// The underlying dimension-tree engine, when the plan chose a tree
    /// (`None` after a calibrated plan dispatched to CSF or COO).
    pub fn tree_engine(&self) -> Option<&DtreeEngine> {
        match &self.inner {
            AdaptiveInner::Tree(b) => Some(b.engine()),
            AdaptiveInner::Csf(_) | AdaptiveInner::Coo(_) => None,
        }
    }

    /// The underlying engine.
    ///
    /// # Panics
    ///
    /// When the plan dispatched to the CSF or COO baseline; use
    /// [`AdaptiveBackend::tree_engine`] to handle that case.
    pub fn engine(&self) -> &DtreeEngine {
        self.tree_engine().expect("adaptive plan dispatched to a baseline; no tree engine")
    }
}

impl MttkrpBackend for AdaptiveBackend {
    fn begin_mode(&mut self, mode: usize) {
        match &mut self.inner {
            AdaptiveInner::Tree(b) => b.begin_mode(mode),
            AdaptiveInner::Csf(b) => b.begin_mode(mode),
            AdaptiveInner::Coo(b) => b.begin_mode(mode),
        }
    }

    fn mode_order(&self, ndim: usize) -> Vec<usize> {
        match &self.inner {
            AdaptiveInner::Tree(b) => b.mode_order(ndim),
            AdaptiveInner::Csf(b) => b.mode_order(ndim),
            AdaptiveInner::Coo(b) => b.mode_order(ndim),
        }
    }

    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        match &mut self.inner {
            AdaptiveInner::Tree(b) => b.mttkrp_into(tensor, factors, mode, out),
            AdaptiveInner::Csf(b) => b.mttkrp_into(tensor, factors, mode, out),
            AdaptiveInner::Coo(b) => b.mttkrp_into(tensor, factors, mode, out),
        }
    }

    fn reset(&mut self) {
        adatm_trace::event!("backend.reset", backend: "adaptive");
        match &mut self.inner {
            AdaptiveInner::Tree(b) => b.reset(),
            AdaptiveInner::Csf(b) => b.reset(),
            AdaptiveInner::Coo(b) => b.reset(),
        }
    }

    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn predicted_iter_ns(&self) -> Option<f64> {
        self.plan.predicted_ns
    }

    fn structure_bytes(&self) -> usize {
        match &self.inner {
            AdaptiveInner::Tree(b) => b.structure_bytes(),
            AdaptiveInner::Csf(b) => b.structure_bytes(),
            AdaptiveInner::Coo(b) => b.structure_bytes(),
        }
    }
}

impl<B: MttkrpBackend + ?Sized> MttkrpBackend for Box<B> {
    fn begin_mode(&mut self, mode: usize) {
        (**self).begin_mode(mode);
    }

    fn mode_order(&self, ndim: usize) -> Vec<usize> {
        (**self).mode_order(ndim)
    }

    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        (**self).mttkrp_into(tensor, factors, mode, out);
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn structure_bytes(&self) -> usize {
        (**self).structure_bytes()
    }

    fn predicted_iter_ns(&self) -> Option<f64> {
        (**self).predicted_iter_ns()
    }
}

/// Builds one of every backend under a common label, for harnesses that
/// sweep backends.
pub fn all_backends(tensor: &SparseTensor, rank: usize) -> Vec<Box<dyn MttkrpBackend>> {
    vec![
        Box::new(CooBackend::new(tensor)),
        Box::new(CsfBackend::new(tensor)),
        Box::new(DtreeBackend::two_level(tensor, rank)),
        Box::new(DtreeBackend::three_level(tensor, rank)),
        Box::new(DtreeBackend::balanced_binary(tensor, rank)),
        Box::new(AdaptiveBackend::plan(tensor, rank)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::gen::zipf_tensor;
    use adatm_tensor::mttkrp::mttkrp_seq;

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    #[test]
    fn every_backend_matches_reference_mttkrp() {
        let t = zipf_tensor(&[18, 22, 15, 20], 700, &[0.6; 4], 42);
        let factors = factors_for(&t, 4, 9);
        for mut b in all_backends(&t, 4) {
            for mode in 0..4 {
                b.begin_mode(mode);
                let mut out = Mat::zeros(t.dims()[mode], 4);
                b.mttkrp_into(&t, &factors, mode, &mut out);
                let want = mttkrp_seq(&t, &factors, mode);
                assert!(out.max_abs_diff(&want) < 1e-10, "backend {} mode {mode}", b.name());
            }
        }
    }

    #[test]
    fn adaptive_plan_is_exposed() {
        let t = zipf_tensor(&[20, 20, 20, 20], 500, &[0.8; 4], 1);
        let b = AdaptiveBackend::plan(&t, 8);
        let plan = b.memo_plan();
        assert!(!plan.candidates.is_empty());
        plan.shape.validate();
        assert!(plan.predicted.flops_per_iter > 0.0);
    }

    #[test]
    fn adaptive_dispatches_to_csf_under_a_tree_hostile_profile() {
        use adatm_model::{ClassRate, KernelProfile};
        let rate = |ns: f64| ClassRate { ns_per_unit_1t: ns, ns_per_unit_nt: ns };
        let profile = KernelProfile {
            threads: 8,
            coo_mttkrp: rate(1.0),
            csf_root: rate(1e-4),
            tree_pull: rate(100.0),
            tree_scatter: rate(100.0),
        };
        let t = zipf_tensor(&[15, 18, 12, 20], 600, &[0.6; 4], 11);
        let planner =
            Planner::new(&t, 4).estimator(NnzEstimator::Exact).calibration(profile).threads(8);
        let mut b = AdaptiveBackend::from_planner(&t, 4, planner);
        assert!(b.memo_plan().use_csf, "tree-hostile profile must dispatch to CSF");
        assert!(b.tree_engine().is_none());
        assert_eq!(b.name(), "adaptive");
        assert!(b.structure_bytes() > 0);
        let factors = factors_for(&t, 4, 13);
        for mode in 0..4 {
            b.begin_mode(mode);
            let mut out = Mat::zeros(t.dims()[mode], 4);
            b.mttkrp_into(&t, &factors, mode, &mut out);
            let want = mttkrp_seq(&t, &factors, mode);
            assert!(out.max_abs_diff(&want) < 1e-10, "mode {mode}");
        }
        // The reverse pricing keeps the tree engine.
        let tree_friendly = KernelProfile {
            threads: 8,
            coo_mttkrp: rate(1.0),
            csf_root: rate(100.0),
            tree_pull: rate(1e-4),
            tree_scatter: rate(1e-4),
        };
        let planner = Planner::new(&t, 4)
            .estimator(NnzEstimator::Exact)
            .calibration(tree_friendly)
            .threads(8);
        let b = AdaptiveBackend::from_planner(&t, 4, planner);
        assert!(!b.memo_plan().use_csf);
        assert!(b.tree_engine().is_some());
    }

    #[test]
    fn adaptive_dispatches_to_coo_when_entry_kernels_dominate() {
        use adatm_model::{ClassRate, KernelProfile};
        let rate = |ns: f64| ClassRate { ns_per_unit_1t: ns, ns_per_unit_nt: ns };
        let profile = KernelProfile {
            threads: 8,
            coo_mttkrp: rate(1e-4),
            csf_root: rate(100.0),
            tree_pull: rate(100.0),
            tree_scatter: rate(100.0),
        };
        let t = zipf_tensor(&[15, 18, 12, 20], 600, &[0.6; 4], 11);
        let planner =
            Planner::new(&t, 4).estimator(NnzEstimator::Exact).calibration(profile).threads(8);
        let mut b = AdaptiveBackend::from_planner(&t, 4, planner);
        assert!(b.memo_plan().use_coo, "coo-dominant profile must dispatch to COO");
        assert!(!b.memo_plan().use_csf);
        assert!(b.tree_engine().is_none());
        assert_eq!(b.name(), "adaptive");
        let factors = factors_for(&t, 4, 13);
        for mode in 0..4 {
            b.begin_mode(mode);
            let mut out = Mat::zeros(t.dims()[mode], 4);
            b.mttkrp_into(&t, &factors, mode, &mut out);
            let want = mttkrp_seq(&t, &factors, mode);
            assert!(out.max_abs_diff(&want) < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn backends_report_structure_bytes() {
        let t = zipf_tensor(&[30, 30, 30], 1_000, &[0.4; 3], 2);
        for b in all_backends(&t, 4) {
            // COO's auxiliary views are small; CSF and trees are not.
            if b.name() != "coo" {
                assert!(b.structure_bytes() > 0, "{}", b.name());
            }
        }
    }

    #[test]
    fn tree_backends_report_leaf_mode_order() {
        let t = zipf_tensor(&[10, 12, 14, 16], 200, &[0.4; 4], 7);
        // Natural-leaf trees report the natural order.
        for b in [
            DtreeBackend::two_level(&t, 2),
            DtreeBackend::three_level(&t, 2),
            DtreeBackend::balanced_binary(&t, 2),
        ] {
            assert_eq!(b.mode_order(4), vec![0, 1, 2, 3], "{}", b.name());
        }
        // A custom shape reports its own leaf sequence.
        let shape: adatm_dtree::TreeShape = "((2 0) (3 1))".parse().unwrap();
        let b = DtreeBackend::new(&t, &shape, 2);
        assert_eq!(b.mode_order(4), vec![2, 0, 3, 1]);
        // Non-memoizing backends are order-indifferent.
        assert_eq!(CooBackend::new(&t).mode_order(4), vec![0, 1, 2, 3]);
        assert_eq!(CsfBackend::new(&t).mode_order(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn custom_shape_backend_stays_correct_under_its_own_order() {
        let t = zipf_tensor(&[9, 11, 13, 7], 250, &[0.5; 4], 9);
        let shape: adatm_dtree::TreeShape = "((3 1) (0 2))".parse().unwrap();
        let mut b = DtreeBackend::new(&t, &shape, 3);
        let factors = factors_for(&t, 3, 5);
        for &mode in &b.mode_order(4) {
            b.begin_mode(mode);
            let mut out = Mat::zeros(t.dims()[mode], 3);
            b.mttkrp_into(&t, &factors, mode, &mut out);
            let want = mttkrp_seq(&t, &factors, mode);
            assert!(out.max_abs_diff(&want) < 1e-10, "mode {mode}");
        }
        // Under the leaf order, every non-root node computed exactly once
        // per sweep (steady state): warm sweep then count.
        let calls0 = b.engine().ops().ttmv_calls;
        for &mode in &b.mode_order(4) {
            b.begin_mode(mode);
            let mut out = Mat::zeros(t.dims()[mode], 3);
            b.mttkrp_into(&t, &factors, mode, &mut out);
        }
        assert_eq!(b.engine().ops().ttmv_calls - calls0, 6);
    }

    #[test]
    fn reset_clears_memoized_state_and_stays_correct() {
        let t = zipf_tensor(&[12, 14, 16, 10], 300, &[0.5; 4], 3);
        let mut b = DtreeBackend::balanced_binary(&t, 3);
        let f1 = factors_for(&t, 3, 10);
        let mut out = Mat::zeros(t.dims()[0], 3);
        b.begin_mode(0);
        b.mttkrp_into(&t, &f1, 0, &mut out);
        // Entirely new factors outside the protocol: reset, then verify.
        let f2 = factors_for(&t, 3, 999);
        b.reset();
        b.begin_mode(0);
        b.mttkrp_into(&t, &f2, 0, &mut out);
        let want = mttkrp_seq(&t, &f2, 0);
        assert!(out.max_abs_diff(&want) < 1e-10);
    }
}
