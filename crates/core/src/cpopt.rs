//! CP-OPT: gradient-based CP fitting (all-at-once optimization).
//!
//! The third client of the MTTKRP engines. CP-OPT minimizes
//! `f(U) = 1/2 ||X - model||²` by gradient descent with Armijo
//! backtracking; the gradient with respect to each factor is
//!
//! `G^(n) = U^(n) H^(n) - M^(n)`
//!
//! with `M^(n)` the MTTKRP and `H^(n)` the Hadamard-of-Grams — the same
//! quantities as CP-ALS, but evaluated at a *fixed* factor set. That
//! detail makes memoization even more profitable than in ALS: because no
//! factor changes between the `N` MTTKRPs of one gradient evaluation, a
//! dimension-tree backend computes every internal node **once** and
//! reuses it for every mode, with no invalidation at all between modes.

use crate::backend::MttkrpBackend;
use crate::init::{init_factors, InitStrategy};
use crate::model::CpModel;
use adatm_linalg::Mat;
use adatm_tensor::SparseTensor;

/// Options for a CP-OPT run.
#[derive(Clone, Debug)]
pub struct CpOptOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the relative objective decrease.
    pub tol: f64,
    /// Initialization seed.
    pub seed: u64,
    /// Initial step size for the line search.
    pub step0: f64,
}

impl CpOptOptions {
    /// Defaults: 100 iterations, tolerance `1e-8`, seed 0, step 1.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        CpOptOptions { rank, max_iters: 100, tol: 1e-8, seed: 0, step0: 1.0 }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the relative-decrease tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a CP-OPT run.
#[derive(Clone, Debug)]
pub struct CpOptResult {
    /// The decomposition (`lambda` all ones; factors unnormalized).
    pub model: CpModel,
    /// Completed iterations.
    pub iters: usize,
    /// Objective `1/2 ||X - model||²` after each iteration.
    pub objective_history: Vec<f64>,
    /// Whether the tolerance stop fired.
    pub converged: bool,
}

/// Evaluates the objective and the full gradient at the current factors.
///
/// Returns `(objective, gradients)`. One MTTKRP per mode, **without**
/// invalidation between modes (factors are fixed during the evaluation);
/// the caller must `backend.reset()` after moving the factors.
fn objective_and_gradient<B: MttkrpBackend + ?Sized>(
    tensor: &SparseTensor,
    backend: &mut B,
    factors: &[Mat],
    xnorm2: f64,
) -> (f64, Vec<Mat>) {
    let n = tensor.ndim();
    let rank = factors[0].ncols();
    let grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
    let mut grads = Vec::with_capacity(n);
    let mut inner = 0.0;
    for mode in 0..n {
        // Intentionally no begin_mode: factors are fixed, so every cached
        // intermediate stays valid across the N MTTKRPs.
        let mut m = Mat::zeros(tensor.dims()[mode], rank);
        backend.mttkrp_into(tensor, factors, mode, &mut m);
        if mode == n - 1 {
            inner = (0..rank).map(|r| m.col_dot(&factors[mode], r)).sum();
        }
        let mut h = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
        for (d, w) in grams.iter().enumerate() {
            if d != mode {
                h.hadamard_assign(w);
            }
        }
        let mut g = factors[mode].matmul(&h);
        for (gv, &mv) in g.as_mut_slice().iter_mut().zip(m.as_slice().iter()) {
            *gv -= mv;
        }
        grads.push(g);
    }
    let mut gfull = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
    for w in &grams {
        gfull.hadamard_assign(w);
    }
    let ones = vec![1.0; rank];
    let mnorm2 = gfull.weighted_quad(&ones, &ones).max(0.0);
    let obj = 0.5 * (xnorm2 - 2.0 * inner + mnorm2).max(0.0);
    (obj, grads)
}

/// Runs CP-OPT (gradient descent with Armijo backtracking) over any
/// MTTKRP backend.
pub fn cp_opt<B: MttkrpBackend + ?Sized>(
    tensor: &SparseTensor,
    backend: &mut B,
    opts: &CpOptOptions,
) -> CpOptResult {
    let xnorm2 = tensor.fro_norm_sq();
    let mut factors = init_factors(tensor, opts.rank, opts.seed, InitStrategy::Random);
    // Scale the random init down: gradient descent on CP blows up from
    // large starting factors (the objective is a degree-2N polynomial).
    let scale = (xnorm2.sqrt().max(1e-12) / tensor.nnz().max(1) as f64)
        .powf(1.0 / tensor.ndim() as f64)
        .min(1.0);
    for f in &mut factors {
        for v in f.as_mut_slice() {
            *v *= scale;
        }
    }
    backend.reset();
    let (mut obj, mut grads) = objective_and_gradient(tensor, backend, &factors, xnorm2);
    let mut history = Vec::new();
    let mut step = opts.step0;
    let mut converged = false;
    let mut iters = 0;

    for _iter in 0..opts.max_iters {
        let gnorm2: f64 =
            grads.iter().map(|g| g.as_slice().iter().map(|x| x * x).sum::<f64>()).sum();
        if gnorm2 == 0.0 {
            converged = true;
            break;
        }
        // Armijo backtracking on the step size.
        let mut accepted = false;
        for _bt in 0..40 {
            let trial: Vec<Mat> = factors
                .iter()
                .zip(grads.iter())
                .map(|(f, g)| {
                    let mut t = f.clone();
                    for (tv, &gv) in t.as_mut_slice().iter_mut().zip(g.as_slice().iter()) {
                        *tv -= step * gv;
                    }
                    t
                })
                .collect();
            backend.reset();
            let (tobj, tgrads) = objective_and_gradient(tensor, backend, &trial, xnorm2);
            if tobj <= obj - 1e-4 * step * gnorm2 {
                factors = trial;
                let rel = (obj - tobj) / obj.max(f64::MIN_POSITIVE);
                obj = tobj;
                grads = tgrads;
                step *= 1.5; // optimistic growth after a success
                accepted = true;
                iters += 1;
                history.push(obj);
                if opts.tol > 0.0 && rel < opts.tol {
                    converged = true;
                }
                break;
            }
            step *= 0.5;
        }
        if !accepted || converged {
            converged = converged || !accepted;
            break;
        }
    }

    CpOptResult {
        model: CpModel { lambda: vec![1.0; opts.rank], factors },
        iters,
        objective_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CooBackend, DtreeBackend};
    use adatm_tensor::gen::{dense_low_rank, zipf_tensor};

    #[test]
    fn objective_decreases_monotonically() {
        let truth = dense_low_rank(&[8, 9, 7], 2, 0.0, 3);
        let mut backend = CooBackend::new(&truth.tensor);
        let res = cp_opt(
            &truth.tensor,
            &mut backend,
            &CpOptOptions::new(2).max_iters(30).tol(0.0).seed(5),
        );
        assert!(res.iters > 0, "no accepted steps");
        for w in res.objective_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "objective increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let t = zipf_tensor(&[5, 6, 4], 30, &[0.3; 3], 7);
        let xnorm2 = t.fro_norm_sq();
        let factors = init_factors(&t, 2, 9, InitStrategy::Random);
        let mut backend = CooBackend::new(&t);
        let (f0, grads) = objective_and_gradient(&t, &mut backend, &factors, xnorm2);
        let eps = 1e-6;
        for mode in 0..3 {
            for &(i, r) in &[(0usize, 0usize), (2, 1), (4, 0)] {
                if i >= factors[mode].nrows() {
                    continue;
                }
                let mut pert = factors.clone();
                let v = pert[mode].get(i, r);
                pert[mode].set(i, r, v + eps);
                let (f1, _) = objective_and_gradient(&t, &mut backend, &pert, xnorm2);
                let fd = (f1 - f0) / eps;
                let an = grads[mode].get(i, r);
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + an.abs()),
                    "mode {mode} ({i},{r}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn cpopt_reaches_good_fit_on_low_rank_data() {
        let truth = dense_low_rank(&[8, 7, 6], 2, 0.0, 11);
        let t = &truth.tensor;
        let mut backend = DtreeBackend::balanced_binary(t, 2);
        let res = cp_opt(t, &mut backend, &CpOptOptions::new(2).max_iters(400).tol(0.0).seed(1));
        let final_obj = *res.objective_history.last().unwrap();
        let rel = (2.0 * final_obj).sqrt() / t.fro_norm();
        assert!(rel < 0.3, "relative residual {rel}");
    }

    #[test]
    fn backends_agree_on_gradient() {
        let t = zipf_tensor(&[8, 10, 6, 7], 120, &[0.5; 4], 13);
        let factors = init_factors(&t, 3, 17, InitStrategy::Random);
        let xnorm2 = t.fro_norm_sq();
        let mut coo = CooBackend::new(&t);
        let mut bdt = DtreeBackend::balanced_binary(&t, 3);
        let (fa, ga) = objective_and_gradient(&t, &mut coo, &factors, xnorm2);
        let (fb, gb) = objective_and_gradient(&t, &mut bdt, &factors, xnorm2);
        assert!((fa - fb).abs() < 1e-9);
        for (x, y) in ga.iter().zip(gb.iter()) {
            assert!(x.max_abs_diff(y) < 1e-9);
        }
    }
}
