//! Factor initialization strategies for CP-ALS.
//!
//! CP-ALS is sensitive to its starting point; two standard options are
//! provided:
//!
//! * [`InitStrategy::Random`] — i.i.d. uniform entries (the default, and
//!   what the evaluation harness uses so every backend starts
//!   identically);
//! * [`InitStrategy::RandomizedRange`] — the randomized range-finder: the
//!   mode-`n` factor is initialized with an orthonormal basis of
//!   `X_(n) * Omega` where the sketch is computed as an MTTKRP with
//!   random factor matrices. This is the sparse-friendly analogue of the
//!   truncated-SVD ("HOSVD") initialization the literature recommends —
//!   it needs only one MTTKRP per mode, no dense matricization.

use adatm_linalg::{thin_qr, Mat};
use adatm_tensor::mttkrp::mttkrp_seq;
use adatm_tensor::SparseTensor;

/// How to produce the initial factor matrices.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InitStrategy {
    /// I.i.d. uniform entries in `(0, 1)`.
    #[default]
    Random,
    /// Orthonormal range of a random MTTKRP sketch per mode.
    RandomizedRange,
}

/// Materializes initial factors for `tensor` at the given rank.
pub fn init_factors(
    tensor: &SparseTensor,
    rank: usize,
    seed: u64,
    strategy: InitStrategy,
) -> Vec<Mat> {
    let random: Vec<Mat> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(d, &n)| Mat::random(n, rank, seed ^ ((d as u64) << 32 | d as u64)))
        .collect();
    match strategy {
        InitStrategy::Random => random,
        InitStrategy::RandomizedRange => (0..tensor.ndim())
            .map(|mode| {
                let sketch = mttkrp_seq(tensor, &random, mode);
                let mut q = thin_qr(&sketch).q;
                // A mode whose sketch is rank-deficient would hand ALS
                // zero columns; backfill them with random entries.
                let norms = q.col_norms();
                for (r, &nrm) in norms.iter().enumerate() {
                    if nrm == 0.0 {
                        let fill = Mat::random(q.nrows(), 1, seed ^ 0xfeed ^ r as u64);
                        for i in 0..q.nrows() {
                            q.set(i, r, fill.get(i, 0));
                        }
                    }
                }
                q
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::gen::{dense_low_rank, zipf_tensor};

    #[test]
    fn random_init_shapes_and_determinism() {
        let t = zipf_tensor(&[10, 15, 12], 200, &[0.4; 3], 5);
        let a = init_factors(&t, 4, 9, InitStrategy::Random);
        let b = init_factors(&t, 4, 9, InitStrategy::Random);
        assert_eq!(a.len(), 3);
        for (d, f) in a.iter().enumerate() {
            assert_eq!(f.nrows(), t.dims()[d]);
            assert_eq!(f.ncols(), 4);
            assert_eq!(f, &b[d]);
        }
    }

    #[test]
    fn range_init_produces_orthonormal_columns() {
        let t = zipf_tensor(&[30, 25, 20], 2_000, &[0.5; 3], 7);
        let f = init_factors(&t, 5, 3, InitStrategy::RandomizedRange);
        for (d, u) in f.iter().enumerate() {
            let g = u.gram();
            // Diagonal entries ~1 (orthonormal or random-backfilled).
            for r in 0..5 {
                assert!(g.get(r, r) > 0.0, "mode {d} col {r} empty");
            }
        }
    }

    #[test]
    fn range_init_converges_on_low_rank_data() {
        // Starting from the sketched range must reach an essentially
        // exact fit on noiseless low-rank data (the per-iteration winner
        // between the two inits varies instance to instance; what must
        // hold is that the range init is a sound starting point).
        let truth = dense_low_rank(&[12, 10, 11], 3, 0.0, 13);
        let t = &truth.tensor;
        let factors = init_factors(t, 3, 21, InitStrategy::RandomizedRange);
        let mut backend = crate::CooBackend::new(t);
        let solver = crate::CpAls::new(crate::CpAlsOptions::new(3).max_iters(60).tol(0.0));
        let fit = solver.run_from(t, &mut backend, factors).unwrap().final_fit();
        assert!(fit > 0.99, "fit {fit}");
    }
}
