//! Deterministic fault injection for the solver pipeline
//! (`--features fault-inject`).
//!
//! [`FaultInjectingBackend`] wraps any [`MttkrpBackend`] and, on a seeded
//! schedule, corrupts the MTTKRP outputs the CP-ALS driver consumes:
//! NaN/Inf poison, zeroed outputs (forcing zero factor columns), columns
//! made collinear (forcing a numerically singular Gram system on the
//! next mode), and artificial stalls (tripping the wall-clock watchdog).
//! Every breakdown detector and every recovery policy in
//! [`CpAls`](crate::CpAls) is therefore exercisable end-to-end by
//! ordinary `cargo test` instead of by luck on real data.
//!
//! The module mirrors the `audit` feature pattern: it only exists when
//! the `fault-inject` feature is on, so the default build compiles the
//! wrapper out entirely.

use crate::backend::MttkrpBackend;
use adatm_linalg::Mat;
use adatm_tensor::SparseTensor;
use std::collections::BTreeMap;
use std::time::Duration;

/// How one MTTKRP call gets corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one entry with NaN (poisons the factor update and, for
    /// memoizing backends, any cached intermediate derived from it).
    PoisonNan,
    /// Overwrite one entry with +Inf.
    PoisonInf,
    /// Zero the entire output, collapsing every factor column.
    ZeroOutput,
    /// Copy column 0 over every other column, driving the factor columns
    /// collinear and the next Gram system numerically singular.
    CollinearColumns,
    /// Sleep for the given number of milliseconds inside the MTTKRP call
    /// (an artificial stall, for exercising the time-budget watchdog).
    StallMs(u64),
}

/// A deterministic schedule mapping MTTKRP call indices to faults.
///
/// The call counter is global across the run and never resets (in
/// particular not on [`MttkrpBackend::reset`]), so a schedule replays
/// identically for a given seed/spec regardless of how many recoveries
/// the solver performs.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    events: BTreeMap<usize, FaultKind>,
    every: Option<FaultKind>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `kind` at the `call`-th MTTKRP invocation (0-based).
    pub fn at_call(mut self, call: usize, kind: FaultKind) -> Self {
        self.events.insert(call, kind);
        self
    }

    /// Injects `kind` on *every* call — a persistent fault, for testing
    /// recovery-budget exhaustion and graceful degradation.
    pub fn always(mut self, kind: FaultKind) -> Self {
        self.every = Some(kind);
        self
    }

    /// A seeded pseudo-random schedule over the first `horizon` calls.
    ///
    /// Each call independently receives a fault with probability ~1/8,
    /// drawn deterministically from `seed` with a splitmix64 stream — the
    /// same seed always produces the same schedule, which is what lets a
    /// property test assert "for any seed, the solver returns a finite
    /// model or a typed error".
    pub fn seeded(seed: u64, horizon: usize) -> Self {
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut sched = FaultSchedule::new();
        for call in 0..horizon {
            let r = next();
            if r % 8 == 0 {
                let kind = match (r >> 8) % 4 {
                    0 => FaultKind::PoisonNan,
                    1 => FaultKind::PoisonInf,
                    2 => FaultKind::ZeroOutput,
                    _ => FaultKind::CollinearColumns,
                };
                sched.events.insert(call, kind);
            }
        }
        sched
    }

    fn fault_for(&self, call: usize) -> Option<FaultKind> {
        self.events.get(&call).copied().or(self.every)
    }

    /// Number of explicitly scheduled events (not counting `always`).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.every.is_none()
    }
}

/// An [`MttkrpBackend`] wrapper that corrupts outputs on a deterministic
/// schedule.
///
/// Wraps the real backend unchanged — structure, mode order and
/// memoization behaviour are the inner backend's — and applies the
/// scheduled fault *after* the inner MTTKRP completes, exactly where a
/// hardware fault, a kernel bug, or an overflow would strike.
pub struct FaultInjectingBackend<B> {
    inner: B,
    schedule: FaultSchedule,
    calls: usize,
    injected: Vec<(usize, FaultKind)>,
}

impl<B: MttkrpBackend> FaultInjectingBackend<B> {
    /// Wraps `inner` with the given schedule.
    pub fn new(inner: B, schedule: FaultSchedule) -> Self {
        FaultInjectingBackend { inner, schedule, calls: 0, injected: Vec::new() }
    }

    /// The faults actually injected so far, as `(call_index, kind)` —
    /// tests assert against this to prove a schedule fired.
    pub fn injected(&self) -> &[(usize, FaultKind)] {
        &self.injected
    }

    /// Total MTTKRP calls observed.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    fn apply(kind: FaultKind, out: &mut Mat) {
        match kind {
            FaultKind::PoisonNan => {
                if !out.as_slice().is_empty() {
                    let mid = out.as_slice().len() / 2;
                    out.as_mut_slice()[mid] = f64::NAN;
                }
            }
            FaultKind::PoisonInf => {
                if !out.as_slice().is_empty() {
                    out.as_mut_slice()[0] = f64::INFINITY;
                }
            }
            FaultKind::ZeroOutput => {
                out.as_mut_slice().fill(0.0);
            }
            FaultKind::CollinearColumns => {
                for i in 0..out.nrows() {
                    let v = out.get(i, 0);
                    for j in 1..out.ncols() {
                        out.set(i, j, v);
                    }
                }
            }
            FaultKind::StallMs(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    }
}

impl<B: MttkrpBackend> MttkrpBackend for FaultInjectingBackend<B> {
    fn begin_mode(&mut self, mode: usize) {
        self.inner.begin_mode(mode);
    }

    fn mode_order(&self, ndim: usize) -> Vec<usize> {
        self.inner.mode_order(ndim)
    }

    fn mttkrp_into(&mut self, tensor: &SparseTensor, factors: &[Mat], mode: usize, out: &mut Mat) {
        self.inner.mttkrp_into(tensor, factors, mode, out);
        if let Some(kind) = self.schedule.fault_for(self.calls) {
            Self::apply(kind, out);
            self.injected.push((self.calls, kind));
        }
        self.calls += 1;
    }

    fn reset(&mut self) {
        // Deliberately does NOT reset the call counter: the fault
        // schedule marches forward through recoveries, so a transient
        // fault stays transient and an `always` fault stays persistent.
        self.inner.reset();
    }

    fn name(&self) -> &'static str {
        "fault-inject"
    }

    fn structure_bytes(&self) -> usize {
        self.inner.structure_bytes()
    }

    fn predicted_iter_ns(&self) -> Option<f64> {
        self.inner.predicted_iter_ns()
    }
}

// ---------------------------------------------------------------------
// I/O fault injection for the checkpoint medium
// ---------------------------------------------------------------------

/// How one checkpoint write cycle (persist + rename) gets corrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultKind {
    /// The persist writes only the first half of the bytes and then
    /// reports success — a torn/short write a crash or lying disk leaves
    /// behind. Discovered at load time as
    /// [`CheckpointError::Truncated`](crate::CheckpointError::Truncated).
    TornWrite,
    /// One bit in the middle of the payload is flipped before the write —
    /// silent media corruption. Discovered at load time as
    /// [`CheckpointError::ChecksumMismatch`](crate::CheckpointError::ChecksumMismatch).
    BitFlip,
    /// The persist fails up front with `ENOSPC`
    /// ([`std::io::ErrorKind::StorageFull`]), writing nothing.
    Enospc,
    /// The persist succeeds but the atomic rename fails, stranding the
    /// temp file and leaving the previous generation as newest.
    RenameFail,
}

/// A deterministic schedule mapping checkpoint *write cycles* (0-based,
/// one per [`CheckpointStore::write`](crate::CheckpointStore::write)) to
/// I/O faults. Mirrors [`FaultSchedule`] for the storage axis.
#[derive(Clone, Debug, Default)]
pub struct IoFaultSchedule {
    events: BTreeMap<usize, IoFaultKind>,
    every: Option<IoFaultKind>,
}

impl IoFaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `kind` on the `write`-th checkpoint write cycle (0-based).
    pub fn at_write(mut self, write: usize, kind: IoFaultKind) -> Self {
        self.events.insert(write, kind);
        self
    }

    /// Injects `kind` on *every* write — a persistently failing disk.
    pub fn always(mut self, kind: IoFaultKind) -> Self {
        self.every = Some(kind);
        self
    }

    fn fault_for(&self, write: usize) -> Option<IoFaultKind> {
        self.events.get(&write).copied().or(self.every)
    }
}

/// Shared record of the I/O faults a [`FaultyMedium`] actually injected,
/// as `(write_cycle, kind)` — tests clone the handle before boxing the
/// medium into the config and assert against it afterwards.
pub type IoFaultLog = std::sync::Arc<std::sync::Mutex<Vec<(usize, IoFaultKind)>>>;

/// A [`CheckpointMedium`](crate::CheckpointMedium) that injects storage
/// faults on a deterministic schedule, delegating clean operations to
/// the real filesystem.
///
/// The write-cycle counter advances on every `persist` and never resets,
/// so a schedule replays identically for a given spec regardless of how
/// the run interleaves writes with recoveries. The `rename` belonging to
/// a cycle observes the same index as its `persist`.
#[derive(Debug)]
pub struct FaultyMedium {
    inner: crate::checkpoint::FsMedium,
    schedule: IoFaultSchedule,
    writes: usize,
    log: IoFaultLog,
}

impl FaultyMedium {
    /// A medium injecting `schedule`, with a private log.
    pub fn new(schedule: IoFaultSchedule) -> Self {
        Self::with_log(schedule, IoFaultLog::default())
    }

    /// As [`FaultyMedium::new`], but recording injections into a shared
    /// log the caller keeps a handle to.
    pub fn with_log(schedule: IoFaultSchedule, log: IoFaultLog) -> Self {
        FaultyMedium { inner: crate::checkpoint::FsMedium, schedule, writes: 0, log }
    }

    fn record(&self, write: usize, kind: IoFaultKind) {
        if let Ok(mut log) = self.log.lock() {
            log.push((write, kind));
        }
    }
}

impl crate::checkpoint::CheckpointMedium for FaultyMedium {
    fn persist(&mut self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
        let write = self.writes;
        self.writes += 1;
        match self.schedule.fault_for(write) {
            Some(IoFaultKind::TornWrite) => {
                self.record(write, IoFaultKind::TornWrite);
                self.inner.persist(path, &bytes[..bytes.len() / 2])
            }
            Some(IoFaultKind::BitFlip) => {
                self.record(write, IoFaultKind::BitFlip);
                let mut corrupt = bytes.to_vec();
                let mid = corrupt.len() / 2;
                if let Some(b) = corrupt.get_mut(mid) {
                    *b ^= 0x40;
                }
                self.inner.persist(path, &corrupt)
            }
            Some(IoFaultKind::Enospc) => {
                self.record(write, IoFaultKind::Enospc);
                Err(std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected ENOSPC: no space left on device",
                ))
            }
            Some(IoFaultKind::RenameFail) | None => self.inner.persist(path, bytes),
        }
    }

    fn rename(&mut self, from: &std::path::Path, to: &std::path::Path) -> std::io::Result<()> {
        let write = self.writes.saturating_sub(1);
        if self.schedule.fault_for(write) == Some(IoFaultKind::RenameFail) {
            self.record(write, IoFaultKind::RenameFail);
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "injected rename failure",
            ));
        }
        self.inner.rename(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CooBackend;
    use adatm_tensor::gen::zipf_tensor;
    use adatm_tensor::mttkrp::mttkrp_seq;

    fn factors_for(t: &SparseTensor, rank: usize, seed: u64) -> Vec<Mat> {
        t.dims().iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed + d as u64)).collect()
    }

    #[test]
    fn schedule_is_deterministic_and_faults_fire_where_scheduled() {
        let t = zipf_tensor(&[10, 12, 8], 200, &[0.3; 3], 5);
        let factors = factors_for(&t, 3, 7);
        let sched =
            FaultSchedule::new().at_call(1, FaultKind::PoisonNan).at_call(3, FaultKind::ZeroOutput);
        let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
        for call in 0..5 {
            let mode = call % 3;
            b.begin_mode(mode);
            let mut out = Mat::zeros(t.dims()[mode], 3);
            b.mttkrp_into(&t, &factors, mode, &mut out);
            match call {
                1 => assert!(!out.is_finite()),
                3 => assert!(out.as_slice().iter().all(|&x| x == 0.0)),
                _ => {
                    let want = mttkrp_seq(&t, &factors, mode);
                    assert!(out.max_abs_diff(&want) < 1e-10, "call {call} should be clean");
                }
            }
        }
        assert_eq!(b.injected(), &[(1, FaultKind::PoisonNan), (3, FaultKind::ZeroOutput)]);
    }

    #[test]
    fn collinear_fault_makes_columns_identical() {
        let t = zipf_tensor(&[9, 9], 80, &[0.0; 2], 3);
        let factors = factors_for(&t, 4, 1);
        let sched = FaultSchedule::new().at_call(0, FaultKind::CollinearColumns);
        let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
        let mut out = Mat::zeros(9, 4);
        b.mttkrp_into(&t, &factors, 0, &mut out);
        for i in 0..out.nrows() {
            for j in 1..out.ncols() {
                assert_eq!(out.get(i, j), out.get(i, 0));
            }
        }
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let a = FaultSchedule::seeded(42, 256);
        let b = FaultSchedule::seeded(42, 256);
        let c = FaultSchedule::seeded(43, 256);
        assert_eq!(a.events, b.events);
        assert!(!a.is_empty(), "1/8 rate over 256 calls injects something");
        assert_ne!(a.events, c.events, "different seeds give different schedules");
    }

    #[test]
    fn reset_does_not_rewind_the_schedule() {
        let t = zipf_tensor(&[8, 8], 60, &[0.0; 2], 9);
        let factors = factors_for(&t, 2, 2);
        let sched = FaultSchedule::new().at_call(0, FaultKind::PoisonNan);
        let mut b = FaultInjectingBackend::new(CooBackend::new(&t), sched);
        let mut out = Mat::zeros(8, 2);
        b.mttkrp_into(&t, &factors, 0, &mut out);
        assert!(!out.is_finite());
        b.reset();
        b.mttkrp_into(&t, &factors, 0, &mut out);
        assert!(out.is_finite(), "call 1 is past the scheduled fault even after reset");
        assert_eq!(b.calls(), 2);
    }
}
