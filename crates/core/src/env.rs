//! Environment-knob parsing shared across the workspace.
//!
//! One home for the `ADATM_*` knob readers that used to be duplicated
//! between the bench harness and workspace automation. The contract,
//! established by the bench harness: a set-but-malformed value falls
//! back to the default *loudly* — silently running at the wrong scale
//! because of a typo'd knob poisons every downstream table, and
//! `ADATM_BENCH_SMOKE=true` silently meaning "full run" has burned
//! enough CI minutes.
//!
//! `adatm-bench` re-exports these under its old paths, so existing
//! harness code and scripts are unaffected.

/// Reads a float knob from the environment. A set-but-malformed value
/// falls back to the default loudly (stderr warning).
pub fn env_f64(name: &str, default: f64) -> f64 {
    parse_env(name, std::env::var(name).ok().as_deref(), default)
}

/// Reads an integer knob from the environment (same loud-fallback
/// contract as [`env_f64`]).
pub fn env_usize(name: &str, default: usize) -> usize {
    parse_env(name, std::env::var(name).ok().as_deref(), default)
}

/// Shared parse-with-warning core of [`env_f64`]/[`env_usize`], over an
/// explicit value so tests need not mutate the process environment.
pub fn parse_env<T: std::str::FromStr + Copy>(name: &str, value: Option<&str>, default: T) -> T {
    match value {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!(
                "adatm: warning: ignoring {name}='{v}' (not a valid \
                 {}); using default",
                std::any::type_name::<T>()
            );
            default
        }),
    }
}

/// Reads a boolean flag from the environment, accepting `1`/`true`/
/// `yes`/`on` (case-insensitive) as set and `0`/`false`/`no`/`off`/empty
/// as unset. Anything else warns and counts as unset.
pub fn env_flag(name: &str) -> bool {
    flag_value(name, std::env::var(name).ok().as_deref())
}

/// Shared interpretation core of [`env_flag`], over an explicit value.
pub fn flag_value(name: &str, value: Option<&str>) -> bool {
    let Some(v) = value else { return false };
    match v.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => true,
        "" | "0" | "false" | "no" | "off" => false,
        _ => {
            eprintln!(
                "adatm: warning: ignoring {name}='{v}' (expected one of \
                 1/true/yes/on or 0/false/no/off); treating as unset"
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_f64("ADATM_NO_SUCH_VAR_XYZ", 0.25), 0.25);
        assert_eq!(env_usize("ADATM_NO_SUCH_VAR_XYZ", 7), 7);
    }

    #[test]
    fn parse_env_accepts_valid_and_rejects_malformed_loudly() {
        assert_eq!(parse_env("K", Some("0.5"), 0.25), 0.5);
        assert_eq!(parse_env("K", Some("12"), 7usize), 12);
        // Malformed: falls back to the default (the warning goes to
        // stderr; the contract under test is the value).
        assert_eq!(parse_env("K", Some("fast"), 0.25), 0.25);
        assert_eq!(parse_env("K", Some("3.5"), 7usize), 7);
        assert_eq!(parse_env("K", None, 9usize), 9);
    }

    #[test]
    fn flag_value_accepts_common_truthy_and_falsy_spellings() {
        for v in ["1", "true", "TRUE", "yes", "Yes", "on"] {
            assert!(flag_value("F", Some(v)), "{v} should enable");
        }
        for v in ["", "0", "false", "no", "OFF"] {
            assert!(!flag_value("F", Some(v)), "{v} should disable");
        }
        assert!(!flag_value("F", None));
        // Unrecognized: warns, treated as unset.
        assert!(!flag_value("F", Some("maybe")));
    }
}
