//! Sparse Tucker decomposition (HOOI) on chained semi-sparse TTMs.
//!
//! The dimension-tree papers name Tucker as the sibling application of
//! memoized tensor-times-matrix chains; this module provides the
//! higher-order orthogonal iteration (HOOI) for sparse tensors at small
//! multilinear ranks, built on [`ttm_chain_all_but`]: each subiteration
//! contracts the tensor with every factor except mode `n` (a semi-sparse
//! tensor with dense width `prod_{d != n} R_d`), then takes the leading
//! left singular vectors of its mode-`n` matricization via the small
//! `K x K` Gram eigenproblem (`K = prod R_d`, so the cost stays
//! `O(I_n K)` even for huge mode sizes).

use adatm_linalg::{jacobi_eigh, thin_qr, Mat};
use adatm_tensor::semisparse::ttm_chain_all_but;
use adatm_tensor::SparseTensor;

/// Options for a HOOI run.
#[derive(Clone, Debug)]
pub struct TuckerOptions {
    /// Multilinear ranks, one per mode. Keep `prod(ranks)` modest (it is
    /// the dense fiber width of the intermediate chains).
    pub ranks: Vec<usize>,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit.
    pub tol: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl TuckerOptions {
    /// Defaults: 25 iterations, tolerance `1e-6`, seed 0.
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty() && ranks.iter().all(|&r| r > 0), "ranks must be positive");
        TuckerOptions { ranks, max_iters: 25, tol: 1e-6, seed: 0 }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the fit-change tolerance (0 disables early stop).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A Tucker model: orthonormal factors plus a small dense core.
#[derive(Clone, Debug)]
pub struct TuckerModel {
    /// Orthonormal factor matrices, `I_n x R_n`.
    pub factors: Vec<Mat>,
    /// Core dimensions (`= ranks`).
    pub core_dims: Vec<usize>,
    /// Core values, addressed via [`TuckerModel::core_get`].
    core: Vec<f64>,
}

impl TuckerModel {
    /// Core element at multilinear index `r` (`r.len() == ndim`).
    pub fn core_get(&self, r: &[usize]) -> f64 {
        self.core[self.core_offset(r)]
    }

    fn core_offset(&self, r: &[usize]) -> usize {
        assert_eq!(r.len(), self.core_dims.len());
        // Layout: mode 0 is the slowest axis; the remaining axes are laid
        // out descending by mode id (the fiber layout of the TTM chain).
        let mut off = r[0];
        for d in (1..self.core_dims.len()).rev() {
            debug_assert!(r[d] < self.core_dims[d]);
            off = off * self.core_dims[d] + r[d];
        }
        off
    }

    /// Frobenius norm of the core (equals the model norm, factors being
    /// orthonormal).
    pub fn core_norm(&self) -> f64 {
        self.core.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Model value at a full coordinate:
    /// `sum_r core(r) prod_d U^(d)(i_d, r_d)`.
    pub fn predict(&self, coords: &[usize]) -> f64 {
        let n = self.core_dims.len();
        assert_eq!(coords.len(), n);
        let mut r = vec![0usize; n];
        let mut total = 0.0;
        loop {
            let mut p = self.core_get(&r);
            if p != 0.0 {
                for (d, f) in self.factors.iter().enumerate() {
                    p *= f.get(coords[d], r[d]);
                }
                total += p;
            }
            // Odometer over the core indices.
            let mut d = n;
            loop {
                if d == 0 {
                    return total;
                }
                d -= 1;
                r[d] += 1;
                if r[d] < self.core_dims[d] {
                    break;
                }
                r[d] = 0;
            }
        }
    }
}

/// Result of a HOOI run.
#[derive(Clone, Debug)]
pub struct TuckerResult {
    /// The decomposition.
    pub model: TuckerModel,
    /// Completed iterations.
    pub iters: usize,
    /// Fit (`1 - ||X - M|| / ||X||`) after each iteration, via the
    /// orthonormal-core identity `||X - M||² = ||X||² - ||core||²`.
    pub fit_history: Vec<f64>,
    /// Whether the tolerance stop fired.
    pub converged: bool,
}

impl TuckerResult {
    /// Fit after the final iteration.
    pub fn final_fit(&self) -> f64 {
        self.fit_history.last().copied().unwrap_or(0.0)
    }
}

/// Runs HOOI on a sparse tensor.
///
/// # Panics
/// Panics if `ranks` does not match the tensor order or any rank exceeds
/// its mode size.
pub fn hooi(tensor: &SparseTensor, opts: &TuckerOptions) -> TuckerResult {
    let n = tensor.ndim();
    assert!(n >= 2, "Tucker needs at least 2 modes");
    assert_eq!(opts.ranks.len(), n, "one rank per mode required");
    for (d, (&r, &size)) in opts.ranks.iter().zip(tensor.dims().iter()).enumerate() {
        assert!(r <= size, "rank {r} exceeds mode {d} size {size}");
    }
    // Orthonormal random initialization.
    let mut factors: Vec<Mat> = tensor
        .dims()
        .iter()
        .zip(opts.ranks.iter())
        .enumerate()
        .map(|(d, (&rows, &r))| thin_qr(&Mat::random(rows, r, opts.seed ^ (0x70c + d as u64))).q)
        .collect();
    let xnorm = tensor.fro_norm();
    let mut fit_history = Vec::new();
    let mut converged = false;
    let mut iters = 0;

    for _iter in 0..opts.max_iters {
        for mode in 0..n {
            let refs: Vec<&Mat> = factors.iter().collect();
            let y = ttm_chain_all_but(tensor, mode, &refs);
            // Dense mode-n matricization Z (I_n x K): tuple fibers scatter
            // into rows (each tuple has a distinct mode-n index).
            let k = y.dense_width();
            let mut z = Mat::zeros(tensor.dims()[mode], k);
            for e in 0..y.nnz() {
                z.row_mut(y.idx[0][e] as usize).copy_from_slice(y.fiber(e));
            }
            factors[mode] = leading_left_singular(&z, opts.ranks[mode], opts.seed);
        }
        // Core and fit.
        let core = compute_core(tensor, &factors);
        let cnorm2: f64 = core.iter().map(|x| x * x).sum();
        let resid2 = (xnorm * xnorm - cnorm2).max(0.0);
        let fit = if xnorm > 0.0 { 1.0 - resid2.sqrt() / xnorm } else { 0.0 };
        iters += 1;
        let prev = fit_history.last().copied();
        fit_history.push(fit);
        if let Some(p) = prev {
            if opts.tol > 0.0 && (fit - p).abs() < opts.tol {
                converged = true;
                break;
            }
        }
    }

    let core = compute_core(tensor, &factors);
    TuckerResult {
        model: TuckerModel { factors, core_dims: opts.ranks.clone(), core },
        iters,
        fit_history,
        converged,
    }
}

/// Leading `r` left singular vectors of a tall matrix `z` (`m x k`,
/// `k` small) via the `k x k` Gram eigenproblem: `z = U S V^T` with
/// `V, S²` from `eig(z^T z)` and `U = z V S^{-1}`.
fn leading_left_singular(z: &Mat, r: usize, seed: u64) -> Mat {
    let k = z.ncols();
    assert!(r <= k, "rank exceeds chain width");
    let g = z.gram();
    let e = jacobi_eigh(&g);
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| e.values[b].total_cmp(&e.values[a]));
    let mut u = Mat::zeros(z.nrows(), r);
    let scale = e.values[order[0]].max(0.0);
    for (col, &j) in order.iter().take(r).enumerate() {
        let lam = e.values[j].max(0.0);
        if lam > 1e-14 * scale.max(1e-300) && lam > 0.0 {
            let inv = 1.0 / lam.sqrt();
            // u(:, col) = z * v_j / sigma_j
            for row in 0..z.nrows() {
                let mut acc = 0.0;
                let zrow = z.row(row);
                for (c, &zv) in zrow.iter().enumerate() {
                    acc += zv * e.vectors.get(c, j);
                }
                u.set(row, col, acc * inv);
            }
        } else {
            // Deficient direction: fill with a random vector orthogonal
            // enough for HOOI to proceed, then rely on the next sweep.
            let fill = Mat::random(z.nrows(), 1, seed ^ 0xce11 ^ col as u64);
            for row in 0..z.nrows() {
                u.set(row, col, fill.get(row, 0));
            }
        }
    }
    // Re-orthonormalize (cheap; also fixes any random backfill).
    thin_qr(&u).q
}

/// The dense core `X x_0 U_0^T x_1 U_1^T ...`, in the layout documented
/// on [`TuckerModel::core_get`].
fn compute_core(tensor: &SparseTensor, factors: &[Mat]) -> Vec<f64> {
    let refs: Vec<&Mat> = factors.iter().collect();
    let y = ttm_chain_all_but(tensor, 0, &refs);
    let k = y.dense_width();
    let r0 = factors[0].ncols();
    let mut core = vec![0.0; r0 * k];
    for e in 0..y.nnz() {
        let urow = factors[0].row(y.idx[0][e] as usize);
        let fiber = y.fiber(e);
        for (r, &uv) in urow.iter().enumerate() {
            if uv == 0.0 {
                continue;
            }
            let block = &mut core[r * k..(r + 1) * k];
            for (c, &f) in block.iter_mut().zip(fiber.iter()) {
                *c += uv * f;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::coo::Idx;
    use adatm_tensor::gen::zipf_tensor;

    /// Builds a dense tensor with exact multilinear rank `ranks` from a
    /// random core and orthonormal factors, stored as COO over all cells.
    fn low_multilinear_rank(dims: &[usize], ranks: &[usize], seed: u64) -> SparseTensor {
        let factors: Vec<Mat> = dims
            .iter()
            .zip(ranks.iter())
            .enumerate()
            .map(|(d, (&n, &r))| thin_qr(&Mat::random(n, r, seed + d as u64)).q)
            .collect();
        let core_len: usize = ranks.iter().product();
        let core = Mat::random(1, core_len, seed ^ 0xc0de).into_vec();
        let n = dims.len();
        let cells: usize = dims.iter().product();
        let mut inds: Vec<Vec<Idx>> = vec![Vec::with_capacity(cells); n];
        let mut vals = Vec::with_capacity(cells);
        let mut coords = vec![0usize; n];
        for _ in 0..cells {
            let mut v = 0.0;
            let mut r = vec![0usize; n];
            'core: loop {
                let mut off = 0;
                for (d, &rd) in r.iter().enumerate() {
                    off = off * ranks[d] + rd;
                }
                let mut p = core[off];
                for (d, f) in factors.iter().enumerate() {
                    p *= f.get(coords[d], r[d]);
                }
                v += p;
                let mut d = n;
                loop {
                    if d == 0 {
                        break 'core;
                    }
                    d -= 1;
                    r[d] += 1;
                    if r[d] < ranks[d] {
                        break;
                    }
                    r[d] = 0;
                }
            }
            for (col, &c) in inds.iter_mut().zip(coords.iter()) {
                col.push(c as Idx);
            }
            vals.push(v);
            for d in (0..n).rev() {
                coords[d] += 1;
                if coords[d] < dims[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        SparseTensor::new(dims.to_vec(), inds, vals)
    }

    #[test]
    fn hooi_recovers_exact_multilinear_rank_tensor() {
        let t = low_multilinear_rank(&[8, 9, 7], &[2, 3, 2], 5);
        let res = hooi(&t, &TuckerOptions::new(vec![2, 3, 2]).max_iters(30).seed(1));
        assert!(res.final_fit() > 0.999, "fit {}", res.final_fit());
    }

    #[test]
    fn factors_are_orthonormal() {
        let t = zipf_tensor(&[20, 15, 18], 600, &[0.5; 3], 9);
        let res = hooi(&t, &TuckerOptions::new(vec![3, 2, 3]).max_iters(5).tol(0.0));
        for (d, f) in res.model.factors.iter().enumerate() {
            let g = f.gram();
            assert!(g.max_abs_diff(&Mat::eye(f.ncols())) < 1e-8, "mode {d} not orthonormal");
        }
    }

    #[test]
    fn core_norm_bounded_by_tensor_norm() {
        let t = zipf_tensor(&[12, 10, 14, 8], 300, &[0.6; 4], 3);
        let res = hooi(&t, &TuckerOptions::new(vec![2, 2, 2, 2]).max_iters(4).tol(0.0));
        assert!(res.model.core_norm() <= t.fro_norm() + 1e-9);
    }

    #[test]
    fn fit_matches_explicit_reconstruction_on_tiny_tensor() {
        let t = low_multilinear_rank(&[5, 4, 6], &[2, 2, 2], 8);
        let res = hooi(&t, &TuckerOptions::new(vec![2, 2, 2]).max_iters(20).seed(2));
        // Explicit residual.
        let mut resid2 = 0.0;
        for k in 0..t.nnz() {
            let coords: Vec<usize> = (0..3).map(|d| t.mode_idx(d)[k] as usize).collect();
            let diff = t.vals()[k] - res.model.predict(&coords);
            resid2 += diff * diff;
        }
        let explicit_fit = 1.0 - resid2.sqrt() / t.fro_norm();
        assert!(
            (explicit_fit - res.final_fit()).abs() < 1e-6,
            "identity fit {} vs explicit {explicit_fit}",
            res.final_fit()
        );
    }

    #[test]
    fn fit_history_is_essentially_monotone() {
        let t = zipf_tensor(&[15, 12, 10], 500, &[0.7; 3], 4);
        let res = hooi(&t, &TuckerOptions::new(vec![3, 3, 3]).max_iters(10).tol(0.0));
        for w in res.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds mode")]
    fn hooi_rejects_oversized_ranks() {
        let t = zipf_tensor(&[4, 4, 4], 20, &[0.3; 3], 1);
        let _ = hooi(&t, &TuckerOptions::new(vec![5, 2, 2]));
    }
}
