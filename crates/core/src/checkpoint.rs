//! Durable CP-ALS checkpoints: versioned, checksummed, atomically
//! rotated snapshots of the solver's full iteration state.
//!
//! A long-running decomposition job that dies at iteration 39 of 40
//! should not lose everything. This module gives the driver a
//! crash-consistent store it can write at iteration boundaries and
//! reload after a kill, with [`CpAls::resume_from`](crate::CpAls::resume_from)
//! continuing the run **bitwise-identically** to an uninterrupted one:
//! every piece of state the iteration loop reads — factors, lambdas,
//! the fit history the stall/divergence detectors look at, the
//! last-good rollback snapshot, the recovery counters that derive
//! reseed RNG streams — is captured. (The workspace has no hidden RNG
//! state: every random draw is derived deterministically from the run
//! seed plus counters, all of which are stored here.)
//!
//! # On-disk format (version 1, all little-endian)
//!
//! ```text
//! header  (24 bytes): magic "ADTMCKPT" | version u32 | payload_len u64 | crc32 u32
//! payload: seed u64 | next_iter u64 | rank u64 | ndim u64
//!          | per mode: nrows u64, nrows*rank f64          (factor data)
//!          | rank f64                                     (lambda)
//!          | len u64, len f64                             (fit history)
//!          | best_fit f64 | recoveries u64 | rollbacks_left u64
//!          | stall_recorded u8 | elapsed_ns u64
//!          | has_last_good u8 [ rank f64 lambda, per mode nrows*rank f64 ]
//! ```
//!
//! The CRC32 (IEEE, reflected) covers the payload; the `payload_len`
//! frame means truncation at *any* byte offset is detected as either
//! [`CheckpointError::Truncated`] or [`CheckpointError::ChecksumMismatch`]
//! — never a panic, never a silently-wrong model. The cached Gram
//! matrices are deliberately **not** stored: they are bitwise-pure
//! functions of the factors (`Mat::gram`) and are recomputed on resume.
//!
//! # Durability protocol
//!
//! Each generation is written to `ckpt-<gen>.adtmc.tmp`, fully written
//! and fsynced, then renamed over the final name — a crash at any point
//! leaves either the previous generation intact or a complete new one.
//! The store keeps the last *K* generations ([`CheckpointConfig::keep`]);
//! [`CheckpointStore::load_latest`] scans generations newest-first and
//! falls back past corrupt ones, returning each skip as a typed
//! [`CheckpointWarning`]. All file I/O goes through the
//! [`CheckpointMedium`] seam so the `fault-inject` harness can inject
//! torn writes, bit flips, `ENOSPC`, and rename failures.

use adatm_linalg::Mat;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File magic for checkpoint files.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"ADTMCKPT";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Extension used for finalized checkpoint generations.
pub const CHECKPOINT_EXT: &str = "adtmc";

const HEADER_LEN: usize = 24;

/// Extra capacity reserved beyond the exact encoded size so the growing
/// fit history does not force a buffer reallocation on every write.
const HISTORY_SLACK: usize = 4096;

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected). Table-driven, no dependencies; lookups
// use `get` + mask so the hot encode path has no panicking indexing.
// ---------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        let idx = ((c ^ b as u32) & 0xff) as usize;
        // The mask keeps `idx` < 256; `get` + fallback avoids a
        // panicking index in the hot write path.
        c = CRC_TABLE.get(idx).copied().unwrap_or(0) ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why a checkpoint could not be written, read, or resumed from.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointError {
    /// A filesystem operation failed. The original [`std::io::Error`] is
    /// flattened to its kind + message so this error stays `Clone` and
    /// comparable for callers.
    Io {
        /// Which operation failed (`create_dir`, `persist`, `rename`, ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The I/O error kind (e.g. [`std::io::ErrorKind::StorageFull`]).
        kind: std::io::ErrorKind,
        /// The I/O error message.
        msg: String,
    },
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file is shorter than its header or declared payload.
    Truncated {
        /// Bytes the header (or declared payload) requires.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// CRC32 declared in the header.
        expected: u32,
        /// CRC32 computed over the payload.
        found: u32,
    },
    /// The payload is structurally inconsistent (a CRC-valid payload can
    /// only reach this via a hand-crafted file).
    Malformed {
        /// What was inconsistent.
        what: &'static str,
    },
    /// The checkpoint directory holds no checkpoint files.
    NoCheckpoints {
        /// The directory scanned.
        dir: PathBuf,
    },
    /// Every generation in the directory failed to decode.
    AllCorrupt {
        /// The directory scanned.
        dir: PathBuf,
        /// How many generations were tried.
        tried: usize,
    },
    /// The checkpoint is internally consistent but does not match the
    /// tensor/options it is being resumed against.
    Mismatch {
        /// Human-readable description of the disagreement.
        what: String,
    },
}

impl CheckpointError {
    fn io(op: &'static str, path: &Path, e: &std::io::Error) -> Self {
        CheckpointError::Io { op, path: path.to_path_buf(), kind: e.kind(), msg: e.to_string() }
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { op, path, kind, msg } => {
                write!(f, "checkpoint {op} failed for {}: {msg} ({kind:?})", path.display())
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(f, "unsupported checkpoint version {found} (this build reads {CHECKPOINT_VERSION})")
            }
            CheckpointError::Truncated { expected, found } => {
                write!(f, "checkpoint truncated: need {expected} bytes, have {found}")
            }
            CheckpointError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            CheckpointError::Malformed { what } => {
                write!(f, "malformed checkpoint payload: {what}")
            }
            CheckpointError::NoCheckpoints { dir } => {
                write!(f, "no checkpoint generations in {}", dir.display())
            }
            CheckpointError::AllCorrupt { dir, tried } => {
                write!(f, "all {tried} checkpoint generations in {} are corrupt", dir.display())
            }
            CheckpointError::Mismatch { what } => {
                write!(f, "checkpoint does not match this run: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A corrupt generation skipped during [`CheckpointStore::load_latest`]'s
/// newest-first fallback scan.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointWarning {
    /// The generation file that failed to decode.
    pub path: PathBuf,
    /// Its generation number.
    pub generation: u64,
    /// Why it was rejected.
    pub error: CheckpointError,
}

// ---------------------------------------------------------------------
// Checkpoint state (owned + borrowed views)
// ---------------------------------------------------------------------

/// A decoded checkpoint: everything the CP-ALS loop needs to continue a
/// run bitwise-identically to one that was never interrupted.
#[derive(Clone, Debug, PartialEq)]
pub struct CpCheckpoint {
    /// The run's initialization seed (all reseed streams derive from it).
    pub seed: u64,
    /// The next outer iteration to execute (= completed iterations).
    pub next_iter: usize,
    /// Column scales.
    pub lambda: Vec<f64>,
    /// Factor matrices, one per mode (`I_d x R`).
    pub factors: Vec<Mat>,
    /// Fit after each completed iteration (the stall/divergence
    /// detectors read this, so restoring it keeps them from
    /// mistriggering after a restart).
    pub fit_history: Vec<f64>,
    /// Best fit seen so far (`-inf` before the first fit).
    pub best_fit: f64,
    /// Recoveries applied before the checkpoint (rollback reseed streams
    /// derive from this counter).
    pub recoveries: usize,
    /// Rollback budget remaining.
    pub rollbacks_left: usize,
    /// Whether the stall detector already fired (it records once).
    pub stall_recorded: bool,
    /// Wall-clock nanoseconds spent before the checkpoint (informational).
    pub elapsed_ns: u64,
    /// The last-good rollback snapshot (lambda + factors), if one
    /// existed. Grams are recomputed from the factors on resume.
    pub last_good: Option<(Vec<f64>, Vec<Mat>)>,
}

impl CpCheckpoint {
    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Mode dimensions implied by the factor shapes.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(Mat::nrows).collect()
    }

    /// Borrowing view for encoding.
    pub fn as_view(&self) -> CheckpointView<'_> {
        CheckpointView {
            seed: self.seed,
            next_iter: self.next_iter,
            lambda: &self.lambda,
            factors: &self.factors,
            fit_history: &self.fit_history,
            best_fit: self.best_fit,
            recoveries: self.recoveries,
            rollbacks_left: self.rollbacks_left,
            stall_recorded: self.stall_recorded,
            elapsed_ns: self.elapsed_ns,
            last_good: self.last_good.as_ref().map(|(l, f)| (l.as_slice(), f.as_slice())),
        }
    }

    /// Encodes into a fresh buffer (convenience for tests/tools; the
    /// driver reuses [`CheckpointStore`]'s buffer instead).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        encode_into(&self.as_view(), &mut buf);
        buf
    }

    /// Decodes a checkpoint from `bytes`, verifying magic, version,
    /// length framing, and payload checksum. Never panics on arbitrary
    /// input.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        decode(bytes)
    }
}

/// A borrowed view of live solver state, serialized without copying it
/// into an owned [`CpCheckpoint`] first.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointView<'a> {
    /// See [`CpCheckpoint::seed`].
    pub seed: u64,
    /// See [`CpCheckpoint::next_iter`].
    pub next_iter: usize,
    /// See [`CpCheckpoint::lambda`].
    pub lambda: &'a [f64],
    /// See [`CpCheckpoint::factors`].
    pub factors: &'a [Mat],
    /// See [`CpCheckpoint::fit_history`].
    pub fit_history: &'a [f64],
    /// See [`CpCheckpoint::best_fit`].
    pub best_fit: f64,
    /// See [`CpCheckpoint::recoveries`].
    pub recoveries: usize,
    /// See [`CpCheckpoint::rollbacks_left`].
    pub rollbacks_left: usize,
    /// See [`CpCheckpoint::stall_recorded`].
    pub stall_recorded: bool,
    /// See [`CpCheckpoint::elapsed_ns`].
    pub elapsed_ns: u64,
    /// See [`CpCheckpoint::last_good`].
    pub last_good: Option<(&'a [f64], &'a [Mat])>,
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    for &v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn payload_size(view: &CheckpointView<'_>) -> usize {
    let rank = view.lambda.len();
    let factor_bytes: usize = view.factors.iter().map(|m| 8 + m.as_slice().len() * 8).sum();
    let mut n =
        8 * 4 + factor_bytes + rank * 8 + 8 + view.fit_history.len() * 8 + 8 + 8 + 8 + 1 + 8 + 1;
    if let Some((l, fs)) = view.last_good {
        n += l.len() * 8 + fs.iter().map(|m| m.as_slice().len() * 8).sum::<usize>();
    }
    n
}

/// Serializes `view` into `buf` (header + checksummed payload),
/// replacing its contents. The buffer is cleared, not shrunk, so a
/// store reusing one buffer allocates nothing here once warm.
#[adatm::hot]
pub fn encode_into(view: &CheckpointView<'_>, buf: &mut Vec<u8>) {
    debug_assert!(view.factors.iter().all(|m| m.ncols() == view.lambda.len()));
    let plen = payload_size(view);
    buf.clear();
    buf.reserve(HEADER_LEN + plen + HISTORY_SLACK);
    buf.extend_from_slice(&[0u8; HEADER_LEN]);
    put_u64(buf, view.seed);
    put_u64(buf, view.next_iter as u64);
    put_u64(buf, view.lambda.len() as u64);
    put_u64(buf, view.factors.len() as u64);
    for m in view.factors {
        put_u64(buf, m.nrows() as u64);
        put_f64s(buf, m.as_slice());
    }
    put_f64s(buf, view.lambda);
    put_u64(buf, view.fit_history.len() as u64);
    put_f64s(buf, view.fit_history);
    put_f64(buf, view.best_fit);
    put_u64(buf, view.recoveries as u64);
    put_u64(buf, view.rollbacks_left as u64);
    buf.push(view.stall_recorded as u8);
    put_u64(buf, view.elapsed_ns);
    match view.last_good {
        None => buf.push(0),
        Some((l, fs)) => {
            buf.push(1);
            put_f64s(buf, l);
            for m in fs {
                put_f64s(buf, m.as_slice());
            }
        }
    }
    debug_assert_eq!(buf.len(), HEADER_LEN + plen);
    let crc = crc32(buf.split_at(HEADER_LEN).1);
    let plen64 = (buf.len() - HEADER_LEN) as u64;
    let header = buf.split_at_mut(HEADER_LEN).0;
    let (magic, rest) = header.split_at_mut(8);
    magic.copy_from_slice(CHECKPOINT_MAGIC);
    let (version, rest) = rest.split_at_mut(4);
    version.copy_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    let (len, crc_bytes) = rest.split_at_mut(8);
    len.copy_from_slice(&plen64.to_le_bytes());
    crc_bytes.copy_from_slice(&crc.to_le_bytes());
}

/// Bounds-checked cursor over the (CRC-verified) payload.
struct Cursor<'a> {
    rest: &'a [u8],
    taken: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.rest.len() < n {
            return Err(CheckpointError::Truncated {
                expected: self.taken + n,
                found: self.taken + self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        self.taken += n;
        Ok(head)
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn count(&mut self, what: &'static str) -> Result<usize, CheckpointError> {
        let v = self.u64()?;
        let n = usize::try_from(v).map_err(|_| CheckpointError::Malformed { what })?;
        // Any count must be backed by at least one byte per element of
        // remaining payload; this rejects absurd values before they can
        // drive a huge allocation.
        if n > self.rest.len() {
            return Err(CheckpointError::Malformed { what });
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(*self.take(1)?.first().unwrap_or(&0))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, CheckpointError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or(CheckpointError::Malformed { what: "vector length overflow" })?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_le_bytes(a)
            })
            .collect())
    }
}

fn decode(bytes: &[u8]) -> Result<CpCheckpoint, CheckpointError> {
    if bytes.len() < HEADER_LEN {
        return Err(CheckpointError::Truncated { expected: HEADER_LEN, found: bytes.len() });
    }
    let (header, body) = bytes.split_at(HEADER_LEN);
    let (magic, rest) = header.split_at(8);
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let (vbytes, rest) = rest.split_at(4);
    let mut v4 = [0u8; 4];
    v4.copy_from_slice(vbytes);
    let version = u32::from_le_bytes(v4);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let (lbytes, cbytes) = rest.split_at(8);
    let mut l8 = [0u8; 8];
    l8.copy_from_slice(lbytes);
    let plen = usize::try_from(u64::from_le_bytes(l8))
        .map_err(|_| CheckpointError::Malformed { what: "payload length overflow" })?;
    let mut c4 = [0u8; 4];
    c4.copy_from_slice(cbytes);
    let expected_crc = u32::from_le_bytes(c4);
    if body.len() < plen {
        return Err(CheckpointError::Truncated { expected: HEADER_LEN + plen, found: bytes.len() });
    }
    let payload = body.split_at(plen).0;
    let found_crc = crc32(payload);
    if found_crc != expected_crc {
        return Err(CheckpointError::ChecksumMismatch { expected: expected_crc, found: found_crc });
    }

    let mut cur = Cursor { rest: payload, taken: 0 };
    let seed = cur.u64()?;
    let next_iter = usize::try_from(cur.u64()?)
        .map_err(|_| CheckpointError::Malformed { what: "iteration counter overflow" })?;
    let rank = cur.count("rank")?;
    let ndim = cur.count("ndim")?;
    let mut nrows = Vec::with_capacity(ndim);
    let mut factors = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let rows = cur.count("factor rows")?;
        let data = cur.f64s(
            rows.checked_mul(rank)
                .ok_or(CheckpointError::Malformed { what: "factor size overflow" })?,
        )?;
        nrows.push(rows);
        factors.push(Mat::from_vec(rows, rank, data));
    }
    let lambda = cur.f64s(rank)?;
    let fit_len = cur.count("fit history length")?;
    let fit_history = cur.f64s(fit_len)?;
    let best_fit = cur.f64()?;
    let recoveries = usize::try_from(cur.u64()?)
        .map_err(|_| CheckpointError::Malformed { what: "recovery counter overflow" })?;
    let rollbacks_left = usize::try_from(cur.u64()?)
        .map_err(|_| CheckpointError::Malformed { what: "rollback budget overflow" })?;
    let stall_recorded = match cur.u8()? {
        0 => false,
        1 => true,
        _ => return Err(CheckpointError::Malformed { what: "stall flag" }),
    };
    let elapsed_ns = cur.u64()?;
    let last_good = match cur.u8()? {
        0 => None,
        1 => {
            let l = cur.f64s(rank)?;
            let mut fs = Vec::with_capacity(ndim);
            for &rows in &nrows {
                let data = cur.f64s(rows * rank)?;
                fs.push(Mat::from_vec(rows, rank, data));
            }
            Some((l, fs))
        }
        _ => return Err(CheckpointError::Malformed { what: "last-good flag" }),
    };
    if !cur.rest.is_empty() {
        return Err(CheckpointError::Malformed { what: "trailing payload bytes" });
    }
    Ok(CpCheckpoint {
        seed,
        next_iter,
        lambda,
        factors,
        fit_history,
        best_fit,
        recoveries,
        rollbacks_left,
        stall_recorded,
        elapsed_ns,
        last_good,
    })
}

// ---------------------------------------------------------------------
// Storage medium (the fault-injection seam)
// ---------------------------------------------------------------------

/// The file-I/O seam the checkpoint store writes through. The default
/// [`FsMedium`] talks to the real filesystem; the `fault-inject`
/// feature's `FaultyMedium` wraps it to inject torn writes, bit flips,
/// `ENOSPC`, and rename failures on a deterministic schedule.
pub trait CheckpointMedium: std::fmt::Debug + Send {
    /// Creates `path`, writes all of `bytes`, and flushes it to stable
    /// storage (fsync).
    fn persist(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Atomically replaces `to` with `from`.
    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()>;
}

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct FsMedium;

impl CheckpointMedium for FsMedium {
    fn persist(&mut self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> std::io::Result<()> {
        fs::rename(from, to)
    }
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

/// Factory producing the medium a run's store writes through (the
/// indirection keeps [`CheckpointConfig`] `Clone` while media are
/// stateful).
#[cfg(feature = "fault-inject")]
pub type MediumFactory = std::sync::Arc<dyn Fn() -> Box<dyn CheckpointMedium> + Send + Sync>;

/// Checkpoint cadence and retention, carried by
/// [`CpAlsOptions`](crate::CpAlsOptions).
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Directory holding the generation files (created if absent).
    pub dir: PathBuf,
    /// Write every N completed iterations (`None`: no count cadence).
    pub every_iters: Option<usize>,
    /// Write when at least this much wall-clock has passed since the
    /// last write (`None`: no time cadence). When neither cadence is
    /// set, the driver writes after every iteration.
    pub every: Option<std::time::Duration>,
    /// Generations to retain (older ones are pruned after each write).
    pub keep: usize,
    /// Injected storage medium for the fault harness (`None`: real fs).
    #[cfg(feature = "fault-inject")]
    pub medium_factory: Option<MediumFactory>,
}

impl std::fmt::Debug for CheckpointConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("CheckpointConfig");
        d.field("dir", &self.dir)
            .field("every_iters", &self.every_iters)
            .field("every", &self.every)
            .field("keep", &self.keep);
        #[cfg(feature = "fault-inject")]
        d.field("medium_factory", &self.medium_factory.as_ref().map(|_| "injected"));
        d.finish()
    }
}

impl CheckpointConfig {
    /// A config writing to `dir` after every iteration, keeping the last
    /// 3 generations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_iters: None,
            every: None,
            keep: 3,
            #[cfg(feature = "fault-inject")]
            medium_factory: None,
        }
    }

    /// Sets the iteration-count cadence (0 is treated as 1).
    pub fn every_iters(mut self, n: usize) -> Self {
        self.every_iters = Some(n.max(1));
        self
    }

    /// Sets the wall-clock cadence.
    pub fn every(mut self, dt: std::time::Duration) -> Self {
        self.every = Some(dt);
        self
    }

    /// Sets the number of generations to retain (minimum 1).
    pub fn keep(mut self, k: usize) -> Self {
        self.keep = k.max(1);
        self
    }

    /// Injects a storage medium for fault testing.
    #[cfg(feature = "fault-inject")]
    pub fn medium_factory(mut self, f: MediumFactory) -> Self {
        self.medium_factory = Some(f);
        self
    }

    /// Opens the store this config describes (creating the directory).
    pub fn build_store(&self) -> Result<CheckpointStore, CheckpointError> {
        #[cfg(feature = "fault-inject")]
        if let Some(factory) = &self.medium_factory {
            return Ok(CheckpointStore::with_medium(&self.dir, factory())?.keep(self.keep));
        }
        Ok(CheckpointStore::create(&self.dir)?.keep(self.keep))
    }
}

// ---------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------

/// A successfully loaded checkpoint plus the fallback trail that led to
/// it.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeOutcome {
    /// The newest decodable checkpoint.
    pub checkpoint: CpCheckpoint,
    /// The file it was read from.
    pub path: PathBuf,
    /// Its generation number.
    pub generation: u64,
    /// Newer generations that were corrupt and skipped (typed warnings,
    /// newest first). Empty when the newest generation was healthy.
    pub fallbacks: Vec<CheckpointWarning>,
}

/// A rotated, atomically written store of checkpoint generations in one
/// directory. Files are named `ckpt-<generation>.adtmc`; writes reuse
/// one serialization buffer so the steady-state iteration-boundary path
/// performs no per-checkpoint buffer allocation.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    next_gen: u64,
    buf: Vec<u8>,
    medium: Box<dyn CheckpointMedium>,
}

fn scan_generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| CheckpointError::io("read_dir", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::io("read_dir", dir, &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(".adtmc")) else {
            continue;
        };
        let Ok(generation) = stem.parse::<u64>() else { continue };
        out.push((generation, entry.path()));
    }
    out.sort_unstable_by_key(|(g, _)| *g);
    Ok(out)
}

impl CheckpointStore {
    /// Opens (creating if needed) a store over `dir` with the real
    /// filesystem medium. Existing generations are preserved; new writes
    /// continue the generation sequence after the newest one found.
    pub fn create(dir: &Path) -> Result<Self, CheckpointError> {
        Self::with_medium(dir, Box::new(FsMedium))
    }

    /// Opens a store writing through an injected medium.
    pub fn with_medium(
        dir: &Path,
        medium: Box<dyn CheckpointMedium>,
    ) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| CheckpointError::io("create_dir", dir, &e))?;
        let next_gen = scan_generations(dir)?.last().map_or(0, |(g, _)| g + 1);
        Ok(CheckpointStore { dir: dir.to_path_buf(), keep: 3, next_gen, buf: Vec::new(), medium })
    }

    /// Sets the retention count (minimum 1).
    pub fn keep(mut self, k: usize) -> Self {
        self.keep = k.max(1);
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The generation number the next write will get.
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    fn paths(&self, generation: u64) -> (PathBuf, PathBuf) {
        let fin = self.dir.join(format!("ckpt-{generation:012}.adtmc"));
        let tmp = self.dir.join(format!("ckpt-{generation:012}.adtmc.tmp"));
        (tmp, fin)
    }

    /// Writes one generation: encode into the reused buffer, persist to
    /// a temp file (write + fsync), rename into place, prune old
    /// generations. Returns `(generation, encoded_bytes)`.
    ///
    /// A failed write leaves previous generations untouched (the temp
    /// file is removed best-effort) — the caller can treat the error as
    /// non-fatal and keep iterating.
    #[adatm::hot]
    pub fn write(&mut self, view: &CheckpointView<'_>) -> Result<(u64, usize), CheckpointError> {
        let t0 = Instant::now();
        encode_into(view, &mut self.buf);
        let generation = self.next_gen;
        let (tmp, fin) = self.paths(generation);
        if let Err(e) = self.medium.persist(&tmp, &self.buf) {
            let err = CheckpointError::io("persist", &tmp, &e);
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        if let Err(e) = self.medium.rename(&tmp, &fin) {
            let err = CheckpointError::io("rename", &fin, &e);
            let _ = fs::remove_file(&tmp);
            return Err(err);
        }
        self.next_gen += 1;
        self.prune();
        adatm_trace::event!(
            "checkpoint.write",
            iter: view.next_iter as u64,
            gen: generation,
            bytes: self.buf.len() as u64,
            elapsed_ns: t0.elapsed().as_nanos() as u64
        );
        Ok((generation, self.buf.len()))
    }

    /// Removes generations beyond the retention count (best-effort: a
    /// prune failure never fails the write that triggered it).
    fn prune(&mut self) {
        let Ok(gens) = scan_generations(&self.dir) else { return };
        let n = gens.len();
        if n <= self.keep {
            return;
        }
        for (_, path) in gens.iter().take(n - self.keep) {
            let _ = fs::remove_file(path);
        }
    }

    /// Loads the newest decodable generation from `dir`, falling back
    /// past corrupt ones (each skip recorded as a typed
    /// [`CheckpointWarning`]).
    pub fn load_latest(dir: &Path) -> Result<ResumeOutcome, CheckpointError> {
        // A directory that does not exist yet has no checkpoints — that
        // is a `NoCheckpoints` answer, not a filesystem failure.
        if !dir.exists() {
            return Err(CheckpointError::NoCheckpoints { dir: dir.to_path_buf() });
        }
        let mut gens = scan_generations(dir)?;
        if gens.is_empty() {
            return Err(CheckpointError::NoCheckpoints { dir: dir.to_path_buf() });
        }
        gens.reverse(); // newest first
        let tried = gens.len();
        let mut fallbacks = Vec::new();
        for (generation, path) in gens {
            let attempt = fs::read(&path)
                .map_err(|e| CheckpointError::io("read", &path, &e))
                .and_then(|bytes| decode(&bytes));
            match attempt {
                Ok(checkpoint) => {
                    adatm_trace::event!(
                        "checkpoint.resume",
                        iter: checkpoint.next_iter as u64,
                        gen: generation,
                        fallbacks: fallbacks.len() as u64
                    );
                    return Ok(ResumeOutcome { checkpoint, path, generation, fallbacks });
                }
                Err(error) => fallbacks.push(CheckpointWarning { path, generation, error }),
            }
        }
        Err(CheckpointError::AllCorrupt { dir: dir.to_path_buf(), tried })
    }

    #[cfg(test)]
    fn buf_capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_checkpoint(dims: &[usize], rank: usize, seed: u64, hist: usize) -> CpCheckpoint {
        let factors: Vec<Mat> =
            dims.iter().enumerate().map(|(d, &n)| Mat::random(n, rank, seed ^ d as u64)).collect();
        let lambda: Vec<f64> = (0..rank).map(|r| 1.0 + r as f64 * 0.25).collect();
        let fit_history: Vec<f64> = (0..hist).map(|i| 0.5 + i as f64 * 1e-3).collect();
        let best_fit = fit_history.last().copied().unwrap_or(f64::NEG_INFINITY);
        CpCheckpoint {
            seed,
            next_iter: hist,
            last_good: if hist > 0 { Some((lambda.clone(), factors.clone())) } else { None },
            lambda,
            factors,
            fit_history,
            best_fit,
            recoveries: 2,
            rollbacks_left: 6,
            stall_recorded: hist > 8,
            elapsed_ns: 123_456_789,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("adatm-ckpt-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_bitwise_identical() {
        let ck = sample_checkpoint(&[7, 5, 6], 3, 42, 9);
        let bytes = ck.encode();
        let back = CpCheckpoint::decode(&bytes).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn roundtrip_preserves_special_floats() {
        let mut ck = sample_checkpoint(&[4, 3], 2, 7, 0);
        ck.best_fit = f64::NEG_INFINITY;
        ck.fit_history = vec![-0.0, f64::MIN_POSITIVE, 1e308];
        ck.next_iter = 3;
        let back = CpCheckpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.best_fit, f64::NEG_INFINITY);
        assert_eq!(back.fit_history[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(ck, back);
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let ck = sample_checkpoint(&[5, 4, 3], 2, 11, 6);
        let bytes = ck.encode();
        for cut in 0..bytes.len() {
            let err = CpCheckpoint::decode(&bytes[..cut])
                .expect_err(&format!("truncation at {cut}/{} must fail", bytes.len()));
            assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "cut {cut}: unexpected error {err:?}"
            );
        }
        assert!(CpCheckpoint::decode(&bytes).is_ok());
    }

    #[test]
    fn single_byte_corruption_is_detected_everywhere() {
        let ck = sample_checkpoint(&[4, 3], 2, 3, 4);
        let bytes = ck.encode();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match CpCheckpoint::decode(&bad) {
                Err(_) => {}
                Ok(decoded) => panic!("flip at byte {pos} decoded silently: {decoded:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let bytes = sample_checkpoint(&[3, 3], 1, 0, 1).encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(CpCheckpoint::decode(&bad), Err(CheckpointError::BadMagic)));
        let mut newer = bytes.clone();
        newer[8] = 99; // version LE byte 0
                       // Version is inside the header, not the payload, so this is a
                       // clean UnsupportedVersion, not a checksum failure.
        assert!(matches!(
            CpCheckpoint::decode(&newer),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn store_writes_rotate_and_reload() {
        let dir = tmp_dir("rotate");
        let mut store = CheckpointStore::create(&dir).unwrap().keep(2);
        for i in 0..5 {
            let mut ck = sample_checkpoint(&[6, 5], 2, 9, i);
            ck.next_iter = i;
            store.write(&ck.as_view()).unwrap();
        }
        let files = scan_generations(&dir).unwrap();
        assert_eq!(files.len(), 2, "retention keeps exactly K generations");
        assert_eq!(files[0].0, 3);
        assert_eq!(files[1].0, 4);
        let out = CheckpointStore::load_latest(&dir).unwrap();
        assert_eq!(out.generation, 4);
        assert_eq!(out.checkpoint.next_iter, 4);
        assert!(out.fallbacks.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_generation_falls_back_with_typed_warning() {
        let dir = tmp_dir("fallback");
        let mut store = CheckpointStore::create(&dir).unwrap();
        for i in 0..3 {
            let mut ck = sample_checkpoint(&[6, 5], 2, 9, i + 1);
            ck.next_iter = i + 1;
            store.write(&ck.as_view()).unwrap();
        }
        // Corrupt the newest generation mid-payload.
        let files = scan_generations(&dir).unwrap();
        let newest = &files.last().unwrap().1;
        let mut bytes = fs::read(newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(newest, &bytes).unwrap();

        let out = CheckpointStore::load_latest(&dir).unwrap();
        assert_eq!(out.generation, 1, "fell back to the previous generation");
        assert_eq!(out.checkpoint.next_iter, 2);
        assert_eq!(out.fallbacks.len(), 1);
        assert_eq!(out.fallbacks[0].generation, 2);
        assert!(matches!(out.fallbacks[0].error, CheckpointError::ChecksumMismatch { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_all_corrupt_dirs_are_typed_errors() {
        let dir = tmp_dir("empty");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            CheckpointStore::load_latest(&dir),
            Err(CheckpointError::NoCheckpoints { .. })
        ));
        fs::write(dir.join("ckpt-000000000000.adtmc"), b"garbage").unwrap();
        assert!(matches!(
            CheckpointStore::load_latest(&dir),
            Err(CheckpointError::AllCorrupt { tried: 1, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_resumes_generation_numbering() {
        let dir = tmp_dir("resume-gen");
        let mut store = CheckpointStore::create(&dir).unwrap();
        let ck = sample_checkpoint(&[4, 4], 2, 1, 1);
        store.write(&ck.as_view()).unwrap();
        drop(store);
        let store2 = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store2.next_generation(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn steady_state_writes_reuse_the_buffer() {
        let dir = tmp_dir("steady");
        let mut store = CheckpointStore::create(&dir).unwrap();
        let ck = sample_checkpoint(&[20, 18, 16], 4, 2, 10);
        store.write(&ck.as_view()).unwrap();
        let cap = store.buf_capacity();
        for _ in 0..10 {
            store.write(&ck.as_view()).unwrap();
        }
        assert_eq!(store.buf_capacity(), cap, "serialization buffer must be reused");
        let _ = fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_roundtrip_arbitrary_shapes(
            dims in proptest::collection::vec(1usize..7, 1..5),
            rank in 1usize..5,
            hist in 0usize..12,
            seed in 0u64..=u64::MAX,
            with_last_good in (0u64..2).prop_map(|b| b == 1),
        ) {
            let mut ck = sample_checkpoint(&dims, rank, seed, hist);
            if !with_last_good {
                ck.last_good = None;
            }
            let bytes = ck.encode();
            let back = CpCheckpoint::decode(&bytes).unwrap();
            prop_assert_eq!(ck, back);
        }

        #[test]
        fn prop_truncation_never_panics_and_always_errors(
            dims in proptest::collection::vec(1usize..5, 1..4),
            rank in 1usize..4,
            hist in 0usize..6,
            frac in 0.0f64..1.0,
        ) {
            let ck = sample_checkpoint(&dims, rank, 5, hist);
            let bytes = ck.encode();
            let cut = ((bytes.len() as f64) * frac) as usize;
            let cut = cut.min(bytes.len().saturating_sub(1));
            prop_assert!(CpCheckpoint::decode(&bytes[..cut]).is_err());
        }
    }
}
