//! The typed failure surface of the CP-ALS driver.
//!
//! [`CpAls::run`](crate::CpAls::run) and
//! [`CpAls::run_from`](crate::CpAls::run_from) return [`CpAlsError`] for
//! malformed caller input instead of panicking, so a service embedding the
//! solver can translate every failure into a response instead of crashing
//! a worker. Numeric breakdowns *during* a run are not errors: the solver
//! recovers or degrades gracefully and reports what happened in
//! [`RunDiagnostics`](crate::RunDiagnostics).

use crate::checkpoint::CheckpointError;
use adatm_linalg::LinalgError;

/// Why a CP-ALS run could not start (or, in the unrecoverable case, could
/// not produce even a degraded model).
#[derive(Clone, Debug, PartialEq)]
pub enum CpAlsError {
    /// The requested decomposition rank is zero.
    ZeroRank,
    /// CP decomposition needs at least two modes.
    TooFewModes {
        /// Number of modes of the input tensor.
        ndim: usize,
    },
    /// `run_from` was given the wrong number of initial factors.
    FactorCountMismatch {
        /// Modes in the tensor.
        expected: usize,
        /// Factors supplied.
        found: usize,
    },
    /// An initial factor has the wrong shape.
    FactorShapeMismatch {
        /// Which mode's factor is wrong.
        mode: usize,
        /// `(rows, cols)` the solver expected (`I_mode x R`).
        expected: (usize, usize),
        /// `(rows, cols)` actually supplied.
        found: (usize, usize),
    },
    /// The input tensor contains NaN or infinite values.
    NonFiniteTensor,
    /// An initial factor contains NaN or infinite values.
    NonFiniteInit {
        /// Which mode's factor is non-finite.
        mode: usize,
    },
    /// A dense kernel failed in a way no recovery policy could absorb.
    Linalg(LinalgError),
    /// The checkpoint store could not be opened, or a checkpoint being
    /// resumed from is unreadable or inconsistent with this run.
    /// Mid-run checkpoint *write* failures are not errors: the run keeps
    /// iterating and records a
    /// [`BreakdownKind::CheckpointWriteFailed`](crate::BreakdownKind::CheckpointWriteFailed)
    /// diagnostic instead.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for CpAlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpAlsError::ZeroRank => write!(f, "decomposition rank must be at least 1"),
            CpAlsError::TooFewModes { ndim } => {
                write!(f, "CP-ALS needs a tensor with at least 2 modes, got {ndim}")
            }
            CpAlsError::FactorCountMismatch { expected, found } => {
                write!(f, "expected {expected} initial factors (one per mode), found {found}")
            }
            CpAlsError::FactorShapeMismatch { mode, expected, found } => write!(
                f,
                "initial factor for mode {mode} is {} x {}, expected {} x {}",
                found.0, found.1, expected.0, expected.1
            ),
            CpAlsError::NonFiniteTensor => {
                write!(f, "input tensor contains non-finite (NaN/Inf) values")
            }
            CpAlsError::NonFiniteInit { mode } => {
                write!(f, "initial factor for mode {mode} contains non-finite (NaN/Inf) values")
            }
            CpAlsError::Linalg(e) => write!(f, "unrecoverable dense-kernel failure: {e}"),
            CpAlsError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for CpAlsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpAlsError::Linalg(e) => Some(e),
            CpAlsError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CpAlsError {
    fn from(e: LinalgError) -> Self {
        CpAlsError::Linalg(e)
    }
}

impl From<CheckpointError> for CpAlsError {
    fn from(e: CheckpointError) -> Self {
        CpAlsError::Checkpoint(e)
    }
}
