//! Breakdown and recovery diagnostics for a CP-ALS run.
//!
//! Every detector firing and every recovery policy applied is recorded as
//! a [`BreakdownEvent`] in the run's [`RunDiagnostics`], so callers (and
//! the fault-injection tests) can assert on exactly what the solver saw
//! and did — not just on the final model.

use std::time::Duration;

/// What a breakdown detector observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakdownKind {
    /// The MTTKRP output for a mode contained NaN/Inf.
    NonFiniteMttkrp,
    /// The Hadamard-of-Grams system matrix contained NaN/Inf.
    NonFiniteGram,
    /// The updated factor (or its `lambda` scales) contained NaN/Inf
    /// after the solve.
    NonFiniteFactor,
    /// The Gram system was numerically singular (condition estimate from
    /// the Jacobi eigenvalues exceeded the threshold, or eigenvalues were
    /// truncated by the pseudoinverse).
    SingularGram,
    /// The dense solve itself failed (eigensolver non-convergence).
    SolveFailed,
    /// One or more factor columns collapsed to exactly zero.
    ZeroColumns,
    /// The fit dropped sharply or became non-finite between iterations.
    FitDivergence,
    /// The fit stopped improving for several iterations with early
    /// stopping disabled (`tol = 0`).
    FitStall,
    /// The wall-clock budget expired.
    TimeBudgetExpired,
    /// Measured per-iteration time exceeded the planner's calibrated
    /// prediction by more than the configured drift factor: the cost
    /// model (or its profile) no longer describes this machine/tensor.
    PredictionDrift,
    /// An iteration-boundary checkpoint write failed (I/O error). The
    /// run keeps iterating — durability degrades, correctness does not —
    /// and earlier generations remain intact for resume.
    CheckpointWriteFailed,
}

impl std::fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakdownKind::NonFiniteMttkrp => "non-finite MTTKRP output",
            BreakdownKind::NonFiniteGram => "non-finite Gram system",
            BreakdownKind::NonFiniteFactor => "non-finite updated factor",
            BreakdownKind::SingularGram => "numerically singular Gram system",
            BreakdownKind::SolveFailed => "dense solve failure",
            BreakdownKind::ZeroColumns => "zero factor columns",
            BreakdownKind::FitDivergence => "fit divergence",
            BreakdownKind::FitStall => "fit stall",
            BreakdownKind::TimeBudgetExpired => "time budget expired",
            BreakdownKind::PredictionDrift => "model-prediction drift",
            BreakdownKind::CheckpointWriteFailed => "checkpoint write failure",
        };
        f.write_str(s)
    }
}

/// Which recovery policy the solver applied to a breakdown.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryAction {
    /// Re-solved the degenerate Gram system with a Tikhonov ridge.
    RidgeResolve {
        /// The ridge added to the Gram diagonal.
        ridge: f64,
    },
    /// Rolled back to the last-good factor set and re-randomized the
    /// offending state, invalidating all memoized backend intermediates.
    Rollback {
        /// Columns re-seeded with fresh random entries (all, on a full
        /// rollback).
        reseeded_cols: usize,
    },
    /// Re-seeded individual zero columns in place.
    ReseedColumns {
        /// Number of columns refreshed.
        reseeded_cols: usize,
    },
    /// No repair possible or budget exhausted: the run stopped and
    /// returned the best model seen so far.
    Degrade,
    /// Detection only (recorded for the diagnostics record; the event
    /// needed no repair — e.g. a stall with early stopping disabled).
    None,
}

/// One detector firing, with the recovery taken and its cost.
#[derive(Clone, Debug)]
pub struct BreakdownEvent {
    /// Outer iteration (0-based) in which the detector fired.
    pub iter: usize,
    /// Mode being updated, if the breakdown is mode-local.
    pub mode: Option<usize>,
    /// What was detected.
    pub kind: BreakdownKind,
    /// What the solver did about it.
    pub recovery: RecoveryAction,
    /// Wall-clock spent applying the recovery.
    pub recovery_time: Duration,
}

/// Why the iteration loop stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// The fit-change tolerance fired.
    Converged,
    /// The iteration cap was reached.
    #[default]
    MaxIters,
    /// The wall-clock budget expired.
    TimeBudget,
    /// The run degraded: recovery budget exhausted (or an unrecoverable
    /// breakdown), best-so-far model returned.
    Degraded,
    /// The fit diverged and the solver restored the best earlier state.
    Diverged,
}

/// The resilience record of a run.
///
/// Healthy runs have an empty `events` list; anything else documents a
/// breakdown the solver detected and what it did about it. Returned as
/// part of [`CpResult`](crate::CpResult) — inspecting it is how callers
/// distinguish "converged cleanly" from "limped home".
#[derive(Clone, Debug, Default)]
pub struct RunDiagnostics {
    /// Every detector firing, in order.
    pub events: Vec<BreakdownEvent>,
    /// Recoveries actually applied (events minus detection-only records).
    pub recoveries: usize,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Whether the returned model is a best-so-far fallback rather than
    /// the state of the final iteration.
    pub degraded: bool,
    /// Total wall-clock of the run.
    pub elapsed: Duration,
    /// The backend's calibrated per-iteration prediction in nanoseconds,
    /// when the model-driven backend supplied one.
    pub predicted_iter_ns: Option<f64>,
    /// Measured per-iteration kernel time in nanoseconds
    /// (`(mttkrp + dense) / iters`), the quantity the drift detector
    /// compares against `predicted_iter_ns`.
    pub measured_iter_ns: Option<f64>,
}

impl RunDiagnostics {
    /// Records an event, bumping the recovery counter when a repair was
    /// applied.
    pub(crate) fn record(&mut self, event: BreakdownEvent) {
        adatm_trace::event!(
            "recovery",
            iter: event.iter as u64,
            mode: event.mode.map_or(-1i64, |m| m as i64),
            kind: format!("{}", event.kind),
            action: format!("{:?}", event.recovery),
            recovery_ns: event.recovery_time.as_nanos() as u64
        );
        if !matches!(event.recovery, RecoveryAction::None) {
            self.recoveries += 1;
        }
        self.events.push(event);
    }

    /// Whether any detector fired during the run.
    pub fn clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind (for tests asserting specific fault classes).
    pub fn count_of(&self, kind: BreakdownKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}
