//! The CP decomposition result.

use adatm_linalg::Mat;
use adatm_tensor::SparseTensor;

/// A rank-`R` CP model `[lambda; U^(1), ..., U^(N)]`: the tensor is
/// approximated by `sum_r lambda_r u_r^(1) o ... o u_r^(N)` with every
/// factor column normalized.
#[derive(Clone, Debug)]
pub struct CpModel {
    /// Component weights, one per rank column.
    pub lambda: Vec<f64>,
    /// Factor matrices, `I_n x R` each, unit-normalized columns.
    pub factors: Vec<Mat>,
}

impl CpModel {
    /// Decomposition rank.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Tensor order.
    pub fn ndim(&self) -> usize {
        self.factors.len()
    }

    /// Model value at one coordinate:
    /// `sum_r lambda_r prod_d U^(d)(i_d, r)`.
    pub fn predict(&self, coords: &[usize]) -> f64 {
        assert_eq!(coords.len(), self.ndim(), "coordinate arity mismatch");
        let mut v = 0.0;
        for (r, &l) in self.lambda.iter().enumerate() {
            let mut p = l;
            for (f, &c) in self.factors.iter().zip(coords.iter()) {
                p *= f.get(c, r);
            }
            v += p;
        }
        v
    }

    /// Frobenius norm of the model tensor, computed in `O(N R² + R²)`
    /// from the factor Gram matrices:
    /// `||M||² = sum_{r,s} lambda_r lambda_s prod_d W^(d)_{rs}`.
    pub fn norm(&self) -> f64 {
        let mut g = self.factors[0].gram();
        for f in &self.factors[1..] {
            g.hadamard_assign(&f.gram());
        }
        g.weighted_quad(&self.lambda, &self.lambda).max(0.0).sqrt()
    }

    /// Inner product `<X, M>` with a sparse tensor, by direct evaluation
    /// at the nonzeros (`O(nnz N R)`); small-scale helper — the ALS loop
    /// uses the cheaper MTTKRP-based formula.
    pub fn inner_with(&self, tensor: &SparseTensor) -> f64 {
        assert_eq!(tensor.ndim(), self.ndim());
        let mut total = 0.0;
        for k in 0..tensor.nnz() {
            let coords: Vec<usize> =
                (0..tensor.ndim()).map(|d| tensor.mode_idx(d)[k] as usize).collect();
            total += tensor.vals()[k] * self.predict(&coords);
        }
        total
    }

    /// Fit against a sparse tensor: `1 - ||X - M|| / ||X||`, where the
    /// residual norm uses the expansion
    /// `||X - M||² = ||X||² - 2 <X, M> + ||M||²`.
    ///
    /// Note `X - M` is dense wherever the model is nonzero; this is the
    /// standard CP fit, not a masked/completion fit.
    pub fn fit_to(&self, tensor: &SparseTensor) -> f64 {
        let xnorm2 = tensor.fro_norm_sq();
        if xnorm2 == 0.0 {
            return 0.0;
        }
        let mnorm = self.norm();
        let resid2 = (xnorm2 - 2.0 * self.inner_with(tensor) + mnorm * mnorm).max(0.0);
        1.0 - (resid2.sqrt() / xnorm2.sqrt())
    }
}

/// Factor match score (congruence) between two CP models of equal rank
/// and shape, in `[0, 1]`; `1` means identical up to component
/// permutation and sign.
///
/// For each component pair `(r, s)` the congruence is the product over
/// modes of `|cos(u_r^(d), v_s^(d))|`, weighted by the agreement of the
/// component magnitudes `min(|a_r|,|b_s|)/max(|a_r|,|b_s|)` with
/// `a, b` the lambda-absorbed column norms. Components are matched
/// greedily (best pair first), the standard FMS of the tensor
/// literature's recovery experiments.
///
/// # Panics
/// Panics on rank/shape mismatch.
pub fn factor_match_score(a: &CpModel, b: &CpModel) -> f64 {
    assert_eq!(a.rank(), b.rank(), "models must share the rank");
    assert_eq!(a.ndim(), b.ndim(), "models must share the order");
    for (x, y) in a.factors.iter().zip(b.factors.iter()) {
        assert_eq!(x.nrows(), y.nrows(), "models must share mode sizes");
    }
    let rank = a.rank();
    if rank == 0 {
        return 1.0;
    }
    // Per-model, per-component: overall magnitude (lambda times column
    // norms) and unit column directions.
    let prep = |m: &CpModel| -> (Vec<f64>, Vec<Mat>) {
        let mut mags = m.lambda.iter().map(|l| l.abs()).collect::<Vec<_>>();
        let mut units = Vec::with_capacity(m.ndim());
        for f in &m.factors {
            let mut u = f.clone();
            let norms = u.normalize_cols();
            for (mag, n) in mags.iter_mut().zip(norms.iter()) {
                *mag *= n;
            }
            units.push(u);
        }
        (mags, units)
    };
    let (amag, aunit) = prep(a);
    let (bmag, bunit) = prep(b);
    // Congruence matrix.
    let mut cong = vec![vec![0.0f64; rank]; rank];
    #[allow(clippy::needless_range_loop)]
    for r in 0..rank {
        for s in 0..rank {
            let mut prod = 1.0;
            for (ua, ub) in aunit.iter().zip(bunit.iter()) {
                let dot: f64 = (0..ua.nrows()).map(|i| ua.get(i, r) * ub.get(i, s)).sum();
                prod *= dot.abs();
            }
            let (x, y) = (amag[r], bmag[s]);
            let weight = if x.max(y) > 0.0 { x.min(y) / x.max(y) } else { 1.0 };
            cong[r][s] = weight * prod;
        }
    }
    // Greedy matching, best pair first.
    let mut used_a = vec![false; rank];
    let mut used_b = vec![false; rank];
    let mut total = 0.0;
    for _ in 0..rank {
        let mut best = (0usize, 0usize, -1.0f64);
        for r in 0..rank {
            if used_a[r] {
                continue;
            }
            for (s, &v) in cong[r].iter().enumerate() {
                if !used_b[s] && v > best.2 {
                    best = (r, s, v);
                }
            }
        }
        used_a[best.0] = true;
        used_b[best.1] = true;
        total += best.2;
    }
    total / rank as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::DenseTensor;

    fn toy_model() -> CpModel {
        let mut u0 = Mat::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut u1 = Mat::from_vec(3, 2, vec![1.0, 1.0, 2.0, 0.0, 2.0, 1.0]);
        let l0 = u0.normalize_cols();
        let l1 = u1.normalize_cols();
        CpModel {
            lambda: l0.iter().zip(l1.iter()).map(|(a, b)| a * b * 3.0).collect(),
            factors: vec![u0, u1],
        }
    }

    #[test]
    fn predict_matches_dense_reconstruction() {
        let m = toy_model();
        let dense = DenseTensor::from_cp(&m.lambda, &m.factors);
        for i in 0..2 {
            for j in 0..3 {
                assert!((m.predict(&[i, j]) - dense.get(&[i, j])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn norm_matches_dense_norm() {
        let m = toy_model();
        let dense = DenseTensor::from_cp(&m.lambda, &m.factors);
        assert!((m.norm() - dense.fro_norm()).abs() < 1e-10);
    }

    #[test]
    fn fit_is_one_for_exact_model() {
        let m = toy_model();
        // Sample the model's own values into a sparse tensor.
        let mut entries = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                entries.push((vec![i, j], m.predict(&[i, j])));
            }
        }
        let t = SparseTensor::from_entries(vec![2, 3], &entries);
        assert!((m.fit_to(&t) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn fit_decreases_with_perturbation() {
        let m = toy_model();
        let mut entries = Vec::new();
        for i in 0..2 {
            for j in 0..3 {
                entries.push((vec![i, j], m.predict(&[i, j]) + 0.5));
            }
        }
        let t = SparseTensor::from_entries(vec![2, 3], &entries);
        assert!(m.fit_to(&t) < 1.0 - 1e-4);
    }

    #[test]
    fn fms_is_one_for_identical_models() {
        let m = toy_model();
        assert!((factor_match_score(&m, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fms_invariant_to_permutation_and_sign() {
        let m = toy_model();
        // Swap the two components and flip one column's sign in a
        // sign-consistent way (flip in two modes keeps the model equal;
        // FMS uses |cos| so even a single-mode flip scores 1).
        let mut p = m.clone();
        p.lambda.swap(0, 1);
        for f in &mut p.factors {
            let rows = f.nrows();
            for i in 0..rows {
                let (a, b) = (f.get(i, 0), f.get(i, 1));
                f.set(i, 0, b);
                f.set(i, 1, a);
            }
        }
        for i in 0..p.factors[0].nrows() {
            let v = -p.factors[0].get(i, 0);
            p.factors[0].set(i, 0, v);
        }
        assert!((factor_match_score(&m, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fms_below_one_for_unrelated_models() {
        let mk = |seed: u64| CpModel {
            lambda: vec![1.0, 1.0, 1.0],
            factors: vec![
                Mat::random(30, 3, seed),
                Mat::random(25, 3, seed + 1),
                Mat::random(20, 3, seed + 2),
            ],
        };
        let score = factor_match_score(&mk(1), &mk(100));
        assert!(score < 0.9, "unrelated models scored {score}");
    }

    #[test]
    fn als_recovers_ground_truth_factors() {
        // Fit quality alone can hide factor-space errors; FMS checks the
        // recovered components themselves.
        use adatm_tensor::gen::dense_low_rank;
        let truth = dense_low_rank(&[14, 12, 10], 3, 0.0, 21);
        let mut backend = crate::CooBackend::new(&truth.tensor);
        let res = crate::CpAls::new(crate::CpAlsOptions::new(3).max_iters(200).tol(1e-12).seed(2))
            .run(&truth.tensor, &mut backend)
            .unwrap();
        let truth_model = CpModel { lambda: vec![1.0; 3], factors: truth.factors.clone() };
        let score = factor_match_score(&res.model, &truth_model);
        assert!(score > 0.95, "FMS {score} (fit was {})", res.final_fit());
    }

    #[test]
    fn inner_with_matches_bruteforce() {
        let m = toy_model();
        let t = SparseTensor::from_entries(vec![2, 3], &[(vec![0, 1], 2.0), (vec![1, 2], -1.0)]);
        let want = 2.0 * m.predict(&[0, 1]) - m.predict(&[1, 2]);
        assert!((m.inner_with(&t) - want).abs() < 1e-12);
    }
}
