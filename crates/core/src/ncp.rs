//! Nonnegative CP decomposition by multiplicative updates.
//!
//! The memoized MTTKRP engines are not ALS-specific: any algorithm whose
//! inner loop is "compute `M^(n)` for each mode in turn, then update
//! `U^(n)`" plugs into the same backends and the same invalidation
//! protocol. Nonnegative CP (NCP) with Lee–Seung-style multiplicative
//! updates is the canonical second client:
//!
//! `U^(n) <- U^(n) .* M^(n) ./ (U^(n) H^(n) + eps)`
//!
//! with `M^(n)` the MTTKRP and `H^(n)` the Hadamard product of the other
//! Gram matrices — exactly the quantities CP-ALS computes. Nonnegativity
//! of the input tensor and the initialization is preserved by the update.

use crate::backend::MttkrpBackend;
use crate::cpals::PhaseTimings;
use crate::model::CpModel;
use adatm_linalg::Mat;
use adatm_tensor::SparseTensor;
use std::time::Instant;

/// Division guard keeping the multiplicative update finite.
const MU_EPS: f64 = 1e-12;

/// Options for a nonnegative CP run.
#[derive(Clone, Debug)]
pub struct NcpOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the change in fit.
    pub tol: f64,
    /// Seed for the (nonnegative) random initialization.
    pub seed: u64,
}

impl NcpOptions {
    /// Defaults: 100 iterations, tolerance `1e-5`, seed 0.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        NcpOptions { rank, max_iters: 100, tol: 1e-5, seed: 0 }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the fit-change tolerance (0 disables early stop).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a nonnegative CP run.
#[derive(Clone, Debug)]
pub struct NcpResult {
    /// The decomposition. `lambda` is all ones: NCP keeps scale inside
    /// the (nonnegative, unnormalized) factors.
    pub model: CpModel,
    /// Completed iterations.
    pub iters: usize,
    /// Fit after each iteration.
    pub fit_history: Vec<f64>,
    /// Whether the tolerance stop fired.
    pub converged: bool,
    /// Phase timings.
    pub timings: PhaseTimings,
}

impl NcpResult {
    /// Fit after the final iteration.
    pub fn final_fit(&self) -> f64 {
        self.fit_history.last().copied().unwrap_or(0.0)
    }
}

/// Runs nonnegative CP with multiplicative updates over any MTTKRP
/// backend.
///
/// # Panics
/// Panics if the tensor contains negative values (the update rule
/// requires `X >= 0`).
pub fn ncp<B: MttkrpBackend + ?Sized>(
    tensor: &SparseTensor,
    backend: &mut B,
    opts: &NcpOptions,
) -> NcpResult {
    assert!(
        tensor.vals().iter().all(|&v| v >= 0.0),
        "nonnegative CP requires a nonnegative tensor"
    );
    let n = tensor.ndim();
    let rank = opts.rank;
    backend.reset();
    let mut factors: Vec<Mat> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(d, &rows)| Mat::random(rows, rank, opts.seed ^ (0xabc + d as u64)))
        .collect();
    let mut grams: Vec<Mat> = factors.iter().map(Mat::gram).collect();
    let xnorm2 = tensor.fro_norm_sq();
    let mut timings = PhaseTimings::default();
    let mut m_buf = Mat::zeros(0, 0);
    let mut fit_history = Vec::new();
    let mut converged = false;
    let mut iters = 0;
    let order = backend.mode_order(n);
    let last = *order.last().expect("at least one mode");

    for _iter in 0..opts.max_iters {
        for &mode in &order {
            let t0 = Instant::now();
            backend.begin_mode(mode);
            if m_buf.nrows() != tensor.dims()[mode] || m_buf.ncols() != rank {
                m_buf = Mat::zeros(tensor.dims()[mode], rank);
            }
            backend.mttkrp_into(tensor, &factors, mode, &mut m_buf);
            timings.mttkrp += t0.elapsed();

            let t1 = Instant::now();
            let mut h = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
            for (d, w) in grams.iter().enumerate() {
                if d != mode {
                    h.hadamard_assign(w);
                }
            }
            // U <- U .* M ./ (U H + eps), row by row.
            let denom = factors[mode].matmul(&h);
            let u = &mut factors[mode];
            for i in 0..u.nrows() {
                let mrow = m_buf.row(i);
                let drow = denom.row(i);
                let urow = u.row_mut(i);
                for ((x, &m), &d) in urow.iter_mut().zip(mrow.iter()).zip(drow.iter()) {
                    *x *= m.max(0.0) / (d + MU_EPS);
                }
            }
            grams[mode] = u.gram();
            timings.dense += t1.elapsed();
        }

        // Fit via the last-updated mode's MTTKRP (same identity as
        // CP-ALS, with lambda = 1 and unnormalized factors).
        let t2 = Instant::now();
        let inner: f64 = (0..rank).map(|r| m_buf.col_dot(&factors[last], r)).sum();
        let mut g = Mat::from_vec(rank, rank, vec![1.0; rank * rank]);
        for w in &grams {
            g.hadamard_assign(w);
        }
        let ones = vec![1.0; rank];
        let mnorm2 = g.weighted_quad(&ones, &ones).max(0.0);
        let resid2 = (xnorm2 - 2.0 * inner + mnorm2).max(0.0);
        let fit = if xnorm2 > 0.0 { 1.0 - (resid2 / xnorm2).sqrt() } else { 0.0 };
        timings.fit += t2.elapsed();

        iters += 1;
        let prev = fit_history.last().copied();
        fit_history.push(fit);
        if let Some(p) = prev {
            if opts.tol > 0.0 && (fit - p).abs() < opts.tol {
                converged = true;
                break;
            }
        }
    }

    NcpResult {
        model: CpModel { lambda: vec![1.0; rank], factors },
        iters,
        fit_history,
        converged,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CooBackend, DtreeBackend};
    use adatm_linalg::Mat as M;
    use adatm_tensor::gen::zipf_tensor;
    use adatm_tensor::SparseTensor;

    /// A dense nonnegative low-rank tensor (all cells) for recovery tests.
    fn nonneg_low_rank(dims: &[usize], rank: usize, seed: u64) -> SparseTensor {
        let factors: Vec<M> =
            dims.iter().enumerate().map(|(d, &n)| M::random(n, rank, seed + d as u64)).collect();
        let mut entries = Vec::new();
        let mut coords = vec![0usize; dims.len()];
        let cells: usize = dims.iter().product();
        for _ in 0..cells {
            let mut v = 0.0;
            for r in 0..rank {
                let mut p = 1.0;
                for (d, f) in factors.iter().enumerate() {
                    p *= f.get(coords[d], r);
                }
                v += p;
            }
            entries.push((coords.clone(), v));
            for d in (0..dims.len()).rev() {
                coords[d] += 1;
                if coords[d] < dims[d] {
                    break;
                }
                coords[d] = 0;
            }
        }
        SparseTensor::from_entries(dims.to_vec(), &entries)
    }

    #[test]
    fn ncp_fits_nonnegative_low_rank_data() {
        let t = nonneg_low_rank(&[10, 12, 8], 3, 5);
        let mut backend = CooBackend::new(&t);
        let res = ncp(&t, &mut backend, &NcpOptions::new(3).max_iters(300).tol(0.0).seed(2));
        assert!(res.final_fit() > 0.95, "fit {}", res.final_fit());
    }

    #[test]
    fn factors_stay_nonnegative() {
        let t = zipf_tensor(&[15, 18, 12, 10], 400, &[0.5; 4], 7);
        let mut backend = DtreeBackend::balanced_binary(&t, 4);
        let res = ncp(&t, &mut backend, &NcpOptions::new(4).max_iters(10).tol(0.0).seed(1));
        for (d, f) in res.model.factors.iter().enumerate() {
            assert!(
                f.as_slice().iter().all(|&x| x >= 0.0 && x.is_finite()),
                "mode {d} has negative/non-finite entries"
            );
        }
    }

    #[test]
    fn fit_is_monotone_nondecreasing() {
        // Multiplicative updates are monotone in the objective for
        // nonnegative data.
        let t = nonneg_low_rank(&[8, 9, 7], 2, 3);
        let mut backend = CooBackend::new(&t);
        let res = ncp(&t, &mut backend, &NcpOptions::new(2).max_iters(40).tol(0.0).seed(4));
        for w in res.fit_history.windows(2) {
            assert!(w[1] >= w[0] - 1e-8, "fit regressed: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn backends_agree_on_ncp_trajectory() {
        let t = zipf_tensor(&[12, 14, 10, 8], 300, &[0.6; 4], 9);
        let opts = NcpOptions::new(3).max_iters(8).tol(0.0).seed(11);
        let mut coo = CooBackend::new(&t);
        let mut bdt = DtreeBackend::balanced_binary(&t, 3);
        let a = ncp(&t, &mut coo, &opts);
        let b = ncp(&t, &mut bdt, &opts);
        for (x, y) in a.fit_history.iter().zip(b.fit_history.iter()) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn ncp_rejects_negative_values() {
        let t = SparseTensor::from_entries(vec![3, 3], &[(vec![0, 0], -1.0)]);
        let mut backend = CooBackend::new(&t);
        let _ = ncp(&t, &mut backend, &NcpOptions::new(2));
    }
}
