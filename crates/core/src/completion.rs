//! Tensor completion: CP factorization of *observed entries only*.
//!
//! The CP-ALS of [`cpals`](crate::cpals) fits the full tensor, treating
//! unobserved cells as zeros — right for count/measurement data, wrong
//! for recommender-style data where missing means *unknown*. Completion
//! solves
//!
//! `min sum_{(i_1..i_N) observed} (x - sum_r prod_d U^(d)(i_d, r))² +
//!  reg * sum_d ||U^(d)||²`
//!
//! by row-wise alternating least squares: the normal equations decouple
//! per row of each factor, with the row's system assembled from exactly
//! the nonzeros of its slice (the same per-mode grouped views the COO
//! MTTKRP uses). This is the standard ALS formulation of the tensor
//! completion literature that the sparse-MTTKRP papers extend to.

use crate::model::CpModel;
use adatm_linalg::{pinv_sym, Mat, PINV_RCOND};
use adatm_tensor::{SortedModeView, SparseTensor};
use rayon::prelude::*;

/// Options for a completion run.
#[derive(Clone, Debug)]
pub struct CompletionOptions {
    /// Decomposition rank.
    pub rank: usize,
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the relative change in training RMSE.
    pub tol: f64,
    /// Tikhonov regularization weight (`reg > 0` recommended — slices
    /// with fewer observations than the rank are otherwise singular).
    pub reg: f64,
    /// Initialization seed.
    pub seed: u64,
}

impl CompletionOptions {
    /// Defaults: 50 iterations, tolerance `1e-5`, regularization `0.1`.
    pub fn new(rank: usize) -> Self {
        assert!(rank > 0, "rank must be positive");
        CompletionOptions { rank, max_iters: 50, tol: 1e-5, reg: 0.1, seed: 0 }
    }

    /// Sets the iteration cap.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the RMSE-change tolerance (0 disables early stop).
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the regularization weight.
    pub fn reg(mut self, reg: f64) -> Self {
        assert!(reg >= 0.0, "regularization must be nonnegative");
        self.reg = reg;
        self
    }

    /// Sets the initialization seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a completion run.
#[derive(Clone, Debug)]
pub struct CompletionResult {
    /// The factorization (`lambda` all ones; factors unnormalized — the
    /// regularized objective fixes the scale indeterminacy itself).
    pub model: CpModel,
    /// Completed iterations.
    pub iters: usize,
    /// Training RMSE over the observed entries after each iteration.
    pub rmse_history: Vec<f64>,
    /// Whether the tolerance stop fired.
    pub converged: bool,
}

impl CompletionResult {
    /// Final training RMSE.
    pub fn final_rmse(&self) -> f64 {
        self.rmse_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// RMSE of a CP model over a set of observed entries.
pub fn rmse_on(model: &CpModel, entries: &SparseTensor) -> f64 {
    if entries.nnz() == 0 {
        return 0.0;
    }
    let se: f64 = (0..entries.nnz())
        .map(|k| {
            let coords: Vec<usize> =
                (0..entries.ndim()).map(|d| entries.mode_idx(d)[k] as usize).collect();
            let diff = model.predict(&coords) - entries.vals()[k];
            diff * diff
        })
        .sum();
    (se / entries.nnz() as f64).sqrt()
}

/// Runs completion ALS over the observed entries of `tensor`.
///
/// Unlike the full-tensor solvers, there is no backend parameter: the
/// row-wise normal equations need per-slice entry lists, which the
/// per-mode [`SortedModeView`]s provide directly.
pub fn complete(tensor: &SparseTensor, opts: &CompletionOptions) -> CompletionResult {
    let n = tensor.ndim();
    assert!(n >= 2, "completion needs at least 2 modes");
    let rank = opts.rank;
    let views: Vec<SortedModeView> = (0..n).map(|m| SortedModeView::build(tensor, m)).collect();
    let mut factors: Vec<Mat> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(d, &rows)| Mat::random(rows, rank, opts.seed ^ (0xc0_f1 + d as u64)))
        .collect();
    let mut rmse_history = Vec::new();
    let mut converged = false;
    let mut iters = 0;

    for _iter in 0..opts.max_iters {
        for mode in 0..n {
            let view = &views[mode];
            // Solve each observed row's regularized normal equations
            // independently (embarrassingly parallel across rows).
            let updated: Vec<(usize, Vec<f64>)> = (0..view.num_groups())
                .into_par_iter()
                .map(|g| {
                    let row_idx = view.key(g) as usize;
                    // Assemble A = sum c c^T + reg I and b = sum x c over
                    // the slice's entries, with c the Hadamard of the
                    // other modes' factor rows.
                    let mut a = Mat::zeros(rank, rank);
                    let mut b = vec![0.0f64; rank];
                    let mut c = vec![0.0f64; rank];
                    for &e in view.group(g) {
                        let k = e as usize;
                        c.iter_mut().for_each(|x| *x = 1.0);
                        for (d, f) in factors.iter().enumerate() {
                            if d == mode {
                                continue;
                            }
                            let frow = f.row(tensor.mode_idx(d)[k] as usize);
                            for (x, &u) in c.iter_mut().zip(frow.iter()) {
                                *x *= u;
                            }
                        }
                        let x = tensor.vals()[k];
                        for r in 0..rank {
                            b[r] += x * c[r];
                            let arow = a.row_mut(r);
                            let cr = c[r];
                            for (av, &cv) in arow.iter_mut().zip(c.iter()) {
                                *av += cr * cv;
                            }
                        }
                    }
                    for r in 0..rank {
                        let v = a.get(r, r) + opts.reg;
                        a.set(r, r, v);
                    }
                    let ainv = pinv_sym(&a, PINV_RCOND);
                    let mut u = vec![0.0f64; rank];
                    for (r, ur) in u.iter_mut().enumerate() {
                        let arow = ainv.row(r);
                        *ur = arow.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
                    }
                    (row_idx, u)
                })
                .collect();
            for (row_idx, u) in updated {
                factors[mode].row_mut(row_idx).copy_from_slice(&u);
            }
        }
        // Training RMSE.
        let model = CpModel { lambda: vec![1.0; rank], factors: factors.clone() };
        let rmse = rmse_on(&model, tensor);
        iters += 1;
        let prev = rmse_history.last().copied();
        rmse_history.push(rmse);
        if let Some(p) = prev {
            // Mixed absolute/relative criterion: a plain relative test
            // never fires once the RMSE itself approaches zero.
            if opts.tol > 0.0 && (p - rmse).abs() <= opts.tol * (1.0 + p) {
                converged = true;
                break;
            }
        }
    }

    CompletionResult {
        model: CpModel { lambda: vec![1.0; rank], factors },
        iters,
        rmse_history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adatm_tensor::gen::low_rank_tensor;

    #[test]
    fn completes_sparsely_observed_low_rank_tensor() {
        // Sample a low-rank model at sparse positions; completion must
        // drive the training RMSE near zero — the full-tensor CP-ALS
        // cannot (it fits the implicit zeros too).
        let truth = low_rank_tensor(&[40, 35, 30], 3, 6_000, 0.0, 3);
        let res = complete(
            &truth.tensor,
            &CompletionOptions::new(3).max_iters(40).reg(1e-4).tol(0.0).seed(5),
        );
        assert!(res.final_rmse() < 0.05, "training RMSE {} should be near zero", res.final_rmse());
    }

    #[test]
    fn generalizes_to_held_out_entries() {
        let truth = low_rank_tensor(&[30, 30, 30], 2, 8_000, 0.0, 7);
        let full = &truth.tensor;
        // 90/10 split.
        let mut train = Vec::new();
        let mut test = Vec::new();
        for k in 0..full.nnz() {
            let coords: Vec<usize> = (0..3).map(|d| full.mode_idx(d)[k] as usize).collect();
            if k % 10 == 0 {
                test.push((coords, full.vals()[k]));
            } else {
                train.push((coords, full.vals()[k]));
            }
        }
        let train_t = SparseTensor::from_entries(full.dims().to_vec(), &train);
        let test_t = SparseTensor::from_entries(full.dims().to_vec(), &test);
        let res =
            complete(&train_t, &CompletionOptions::new(2).max_iters(30).reg(1e-3).tol(0.0).seed(2));
        let test_rmse = rmse_on(&res.model, &test_t);
        // Values are O(rank * 0.25); an informative model sits well below
        // the data's own standard deviation.
        let mean: f64 = test_t.vals().iter().sum::<f64>() / test_t.nnz() as f64;
        let sd: f64 = (test_t.vals().iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / test_t.nnz() as f64)
            .sqrt();
        assert!(test_rmse < 0.5 * sd, "held-out RMSE {test_rmse} vs data sd {sd}");
    }

    #[test]
    fn rmse_history_is_nonincreasing_with_tiny_reg() {
        let truth = low_rank_tensor(&[20, 25, 15, 10], 2, 2_000, 0.05, 9);
        let res = complete(
            &truth.tensor,
            &CompletionOptions::new(2).max_iters(15).reg(1e-6).tol(0.0).seed(1),
        );
        for w in res.rmse_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "RMSE rose: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn regularization_shrinks_factors() {
        let truth = low_rank_tensor(&[15, 15, 15], 2, 800, 0.1, 4);
        let weak = complete(
            &truth.tensor,
            &CompletionOptions::new(2).max_iters(10).reg(1e-6).tol(0.0).seed(3),
        );
        let strong = complete(
            &truth.tensor,
            &CompletionOptions::new(2).max_iters(10).reg(100.0).tol(0.0).seed(3),
        );
        let norm = |m: &CpModel| -> f64 { m.factors.iter().map(Mat::fro_norm).sum() };
        assert!(norm(&strong.model) < norm(&weak.model));
    }

    #[test]
    fn unobserved_rows_keep_initial_values() {
        // A mode-0 index that never occurs must not be touched.
        let t = SparseTensor::from_entries(
            vec![5, 3, 3],
            &[(vec![0, 1, 2], 1.0), (vec![2, 0, 1], 2.0)],
        );
        let res = complete(&t, &CompletionOptions::new(2).max_iters(2).tol(0.0).seed(11));
        let init = Mat::random(5, 2, 11 ^ 0xc0_f1);
        for &row in &[1usize, 3, 4] {
            assert_eq!(res.model.factors[0].row(row), init.row(row), "row {row}");
        }
    }

    #[test]
    fn convergence_stop_fires() {
        let truth = low_rank_tensor(&[15, 12, 10], 2, 600, 0.0, 6);
        let res = complete(
            &truth.tensor,
            &CompletionOptions::new(2).max_iters(500).reg(1e-4).tol(1e-8).seed(8),
        );
        assert!(res.converged);
        assert!(res.iters < 500);
    }
}
