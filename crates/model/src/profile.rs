//! Measured kernel-throughput profiles for calibrated plan costs.
//!
//! The analytic cost model ([`crate::cost::predict`]) counts flops and
//! value-stream bytes — machine-independent quantities that rank
//! strategies correctly *when every kernel converts work units to wall
//! time at the same rate*. They do not: the COO entry kernel gathers
//! factor rows at random, the tree pull kernel streams its parent, and
//! the scatter kernel pays an extra merge — and their parallel
//! efficiencies differ, because scatter forks per-thread accumulators
//! while pull partitions rows. A [`KernelProfile`] captures those rates
//! as measured on *this* machine by `cargo xtask calibrate`: ns per
//! normalized work unit for each kernel class, at one thread and at the
//! calibration thread count. [`crate::cost::predict_time_ns`] turns the
//! analytic per-node work units into predicted wall time with them, and
//! the planner ranks by that instead of abstract cost units whenever a
//! profile is supplied. With no profile, everything falls back to the
//! analytic model — the profile refines the ranking, it never gates it.
//!
//! Profiles serialize to a line-oriented `key = value` text format (no
//! external dependencies), conventionally stored in `PROFILE.txt` at the
//! workspace root and pointed at by the `ADATM_PROFILE` environment
//! variable.

use std::fmt;

/// The kernel classes the calibration probe measures.
///
/// Work-unit definitions (what one "unit" of each class means):
///
/// * [`CooMttkrp`](KernelClass::CooMttkrp) — one fused multiply-add of
///   the COO entry kernel: `nnz * (N - 1) * R` units per full MTTKRP.
/// * [`CsfRoot`](KernelClass::CsfRoot) — one rank-row operation on a
///   non-root CSF node: `(total_nodes - root_slices) * R` units per
///   root-mode MTTKRP.
/// * [`TreePull`](KernelClass::TreePull) — one fused multiply-add of the
///   dimension-tree pull (owner-computes) TTMV:
///   `parent_elems * (|delta| + 1) * R` units per node.
/// * [`TreeScatter`](KernelClass::TreeScatter) — same unit, scatter
///   (push) schedule. Costlier per unit than pull: the parent streams but
///   the per-thread child accumulators must be merged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Element-wise COO MTTKRP entry kernel.
    CooMttkrp,
    /// SPLATT-style CSF root-mode traversal.
    CsfRoot,
    /// Dimension-tree pull (owner-computes) node kernel.
    TreePull,
    /// Dimension-tree scatter (push) node kernel.
    TreeScatter,
}

impl KernelClass {
    /// All classes, in serialization order.
    pub const ALL: [KernelClass; 4] = [
        KernelClass::CooMttkrp,
        KernelClass::CsfRoot,
        KernelClass::TreePull,
        KernelClass::TreeScatter,
    ];

    /// The stable text key used in serialized profiles.
    pub fn key(&self) -> &'static str {
        match self {
            KernelClass::CooMttkrp => "coo_mttkrp",
            KernelClass::CsfRoot => "csf_root",
            KernelClass::TreePull => "tree_pull",
            KernelClass::TreeScatter => "tree_scatter",
        }
    }

    fn from_key(key: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.key() == key)
    }
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Measured throughput of one kernel class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassRate {
    /// Nanoseconds per work unit on a single thread.
    pub ns_per_unit_1t: f64,
    /// Nanoseconds per work unit at the profile's thread count.
    pub ns_per_unit_nt: f64,
}

impl ClassRate {
    /// Measured parallel speedup at the profile's thread count (>= 1;
    /// sub-1 measurements are clamped — parallel overhead can make a
    /// kernel slower than sequential, but a *rate* below sequential at
    /// intermediate thread counts would be an interpolation artifact).
    pub fn speedup(&self) -> f64 {
        if self.ns_per_unit_nt > 0.0 {
            (self.ns_per_unit_1t / self.ns_per_unit_nt).max(1.0)
        } else {
            1.0
        }
    }

    /// Per-thread parallel efficiency `e` in the linear speedup model
    /// `speedup(t) = 1 + (t - 1) * e`, from the two measured endpoints.
    pub fn efficiency(&self, measured_threads: usize) -> f64 {
        if measured_threads <= 1 {
            return 1.0;
        }
        ((self.speedup() - 1.0) / (measured_threads as f64 - 1.0)).clamp(0.0, 1.0)
    }
}

/// A machine's measured kernel rates: one [`ClassRate`] per
/// [`KernelClass`], measured at 1 and [`KernelProfile::threads`] threads.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelProfile {
    /// Thread count the `ns_per_unit_nt` rates were measured at.
    pub threads: usize,
    /// COO entry-kernel rate.
    pub coo_mttkrp: ClassRate,
    /// CSF root-traversal rate.
    pub csf_root: ClassRate,
    /// Tree pull-kernel rate.
    pub tree_pull: ClassRate,
    /// Tree scatter-kernel rate.
    pub tree_scatter: ClassRate,
}

impl KernelProfile {
    /// The rate of one class.
    pub fn rate(&self, class: KernelClass) -> ClassRate {
        match class {
            KernelClass::CooMttkrp => self.coo_mttkrp,
            KernelClass::CsfRoot => self.csf_root,
            KernelClass::TreePull => self.tree_pull,
            KernelClass::TreeScatter => self.tree_scatter,
        }
    }

    /// Mutable access, for the calibration writer.
    pub fn rate_mut(&mut self, class: KernelClass) -> &mut ClassRate {
        match class {
            KernelClass::CooMttkrp => &mut self.coo_mttkrp,
            KernelClass::CsfRoot => &mut self.csf_root,
            KernelClass::TreePull => &mut self.tree_pull,
            KernelClass::TreeScatter => &mut self.tree_scatter,
        }
    }

    /// Nanoseconds per work unit of `class` at `threads` threads.
    ///
    /// Measured endpoints are used directly; intermediate counts
    /// interpolate with the per-class linear-efficiency model
    /// `speedup(t) = 1 + (t - 1) * e`. Thread counts beyond the measured
    /// maximum clamp to the measured rate rather than extrapolating —
    /// oversubscription never makes a kernel faster.
    pub fn ns_per_unit(&self, class: KernelClass, threads: usize) -> f64 {
        let rate = self.rate(class);
        if threads <= 1 {
            rate.ns_per_unit_1t
        } else if threads >= self.threads {
            rate.ns_per_unit_nt
        } else {
            let e = rate.efficiency(self.threads);
            rate.ns_per_unit_1t / (1.0 + (threads as f64 - 1.0) * e)
        }
    }

    /// Serializes to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("# adatm kernel profile v1\n");
        s.push_str(&format!("threads = {}\n", self.threads));
        for class in KernelClass::ALL {
            let r = self.rate(class);
            s.push_str(&format!("{}.ns_per_unit.t1 = {:.6e}\n", class.key(), r.ns_per_unit_1t));
            s.push_str(&format!("{}.ns_per_unit.tn = {:.6e}\n", class.key(), r.ns_per_unit_nt));
        }
        s
    }

    /// Parses the text format written by [`KernelProfile::to_text`].
    ///
    /// Unknown keys are ignored (forward compatibility); missing keys,
    /// non-positive rates, or a missing thread count are errors.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut threads: Option<usize> = None;
        let mut rates: [[Option<f64>; 2]; 4] = [[None; 2]; 4];
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "threads" {
                let t: usize =
                    value.parse().map_err(|e| format!("line {}: threads: {e}", lineno + 1))?;
                if t == 0 {
                    return Err(format!("line {}: threads must be positive", lineno + 1));
                }
                threads = Some(t);
                continue;
            }
            let Some((class_key, field)) = key.split_once('.') else {
                continue; // unknown flat key
            };
            let Some(class) = KernelClass::from_key(class_key) else {
                continue; // unknown class
            };
            let slot = match field {
                "ns_per_unit.t1" => 0,
                "ns_per_unit.tn" => 1,
                _ => continue, // unknown field
            };
            let v: f64 = value.parse().map_err(|e| format!("line {}: {key}: {e}", lineno + 1))?;
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("line {}: {key}: rate must be positive, got {v}", lineno + 1));
            }
            let idx = KernelClass::ALL.iter().position(|c| *c == class).unwrap_or(0);
            rates[idx][slot] = Some(v);
        }
        let threads = threads.ok_or("missing `threads`")?;
        let get = |class: KernelClass| -> Result<ClassRate, String> {
            let idx = KernelClass::ALL.iter().position(|c| *c == class).unwrap_or(0);
            Ok(ClassRate {
                ns_per_unit_1t: rates[idx][0]
                    .ok_or_else(|| format!("missing `{}.ns_per_unit.t1`", class.key()))?,
                ns_per_unit_nt: rates[idx][1]
                    .ok_or_else(|| format!("missing `{}.ns_per_unit.tn`", class.key()))?,
            })
        };
        Ok(KernelProfile {
            threads,
            coo_mttkrp: get(KernelClass::CooMttkrp)?,
            csf_root: get(KernelClass::CsfRoot)?,
            tree_pull: get(KernelClass::TreePull)?,
            tree_scatter: get(KernelClass::TreeScatter)?,
        })
    }

    /// Resolves the `ADATM_PROFILE` environment variable into a typed
    /// outcome: unset (analytic costs by design), loaded (with
    /// provenance), or *broken* — set but unreadable/malformed, which is
    /// a misconfiguration the caller must surface, never swallow.
    pub fn load_env_checked() -> EnvProfile {
        Self::resolve(std::env::var("ADATM_PROFILE").ok().as_deref())
    }

    /// [`KernelProfile::load_env_checked`] over an explicit variable
    /// value (`None` = unset), so the resolution logic is unit-testable
    /// without mutating process environment.
    pub fn resolve(var: Option<&str>) -> EnvProfile {
        let Some(path) = var else { return EnvProfile::Unset };
        if path.is_empty() {
            return EnvProfile::Unset;
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return EnvProfile::Broken { path: path.to_string(), error: format!("{e}") },
        };
        match Self::from_text(&text) {
            Ok(profile) => {
                let age = std::fs::metadata(path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok());
                EnvProfile::Loaded { profile, path: path.to_string(), age }
            }
            Err(e) => EnvProfile::Broken { path: path.to_string(), error: e },
        }
    }

    /// Loads the profile named by the `ADATM_PROFILE` environment
    /// variable, if set, readable, and well-formed.
    ///
    /// An unset (or empty) variable returns `None` silently — analytic
    /// costs are the designed fallback. A variable that is *set but
    /// broken* also returns `None`, but loudly: a warning naming the
    /// path and the failure goes to stderr and a `profile.error` trace
    /// event is emitted, because silently reverting to analytic costs on
    /// a misconfigured profile degrades planning invisibly. Callers that
    /// want a typed error instead (the CLI) use
    /// [`KernelProfile::load_env_checked`].
    pub fn load_env() -> Option<Self> {
        match Self::load_env_checked() {
            EnvProfile::Unset => None,
            EnvProfile::Loaded { profile, path, age } => {
                adatm_trace::event!(
                    "profile.loaded",
                    path: path.as_str(),
                    age_s: age.map_or(-1i64, |a| a.as_secs() as i64),
                    threads: profile.threads
                );
                Some(profile)
            }
            EnvProfile::Broken { path, error } => {
                eprintln!(
                    "adatm: warning: ADATM_PROFILE is set to '{path}' but the profile is \
                     unusable ({error}); falling back to analytic plan costs"
                );
                adatm_trace::event!("profile.error", path: path.as_str(), error: error.as_str());
                None
            }
        }
    }
}

/// Outcome of resolving the `ADATM_PROFILE` environment variable.
#[derive(Clone, Debug)]
pub enum EnvProfile {
    /// The variable is unset or empty: the analytic cost model is the
    /// designed fallback, nothing to report.
    Unset,
    /// The variable named a readable, well-formed profile.
    Loaded {
        /// The parsed profile.
        profile: KernelProfile,
        /// The path it was loaded from (provenance for trace events).
        path: String,
        /// File age (now minus mtime), when the filesystem provides it —
        /// the staleness signal drift detection correlates against.
        age: Option<std::time::Duration>,
    },
    /// The variable is set but the file is unreadable or malformed: a
    /// misconfiguration that must be surfaced, not swallowed.
    Broken {
        /// The offending path.
        path: String,
        /// Why it could not be used.
        error: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KernelProfile {
        KernelProfile {
            threads: 8,
            coo_mttkrp: ClassRate { ns_per_unit_1t: 1.6, ns_per_unit_nt: 0.4 },
            csf_root: ClassRate { ns_per_unit_1t: 1.2, ns_per_unit_nt: 0.3 },
            tree_pull: ClassRate { ns_per_unit_1t: 0.8, ns_per_unit_nt: 0.2 },
            tree_scatter: ClassRate { ns_per_unit_1t: 1.0, ns_per_unit_nt: 0.5 },
        }
    }

    #[test]
    fn text_roundtrip_preserves_profile() {
        let p = sample();
        let q = KernelProfile::from_text(&p.to_text()).expect("roundtrip");
        assert_eq!(p.threads, q.threads);
        for class in KernelClass::ALL {
            let (a, b) = (p.rate(class), q.rate(class));
            assert!((a.ns_per_unit_1t - b.ns_per_unit_1t).abs() < 1e-12 * a.ns_per_unit_1t);
            assert!((a.ns_per_unit_nt - b.ns_per_unit_nt).abs() < 1e-12 * a.ns_per_unit_nt);
        }
    }

    #[test]
    fn endpoints_are_exact_and_interpolation_is_monotone() {
        let p = sample();
        let c = KernelClass::CooMttkrp;
        assert_eq!(p.ns_per_unit(c, 1), 1.6);
        assert_eq!(p.ns_per_unit(c, 8), 0.4);
        // Beyond the measured count: clamp, never extrapolate.
        assert_eq!(p.ns_per_unit(c, 64), 0.4);
        let mut prev = p.ns_per_unit(c, 1);
        for t in 2..=8 {
            let ns = p.ns_per_unit(c, t);
            assert!(ns <= prev, "rate must not increase with threads: t={t}");
            prev = ns;
        }
    }

    #[test]
    fn efficiency_reflects_measured_speedup() {
        let p = sample();
        // coo: speedup 4.0 over 8 threads -> e = 3/7.
        let e = p.coo_mttkrp.efficiency(8);
        assert!((e - 3.0 / 7.0).abs() < 1e-12);
        // A kernel that does not speed up at all has efficiency 0.
        let flat = ClassRate { ns_per_unit_1t: 1.0, ns_per_unit_nt: 1.0 };
        assert_eq!(flat.efficiency(8), 0.0);
    }

    #[test]
    fn sub_sequential_parallel_rate_clamps_speedup() {
        // Parallel slower than sequential: speedup clamps to 1, so
        // intermediate thread counts never go below the 1t rate.
        let r = ClassRate { ns_per_unit_1t: 1.0, ns_per_unit_nt: 2.0 };
        assert_eq!(r.speedup(), 1.0);
        assert_eq!(r.efficiency(8), 0.0);
    }

    #[test]
    fn parse_rejects_missing_and_bad_fields() {
        assert!(KernelProfile::from_text("").is_err());
        assert!(KernelProfile::from_text("threads = 0").is_err());
        let mut text = sample().to_text();
        text = text.replace("coo_mttkrp.ns_per_unit.t1 = 1.600000e0", "");
        assert!(KernelProfile::from_text(&text).is_err());
        let bad = sample().to_text().replace("1.600000e0", "-3.0");
        assert!(KernelProfile::from_text(&bad).is_err());
    }

    #[test]
    fn parse_ignores_unknown_keys_and_comments() {
        let mut text = sample().to_text();
        text.push_str("# trailing comment\nfuture_kernel.ns_per_unit.t1 = 9.9\nmisc = hello\n");
        assert!(KernelProfile::from_text(&text).is_ok());
    }

    #[test]
    fn resolve_unset_or_empty_is_unset() {
        assert!(matches!(KernelProfile::resolve(None), EnvProfile::Unset));
        assert!(matches!(KernelProfile::resolve(Some("")), EnvProfile::Unset));
    }

    #[test]
    fn resolve_valid_profile_loads_with_provenance() {
        let dir = std::env::temp_dir().join("adatm-profile-resolve-ok");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("profile.txt");
        std::fs::write(&path, sample().to_text()).expect("write profile");
        match KernelProfile::resolve(path.to_str()) {
            EnvProfile::Loaded { profile, path: p, .. } => {
                assert_eq!(profile.threads, sample().threads);
                assert_eq!(p, path.to_str().expect("utf8 path"));
            }
            other => panic!("expected Loaded, got {other:?}"),
        }
    }

    #[test]
    fn resolve_missing_file_is_broken_not_silent() {
        let path = "/nonexistent/adatm-no-such-profile.txt";
        match KernelProfile::resolve(Some(path)) {
            EnvProfile::Broken { path: p, error } => {
                assert_eq!(p, path);
                assert!(!error.is_empty());
            }
            other => panic!("expected Broken, got {other:?}"),
        }
    }

    #[test]
    fn resolve_malformed_file_is_broken_with_parse_error() {
        let dir = std::env::temp_dir().join("adatm-profile-resolve-bad");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "threads = potato\n").expect("write profile");
        match KernelProfile::resolve(path.to_str()) {
            EnvProfile::Broken { error, .. } => {
                assert!(error.contains("threads"), "error should name the bad field: {error}");
            }
            other => panic!("expected Broken, got {other:?}"),
        }
    }
}
