//! The analytic cost model for memoization strategies.
//!
//! Given estimated element counts for every node of a candidate dimension
//! tree, the model predicts, per CP-ALS iteration:
//!
//! * **flops** — each non-root node is computed exactly once per
//!   iteration (the dimension-tree invariant); computing node `t` from its
//!   parent costs `elems(parent) * (|δ(t)| + 1) * R` fused multiply-adds
//!   (one row Hadamard per delta mode plus the accumulate);
//! * **peak value memory** — under the invalidation protocol at most one
//!   root-to-leaf path of value matrices is live, so the peak is the
//!   maximum over modes of the path sum of `elems(t) * R * 8` bytes;
//! * **index memory** — the one-time symbolic storage (`idx`, `rptr`,
//!   `rperm` arrays exactly as the engine lays them out);
//! * **symbolic cost** — comparison count of the one-time sorts,
//!   `sum elems(parent) * log2(elems(parent))`.
//!
//! These formulas mirror the engine's counters one-to-one, which is what
//! the model-accuracy experiment (E8) verifies.

use crate::estimate::EstimatorCache;
use crate::profile::{KernelClass, KernelProfile};
use adatm_dtree::{scatter_eligible, DimTree, TreeShape};

/// Predicted costs of one memoization strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Fused multiply-adds per CP-ALS iteration across all node TTMVs.
    pub flops_per_iter: f64,
    /// Bytes of value-matrix stream traffic per iteration: every node's
    /// write plus one read of the source node per child computed from it.
    /// MTTKRP is memory-bound, so this term — not flops — often decides
    /// between strategies with similar operation counts (a balanced tree
    /// materializes ~2N intermediates; a 3-level tree only 2).
    pub traffic_bytes_per_iter: f64,
    /// Peak bytes of live value matrices under the protocol.
    pub peak_value_bytes: f64,
    /// Bytes of symbolic index structures (one-time, resident).
    pub index_bytes: f64,
    /// One-time symbolic sort cost (comparison count).
    pub symbolic_cost: f64,
    /// Number of memoized intermediate tensors (internal non-root nodes).
    pub memo_count: usize,
    /// TTMV (node computations) per iteration.
    pub ttmv_calls: usize,
}

impl CostBreakdown {
    /// Total resident memory prediction: index structures plus peak
    /// values. This is what a memory budget constrains.
    pub fn resident_bytes(&self) -> f64 {
        self.index_bytes + self.peak_value_bytes
    }

    /// The scalar objective the planner ranks strategies by:
    /// `flops + beta * traffic_bytes`, with `beta` the machine's
    /// flops-per-byte trade (see [`crate::plan::Objective`]).
    pub fn cost_units(&self, beta: f64) -> f64 {
        self.flops_per_iter + beta * self.traffic_bytes_per_iter
    }
}

/// Bytes per stored value (f64).
const VAL_BYTES: f64 = 8.0;
/// Bytes per stored index (u32).
const IDX_BYTES: f64 = 4.0;
/// Bytes per reduction-pointer entry (usize on 64-bit).
const PTR_BYTES: f64 = 8.0;

/// Predicts the cost of executing CP-ALS with the given tree shape.
///
/// `cache` supplies (estimated) distinct-projection counts; `rank` is the
/// decomposition rank.
pub fn predict(shape: &TreeShape, rank: usize, cache: &mut EstimatorCache<'_>) -> CostBreakdown {
    let tree = DimTree::from_shape(shape);
    let r = rank as f64;
    let n = tree.ndim() as f64;
    let mut flops = 0.0;
    let mut traffic = 0.0;
    let mut index_bytes = 0.0;
    let mut symbolic = 0.0;
    let mut value_bytes: Vec<f64> = vec![0.0; tree.len()];
    let mut memo_count = 0usize;
    for (id, vb) in value_bytes.iter_mut().enumerate().skip(1) {
        let node = tree.node(id);
        let parent = node.parent.expect("non-root");
        let parent_elems = cache.elems(&tree.node(parent).modes);
        let own_elems = cache.elems(&node.modes);
        flops += parent_elems * (node.delta.len() as f64 + 1.0) * r;
        *vb = own_elems * r * VAL_BYTES;
        // Stream traffic of computing this node: read the source (the
        // tensor itself for children of the root — value plus the delta
        // modes' index columns — or the parent's R-wide value matrix),
        // then write our own value matrix. Factor-row reads are mostly
        // cache-resident and are deliberately not charged.
        let read = if parent == 0 {
            parent_elems * (VAL_BYTES + n * IDX_BYTES)
        } else {
            parent_elems * r * VAL_BYTES
        };
        traffic += read + own_elems * r * VAL_BYTES;
        index_bytes += own_elems * (node.modes.len() as f64 * IDX_BYTES + PTR_BYTES)
            + parent_elems * IDX_BYTES;
        symbolic += parent_elems * parent_elems.max(2.0).log2();
        if !node.is_leaf() {
            memo_count += 1;
        }
    }
    // Peak live value memory: max over leaf paths (protocol invariant).
    let mut peak = 0.0f64;
    for m in 0..tree.ndim() {
        let path_sum: f64 =
            tree.path_to_root(tree.leaf_of(m)).iter().map(|&id| value_bytes[id]).sum();
        peak = peak.max(path_sum);
    }
    CostBreakdown {
        flops_per_iter: flops,
        traffic_bytes_per_iter: traffic,
        peak_value_bytes: peak,
        index_bytes,
        symbolic_cost: symbolic,
        memo_count,
        ttmv_calls: tree.len() - 1,
    }
}

/// Predicted wall time of one CP-ALS iteration under a measured
/// [`KernelProfile`], in nanoseconds.
///
/// Each non-root node's analytic work units — flops
/// (`elems(parent) * (|δ| + 1) * R`) plus value-stream traffic bytes,
/// both counted exactly as [`predict`] does — are converted at the
/// measured rate of the kernel class the engine would run it with:
/// scatter when the node passes the engine's [`scatter_eligible`]
/// thresholds, pull otherwise. Scatter costing more per unit than pull,
/// and each class carrying its own parallel efficiency, is exactly what
/// the machine-independent flop model cannot see — two trees with equal
/// flops can differ 2x in wall time when one funnels its work through
/// scatter nodes that stop scaling. Keeping the traffic term matters just
/// as much in the other direction: MTTKRP is memory-bound, so a ranking
/// on flop-units alone drifts toward deep memoizing trees whose extra
/// R-wide intermediate streams make them slower in practice. With a
/// uniform profile this model degenerates to the analytic
/// `flops + traffic` objective ([`CostBreakdown::cost_units`] at
/// `beta = 1`).
///
/// This is a *ranking* refinement, not an oracle: absolute numbers drift
/// with tensor shape, but the per-class rates transfer well enough to
/// order candidate trees. Callers without a profile should rank by
/// [`CostBreakdown::cost_units`] instead.
pub fn predict_time_ns(
    shape: &TreeShape,
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    profile: &KernelProfile,
    threads: usize,
) -> f64 {
    let tree = DimTree::from_shape(shape);
    let r = rank as f64;
    let n = tree.ndim() as f64;
    let mut ns = 0.0;
    for id in 1..tree.len() {
        let node = tree.node(id);
        let parent = node.parent.expect("non-root");
        let parent_elems = cache.elems(&tree.node(parent).modes);
        let own_elems = cache.elems(&node.modes);
        let flops = parent_elems * (node.delta.len() as f64 + 1.0) * r;
        let read = if parent == 0 {
            parent_elems * (VAL_BYTES + n * IDX_BYTES)
        } else {
            parent_elems * r * VAL_BYTES
        };
        let units = flops + read + own_elems * r * VAL_BYTES;
        let class = if scatter_eligible(own_elems as usize, parent_elems as usize) {
            KernelClass::TreeScatter
        } else {
            KernelClass::TreePull
        };
        ns += units * profile.ns_per_unit(class, threads);
    }
    ns
}

/// Predicted wall time of one CP-ALS iteration of the SPLATT-style CSF
/// baseline (one fiber forest per mode), in nanoseconds — the "no
/// memoization" pseudo-candidate the calibrated planner weighs against
/// its tree candidates.
///
/// Mirrors the CSF construction heuristic (target mode at the root,
/// remaining modes by ascending size): each below-root level of the
/// mode-`m` forest has an estimated `elems(prefix)` nodes, and each node
/// costs one rank-row operation, measured by the
/// [`KernelClass::CsfRoot`] calibration. As in [`predict_time_ns`], the
/// stream traffic — one pass over the tensor per mode plus the output
/// write — is charged as extra units so the pseudo-candidate stays
/// comparable with the traffic-aware tree predictions.
pub fn predict_csf_time_ns(
    dims: &[usize],
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    profile: &KernelProfile,
    threads: usize,
) -> f64 {
    let n = dims.len();
    let r = rank as f64;
    let all: Vec<usize> = (0..n).collect();
    let nnz = cache.elems(&all);
    let mut traffic = 0.0;
    for mode in 0..n {
        traffic += nnz * (VAL_BYTES + n as f64 * IDX_BYTES) + cache.elems(&[mode]) * r * VAL_BYTES;
    }
    (csf_level_elems(dims, cache, false) * r + traffic)
        * profile.ns_per_unit(KernelClass::CsfRoot, threads)
}

/// Predicted wall time of one CP-ALS iteration of the scheduled COO
/// baseline (fused single-pass entry kernels over per-mode sorted
/// views), in nanoseconds — the second no-memoization pseudo-candidate.
/// Once the entry kernels are fused, COO's `nnz·(N−1)·R` units per mode
/// can undercut every tree on tensors whose projections barely collapse;
/// a planner that cannot pick it would leave the fastest backend on the
/// table.
pub fn predict_coo_time_ns(
    dims: &[usize],
    rank: usize,
    cache: &mut EstimatorCache<'_>,
    profile: &KernelProfile,
    threads: usize,
) -> f64 {
    let n = dims.len();
    let r = rank as f64;
    let all: Vec<usize> = (0..n).collect();
    let nnz = cache.elems(&all);
    let mut units = 0.0;
    for mode in 0..n {
        units += nnz * (n as f64 - 1.0) * r
            + nnz * (VAL_BYTES + n as f64 * IDX_BYTES)
            + cache.elems(&[mode]) * r * VAL_BYTES;
    }
    units * profile.ns_per_unit(KernelClass::CooMttkrp, threads)
}

/// Estimated resident bytes of the COO baseline's per-mode sorted views
/// (permutation plus group structure; the tensor itself is resident
/// regardless of strategy and is not charged).
pub fn predict_coo_resident_bytes(dims: &[usize], cache: &mut EstimatorCache<'_>) -> f64 {
    let n = dims.len();
    let all: Vec<usize> = (0..n).collect();
    n as f64 * cache.elems(&all) * (IDX_BYTES + PTR_BYTES)
}

/// Estimated resident bytes of the CSF baseline's `N` fiber forests
/// (index structures plus values), for budget gating the pseudo-candidate.
pub fn predict_csf_resident_bytes(dims: &[usize], cache: &mut EstimatorCache<'_>) -> f64 {
    csf_level_elems(dims, cache, true) * (IDX_BYTES + PTR_BYTES)
        + dims.len() as f64 * cache.elems(&(0..dims.len()).collect::<Vec<_>>()) * VAL_BYTES
}

/// Sum of estimated node counts over every level of every per-mode CSF
/// forest (optionally including the root level, which does no per-rank
/// work but does occupy index storage).
fn csf_level_elems(dims: &[usize], cache: &mut EstimatorCache<'_>, include_root: bool) -> f64 {
    let n = dims.len();
    let mut total = 0.0;
    for mode in 0..n {
        let mut rest: Vec<usize> = (0..n).filter(|&d| d != mode).collect();
        rest.sort_by_key(|&d| dims[d]);
        let mut prefix = vec![mode];
        if include_root {
            total += cache.elems(&prefix);
        }
        for &d in &rest {
            prefix.push(d);
            total += cache.elems(&prefix);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::NnzEstimator;
    use crate::profile::ClassRate;
    use adatm_tensor::gen::{uniform_tensor, zipf_tensor};
    use adatm_tensor::SparseTensor;

    fn cache(t: &SparseTensor) -> EstimatorCache<'_> {
        EstimatorCache::new(t, NnzEstimator::Exact)
    }

    #[test]
    fn two_level_flops_is_n_times_nnz_model() {
        // Flat tree: every leaf computed from the root with delta N-1.
        let t = uniform_tensor(&[40, 40, 40, 40], 2_000, 1);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::two_level(4), 8, &mut c);
        let expect = 4.0 * 2_000.0 * 4.0 * 8.0; // N * nnz * (N-1+1) * R
        assert!((cb.flops_per_iter - expect).abs() < 1e-9);
        assert_eq!(cb.memo_count, 0);
        assert_eq!(cb.ttmv_calls, 4);
    }

    #[test]
    fn bdt_predicts_fewer_flops_than_flat_for_higher_order() {
        let t = uniform_tensor(&[30; 8], 5_000, 2);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 8, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 8, &mut c);
        assert!(
            bdt.flops_per_iter < flat.flops_per_iter,
            "bdt {} vs flat {}",
            bdt.flops_per_iter,
            flat.flops_per_iter
        );
    }

    #[test]
    fn bdt_uses_more_value_memory_than_flat() {
        let t = uniform_tensor(&[30; 8], 5_000, 3);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 8, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 8, &mut c);
        assert!(bdt.peak_value_bytes > flat.peak_value_bytes);
        assert!(bdt.memo_count == 6);
    }

    #[test]
    fn skew_lowers_predicted_cost_of_memoizing_trees() {
        let dims = [150usize; 4];
        let flat_t = uniform_tensor(&dims, 8_000, 4);
        let skew_t = zipf_tensor(&dims, 8_000, &[1.1; 4], 4);
        let mut cf = cache(&flat_t);
        let mut cs = cache(&skew_t);
        let shape = TreeShape::balanced_binary(4);
        let p_flat = predict(&shape, 8, &mut cf);
        let p_skew = predict(&shape, 8, &mut cs);
        // Same nnz, but skewed projections collapse, so the predicted
        // leaf-level work is lower.
        assert!(p_skew.flops_per_iter < p_flat.flops_per_iter);
        assert!(p_skew.peak_value_bytes < p_flat.peak_value_bytes);
    }

    #[test]
    fn breakdown_scales_linearly_in_rank() {
        let t = uniform_tensor(&[25; 4], 1_500, 5);
        let mut c = cache(&t);
        let shape = TreeShape::three_level(4);
        let r8 = predict(&shape, 8, &mut c);
        let r16 = predict(&shape, 16, &mut c);
        assert!((r16.flops_per_iter / r8.flops_per_iter - 2.0).abs() < 1e-12);
        assert!((r16.peak_value_bytes / r8.peak_value_bytes - 2.0).abs() < 1e-12);
        // Index structures do not depend on rank.
        assert_eq!(r16.index_bytes, r8.index_bytes);
    }

    #[test]
    fn traffic_counts_deeper_trees_higher_on_uniform_data() {
        // No collapse: every intermediate is ~nnz elements, so each extra
        // level of memoization adds a full write+read stream.
        let t = uniform_tensor(&[40; 8], 4_000, 12);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 16, &mut c);
        let tree3 = predict(&TreeShape::three_level(8), 16, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 16, &mut c);
        assert!(tree3.traffic_bytes_per_iter < bdt.traffic_bytes_per_iter);
        // The flat tree reads the (cheap, scalar-valued) root N times but
        // materializes only leaves; it must not exceed the BDT's traffic.
        assert!(flat.traffic_bytes_per_iter < bdt.traffic_bytes_per_iter);
    }

    #[test]
    fn cost_units_interpolates_objectives() {
        let t = uniform_tensor(&[20; 4], 1_000, 13);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::balanced_binary(4), 8, &mut c);
        assert_eq!(cb.cost_units(0.0), cb.flops_per_iter);
        assert!(
            (cb.cost_units(2.0) - cb.flops_per_iter - 2.0 * cb.traffic_bytes_per_iter).abs() < 1e-9
        );
    }

    #[test]
    fn resident_bytes_sums_components() {
        let t = uniform_tensor(&[25; 3], 800, 6);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::balanced_binary(3), 4, &mut c);
        assert_eq!(cb.resident_bytes(), cb.index_bytes + cb.peak_value_bytes);
    }

    fn uniform_profile(ns: f64) -> KernelProfile {
        let r = ClassRate { ns_per_unit_1t: ns, ns_per_unit_nt: ns };
        KernelProfile { threads: 8, coo_mttkrp: r, csf_root: r, tree_pull: r, tree_scatter: r }
    }

    #[test]
    fn uniform_rates_make_predicted_time_proportional_to_analytic_units() {
        // With every class at the same flat rate, predicted time must be
        // exactly (flops + traffic) * ns_per_unit — the calibrated model
        // degenerates to the analytic default objective (beta = 1).
        let t = uniform_tensor(&[30; 4], 2_000, 21);
        let mut c = cache(&t);
        let p = uniform_profile(2.0);
        for shape in
            [TreeShape::two_level(4), TreeShape::three_level(4), TreeShape::balanced_binary(4)]
        {
            let cb = predict(&shape, 8, &mut c);
            let ns = predict_time_ns(&shape, 8, &mut c, &p, 8);
            assert!(
                (ns - 2.0 * cb.cost_units(1.0)).abs() < 1e-6 * ns,
                "time {ns} vs units {}",
                cb.cost_units(1.0)
            );
        }
    }

    #[test]
    fn scatter_heavy_rate_penalizes_collapsing_trees() {
        // Skewed data collapses intermediates enough to trigger the
        // scatter schedule; pricing scatter 10x above pull must raise the
        // memoizing tree's predicted time relative to a uniform profile.
        let t = zipf_tensor(&[400, 380, 360, 340], 30_000, &[1.2; 4], 22);
        let mut c = cache(&t);
        let shape = TreeShape::balanced_binary(4);
        let flat = uniform_profile(1.0);
        let mut scatter_heavy = flat;
        scatter_heavy.tree_scatter = ClassRate { ns_per_unit_1t: 10.0, ns_per_unit_nt: 10.0 };
        let base = predict_time_ns(&shape, 8, &mut c, &flat, 8);
        let heavy = predict_time_ns(&shape, 8, &mut c, &scatter_heavy, 8);
        assert!(heavy > base, "scatter-heavy profile must not be cheaper ({heavy} vs {base})");
    }

    #[test]
    fn predicted_time_uses_per_thread_rates() {
        let t = uniform_tensor(&[25; 4], 1_200, 23);
        let mut c = cache(&t);
        let mut p = uniform_profile(4.0);
        for class in KernelClass::ALL {
            p.rate_mut(class).ns_per_unit_nt = 1.0; // 4x speedup at 8 threads
        }
        let shape = TreeShape::three_level(4);
        let t1 = predict_time_ns(&shape, 8, &mut c, &p, 1);
        let t8 = predict_time_ns(&shape, 8, &mut c, &p, 8);
        assert!((t1 / t8 - 4.0).abs() < 1e-9, "expected 4x: {t1} vs {t8}");
    }

    #[test]
    fn csf_prediction_scales_with_rate_and_rank() {
        let t = uniform_tensor(&[20; 4], 1_000, 24);
        let mut c = cache(&t);
        let p1 = uniform_profile(1.0);
        let p3 = uniform_profile(3.0);
        let a = predict_csf_time_ns(t.dims(), 8, &mut c, &p1, 8);
        let b = predict_csf_time_ns(t.dims(), 8, &mut c, &p3, 8);
        let d = predict_csf_time_ns(t.dims(), 16, &mut c, &p1, 8);
        assert!(a > 0.0);
        assert!((b / a - 3.0).abs() < 1e-9);
        // Rank scales the per-node work and the output write, but not the
        // fixed per-mode tensor read: strictly sublinear in R.
        assert!(d > a && d < 2.0 * a);
        assert!(predict_csf_resident_bytes(t.dims(), &mut c) > 0.0);
    }
}
