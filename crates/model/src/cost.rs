//! The analytic cost model for memoization strategies.
//!
//! Given estimated element counts for every node of a candidate dimension
//! tree, the model predicts, per CP-ALS iteration:
//!
//! * **flops** — each non-root node is computed exactly once per
//!   iteration (the dimension-tree invariant); computing node `t` from its
//!   parent costs `elems(parent) * (|δ(t)| + 1) * R` fused multiply-adds
//!   (one row Hadamard per delta mode plus the accumulate);
//! * **peak value memory** — under the invalidation protocol at most one
//!   root-to-leaf path of value matrices is live, so the peak is the
//!   maximum over modes of the path sum of `elems(t) * R * 8` bytes;
//! * **index memory** — the one-time symbolic storage (`idx`, `rptr`,
//!   `rperm` arrays exactly as the engine lays them out);
//! * **symbolic cost** — comparison count of the one-time sorts,
//!   `sum elems(parent) * log2(elems(parent))`.
//!
//! These formulas mirror the engine's counters one-to-one, which is what
//! the model-accuracy experiment (E8) verifies.

use crate::estimate::EstimatorCache;
use adatm_dtree::{DimTree, TreeShape};

/// Predicted costs of one memoization strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostBreakdown {
    /// Fused multiply-adds per CP-ALS iteration across all node TTMVs.
    pub flops_per_iter: f64,
    /// Bytes of value-matrix stream traffic per iteration: every node's
    /// write plus one read of the source node per child computed from it.
    /// MTTKRP is memory-bound, so this term — not flops — often decides
    /// between strategies with similar operation counts (a balanced tree
    /// materializes ~2N intermediates; a 3-level tree only 2).
    pub traffic_bytes_per_iter: f64,
    /// Peak bytes of live value matrices under the protocol.
    pub peak_value_bytes: f64,
    /// Bytes of symbolic index structures (one-time, resident).
    pub index_bytes: f64,
    /// One-time symbolic sort cost (comparison count).
    pub symbolic_cost: f64,
    /// Number of memoized intermediate tensors (internal non-root nodes).
    pub memo_count: usize,
    /// TTMV (node computations) per iteration.
    pub ttmv_calls: usize,
}

impl CostBreakdown {
    /// Total resident memory prediction: index structures plus peak
    /// values. This is what a memory budget constrains.
    pub fn resident_bytes(&self) -> f64 {
        self.index_bytes + self.peak_value_bytes
    }

    /// The scalar objective the planner ranks strategies by:
    /// `flops + beta * traffic_bytes`, with `beta` the machine's
    /// flops-per-byte trade (see [`crate::plan::Objective`]).
    pub fn cost_units(&self, beta: f64) -> f64 {
        self.flops_per_iter + beta * self.traffic_bytes_per_iter
    }
}

/// Bytes per stored value (f64).
const VAL_BYTES: f64 = 8.0;
/// Bytes per stored index (u32).
const IDX_BYTES: f64 = 4.0;
/// Bytes per reduction-pointer entry (usize on 64-bit).
const PTR_BYTES: f64 = 8.0;

/// Predicts the cost of executing CP-ALS with the given tree shape.
///
/// `cache` supplies (estimated) distinct-projection counts; `rank` is the
/// decomposition rank.
pub fn predict(shape: &TreeShape, rank: usize, cache: &mut EstimatorCache<'_>) -> CostBreakdown {
    let tree = DimTree::from_shape(shape);
    let r = rank as f64;
    let n = tree.ndim() as f64;
    let mut flops = 0.0;
    let mut traffic = 0.0;
    let mut index_bytes = 0.0;
    let mut symbolic = 0.0;
    let mut value_bytes: Vec<f64> = vec![0.0; tree.len()];
    let mut memo_count = 0usize;
    for (id, vb) in value_bytes.iter_mut().enumerate().skip(1) {
        let node = tree.node(id);
        let parent = node.parent.expect("non-root");
        let parent_elems = cache.elems(&tree.node(parent).modes);
        let own_elems = cache.elems(&node.modes);
        flops += parent_elems * (node.delta.len() as f64 + 1.0) * r;
        *vb = own_elems * r * VAL_BYTES;
        // Stream traffic of computing this node: read the source (the
        // tensor itself for children of the root — value plus the delta
        // modes' index columns — or the parent's R-wide value matrix),
        // then write our own value matrix. Factor-row reads are mostly
        // cache-resident and are deliberately not charged.
        let read = if parent == 0 {
            parent_elems * (VAL_BYTES + n * IDX_BYTES)
        } else {
            parent_elems * r * VAL_BYTES
        };
        traffic += read + own_elems * r * VAL_BYTES;
        index_bytes += own_elems * (node.modes.len() as f64 * IDX_BYTES + PTR_BYTES)
            + parent_elems * IDX_BYTES;
        symbolic += parent_elems * parent_elems.max(2.0).log2();
        if !node.is_leaf() {
            memo_count += 1;
        }
    }
    // Peak live value memory: max over leaf paths (protocol invariant).
    let mut peak = 0.0f64;
    for m in 0..tree.ndim() {
        let path_sum: f64 =
            tree.path_to_root(tree.leaf_of(m)).iter().map(|&id| value_bytes[id]).sum();
        peak = peak.max(path_sum);
    }
    CostBreakdown {
        flops_per_iter: flops,
        traffic_bytes_per_iter: traffic,
        peak_value_bytes: peak,
        index_bytes,
        symbolic_cost: symbolic,
        memo_count,
        ttmv_calls: tree.len() - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::NnzEstimator;
    use adatm_tensor::gen::{uniform_tensor, zipf_tensor};
    use adatm_tensor::SparseTensor;

    fn cache(t: &SparseTensor) -> EstimatorCache<'_> {
        EstimatorCache::new(t, NnzEstimator::Exact)
    }

    #[test]
    fn two_level_flops_is_n_times_nnz_model() {
        // Flat tree: every leaf computed from the root with delta N-1.
        let t = uniform_tensor(&[40, 40, 40, 40], 2_000, 1);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::two_level(4), 8, &mut c);
        let expect = 4.0 * 2_000.0 * 4.0 * 8.0; // N * nnz * (N-1+1) * R
        assert!((cb.flops_per_iter - expect).abs() < 1e-9);
        assert_eq!(cb.memo_count, 0);
        assert_eq!(cb.ttmv_calls, 4);
    }

    #[test]
    fn bdt_predicts_fewer_flops_than_flat_for_higher_order() {
        let t = uniform_tensor(&[30; 8], 5_000, 2);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 8, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 8, &mut c);
        assert!(
            bdt.flops_per_iter < flat.flops_per_iter,
            "bdt {} vs flat {}",
            bdt.flops_per_iter,
            flat.flops_per_iter
        );
    }

    #[test]
    fn bdt_uses_more_value_memory_than_flat() {
        let t = uniform_tensor(&[30; 8], 5_000, 3);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 8, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 8, &mut c);
        assert!(bdt.peak_value_bytes > flat.peak_value_bytes);
        assert!(bdt.memo_count == 6);
    }

    #[test]
    fn skew_lowers_predicted_cost_of_memoizing_trees() {
        let dims = [150usize; 4];
        let flat_t = uniform_tensor(&dims, 8_000, 4);
        let skew_t = zipf_tensor(&dims, 8_000, &[1.1; 4], 4);
        let mut cf = cache(&flat_t);
        let mut cs = cache(&skew_t);
        let shape = TreeShape::balanced_binary(4);
        let p_flat = predict(&shape, 8, &mut cf);
        let p_skew = predict(&shape, 8, &mut cs);
        // Same nnz, but skewed projections collapse, so the predicted
        // leaf-level work is lower.
        assert!(p_skew.flops_per_iter < p_flat.flops_per_iter);
        assert!(p_skew.peak_value_bytes < p_flat.peak_value_bytes);
    }

    #[test]
    fn breakdown_scales_linearly_in_rank() {
        let t = uniform_tensor(&[25; 4], 1_500, 5);
        let mut c = cache(&t);
        let shape = TreeShape::three_level(4);
        let r8 = predict(&shape, 8, &mut c);
        let r16 = predict(&shape, 16, &mut c);
        assert!((r16.flops_per_iter / r8.flops_per_iter - 2.0).abs() < 1e-12);
        assert!((r16.peak_value_bytes / r8.peak_value_bytes - 2.0).abs() < 1e-12);
        // Index structures do not depend on rank.
        assert_eq!(r16.index_bytes, r8.index_bytes);
    }

    #[test]
    fn traffic_counts_deeper_trees_higher_on_uniform_data() {
        // No collapse: every intermediate is ~nnz elements, so each extra
        // level of memoization adds a full write+read stream.
        let t = uniform_tensor(&[40; 8], 4_000, 12);
        let mut c = cache(&t);
        let flat = predict(&TreeShape::two_level(8), 16, &mut c);
        let tree3 = predict(&TreeShape::three_level(8), 16, &mut c);
        let bdt = predict(&TreeShape::balanced_binary(8), 16, &mut c);
        assert!(tree3.traffic_bytes_per_iter < bdt.traffic_bytes_per_iter);
        // The flat tree reads the (cheap, scalar-valued) root N times but
        // materializes only leaves; it must not exceed the BDT's traffic.
        assert!(flat.traffic_bytes_per_iter < bdt.traffic_bytes_per_iter);
    }

    #[test]
    fn cost_units_interpolates_objectives() {
        let t = uniform_tensor(&[20; 4], 1_000, 13);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::balanced_binary(4), 8, &mut c);
        assert_eq!(cb.cost_units(0.0), cb.flops_per_iter);
        assert!(
            (cb.cost_units(2.0) - cb.flops_per_iter - 2.0 * cb.traffic_bytes_per_iter).abs() < 1e-9
        );
    }

    #[test]
    fn resident_bytes_sums_components() {
        let t = uniform_tensor(&[25; 3], 800, 6);
        let mut c = cache(&t);
        let cb = predict(&TreeShape::balanced_binary(3), 4, &mut c);
        assert_eq!(cb.resident_bytes(), cb.index_bytes + cb.peak_value_bytes);
    }
}
