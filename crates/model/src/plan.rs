//! The planner facade: model-driven strategy selection.
//!
//! [`Planner`] evaluates the candidate strategy space for one tensor and
//! rank, applies an optional memory budget, and returns a [`MemoPlan`]
//! carrying the chosen tree plus the predicted costs of every alternative
//! considered — the provenance the model-accuracy experiment inspects.

use crate::cost::{
    predict, predict_coo_resident_bytes, predict_coo_time_ns, predict_csf_resident_bytes,
    predict_csf_time_ns, predict_time_ns, CostBreakdown,
};
use crate::estimate::{EstimatorCache, NnzEstimator};
use crate::profile::KernelProfile;
use crate::search::{interval_dp_weighted, named_shapes, subset_dp_weighted, OrderHeuristic};
use adatm_dtree::TreeShape;
use adatm_tensor::SparseTensor;

/// What the planner minimizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Fused multiply-adds only — the classic operation-count model.
    Flops,
    /// `flops + beta * value_stream_bytes`: MTTKRP is memory-bound, so
    /// weighting the reads/writes of intermediate value matrices models
    /// wall time much better than flops alone (it is what correctly
    /// prefers a shallow tree over a balanced one when projections barely
    /// collapse). `beta` is the machine's effective flops-per-byte trade;
    /// 1.0 is a good default for commodity cores.
    FlopsAndTraffic {
        /// Flops charged per byte of value-stream traffic.
        beta: f64,
    },
}

impl Objective {
    /// The traffic weight of this objective.
    pub fn beta(&self) -> f64 {
        match self {
            Objective::Flops => 0.0,
            Objective::FlopsAndTraffic { beta } => *beta,
        }
    }
}

impl Default for Objective {
    fn default() -> Self {
        Objective::FlopsAndTraffic { beta: 1.0 }
    }
}

/// How much of the strategy space to search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Only the named baseline shapes.
    NamedOnly,
    /// Named shapes plus the interval DP over each order heuristic.
    IntervalDp,
    /// Everything above plus the exact subset DP (orders <= the given cap).
    SubsetDp {
        /// Maximum order for which the `O(3^N)` subset DP runs.
        max_order: usize,
    },
    /// Pick automatically: subset DP for `N <= 6`, interval DP otherwise.
    Auto,
}

/// One evaluated strategy.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Label for tables (`"bdt"`, `"dp:natural"`, `"dp:subset"`, ...).
    pub label: String,
    /// The tree.
    pub shape: TreeShape,
    /// Predicted costs.
    pub cost: CostBreakdown,
    /// Whether the candidate fits the memory budget (true when no budget).
    pub fits_budget: bool,
    /// Calibrated per-iteration wall-time prediction in nanoseconds
    /// (`None` when the planner has no [`KernelProfile`]).
    pub predicted_ns: Option<f64>,
}

/// The planner's output: chosen strategy plus full provenance.
#[derive(Clone, Debug)]
pub struct MemoPlan {
    /// The selected tree (the best *tree* even when [`MemoPlan::use_csf`]
    /// says the CSF baseline is predicted faster still).
    pub shape: TreeShape,
    /// Predicted costs of the selection.
    pub predicted: CostBreakdown,
    /// Every candidate evaluated, sorted ascending by the ranking the
    /// planner used: calibrated time when a profile was supplied,
    /// analytic cost units otherwise.
    pub candidates: Vec<Candidate>,
    /// Number of distinct-count estimator evaluations spent planning.
    pub estimator_evals: usize,
    /// Calibrated per-iteration time of the selection (the CSF baseline's
    /// when [`MemoPlan::use_csf`], the chosen tree's otherwise); `None`
    /// without a profile.
    pub predicted_ns: Option<f64>,
    /// Calibrated per-iteration time of the SPLATT-CSF pseudo-candidate;
    /// `None` without a profile.
    pub csf_predicted_ns: Option<f64>,
    /// True when calibration predicts the non-memoizing CSF baseline
    /// outruns every tree candidate (and fits the memory budget): the
    /// adaptive backend should dispatch to CSF instead of a tree.
    pub use_csf: bool,
    /// Calibrated per-iteration time of the scheduled-COO
    /// pseudo-candidate; `None` without a profile.
    pub coo_predicted_ns: Option<f64>,
    /// True when calibration predicts the fused COO baseline outruns
    /// both every tree candidate and the CSF baseline: the adaptive
    /// backend should dispatch to plain scheduled COO.
    pub use_coo: bool,
}

/// Admission control rejected every strategy: not even the
/// lowest-memory viable backend (fused scheduled COO, whose only
/// resident structure is the tensor's own index/value storage) fits the
/// configured memory budget.
///
/// Returned by [`Planner::plan_admitted`]. The error names the cheapest
/// candidate evaluated and its requirement, so callers can report
/// exactly how far off the budget is instead of guessing.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionError {
    /// The configured budget, in bytes.
    pub budget_bytes: usize,
    /// Label of the cheapest candidate evaluated (`"coo(fused)"`, a tree
    /// label, ...).
    pub cheapest_label: String,
    /// Predicted resident bytes of that cheapest candidate.
    pub cheapest_resident_bytes: f64,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no strategy fits the {}-byte memory budget: the cheapest candidate ({}) \
             needs {:.0} bytes",
            self.budget_bytes, self.cheapest_label, self.cheapest_resident_bytes
        )
    }
}

impl std::error::Error for AdmissionError {}

/// Model-driven memoization planner for one tensor.
///
/// ```
/// use adatm_model::{Planner, NnzEstimator};
/// use adatm_tensor::gen::zipf_tensor;
///
/// let t = zipf_tensor(&[50, 40, 60, 30], 5_000, &[0.8; 4], 1);
/// let plan = Planner::new(&t, 16)
///     .estimator(NnzEstimator::Exact)
///     .plan();
/// plan.shape.validate();
/// assert!(!plan.candidates.is_empty());
/// // The chosen strategy minimizes the traffic-aware objective.
/// let beta = adatm_model::Objective::default().beta();
/// assert!(plan.candidates.iter()
///     .all(|c| plan.predicted.cost_units(beta) <= c.cost.cost_units(beta) + 1e-9));
/// ```
pub struct Planner<'a> {
    tensor: &'a SparseTensor,
    rank: usize,
    estimator: NnzEstimator,
    memory_budget: Option<usize>,
    strategy: SearchStrategy,
    orders: Vec<OrderHeuristic>,
    objective: Objective,
    calibration: Option<KernelProfile>,
    threads: usize,
}

impl<'a> Planner<'a> {
    /// Creates a planner with defaults: sampled estimation, automatic
    /// search depth, no memory budget, all order heuristics.
    pub fn new(tensor: &'a SparseTensor, rank: usize) -> Self {
        assert!(tensor.ndim() >= 2, "CP decomposition needs at least 2 modes");
        assert!(rank > 0, "rank must be positive");
        Planner {
            tensor,
            rank,
            estimator: NnzEstimator::default(),
            memory_budget: None,
            strategy: SearchStrategy::Auto,
            orders: vec![
                OrderHeuristic::Natural,
                OrderHeuristic::DimsDescending,
                OrderHeuristic::DimsAscending,
            ],
            objective: Objective::default(),
            calibration: None,
            threads: rayon::current_num_threads(),
        }
    }

    /// Sets the selection objective (default: traffic-aware).
    pub fn objective(mut self, o: Objective) -> Self {
        self.objective = o;
        self
    }

    /// Supplies a measured [`KernelProfile`]. With one, the planner ranks
    /// candidates by calibrated per-iteration wall time (thread-count
    /// aware, per-class rates) instead of analytic cost units, and weighs
    /// SPLATT-CSF and fused-COO pseudo-candidates against the trees.
    /// Without one, the analytic model is the (machine-independent)
    /// fallback.
    pub fn calibration(mut self, profile: KernelProfile) -> Self {
        self.calibration = Some(profile);
        self
    }

    /// Sets the thread count the plan will execute at (default: the
    /// current rayon pool size). Only meaningful with a calibration
    /// profile — the analytic model is thread-count-free.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the distinct-count estimator.
    pub fn estimator(mut self, e: NnzEstimator) -> Self {
        self.estimator = e;
        self
    }

    /// Caps predicted resident memory (index structures + peak live value
    /// matrices). Candidates over the cap are rejected; if nothing fits,
    /// the minimum-memory candidate is chosen (and flagged).
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the search depth.
    pub fn search(mut self, s: SearchStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Runs the search and returns the plan.
    pub fn plan(&self) -> MemoPlan {
        let n = self.tensor.ndim();
        let mut cache = EstimatorCache::new(self.tensor, self.estimator);
        let mut candidates: Vec<Candidate> = Vec::new();
        let rank = self.rank;
        fn push(
            candidates: &mut Vec<Candidate>,
            label: String,
            shape: TreeShape,
            rank: usize,
            cache: &mut EstimatorCache<'_>,
        ) {
            let cost = predict(&shape, rank, cache);
            candidates.push(Candidate {
                label,
                shape,
                cost,
                fits_budget: true,
                predicted_ns: None,
            });
        }
        /// As `push`, but drops the candidate when the tree is already in
        /// the set (used by the penalty sweep, which often rediscovers
        /// shapes).
        fn push_new(
            candidates: &mut Vec<Candidate>,
            label: String,
            shape: TreeShape,
            rank: usize,
            cache: &mut EstimatorCache<'_>,
        ) {
            if candidates.iter().all(|c| c.shape != shape) {
                push(candidates, label, shape, rank, cache);
            }
        }
        for (name, shape) in named_shapes(n) {
            push(&mut candidates, name.to_string(), shape, rank, &mut cache);
        }
        let run_interval = !matches!(self.strategy, SearchStrategy::NamedOnly);
        let run_subset = match self.strategy {
            SearchStrategy::SubsetDp { max_order } => n <= max_order,
            SearchStrategy::Auto => n <= 6,
            _ => false,
        };
        let beta = self.objective.beta();
        if run_interval {
            for &h in &self.orders {
                let perm = h.order(self.tensor.dims());
                let res = interval_dp_weighted(&perm, self.rank, &mut cache, beta, 0.0);
                push(&mut candidates, format!("dp:{h:?}"), res.shape, rank, &mut cache);
                // Under a memory budget, sweep the flops/bytes trade-off:
                // increasingly memory-averse trees join the candidate set,
                // and the budget filter below picks the cheapest that fits.
                if self.memory_budget.is_some() {
                    for lambda in [1.0, 8.0, 64.0, 512.0] {
                        let res = interval_dp_weighted(&perm, self.rank, &mut cache, beta, lambda);
                        push_new(
                            &mut candidates,
                            format!("dp:{h:?}:mem{lambda}"),
                            res.shape,
                            rank,
                            &mut cache,
                        );
                    }
                }
            }
        }
        if run_subset {
            let res = subset_dp_weighted(n, self.rank, &mut cache, beta);
            push(&mut candidates, "dp:subset".to_string(), res.shape, rank, &mut cache);
        }
        // Budget filter + selection.
        if let Some(budget) = self.memory_budget {
            for c in &mut candidates {
                c.fits_budget = c.cost.resident_bytes() <= budget as f64;
            }
        }
        // Final ranking: calibrated wall time when a profile is present,
        // analytic cost units otherwise.
        if let Some(profile) = &self.calibration {
            for c in &mut candidates {
                c.predicted_ns =
                    Some(predict_time_ns(&c.shape, rank, &mut cache, profile, self.threads));
            }
            candidates.sort_by(|a, b| {
                a.predicted_ns
                    .unwrap_or(f64::INFINITY)
                    .total_cmp(&b.predicted_ns.unwrap_or(f64::INFINITY))
            });
        } else {
            candidates.sort_by(|a, b| a.cost.cost_units(beta).total_cmp(&b.cost.cost_units(beta)));
        }
        let chosen = candidates
            .iter()
            .find(|c| c.fits_budget)
            .or_else(|| {
                // Nothing fits: fall back to the least-memory candidate.
                candidates
                    .iter()
                    .min_by(|a, b| a.cost.resident_bytes().total_cmp(&b.cost.resident_bytes()))
            })
            .expect("at least one candidate always exists")
            .clone();
        // Weigh the two non-memoizing baselines — SPLATT-CSF and fused
        // scheduled COO — against the best tree: each becomes the plan
        // when it is predicted fastest among everything that fits the
        // budget (or when no tree fits but the baseline does).
        let mut csf_predicted_ns = None;
        let mut coo_predicted_ns = None;
        let mut use_csf = false;
        let mut use_coo = false;
        if let Some(profile) = &self.calibration {
            let dims = self.tensor.dims();
            let csf_ns = predict_csf_time_ns(dims, rank, &mut cache, profile, self.threads);
            let coo_ns = predict_coo_time_ns(dims, rank, &mut cache, profile, self.threads);
            csf_predicted_ns = Some(csf_ns);
            coo_predicted_ns = Some(coo_ns);
            let fits = |bytes: f64| match self.memory_budget {
                Some(budget) => bytes <= budget as f64,
                None => true,
            };
            let csf_fits = fits(predict_csf_resident_bytes(dims, &mut cache));
            let coo_fits = fits(predict_coo_resident_bytes(dims, &mut cache));
            let tree_ns = if chosen.fits_budget {
                chosen.predicted_ns.unwrap_or(f64::INFINITY)
            } else {
                f64::INFINITY
            };
            let best_baseline = match (csf_fits, coo_fits) {
                (true, true) => csf_ns.min(coo_ns),
                (true, false) => csf_ns,
                (false, true) => coo_ns,
                (false, false) => f64::INFINITY,
            };
            if best_baseline < tree_ns {
                use_coo = coo_fits && (!csf_fits || coo_ns <= csf_ns);
                use_csf = !use_coo && csf_fits;
            }
        }
        let predicted_ns = if use_coo {
            coo_predicted_ns
        } else if use_csf {
            csf_predicted_ns
        } else {
            chosen.predicted_ns
        };
        if adatm_trace::enabled() {
            for (i, c) in candidates.iter().enumerate() {
                adatm_trace::event!(
                    "planner.candidate",
                    rank_pos: i as u64,
                    label: c.label.as_str(),
                    cost_units: c.cost.cost_units(beta),
                    fits_budget: c.fits_budget,
                    predicted_ns: c.predicted_ns.unwrap_or(-1.0)
                );
            }
            let dispatch = if use_coo {
                "coo"
            } else if use_csf {
                "csf"
            } else {
                "tree"
            };
            adatm_trace::event!(
                "planner.decision",
                label: chosen.label.as_str(),
                dispatch: dispatch,
                calibrated: self.calibration.is_some(),
                threads: self.threads as u64,
                candidates: candidates.len() as u64,
                estimator_evals: cache.misses as u64,
                predicted_ns: predicted_ns.unwrap_or(-1.0),
                csf_predicted_ns: csf_predicted_ns.unwrap_or(-1.0),
                coo_predicted_ns: coo_predicted_ns.unwrap_or(-1.0)
            );
        }
        MemoPlan {
            shape: chosen.shape,
            predicted: chosen.cost,
            predicted_ns,
            candidates,
            estimator_evals: cache.misses,
            csf_predicted_ns,
            use_csf,
            coo_predicted_ns,
            use_coo,
        }
    }

    /// Runs the search with **admission control**: the memory budget is a
    /// hard gate, not just a ranking preference.
    ///
    /// Where [`Planner::plan`] silently falls back to the least-memory
    /// tree when nothing fits, this entry point enforces the budget:
    ///
    /// * the selected strategy fits — the plan is **admitted** unchanged;
    /// * no tree (or CSF baseline) fits, but fused scheduled COO does —
    ///   the plan is **degraded** to the COO baseline, the lowest-memory
    ///   viable backend (its only resident structure is the tensor's own
    ///   storage);
    /// * not even fused COO fits — a typed [`AdmissionError`] naming the
    ///   cheapest candidate's requirement is returned.
    ///
    /// Every outcome emits an `admission.decision` trace event. Without a
    /// configured budget this is exactly [`Planner::plan`].
    pub fn plan_admitted(&self) -> Result<MemoPlan, AdmissionError> {
        let mut plan = self.plan();
        let Some(budget) = self.memory_budget else {
            return Ok(plan);
        };
        let mut cache = EstimatorCache::new(self.tensor, self.estimator);
        let dims = self.tensor.dims();
        let coo_bytes = predict_coo_resident_bytes(dims, &mut cache);
        let chosen_label = plan
            .candidates
            .iter()
            .find(|c| c.shape == plan.shape)
            .map(|c| c.label.clone())
            .unwrap_or_else(|| "tree".to_string());
        let (selected_label, selected_bytes) = if plan.use_coo {
            ("coo(fused)".to_string(), coo_bytes)
        } else if plan.use_csf {
            ("csf".to_string(), predict_csf_resident_bytes(dims, &mut cache))
        } else {
            (chosen_label, plan.predicted.resident_bytes())
        };
        if selected_bytes <= budget as f64 {
            adatm_trace::event!(
                "admission.decision",
                decision: "admit",
                budget_bytes: budget as u64,
                resident_bytes: selected_bytes,
                label: selected_label.as_str()
            );
            return Ok(plan);
        }
        if coo_bytes <= budget as f64 {
            adatm_trace::event!(
                "admission.decision",
                decision: "degrade",
                budget_bytes: budget as u64,
                resident_bytes: coo_bytes,
                label: "coo(fused)"
            );
            plan.use_coo = true;
            plan.use_csf = false;
            plan.predicted_ns = plan.coo_predicted_ns;
            return Ok(plan);
        }
        // Nothing fits, not even the baseline that carries no auxiliary
        // structures: name the cheapest requirement so the caller can
        // report how far off the budget is.
        let (cheapest_label, cheapest_resident_bytes) = plan
            .candidates
            .iter()
            .map(|c| (c.label.as_str(), c.cost.resident_bytes()))
            .chain(std::iter::once(("coo(fused)", coo_bytes)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, b)| (l.to_string(), b))
            .expect("at least one candidate always exists");
        adatm_trace::event!(
            "admission.decision",
            decision: "reject",
            budget_bytes: budget as u64,
            resident_bytes: cheapest_resident_bytes,
            label: cheapest_label.as_str()
        );
        Err(AdmissionError { budget_bytes: budget, cheapest_label, cheapest_resident_bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ClassRate;
    use adatm_tensor::gen::{uniform_tensor, zipf_tensor};

    fn profile(coo: f64, csf: f64, pull: f64, scatter: f64) -> KernelProfile {
        let rate = |ns: f64| ClassRate { ns_per_unit_1t: ns, ns_per_unit_nt: ns / 4.0 };
        KernelProfile {
            threads: 8,
            coo_mttkrp: rate(coo),
            csf_root: rate(csf),
            tree_pull: rate(pull),
            tree_scatter: rate(scatter),
        }
    }

    #[test]
    fn plan_selects_minimum_predicted_flops_without_budget() {
        let t = zipf_tensor(&[40, 12, 36, 18], 3_000, &[0.9; 4], 5);
        let plan =
            Planner::new(&t, 8).estimator(NnzEstimator::Exact).objective(Objective::Flops).plan();
        let min =
            plan.candidates.iter().map(|c| c.cost.flops_per_iter).fold(f64::INFINITY, f64::min);
        assert!((plan.predicted.flops_per_iter - min).abs() < 1e-9);
        plan.shape.validate();
    }

    #[test]
    fn plan_beats_every_named_baseline() {
        let t = zipf_tensor(&[50, 9, 60, 14, 44], 4_000, &[1.0; 5], 8);
        let plan = Planner::new(&t, 8).estimator(NnzEstimator::Exact).plan();
        for c in plan.candidates.iter().filter(|c| !c.label.starts_with("dp:")) {
            assert!(
                plan.predicted.flops_per_iter <= c.cost.flops_per_iter + 1e-9,
                "{} beat the plan",
                c.label
            );
        }
    }

    #[test]
    fn memory_budget_rejects_heavy_strategies() {
        let t = uniform_tensor(&[60; 6], 6_000, 9);
        let unbounded = Planner::new(&t, 16).estimator(NnzEstimator::Exact).plan();
        // A budget barely above the flat tree's footprint forces a cheap-
        // memory plan.
        let flat = unbounded
            .candidates
            .iter()
            .find(|c| c.label == "flat")
            .expect("flat evaluated")
            .cost
            .resident_bytes();
        let plan = Planner::new(&t, 16)
            .estimator(NnzEstimator::Exact)
            .memory_budget(flat as usize + 1)
            .plan();
        assert!(plan.predicted.resident_bytes() <= flat + 1.0);
    }

    #[test]
    fn admission_admits_within_budget() {
        let t = uniform_tensor(&[30; 4], 2_000, 10);
        let plan = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .memory_budget(usize::MAX)
            .plan_admitted()
            .expect("a huge budget admits everything");
        assert!(!plan.use_coo);
        plan.shape.validate();
        // No budget at all is also an unconditional admit.
        Planner::new(&t, 8).estimator(NnzEstimator::Exact).plan_admitted().unwrap();
    }

    #[test]
    fn admission_degrades_to_fused_coo_when_only_it_fits() {
        // Huge sparse dims with uniform indices: nothing collapses, so
        // every tree must materialize an ~nnz-row intermediate whose
        // value matrix (nnz x R doubles) dwarfs the raw COO storage.
        let t = uniform_tensor(&[100_000; 3], 5_000, 10);
        let mut cache = EstimatorCache::new(&t, NnzEstimator::Exact);
        let coo = predict_coo_resident_bytes(t.dims(), &mut cache);
        let unbounded = Planner::new(&t, 32).estimator(NnzEstimator::Exact).plan();
        let min_tree = unbounded
            .candidates
            .iter()
            .map(|c| c.cost.resident_bytes())
            .fold(f64::INFINITY, f64::min);
        assert!(coo < min_tree, "premise: fused COO ({coo}) below every tree ({min_tree})");
        // A budget barely above the raw COO storage fits no tree.
        let plan = Planner::new(&t, 32)
            .estimator(NnzEstimator::Exact)
            .memory_budget(coo as usize + 1)
            .plan_admitted()
            .expect("fused COO fits, so admission must degrade, not reject");
        assert!(plan.use_coo, "degraded plan must dispatch to fused COO");
        assert!(!plan.use_csf);
    }

    #[test]
    fn admission_rejects_with_cheapest_requirement_when_nothing_fits() {
        let t = uniform_tensor(&[30; 4], 2_000, 10);
        let err = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .memory_budget(1)
            .plan_admitted()
            .expect_err("a 1-byte budget fits nothing");
        assert_eq!(err.budget_bytes, 1);
        assert!(err.cheapest_resident_bytes > 1.0);
        assert!(!err.cheapest_label.is_empty());
        let msg = err.to_string();
        assert!(msg.contains("1-byte"), "{msg}");
        assert!(msg.contains(&err.cheapest_label), "{msg}");
    }

    #[test]
    fn impossible_budget_falls_back_to_min_memory() {
        let t = uniform_tensor(&[30; 4], 2_000, 10);
        let plan = Planner::new(&t, 8).estimator(NnzEstimator::Exact).memory_budget(1).plan();
        let min_mem =
            plan.candidates.iter().map(|c| c.cost.resident_bytes()).fold(f64::INFINITY, f64::min);
        assert!((plan.predicted.resident_bytes() - min_mem).abs() < 1e-9);
    }

    #[test]
    fn named_only_search_contains_exactly_named() {
        let t = uniform_tensor(&[20; 4], 1_000, 11);
        let plan = Planner::new(&t, 4)
            .estimator(NnzEstimator::Exact)
            .search(SearchStrategy::NamedOnly)
            .plan();
        assert_eq!(plan.candidates.len(), 4);
    }

    #[test]
    fn auto_runs_subset_dp_for_small_orders() {
        let t = uniform_tensor(&[15; 4], 800, 12);
        let plan = Planner::new(&t, 4).estimator(NnzEstimator::Exact).plan();
        assert!(plan.candidates.iter().any(|c| c.label == "dp:subset"));
        assert!(plan.estimator_evals > 0);
    }

    #[test]
    fn auto_skips_subset_dp_for_large_orders() {
        let t = uniform_tensor(&[8; 8], 500, 13);
        let plan = Planner::new(&t, 4).estimator(NnzEstimator::Exact).plan();
        assert!(plan.candidates.iter().all(|c| c.label != "dp:subset"));
        assert!(plan.candidates.iter().any(|c| c.label.starts_with("dp:")));
    }

    #[test]
    fn candidates_sorted_by_objective_units() {
        let t = zipf_tensor(&[25; 4], 1_500, &[0.6; 4], 14);
        let plan = Planner::new(&t, 8).estimator(NnzEstimator::Exact).plan();
        let beta = Objective::default().beta();
        for w in plan.candidates.windows(2) {
            assert!(w[0].cost.cost_units(beta) <= w[1].cost.cost_units(beta));
        }
    }

    #[test]
    fn traffic_objective_selects_minimum_cost_units() {
        let t = zipf_tensor(&[30; 5], 2_500, &[0.5; 5], 16);
        let plan = Planner::new(&t, 16).estimator(NnzEstimator::Exact).plan();
        let min =
            plan.candidates.iter().map(|c| c.cost.cost_units(1.0)).fold(f64::INFINITY, f64::min);
        assert!((plan.predicted.cost_units(1.0) - min).abs() < 1e-9);
    }

    #[test]
    fn uncalibrated_plan_has_no_time_predictions() {
        let t = uniform_tensor(&[20; 4], 1_000, 30);
        let plan = Planner::new(&t, 4).estimator(NnzEstimator::Exact).plan();
        assert!(plan.predicted_ns.is_none());
        assert!(plan.csf_predicted_ns.is_none());
        assert!(plan.coo_predicted_ns.is_none());
        assert!(!plan.use_csf);
        assert!(!plan.use_coo);
        assert!(plan.candidates.iter().all(|c| c.predicted_ns.is_none()));
    }

    #[test]
    fn calibrated_plan_ranks_by_predicted_time() {
        let t = zipf_tensor(&[40, 12, 36, 18], 3_000, &[0.9; 4], 31);
        let plan = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1.6, 1.2, 0.8, 1.0))
            .threads(8)
            .plan();
        assert!(plan.candidates.iter().all(|c| c.predicted_ns.is_some()));
        for w in plan.candidates.windows(2) {
            assert!(w[0].predicted_ns <= w[1].predicted_ns);
        }
        let min =
            plan.candidates.iter().filter_map(|c| c.predicted_ns).fold(f64::INFINITY, f64::min);
        if !plan.use_csf && !plan.use_coo {
            assert_eq!(plan.predicted_ns, Some(min));
        }
        assert!(plan.csf_predicted_ns.is_some());
        assert!(plan.coo_predicted_ns.is_some());
    }

    #[test]
    fn coo_pseudo_candidate_wins_when_entry_kernels_are_fastest() {
        let t = zipf_tensor(&[30; 4], 2_000, &[0.7; 4], 34);
        // COO entry kernels priced 1000x below everything else: the
        // planner must dispatch to the fused COO baseline.
        let fast_coo = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(0.001, 1.0, 1.0, 1.0))
            .plan();
        assert!(fast_coo.use_coo);
        assert!(!fast_coo.use_csf);
        assert_eq!(fast_coo.predicted_ns, fast_coo.coo_predicted_ns);
        // And pricing COO 1000x above everything must keep it out.
        let slow_coo = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1000.0, 1.0, 1.0, 1.0))
            .plan();
        assert!(!slow_coo.use_coo);
    }

    #[test]
    fn csf_pseudo_candidate_wins_when_tree_kernels_are_slow() {
        let t = zipf_tensor(&[30; 4], 2_000, &[0.7; 4], 32);
        // Tree kernels priced 1000x above CSF: the planner must dispatch
        // to the non-memoized baseline.
        let slow_trees = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1.0, 0.001, 1.0, 1.0))
            .plan();
        assert!(slow_trees.use_csf);
        assert_eq!(slow_trees.predicted_ns, slow_trees.csf_predicted_ns);
        // And the reverse pricing must keep the tree.
        let slow_csf = Planner::new(&t, 8)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1.0, 1000.0, 1.0, 1.0))
            .plan();
        assert!(!slow_csf.use_csf);
    }

    #[test]
    fn calibrated_plan_still_respects_memory_budget() {
        let t = uniform_tensor(&[60; 6], 6_000, 33);
        let unbounded = Planner::new(&t, 16)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1.6, 1.2, 0.8, 1.0))
            .plan();
        let flat = unbounded
            .candidates
            .iter()
            .find(|c| c.label == "flat")
            .expect("flat evaluated")
            .cost
            .resident_bytes();
        let plan = Planner::new(&t, 16)
            .estimator(NnzEstimator::Exact)
            .calibration(profile(1.6, 1.2, 0.8, 1.0))
            .memory_budget(flat as usize + 1)
            .plan();
        // CSF's N fiber forests never fit a budget this tight, so the
        // chosen strategy must be a tree within budget.
        assert!(!plan.use_csf);
        assert!(plan.predicted.resident_bytes() <= flat + 1.0);
    }

    #[test]
    fn traffic_objective_prefers_shallower_trees_on_no_collapse_data() {
        // Uniform high-order tensors: every intermediate is ~nnz elements,
        // so a balanced tree's many materializations dominate. The
        // traffic-aware plan must choose fewer memoized nodes than the
        // flop-only plan (which tends to the balanced tree).
        let t = uniform_tensor(&[60; 8], 6_000, 18);
        let flops_plan =
            Planner::new(&t, 16).estimator(NnzEstimator::Exact).objective(Objective::Flops).plan();
        let traffic_plan = Planner::new(&t, 16).estimator(NnzEstimator::Exact).plan();
        assert!(
            traffic_plan.predicted.memo_count <= flops_plan.predicted.memo_count,
            "traffic-aware memoized {} nodes vs flop-only {}",
            traffic_plan.predicted.memo_count,
            flops_plan.predicted.memo_count
        );
        assert!(
            traffic_plan.predicted.traffic_bytes_per_iter
                <= flops_plan.predicted.traffic_bytes_per_iter + 1e-9
        );
    }
}
